#ifndef TCF_SERVE_LINE_PROTOCOL_H_
#define TCF_SERVE_LINE_PROTOCOL_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/pattern_truss.h"
#include "core/tc_tree_update.h"
#include "serve/query_service.h"
#include "serve/serve_stats.h"
#include "tx/item_dictionary.h"
#include "util/status.h"

namespace tcf {

/// \file
/// \brief The tcf serving-layer wire protocol (see docs/serve-protocol.md).
///
/// A newline-delimited text protocol spoken between `TcpServer` and
/// `Client`. Requests mirror the workload-file format: a query is the
/// literal line `alpha;item,item,...`, and everything else is an
/// upper-case verb — the admin verbs (`PING`, `STATS`, `RELOAD <path>`,
/// `QUIT`), the observability verbs (`METRICS`, which scrapes the
/// server's registry in Prometheus text exposition, and
/// `EXPLAIN <query-line>`, which answers the query and returns its
/// stage-timed trace instead of the trusses), the pipelining verb
/// `BATCH <n>`, which announces that the next n lines are query lines
/// to be answered in order with n back-to-back responses (one round
/// trip for a whole workload chunk), or the mutation verb
/// `UPDATE <n>`, which announces n update lines — `tx <vertex>
/// <name,name,...>` transaction insertions and `edge <u> <v>` edge
/// insertions — applied as one atomic batch through the server's
/// incremental index maintainer (core/tc_tree_update.h) and answered
/// with a single `UPDATED` summary. Every response starts with a
/// versioned status line —
/// `TCF1 OK <KIND> <n>` followed by exactly n payload lines, or
/// `TCF1 ERR <Code> <message>` — so clients can frame replies without
/// sniffing payload contents. All encode/decode routines are pure
/// (no I/O), which is what makes them round-trip testable.

/// Version token that leads every response status line. Bump when the
/// grammar changes incompatibly; clients reject mismatched versions.
/// BATCH is an additive verb: a TCF1 client that never sends it sees a
/// byte-identical protocol, so the token stays.
inline constexpr std::string_view kProtocolVersion = "TCF1";

/// Most query lines one `BATCH <n>` may announce. Bounds the memory a
/// peer can make the server buffer for a single batch (the per-line
/// 1 MiB cap still applies to each member line).
inline constexpr size_t kMaxBatchLines = 16384;

/// Most update lines one `UPDATE <n>` may announce. Smaller than the
/// batch cap: each accepted line mutates the network and (on flush)
/// re-peels the dirty index slice, so a single frame is kept to an
/// amount the updater can absorb in one swap.
inline constexpr size_t kMaxUpdateLines = 4096;

/// One parsed client request.
struct Request {
  enum class Kind {
    kQuery,
    kPing,
    kStats,
    kReload,
    kQuit,
    kBatch,
    kMetrics,
    kExplain,
    kUpdate
  };

  Kind kind = Kind::kQuery;
  /// Per-request deadline budget in milliseconds, set by the additive
  /// `DEADLINE <ms>` prefix (`DEADLINE 50 0.1;i0`). 0 means "none
  /// given": the server applies its `--default-deadline-ms` (which may
  /// itself be 0 = unbounded). A batch's prefix is inherited by every
  /// slot of the batch.
  uint64_t deadline_ms = 0;
  /// kQuery / kExplain: the raw `alpha;item,item,...` line, resolved
  /// against the server's dictionary by ParseServeQuery (names are
  /// server-side state the protocol layer does not have).
  std::string query_line;
  /// kReload: path (on the *server's* filesystem) of the index to load.
  std::string reload_path;
  /// kBatch: how many query lines follow this header line. The lines
  /// themselves are framed by the transport, not carried here.
  size_t batch_size = 0;
  /// kUpdate: how many update lines follow this header line (framed by
  /// the transport, like a batch body).
  size_t update_size = 0;
};

/// Parses one request line (no trailing newline; a trailing '\r' is
/// tolerated). A line starting with a known verb must match the verb
/// grammar exactly — `PING x` is an error, not a query; anything else is
/// treated as a query line and must contain the `alpha;items` separator.
/// An optional `DEADLINE <ms>` prefix (additive, TCF1-compatible) may
/// lead any request and sets `Request::deadline_ms` for what follows.
/// Errors carry 1-based column context.
StatusOr<Request> ParseRequest(std::string_view line);

/// Renders `request` as its wire line (no trailing newline).
/// Exact inverse of ParseRequest for well-formed requests.
std::string EncodeRequest(const Request& request);

/// The decoded status line of a response.
struct ResponseHeader {
  bool ok = false;
  /// OK: response kind — `PONG`, `BYE`, `RELOADED`, `STATS`, `TRUSSES`.
  std::string kind;
  /// OK: number of payload lines that follow the status line.
  size_t payload_lines = 0;
  /// ERR: decoded status code and message.
  Status::Code code = Status::Code::kOk;
  std::string message;

  /// OK() for an ok header, the carried error otherwise.
  Status ToStatus() const;
};

/// `TCF1 OK <KIND> <payload_lines>` (no trailing newline).
std::string EncodeOkHeader(std::string_view kind, size_t payload_lines);

/// `TCF1 ERR <Code> <message>` (no trailing newline). `status` must not
/// be OK. Newlines in the message are flattened to spaces so the error
/// always stays one line on the wire.
std::string EncodeErrHeader(const Status& status);

/// Parses a response status line; rejects version mismatches, unknown
/// shapes, and non-numeric payload counts.
StatusOr<ResponseHeader> ParseResponseHeader(std::string_view line);

/// A pattern truss as it travels on the wire: item *names* (the client
/// has no dictionary) plus the community's vertex and edge lists.
/// Frequencies and per-edge cohesions are deliberately not carried —
/// they are diagnostics, not community membership.
struct WireTruss {
  std::vector<std::string> pattern;  // item names, in ItemId order
  std::vector<VertexId> vertices;   // sorted
  std::vector<Edge> edges;          // canonical order, sorted
};

/// One `TRUSSES` payload line: `names|v1 v2 ...|u1-w1 u2-w2 ...` with
/// names comma-joined. Item names containing `|`, `,`, or newlines are
/// not representable (generator and real-dataset names never do).
std::string EncodeTruss(const ItemDictionary& dictionary,
                        const PatternTruss& truss);

/// Inverse of EncodeTruss. Errors carry 1-based column context.
StatusOr<WireTruss> DecodeTruss(std::string_view line);

/// Renders a ServeQuery back into the `alpha;item,item,...` line form
/// (used by the network load generator to replay in-process workloads).
std::string EncodeQueryLine(const ItemDictionary& dictionary,
                            const ServeQuery& query);

/// Parses one `UPDATE` body line into `update` (appended, not reset):
///   `tx <vertex> <name,name,...>` — insert a transaction at a vertex;
///   `edge <u> <v>`                — insert an undirected edge.
/// Item *names* are resolved against `dictionary` (the client has no
/// ItemId space); an unknown name is kNotFound — streaming updates may
/// only reuse the vocabulary the index was built over, because a brand
/// new item would need a dictionary and vertical-index schema change,
/// which is RELOAD territory. Vertex-range and self-loop checks are
/// the updater's job (ValidateUpdate); this only checks grammar and
/// name resolution. Errors carry 1-based column context.
Status ParseUpdateLine(const ItemDictionary& dictionary,
                       std::string_view line, NetworkUpdate* update);

/// Renders one update (tx lines first, then edge lines) in
/// ParseUpdateLine grammar — the body a client sends after `UPDATE <n>`.
std::vector<std::string> EncodeUpdate(const ItemDictionary& dictionary,
                                      const NetworkUpdate& update);

/// `UPDATED` payload: one `key value` line per apply fact —
/// `update_txs`, `update_edges`, `dirty_items`, `changed_roots`,
/// `shards_swapped`, `nodes`, `copied`, `recomputed`, `full_rebuild`
/// (0/1) and `update_ms`. Same grammar as STATS, so DecodeStats reads
/// it.
std::vector<std::string> EncodeUpdateOutcome(const UpdateOutcome& outcome);

/// `STATS` payload: one `key value` line per ServeReport metric, network
/// counters included. Keys are stable identifiers (see
/// docs/serve-protocol.md); values render with %.6g.
std::vector<std::string> EncodeStats(const ServeReport& report);

/// Inverse of EncodeStats: `key value` pairs in wire order.
StatusOr<std::vector<std::pair<std::string, std::string>>> DecodeStats(
    const std::vector<std::string>& payload);

/// `EXPLAIN` payload: one `key value` line per trace fact — the five
/// `stage_<name>_us` wall spans and their `stage_<name>_cpu_us` CPU
/// twins (docs/observability.md lists the stage names), `total_us`, the
/// walk facts (`visited_nodes`, `retrieved_nodes`, `pruned_subtrees`,
/// `covers_used`, `trusses`), and the booleans `cache_hit` / `composed`
/// as 0/1. Same `key value` grammar as STATS, so DecodeStats reads it.
std::vector<std::string> EncodeExplain(const QueryTrace& trace);

}  // namespace tcf

#endif  // TCF_SERVE_LINE_PROTOCOL_H_
