#include "serve/file_watcher.h"

#include <sys/stat.h>

#include <chrono>
#include <utility>

#include "core/tcfi_format.h"
#include "util/logging.h"
#include "util/timer.h"

namespace tcf {

FileWatcher::FileWatcher(QueryBackend& backend, FileWatcherOptions options)
    : backend_(backend), options_(std::move(options)) {}

FileWatcher::~FileWatcher() { Stop(); }

FileWatcher::Fingerprint FileWatcher::Stat(const std::string& path) {
  struct stat st;
  Fingerprint fp;
  if (::stat(path.c_str(), &st) != 0) return fp;  // absent: {-1, -1}
#ifdef __APPLE__
  fp.mtime_ns = static_cast<int64_t>(st.st_mtimespec.tv_sec) * 1000000000 +
                st.st_mtimespec.tv_nsec;
#else
  fp.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                st.st_mtim.tv_nsec;
#endif
  fp.size = static_cast<int64_t>(st.st_size);
  return fp;
}

Status FileWatcher::Start() {
  if (started_) return Status::InvalidArgument("watcher already started");
  if (options_.path.empty()) {
    return Status::InvalidArgument("watcher needs a path");
  }
  // The version on disk right now is (presumably) the one already
  // serving; only changes from here on trigger reloads.
  last_seen_ = Stat(options_.path);
  started_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void FileWatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || !started_) {
      if (!thread_.joinable()) return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void FileWatcher::Loop() {
  const auto poll = std::chrono::duration<double, std::milli>(
      options_.poll_ms <= 0 ? 1.0 : options_.poll_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, poll, [this] { return stopping_; })) break;
    lock.unlock();

    const Fingerprint now = Stat(options_.path);
    if (!(now == last_seen_) && now.mtime_ns >= 0) {
      // A changed TCFI file is probed first: the header carries its own
      // checksum and the file size it expects, so a writer mid-copy is
      // detected with a 232-byte read instead of a failed full load.
      // Skips leave last_seen_ alone — the finished write's mtime bump
      // (or the next tick) retries.
      if (LooksLikeTcfiFile(options_.path)) {
        const Status probe = ProbeTcfiFile(options_.path);
        if (!probe.ok()) {
          skipped_.fetch_add(1, std::memory_order_acq_rel);
          TCF_LOG(Warn) << "watch " << options_.path
                        << ": tcfi header probe failed (write in "
                        << "progress?): " << probe.ToString();
          lock.lock();
          continue;
        }
      }
      WallTimer timer;
      auto reloaded = backend_.ReloadFromFile(options_.path);
      if (reloaded.ok()) {
        const double ms = timer.Millis();
        backend_.stats().RecordReload(ms);
        reloads_.fetch_add(1, std::memory_order_acq_rel);
        last_seen_ = now;
        TCF_LOG(Info) << "watch " << options_.path << ": " << *reloaded
                      << " nodes swapped in over live traffic in " << ms
                      << " ms";
      } else {
        // Likely a write in progress; leave last_seen_ so the next tick
        // (or the finished write's mtime bump) retries.
        failures_.fetch_add(1, std::memory_order_acq_rel);
        TCF_LOG(Warn) << "watch " << options_.path
                      << ": changed but not loadable yet: "
                      << reloaded.status().ToString();
      }
    } else if (now.mtime_ns < 0 && last_seen_.mtime_ns >= 0) {
      // Deleted: keep serving the last good snapshot, re-arm on return.
      last_seen_ = now;
      TCF_LOG(Warn) << "watch " << options_.path
                    << ": file disappeared; serving the last snapshot";
    }

    lock.lock();
  }
}

}  // namespace tcf
