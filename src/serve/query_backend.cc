#include "serve/query_backend.h"

#include <utility>

#include "core/tc_tree_io.h"
#include "core/tcfi_format.h"

namespace tcf {

StatusOr<size_t> QueryBackend::ReloadFromFile(const std::string& path) {
  if (LooksLikeTcfiFile(path)) {
    auto mapped = MapTcTree(path);
    if (!mapped.ok()) return mapped.status();
    TcTree tree = MaterializeTcTree(*mapped);
    const size_t nodes = tree.num_nodes();
    SwapSnapshot(std::move(tree));
    return nodes;
  }
  auto tree = LoadTcTreeFromFile(path);
  if (!tree.ok()) return tree.status();
  const size_t nodes = tree->num_nodes();
  SwapSnapshot(std::move(*tree));
  return nodes;
}

}  // namespace tcf
