#include "serve/shard_router.h"

#include <algorithm>
#include <latch>
#include <utility>

#include "core/tcfi_format.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tcf {
namespace {

/// Single-tree BFS retrieval order as a comparable key: results come
/// out depth by depth, and within a depth the commit order (per-parent
/// item-ascending over lexicographically ordered parents) is exactly
/// lexicographic in the full pattern.
bool BfsOrderLess(const PatternTruss& a, const PatternTruss& b) {
  if (a.pattern.size() != b.pattern.size()) {
    return a.pattern.size() < b.pattern.size();
  }
  return a.pattern < b.pattern;
}

ResultCacheStats AddCacheStats(ResultCacheStats total,
                               const ResultCacheStats& s) {
  total.hits += s.hits;
  total.misses += s.misses;
  total.inserts += s.inserts;
  total.evictions += s.evictions;
  total.invalidations += s.invalidations;
  total.partial_hits += s.partial_hits;
  total.composed_queries += s.composed_queries;
  total.admission_rejects += s.admission_rejects;
  total.entries += s.entries;
  total.bytes += s.bytes;
  total.capacity_bytes += s.capacity_bytes;
  return total;
}

}  // namespace

ShardedQueryService::ShardedInit ShardedQueryService::MakeInit(
    TcTree tree, size_t num_shards,
    std::unique_ptr<ShardPartitioner> partitioner) {
  ShardedInit init;
  init.partitioner = partitioner ? std::move(partitioner)
                                 : std::make_unique<HashShardPartitioner>();
  if (num_shards == 0) num_shards = 1;
  std::vector<TcTree> parts =
      PartitionTcTree(std::move(tree), *init.partitioner, num_shards);
  init.parts.reserve(parts.size());
  for (TcTree& part : parts) {
    init.parts.emplace_back(std::move(part));
  }
  return init;
}

ShardedQueryService::ShardedQueryService(
    TcTree tree, ItemDictionary dictionary, size_t num_shards,
    const QueryServiceOptions& options,
    std::unique_ptr<ShardPartitioner> partitioner)
    : ShardedQueryService(
          MakeInit(std::move(tree), num_shards, std::move(partitioner)),
          std::move(dictionary), options) {}

ShardedQueryService::ShardedQueryService(
    std::vector<TcTreeSnapshot> parts, ItemDictionary dictionary,
    const QueryServiceOptions& options,
    std::unique_ptr<ShardPartitioner> partitioner)
    : ShardedQueryService(
          ShardedInit{std::move(parts),
                      partitioner
                          ? std::move(partitioner)
                          : std::make_unique<HashShardPartitioner>()},
          std::move(dictionary), options) {}

ShardedQueryService::ShardedQueryService(
    ShardedInit init, ItemDictionary dictionary,
    const QueryServiceOptions& options)
    : slow_log_(options.tracing ? options.slow_query_us : 0,
                options.slow_log_capacity),
      dictionary_(std::move(dictionary)),
      options_(options),
      partitioner_(std::move(init.partitioner)),
      pool_(options.num_threads == 0 ? HardwareThreads()
                                     : options.num_threads),
      queries_total_(metrics_.GetCounter("tcf_queries_total",
                                         "Queries answered by Execute")),
      shard_queries_total_(metrics_.GetCounter(
          "tcf_shard_queries_total",
          "Per-shard sub-queries fanned out by the router")),
      slow_queries_total_(metrics_.GetCounter(
          "tcf_slow_queries_total",
          "Queries admitted to the slow-query ring")),
      query_total_us_(metrics_.GetHistogram(
          "tcf_query_total_us", "End-to-end Execute wall microseconds")),
      fanout_(metrics_.GetHistogram(
          "tcf_shard_fanout", "Shards probed per query (scatter width)")),
      shard_reload_ms_(metrics_.GetGauge(
          "tcf_shard_reload_ms",
          "Wall ms of the most recent single-shard snapshot swap")) {
  const size_t num_shards = init.parts.size();
  for (size_t i = 0; i < kNumQueryStages; ++i) {
    const auto stage = static_cast<QueryStage>(i);
    stage_us_[i] = &metrics_.GetHistogram(
        StrFormat("tcf_query_stage_%.*s_us",
                  static_cast<int>(QueryStageName(stage).size()),
                  QueryStageName(stage).data()),
        std::string("Wall microseconds spent in the ") +
            std::string(QueryStageName(stage)) + " stage (shard sums)");
  }

  // Each shard is a full QueryService with a private registry, cache,
  // and slow log. The router's pool provides ExecuteBatch fan-out;
  // per-shard pools stay at one thread so an N-shard service does not
  // spawn N * hardware_threads workers.
  QueryServiceOptions shard_options = options;
  shard_options.num_threads = 1;
  if (options.cache_bytes > 0) {
    shard_options.cache_bytes =
        std::max<size_t>(1, options.cache_bytes / num_shards);
  }
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<QueryService>(
        std::move(init.parts[s]), dictionary_, shard_options));
    per_shard_queries_.push_back(&metrics_.GetCounter(
        StrFormat("tcf_shard%zu_queries_total", s),
        StrFormat("Sub-queries routed to shard %zu", s)));
    per_shard_reload_ms_.push_back(&metrics_.GetGauge(
        StrFormat("tcf_shard%zu_reload_ms", s),
        StrFormat("Wall ms of shard %zu's most recent snapshot swap", s)));
    metrics_.RegisterCallback(
        StrFormat("tcf_shard%zu_nodes", s),
        StrFormat("TC-Tree nodes owned by shard %zu", s),
        MetricsRegistry::CallbackKind::kGauge, [this, s] {
          return static_cast<double>(shards_[s]->snapshot()->num_nodes());
        });
  }
  metrics_.GetGauge("tcf_shards", "Shard count of this backend")
      .Set(static_cast<double>(num_shards));
  if (options.cache_bytes > 0) {
    // Same names an unsharded QueryService exports, summed across the
    // shard caches, so dashboards and the run_checks smoke read both
    // backends identically.
    metrics_.RegisterCallback(
        "tcf_cache_entries", "Resident result-cache entries (all shards)",
        MetricsRegistry::CallbackKind::kGauge,
        [this] { return static_cast<double>(cache_stats().entries); });
    metrics_.RegisterCallback(
        "tcf_cache_bytes", "Resident result-cache bytes (all shards)",
        MetricsRegistry::CallbackKind::kGauge,
        [this] { return static_cast<double>(cache_stats().bytes); });
    metrics_.RegisterCallback(
        "tcf_cache_evictions_total",
        "Result-cache entries evicted (all shards)",
        MetricsRegistry::CallbackKind::kCounter,
        [this] { return static_cast<double>(cache_stats().evictions); });
    metrics_.RegisterCallback(
        "tcf_cache_partial_hits_total",
        "Cached sub-pattern answers reused as covers (all shards)",
        MetricsRegistry::CallbackKind::kCounter,
        [this] { return static_cast<double>(cache_stats().partial_hits); });
    metrics_.RegisterCallback(
        "tcf_cache_admission_rejects_total",
        "Inserts refused by cost-aware admission (all shards)",
        MetricsRegistry::CallbackKind::kCounter, [this] {
          return static_cast<double>(cache_stats().admission_rejects);
        });
  }
  stats_.RegisterMetrics(&metrics_);
  metrics_.RegisterCallback(
      "tcf_query_latency_p99_us",
      "p99 end-to-end query latency, interpolated from the "
      "tcf_query_total_us buckets (0 until a traced query lands)",
      MetricsRegistry::CallbackKind::kGauge,
      [this] { return HistogramQuantile(query_total_us_.Fold(), 0.99); });
}

bool ShardedQueryService::ShouldTrace() {
  if (!options_.tracing) return false;
  if (options_.trace_sample_every <= 1) return true;
  return trace_clock_.fetch_add(1, std::memory_order_relaxed) %
             options_.trace_sample_every ==
         0;
}

StatusOr<std::unique_ptr<ShardedQueryService>> ShardedQueryService::OpenSlices(
    const std::string& base, ItemDictionary dictionary, size_t num_shards,
    const QueryServiceOptions& options) {
  if (num_shards == 0) num_shards = 1;
  std::vector<TcTreeSnapshot> parts;
  parts.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    const std::string path = TcfiSlicePath(base, s, num_shards);
    auto mapped = MapTcTree(path);
    if (!mapped.ok()) return mapped.status();
    if (mapped->shard_id() != s || mapped->num_shards() != num_shards) {
      return Status::Corruption(
          StrFormat("%s: slice carries shard %zu/%zu, expected %zu/%zu",
                    path.c_str(),
                    static_cast<size_t>(mapped->shard_id()),
                    static_cast<size_t>(mapped->num_shards()), s,
                    num_shards));
    }
    parts.emplace_back(std::move(*mapped));
  }
  return std::make_unique<ShardedQueryService>(std::move(parts),
                                               std::move(dictionary), options);
}

std::vector<size_t> ShardedQueryService::RelevantShards(
    const Itemset& items) const {
  const size_t n = shards_.size();
  std::vector<uint8_t> seen(n, 0);
  for (ItemId item : items.items()) {
    seen[partitioner_->ShardOf(item, n)] = 1;
  }
  std::vector<size_t> relevant;
  for (size_t s = 0; s < n; ++s) {
    if (seen[s]) relevant.push_back(s);
  }
  if (relevant.empty()) relevant.push_back(0);
  return relevant;
}

std::shared_ptr<TcTreeQueryResult> ShardedQueryService::MergeShardResults(
    const std::vector<Result>& parts, size_t max_results,
    const Deadline& deadline) {
  auto merged = std::make_shared<TcTreeQueryResult>();
  size_t total = 0;
  for (const Result& part : parts) {
    merged->visited_nodes += part->visited_nodes;
    merged->pruned_subtrees += part->pruned_subtrees;
    total += part->trusses.size();
    // An expired shard answer is partial work, which poisons the whole
    // merge — there is no complete merged answer to build from it.
    merged->deadline_exceeded =
        merged->deadline_exceeded || part->deadline_exceeded;
  }
  if (merged->deadline_exceeded) return merged;
  merged->trusses.reserve(max_results == 0 ? total
                                           : std::min(total, max_results));
  // K-way merge on the BFS-order key. Shard answer sets are disjoint
  // (each pattern has exactly one owner), so no tie-break is needed.
  // The merge is the router's own long loop, so it honours the same
  // cooperative-cancellation stride as the shard walks.
  const bool bounded = deadline.bounded();
  std::vector<size_t> pos(parts.size(), 0);
  while (max_results == 0 || merged->trusses.size() < max_results) {
    if (bounded && merged->trusses.size() % kDeadlineCheckStride == 0 &&
        deadline.IsExpired()) {
      merged->deadline_exceeded = true;
      return merged;
    }
    size_t best = parts.size();
    for (size_t k = 0; k < parts.size(); ++k) {
      if (pos[k] >= parts[k]->trusses.size()) continue;
      if (best == parts.size() ||
          BfsOrderLess(parts[k]->trusses[pos[k]],
                       parts[best]->trusses[pos[best]])) {
        best = k;
      }
    }
    if (best == parts.size()) break;
    merged->trusses.push_back(parts[best]->trusses[pos[best]++]);
  }
  // QueryTcTree collects and counts in lockstep, so after the merge
  // (and any max_results truncation) this is the single-tree value.
  merged->retrieved_nodes = merged->trusses.size();
  return merged;
}

ShardedQueryService::Result ShardedQueryService::Execute(
    const ServeQuery& query, QueryTrace* trace) {
  WallTimer timer;
  QueryTrace local_trace;
  QueryTrace* t =
      trace != nullptr ? trace : (ShouldTrace() ? &local_trace : nullptr);
  queries_total_.Increment();
  const std::vector<size_t> relevant = RelevantShards(query.items);
  shard_queries_total_.Increment(relevant.size());
  fanout_.Record(static_cast<double>(relevant.size()));
  for (size_t s : relevant) per_shard_queries_[s]->Increment();

  Result result;
  if (relevant.size() == 1) {
    // Single-owner fast path: the other shards would contribute nothing
    // (no layer-1 item of theirs is in q), so the shard's answer — and
    // its walk counters — already *are* the single-tree answer.
    result = shards_[relevant[0]]->Execute(query, t);
  } else {
    std::vector<Result> parts;
    parts.reserve(relevant.size());
    bool all_hit = true;
    bool any_composed = false;
    uint64_t covers = 0;
    for (size_t s : relevant) {
      QueryTrace sub;
      sub.sample_cpu = t != nullptr && t->sample_cpu;
      QueryTrace* sub_trace = t != nullptr ? &sub : nullptr;
      parts.push_back(shards_[s]->Execute(query, sub_trace));
      if (t != nullptr) {
        for (size_t i = 0; i < kNumQueryStages; ++i) {
          t->stage_wall_us[i] += sub.stage_wall_us[i];
          t->stage_cpu_us[i] += sub.stage_cpu_us[i];
        }
        all_hit = all_hit && sub.cache_hit;
        any_composed = any_composed || sub.composed;
        covers += sub.covers_used;
      }
      // A shard that ran out of budget ends the scatter: the remaining
      // shards would burn the same spent budget to produce more partial
      // work the merge must throw away anyway.
      if (parts.back()->deadline_exceeded) break;
    }
    std::shared_ptr<TcTreeQueryResult> merged = MergeShardResults(
        parts, options_.query_options.max_results, query.deadline);
    if (t != nullptr) {
      t->cache_hit = all_hit;
      t->composed = any_composed;
      t->covers_used = covers;
      t->visited_nodes = merged->visited_nodes;
      t->retrieved_nodes = merged->retrieved_nodes;
      t->pruned_subtrees = merged->pruned_subtrees;
      t->trusses = merged->trusses.size();
    }
    result = std::move(merged);
  }

  const double us = timer.Micros();
  if (result->deadline_exceeded) {
    // Partial work, not an answer (see QueryService::Execute). The
    // single-owner shard already recorded its own deadline counter;
    // this one feeds the router's STATS/metrics, which is what the
    // transport reports.
    stats_.RecordDeadlineExceeded();
    if (t != nullptr) {
      t->deadline_exceeded = true;
      t->shards_probed = relevant.size();
      t->updates_applied = updates_applied();
      t->total_us = us;
      RecordTrace(query, *t);
    }
    return result;
  }
  stats_.RecordQuery(us, result->trusses.size());
  if (t != nullptr) {
    t->shards_probed = relevant.size();
    t->updates_applied = updates_applied();
    t->total_us = us;
    RecordTrace(query, *t);
  }
  return result;
}

std::vector<ShardedQueryService::Result> ShardedQueryService::ExecuteBatch(
    const std::vector<ServeQuery>& queries) {
  std::vector<Result> results(queries.size());
  if (queries.empty()) return results;

  // Chunked fan-out with a per-batch latch, as in QueryService (the
  // per-shard pools are single-threaded; this pool is the parallelism).
  const size_t chunks = std::min(queries.size(), pool_.num_threads() * 4);
  const size_t step = (queries.size() + chunks - 1) / chunks;
  const size_t num_tasks = (queries.size() + step - 1) / step;
  std::latch done(static_cast<ptrdiff_t>(num_tasks));
  for (size_t begin = 0; begin < queries.size(); begin += step) {
    const size_t end = std::min(queries.size(), begin + step);
    pool_.Submit([this, &queries, &results, &done, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        results[i] = Execute(queries[i]);
      }
      done.count_down();
    });
  }
  done.wait();
  return results;
}

void ShardedQueryService::SwapShardSnapshot(size_t shard,
                                            TcTreeSnapshot shard_snapshot) {
  WallTimer timer;
  shards_[shard]->SwapSnapshot(std::move(shard_snapshot));
  const double ms = timer.Millis();
  per_shard_reload_ms_[shard]->Set(ms);
  shard_reload_ms_.Set(ms);
}

void ShardedQueryService::SwapShardSnapshot(size_t shard, TcTree shard_tree) {
  SwapShardSnapshot(shard, TcTreeSnapshot(std::move(shard_tree)));
}

StatusOr<size_t> ShardedQueryService::ReloadFromFile(const std::string& path) {
  // Slice-aware path: when every per-shard slice file is present, each
  // shard swaps its own mapped slice and no partitioning happens at
  // all. Map and validate *all* slices before swapping *any* — a
  // corrupt slice must not leave the service half-rolled.
  const size_t n = shards_.size();
  bool all_slices = n > 0;
  for (size_t s = 0; s < n && all_slices; ++s) {
    all_slices = LooksLikeTcfiFile(TcfiSlicePath(path, s, n));
  }
  if (all_slices) {
    std::vector<TcTreeSnapshot> parts;
    parts.reserve(n);
    size_t nodes = 0;
    for (size_t s = 0; s < n; ++s) {
      const std::string slice = TcfiSlicePath(path, s, n);
      auto mapped = MapTcTree(slice);
      if (!mapped.ok()) return mapped.status();
      if (mapped->shard_id() != s || mapped->num_shards() != n) {
        return Status::Corruption(
            StrFormat("%s: slice carries shard %zu/%zu, expected %zu/%zu",
                      slice.c_str(),
                      static_cast<size_t>(mapped->shard_id()),
                      static_cast<size_t>(mapped->num_shards()), s, n));
      }
      nodes += mapped->num_nodes();
      parts.emplace_back(std::move(*mapped));
    }
    for (size_t s = 0; s < n; ++s) {
      SwapShardSnapshot(s, std::move(parts[s]));
    }
    return nodes;
  }
  // Whole-tree file (TCFI or TCFT): the base implementation
  // materializes as needed and funnels into the rolling SwapSnapshot.
  return QueryBackend::ReloadFromFile(path);
}

void ShardedQueryService::SwapSnapshot(TcTree tree) {
  std::vector<TcTree> parts =
      PartitionTcTree(std::move(tree), *partitioner_, shards_.size());
  // Rolling: one shard swaps at a time; the others keep serving their
  // current snapshot and cache. A query scattered mid-roll may compose
  // old-shard and new-shard answers — sound, because shard answer sets
  // are disjoint by item ownership and each shard's own answer is
  // single-snapshot (its epoch check drops stale inserts).
  for (size_t s = 0; s < shards_.size(); ++s) {
    SwapShardSnapshot(s, std::move(parts[s]));
  }
}

size_t ShardedQueryService::ApplyUpdatedSnapshot(
    TcTree tree, const std::vector<ItemId>& changed_roots,
    const std::vector<ItemId>& dirty_items) {
  std::vector<TcTree> parts =
      PartitionTcTree(std::move(tree), *partitioner_, shards_.size());
  // Every pattern lives on the shard of its minimum item — its layer-1
  // ancestor's item — so a shard owning none of the changed roots got a
  // partition identical to what it is already serving (the partitioner
  // is deterministic and the arena subsequence it selects is unchanged):
  // skip it entirely, snapshot and cache both. Changed shards roll one
  // at a time like SwapSnapshot, but invalidate only the dirty-item
  // entries instead of flushing.
  std::vector<char> changed(shards_.size(), 0);
  for (ItemId root : changed_roots) {
    changed[ShardOfItem(root)] = 1;
  }
  size_t swapped = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!changed[s]) continue;
    WallTimer timer;
    shards_[s]->ApplyUpdatedSnapshot(std::move(parts[s]), changed_roots,
                                     dirty_items);
    const double ms = timer.Millis();
    per_shard_reload_ms_[s]->Set(ms);
    shard_reload_ms_.Set(ms);
    ++swapped;
  }
  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  return swapped;
}

ResultCacheStats ShardedQueryService::cache_stats() const {
  ResultCacheStats total;
  for (const auto& shard : shards_) {
    total = AddCacheStats(total, shard->cache_stats());
  }
  return total;
}

ServeReport ShardedQueryService::Report() const {
  ServeReport report = stats_.Report(cache_stats());
  report.shards = shards_.size();
  report.shard_queries = shard_queries_total_.Value();
  report.shard_reload_ms = shard_reload_ms_.Value();
  return report;
}

std::string ShardedQueryService::RenderQueryLine(
    const ServeQuery& query) const {
  std::string out = StrFormat("%.17g;", query.alpha);
  bool first = true;
  for (ItemId item : query.items.items()) {
    if (!first) out += ',';
    out += dictionary_.Name(item);
    first = false;
  }
  return out;
}

void ShardedQueryService::RecordTrace(const ServeQuery& query,
                                      const QueryTrace& trace) {
  query_total_us_.Record(trace.total_us);
  for (const QueryStage stage :
       {QueryStage::kCacheProbe, QueryStage::kCompose, QueryStage::kWalk}) {
    const double us = trace.stage_wall_us[static_cast<size_t>(stage)];
    if (us > 0) stage_us_[static_cast<size_t>(stage)]->Record(us);
  }
  if (slow_log_.Qualifies(trace.total_us)) {
    slow_queries_total_.Increment();
    slow_log_.Record(RenderQueryLine(query), trace);
  }
}

}  // namespace tcf
