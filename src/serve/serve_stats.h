#ifndef TCF_SERVE_SERVE_STATS_H_
#define TCF_SERVE_SERVE_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "serve/result_cache.h"
#include "util/table.h"
#include "util/timer.h"

namespace tcf {

/// Point-in-time summary produced by ServeStats::Report().
struct ServeReport {
  uint64_t queries = 0;
  uint64_t trusses_returned = 0;
  double wall_seconds = 0;   // since construction or the last Reset()
  double qps = 0;            // queries / wall_seconds
  double mean_us = 0;        // per-query latency, microseconds
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double max_us = 0;
  ResultCacheStats cache;    // zero-initialized if no cache attached

  // Network-transport counters (zero when serving in-process). Unlike
  // the latency fields these are lifetime-of-server, not per-pass: they
  // survive Reset() so "connections served" never goes backwards while
  // clients are attached.
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;  // accepted minus closed
  uint64_t connections_peak = 0;    // high-water mark of active
  uint64_t bytes_in = 0;            // request bytes read off sockets
  uint64_t bytes_out = 0;           // response bytes written

  // Pipelining counters (BATCH verb; lifetime-of-server like the
  // connection counters). batch_queries / batches is the mean depth.
  uint64_t batches = 0;
  uint64_t batch_queries = 0;   // query lines carried inside batches
  uint64_t batch_max_depth = 0;

  // Snapshot-roll counters (RELOAD verb / SwapSnapshot; lifetime-of-
  // server). `last_reload_ms` is the wall time of the most recent
  // load-and-swap — the number an operator watches shrink when the index
  // is rebuilt with more `--build-threads`.
  uint64_t reloads = 0;
  double last_reload_ms = 0;

  // Sharding counters (serve/shard_router.h; all zero on an unsharded
  // backend). `shard_queries` counts per-shard sub-queries — divided by
  // `queries` it is the mean scatter fan-out. `shard_reload_ms` is the
  // wall time of the most recent *single-shard* snapshot swap: the
  // longest pause any one shard's cache sees during a rolling reload,
  // as opposed to `last_reload_ms`, which times the whole roll.
  uint64_t shards = 0;
  uint64_t shard_queries = 0;
  double shard_reload_ms = 0;

  // Streaming-update counters (UPDATE verb / IndexUpdater; lifetime-of-
  // server). `updates` counts accepted flushes; txs/edges/dirty items
  // sum over them; `update_shards_swapped` sums the snapshots each
  // apply actually rolled (1 per flush unsharded; only the shards
  // owning a changed root on a sharded backend). `last_update_ms` is
  // the wall time of the most recent enqueue-to-swap apply — the
  // freshness latency an operator watches under churn.
  uint64_t updates = 0;
  uint64_t update_txs = 0;
  uint64_t update_edges = 0;
  uint64_t update_dirty_items = 0;
  uint64_t update_shards_swapped = 0;
  double last_update_ms = 0;

  // Overload-protection counters (deadlines / rate limiting / load
  // shedding; lifetime-of-server like the other transport counters).
  // `deadline_exceeded` counts queries that expired mid-execution and
  // returned ERR DeadlineExceeded; `rate_limited` counts requests
  // refused by the per-client token bucket; `shed` counts requests
  // dropped by queue-depth load shedding; `clients_tracked` is the
  // point-in-time size of the per-client accounting LRU.
  uint64_t deadline_exceeded = 0;
  uint64_t rate_limited = 0;
  uint64_t shed = 0;
  uint64_t clients_tracked = 0;

  /// Renders the report as a two-column (metric, value) table.
  TextTable ToTable() const;
  std::string ToString() const;
};

/// \brief Thread-safe latency/throughput collector for the serving layer.
///
/// Latencies are recorded into lock-striped buffers (a worker hits one
/// mutex uncontended in the common case); Report() merges the stripes,
/// sorts once, and reads exact percentiles — no histogram approximation,
/// which at serve-test scales (≤ millions of samples) is cheap and keeps
/// tail numbers trustworthy. Wall time for QPS comes from util/timer.h's
/// WallTimer, started at construction or the last Reset().
class ServeStats {
 public:
  ServeStats();

  ServeStats(const ServeStats&) = delete;
  ServeStats& operator=(const ServeStats&) = delete;

  /// Records one finished query.
  void RecordQuery(double latency_us, uint64_t num_trusses);

  /// Records one accepted network connection (TcpServer's accept path)
  /// and advances the active-connection high-water mark.
  void RecordConnectionOpened();

  /// Records one closed network connection.
  void RecordConnectionClosed();

  /// Folds one request/response exchange's socket traffic in.
  void RecordNetworkBytes(uint64_t in, uint64_t out);

  /// Records one executed BATCH of `depth` query lines.
  void RecordBatch(uint64_t depth);

  /// Records one completed snapshot reload that took `wall_ms`.
  void RecordReload(double wall_ms);

  /// Records one accepted streaming-update flush: `txs` transactions
  /// and `edges` edges applied, `dirty_items` items dirtied,
  /// `shards_swapped` snapshots rolled, `wall_ms` enqueue-to-swap time.
  void RecordUpdate(uint64_t txs, uint64_t edges, uint64_t dirty_items,
                    uint64_t shards_swapped, double wall_ms);

  /// Records one query that expired mid-execution (ERR DeadlineExceeded).
  void RecordDeadlineExceeded();

  /// Records one request refused by the per-client token bucket.
  void RecordRateLimited();

  /// Records one request dropped by queue-depth load shedding.
  void RecordShed();

  /// Publishes the point-in-time size of the per-client accounting LRU
  /// (set by the transport whenever the table changes).
  void SetClientsTracked(uint64_t n);

  /// Forgets all samples and restarts the wall clock (used between the
  /// cold and warm passes of `tcf serve --repeat`). Network counters are
  /// cumulative over the collector's lifetime and are *not* reset — a
  /// pass boundary must not make a still-open connection disappear.
  void Reset();

  /// Summarizes everything recorded since the last Reset(). Pass the
  /// cache's counters to fold the hit rate into the report.
  ServeReport Report(const ResultCacheStats& cache = {}) const;

  /// Exports the transport counters into `registry` as callback
  /// instruments (tcf_connections_*, tcf_bytes_*, tcf_batch*,
  /// tcf_reloads_total, tcf_last_reload_ms): the registry reads the
  /// atomics at scrape time, so the record paths stay untouched. This
  /// collector must outlive the registry's last Render().
  void RegisterMetrics(MetricsRegistry* registry);

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<double> latencies_us;
    uint64_t trusses = 0;
  };
  static constexpr size_t kStripes = 16;

  Stripe& StripeForThisThread();

  std::vector<Stripe> stripes_{kStripes};
  WallTimer wall_;

  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> connections_peak_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_queries_{0};
  std::atomic<uint64_t> batch_max_depth_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<double> last_reload_ms_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> update_txs_{0};
  std::atomic<uint64_t> update_edges_{0};
  std::atomic<uint64_t> update_dirty_items_{0};
  std::atomic<uint64_t> update_shards_swapped_{0};
  std::atomic<double> last_update_ms_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> rate_limited_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> clients_tracked_{0};
};

}  // namespace tcf

#endif  // TCF_SERVE_SERVE_STATS_H_
