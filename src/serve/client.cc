#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace tcf {
namespace {

Request MakeRequest(Request::Kind kind) {
  Request request;
  request.kind = kind;
  return request;
}

/// Connects one address literal (v6 tried before v4, matching the
/// server's own family sniff). Returns the connected fd, or a Status.
StatusOr<int> ConnectLiteral(const std::string& address, uint16_t port) {
  sockaddr_storage storage{};
  socklen_t addr_len = 0;
  sockaddr_in6 addr6{};
  sockaddr_in addr4{};
  int family = AF_UNSPEC;
  if (::inet_pton(AF_INET6, address.c_str(), &addr6.sin6_addr) == 1) {
    family = AF_INET6;
    addr6.sin6_family = AF_INET6;
    addr6.sin6_port = htons(port);
    std::memcpy(&storage, &addr6, sizeof(addr6));
    addr_len = sizeof(addr6);
  } else if (::inet_pton(AF_INET, address.c_str(), &addr4.sin_addr) == 1) {
    family = AF_INET;
    addr4.sin_family = AF_INET;
    addr4.sin_port = htons(port);
    std::memcpy(&storage, &addr4, sizeof(addr4));
    addr_len = sizeof(addr4);
  } else {
    return Status::InvalidArgument(
        "bad host address (need an IPv4 or IPv6 literal): " + address);
  }
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&storage), addr_len) <
      0) {
    const Status s = Status::IOError(StrFormat(
        "connect %s:%u: %s", address.c_str(), port, std::strerror(errno)));
    ::close(fd);
    return s;
  }
  return fd;
}

}  // namespace

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                  uint16_t port) {
  // "localhost" resolves to both loopbacks: ::1 first (a dual-stack
  // server answers either way), falling back to 127.0.0.1 for a
  // v4-only listener.
  std::vector<std::string> candidates;
  if (host == "localhost") {
    candidates = {"::1", "127.0.0.1"};
  } else {
    candidates = {host};
  }
  Status last = Status::IOError("no candidate addresses");
  for (const std::string& address : candidates) {
    auto fd = ConnectLiteral(address, port);
    if (fd.ok()) return std::unique_ptr<Client>(new Client(*fd));
    last = fd.status();
  }
  return last;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendAll(std::string_view data) {
  if (fd_ < 0) return Status::IOError("connection is closed");
  const size_t total = data.size();
  while (!data.empty()) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("send: %s", std::strerror(errno)));
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  bytes_sent_ += total;
  return Status::OK();
}

Status Client::SendLine(const std::string& line) {
  std::string wire = line;
  wire += '\n';
  return SendAll(wire);
}

StatusOr<std::string> Client::ReadLine() {
  if (fd_ < 0) return Status::IOError("connection is closed");
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return Status::IOError(StrFormat("recv: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("server closed the connection mid-response");
    }
    buffer_.append(buf, static_cast<size_t>(n));
    bytes_received_ += static_cast<uint64_t>(n);
  }
}

StatusOr<Client::Reply> Client::RoundTrip(const Request& request) {
  TCF_RETURN_IF_ERROR(SendLine(EncodeRequest(request)));
  auto status_line = ReadLine();
  if (!status_line.ok()) return status_line.status();
  auto header = ParseResponseHeader(*status_line);
  if (!header.ok()) return header.status();

  Reply reply;
  reply.header = std::move(*header);
  // The count is peer-supplied: don't pre-reserve unbounded memory for
  // it. Lines are read (and validated against the connection) one by
  // one; a lying peer stalls on ReadLine instead of OOMing us.
  reply.payload.reserve(std::min<size_t>(reply.header.payload_lines, 4096));
  for (size_t i = 0; i < reply.header.payload_lines; ++i) {
    auto line = ReadLine();
    if (!line.ok()) return line.status();
    reply.payload.push_back(std::move(*line));
  }
  return reply;
}

Status Client::Ping() {
  auto reply = RoundTrip(MakeRequest(Request::Kind::kPing));
  if (!reply.ok()) return reply.status();
  TCF_RETURN_IF_ERROR(reply->header.ToStatus());
  if (reply->header.kind != "PONG") {
    return Status::Internal("expected PONG, got " + reply->header.kind);
  }
  return Status::OK();
}

StatusOr<std::vector<WireTruss>> Client::Query(
    const std::string& query_line) {
  Request request = MakeRequest(Request::Kind::kQuery);
  request.query_line = query_line;
  auto reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  TCF_RETURN_IF_ERROR(reply->header.ToStatus());
  if (reply->header.kind != "TRUSSES") {
    return Status::Internal("expected TRUSSES, got " + reply->header.kind);
  }
  std::vector<WireTruss> trusses;
  trusses.reserve(reply->payload.size());
  for (const std::string& line : reply->payload) {
    auto truss = DecodeTruss(line);
    if (!truss.ok()) return truss.status();
    trusses.push_back(std::move(*truss));
  }
  return trusses;
}

StatusOr<std::vector<Client::BatchItem>> Client::Batch(
    const std::vector<std::string>& query_lines) {
  std::vector<BatchItem> items;
  if (query_lines.empty()) return items;
  if (query_lines.size() > kMaxBatchLines) {
    return Status::InvalidArgument(
        StrFormat("batch of %zu lines exceeds the protocol limit of %zu",
                  query_lines.size(), kMaxBatchLines));
  }
  Request header;
  header.kind = Request::Kind::kBatch;
  header.batch_size = query_lines.size();
  std::string wire = EncodeRequest(header);
  wire += '\n';
  for (const std::string& line : query_lines) {
    wire += line;
    wire += '\n';
  }
  TCF_RETURN_IF_ERROR(SendAll(wire));  // the whole batch in one write

  items.reserve(query_lines.size());
  for (size_t i = 0; i < query_lines.size(); ++i) {
    auto status_line = ReadLine();
    if (!status_line.ok()) return status_line.status();
    auto response_header = ParseResponseHeader(*status_line);
    if (!response_header.ok()) return response_header.status();
    BatchItem item;
    if (!response_header->ok) {
      item.status = response_header->ToStatus();
      items.push_back(std::move(item));
      continue;
    }
    if (response_header->kind != "TRUSSES") {
      return Status::Internal("batch slot " + std::to_string(i + 1) +
                              ": expected TRUSSES, got " +
                              response_header->kind);
    }
    item.trusses.reserve(
        std::min<size_t>(response_header->payload_lines, 4096));
    for (size_t j = 0; j < response_header->payload_lines; ++j) {
      auto line = ReadLine();
      if (!line.ok()) return line.status();
      auto truss = DecodeTruss(*line);
      if (!truss.ok()) return truss.status();
      item.trusses.push_back(std::move(*truss));
    }
    items.push_back(std::move(item));
  }
  return items;
}

StatusOr<std::vector<std::pair<std::string, std::string>>> Client::Update(
    const std::vector<std::string>& update_lines) {
  if (update_lines.empty()) {
    return Status::InvalidArgument("empty update");
  }
  if (update_lines.size() > kMaxUpdateLines) {
    return Status::InvalidArgument(
        StrFormat("update of %zu lines exceeds the protocol limit of %zu",
                  update_lines.size(), kMaxUpdateLines));
  }
  Request header;
  header.kind = Request::Kind::kUpdate;
  header.update_size = update_lines.size();
  std::string wire = EncodeRequest(header);
  wire += '\n';
  for (const std::string& line : update_lines) {
    wire += line;
    wire += '\n';
  }
  TCF_RETURN_IF_ERROR(SendAll(wire));  // the whole update in one write

  auto status_line = ReadLine();
  if (!status_line.ok()) return status_line.status();
  auto response_header = ParseResponseHeader(*status_line);
  if (!response_header.ok()) return response_header.status();
  TCF_RETURN_IF_ERROR(response_header->ToStatus());
  if (response_header->kind != "UPDATED") {
    return Status::Internal("expected UPDATED, got " +
                            response_header->kind);
  }
  std::vector<std::string> payload;
  payload.reserve(std::min<size_t>(response_header->payload_lines, 4096));
  for (size_t i = 0; i < response_header->payload_lines; ++i) {
    auto line = ReadLine();
    if (!line.ok()) return line.status();
    payload.push_back(std::move(*line));
  }
  return DecodeStats(payload);  // same `key value` grammar
}

StatusOr<std::vector<std::pair<std::string, std::string>>> Client::Stats() {
  auto reply = RoundTrip(MakeRequest(Request::Kind::kStats));
  if (!reply.ok()) return reply.status();
  TCF_RETURN_IF_ERROR(reply->header.ToStatus());
  if (reply->header.kind != "STATS") {
    return Status::Internal("expected STATS, got " + reply->header.kind);
  }
  return DecodeStats(reply->payload);
}

StatusOr<std::string> Client::Metrics() {
  auto reply = RoundTrip(MakeRequest(Request::Kind::kMetrics));
  if (!reply.ok()) return reply.status();
  TCF_RETURN_IF_ERROR(reply->header.ToStatus());
  if (reply->header.kind != "METRICS") {
    return Status::Internal("expected METRICS, got " + reply->header.kind);
  }
  std::string text;
  for (const std::string& line : reply->payload) {
    text += line;
    text += '\n';
  }
  return text;
}

StatusOr<std::vector<std::pair<std::string, std::string>>> Client::Explain(
    const std::string& query_line) {
  Request request = MakeRequest(Request::Kind::kExplain);
  request.query_line = query_line;
  auto reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  TCF_RETURN_IF_ERROR(reply->header.ToStatus());
  if (reply->header.kind != "EXPLAIN") {
    return Status::Internal("expected EXPLAIN, got " + reply->header.kind);
  }
  return DecodeStats(reply->payload);  // same `key value` grammar
}

StatusOr<uint64_t> Client::Reload(const std::string& index_path) {
  Request request = MakeRequest(Request::Kind::kReload);
  request.reload_path = index_path;
  auto reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  TCF_RETURN_IF_ERROR(reply->header.ToStatus());
  if (reply->header.kind != "RELOADED" || reply->payload.empty()) {
    return Status::Internal("malformed RELOADED reply");
  }
  // Payload line: `nodes <count>`.
  const std::string& line = reply->payload.front();
  const size_t space = line.find(' ');
  if (space == std::string::npos) {
    return Status::Internal("malformed RELOADED payload: " + line);
  }
  auto nodes = ParseUint64(Trim(std::string_view(line).substr(space + 1)));
  if (!nodes.ok()) return nodes.status();
  return *nodes;
}

Status Client::Quit() {
  auto reply = RoundTrip(MakeRequest(Request::Kind::kQuit));
  if (!reply.ok()) return reply.status();
  TCF_RETURN_IF_ERROR(reply->header.ToStatus());
  const Status s = reply->header.kind == "BYE"
                       ? Status::OK()
                       : Status::Internal("expected BYE, got " +
                                          reply->header.kind);
  ::close(fd_);
  fd_ = -1;
  return s;
}

}  // namespace tcf
