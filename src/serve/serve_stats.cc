#include "serve/serve_stats.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <thread>

#include "util/string_util.h"

namespace tcf {
namespace {

/// Exact percentile of a sorted sample set (nearest-rank).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

TextTable ServeReport::ToTable() const {
  TextTable t({"metric", "value"});
  t.AddRow({"queries", TextTable::Num(queries)});
  t.AddRow({"wall time (s)", TextTable::Num(wall_seconds)});
  t.AddRow({"throughput (q/s)", TextTable::Num(qps)});
  t.AddRow({"latency mean (us)", TextTable::Num(mean_us)});
  t.AddRow({"latency p50 (us)", TextTable::Num(p50_us)});
  t.AddRow({"latency p90 (us)", TextTable::Num(p90_us)});
  t.AddRow({"latency p99 (us)", TextTable::Num(p99_us)});
  t.AddRow({"latency max (us)", TextTable::Num(max_us)});
  t.AddRow({"trusses returned", TextTable::Num(trusses_returned)});
  t.AddRow({"cache hit rate", TextTable::Num(cache.HitRate())});
  t.AddRow({"cache hits", TextTable::Num(cache.hits)});
  t.AddRow({"cache misses", TextTable::Num(cache.misses)});
  t.AddRow({"cache entries", TextTable::Num(static_cast<uint64_t>(
                                 cache.entries))});
  t.AddRow({"cache bytes", TextTable::Num(static_cast<uint64_t>(
                               cache.bytes))});
  t.AddRow({"cache evictions", TextTable::Num(cache.evictions)});
  // Partial-reuse counters (subset-composable cache): a "partial hit" is
  // one cached sub-pattern answer reused as a composition building block.
  t.AddRow({"cache partial hits", TextTable::Num(cache.partial_hits)});
  t.AddRow({"cache composed", TextTable::Num(cache.composed_queries)});
  t.AddRow(
      {"cache admission rejects", TextTable::Num(cache.admission_rejects)});
  // Network rows appear only once a transport is attached, so the
  // in-process `tcf serve --workload` report is unchanged.
  if (connections_accepted > 0) {
    t.AddRow({"connections accepted", TextTable::Num(connections_accepted)});
    t.AddRow({"connections active", TextTable::Num(connections_active)});
    t.AddRow({"connections peak", TextTable::Num(connections_peak)});
    t.AddRow({"bytes in", TextTable::Num(bytes_in)});
    t.AddRow({"bytes out", TextTable::Num(bytes_out)});
  }
  if (batches > 0) {
    t.AddRow({"batches", TextTable::Num(batches)});
    t.AddRow({"batch queries", TextTable::Num(batch_queries)});
    t.AddRow({"batch depth (mean)",
              TextTable::Num(static_cast<double>(batch_queries) /
                             static_cast<double>(batches))});
    t.AddRow({"batch depth (max)", TextTable::Num(batch_max_depth)});
  }
  if (reloads > 0) {
    t.AddRow({"reloads", TextTable::Num(reloads)});
    t.AddRow({"last reload (ms)", TextTable::Num(last_reload_ms)});
  }
  // Shard rows appear only on a sharded backend, so single-tree
  // reports keep their PR-1 shape.
  if (shards > 0) {
    t.AddRow({"shards", TextTable::Num(shards)});
    t.AddRow({"shard queries", TextTable::Num(shard_queries)});
    if (queries > 0) {
      t.AddRow({"shard fan-out (mean)",
                TextTable::Num(static_cast<double>(shard_queries) /
                               static_cast<double>(queries))});
    }
    t.AddRow({"shard reload (ms)", TextTable::Num(shard_reload_ms)});
  }
  // Update rows appear only once a streaming update has been accepted,
  // so static-index reports keep their shape.
  if (updates > 0) {
    t.AddRow({"updates", TextTable::Num(updates)});
    t.AddRow({"update txs", TextTable::Num(update_txs)});
    t.AddRow({"update edges", TextTable::Num(update_edges)});
    t.AddRow({"update dirty items", TextTable::Num(update_dirty_items)});
    t.AddRow(
        {"update shards swapped", TextTable::Num(update_shards_swapped)});
    t.AddRow({"last update (ms)", TextTable::Num(last_update_ms)});
  }
  // Overload-protection rows appear only once a deadline expired or the
  // transport refused work, so calm-weather reports keep their shape.
  if (deadline_exceeded > 0 || rate_limited > 0 || shed > 0) {
    t.AddRow({"deadline exceeded", TextTable::Num(deadline_exceeded)});
    t.AddRow({"rate limited", TextTable::Num(rate_limited)});
    t.AddRow({"shed", TextTable::Num(shed)});
    t.AddRow({"clients tracked", TextTable::Num(clients_tracked)});
  }
  return t;
}

std::string ServeReport::ToString() const {
  std::ostringstream os;
  ToTable().Print(os);
  return os.str();
}

ServeStats::ServeStats() = default;

ServeStats::Stripe& ServeStats::StripeForThisThread() {
  const size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripes_[h % kStripes];
}

void ServeStats::RecordQuery(double latency_us, uint64_t num_trusses) {
  Stripe& stripe = StripeForThisThread();
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.latencies_us.push_back(latency_us);
  stripe.trusses += num_trusses;
}

void ServeStats::RecordConnectionOpened() {
  const uint64_t opened =
      connections_opened_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t closed = connections_closed_.load(std::memory_order_relaxed);
  // `active` can momentarily undercount under concurrent closes; that
  // only ever makes the recorded peak conservative, never inflated.
  const uint64_t active = opened - std::min(opened, closed);
  uint64_t peak = connections_peak_.load(std::memory_order_relaxed);
  while (active > peak &&
         !connections_peak_.compare_exchange_weak(
             peak, active, std::memory_order_relaxed)) {
  }
}

void ServeStats::RecordConnectionClosed() {
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
}

void ServeStats::RecordNetworkBytes(uint64_t in, uint64_t out) {
  bytes_in_.fetch_add(in, std::memory_order_relaxed);
  bytes_out_.fetch_add(out, std::memory_order_relaxed);
}

void ServeStats::RecordBatch(uint64_t depth) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_queries_.fetch_add(depth, std::memory_order_relaxed);
  uint64_t max = batch_max_depth_.load(std::memory_order_relaxed);
  while (depth > max &&
         !batch_max_depth_.compare_exchange_weak(
             max, depth, std::memory_order_relaxed)) {
  }
}

void ServeStats::RecordReload(double wall_ms) {
  reloads_.fetch_add(1, std::memory_order_relaxed);
  last_reload_ms_.store(wall_ms, std::memory_order_relaxed);
}

void ServeStats::RecordUpdate(uint64_t txs, uint64_t edges,
                              uint64_t dirty_items, uint64_t shards_swapped,
                              double wall_ms) {
  updates_.fetch_add(1, std::memory_order_relaxed);
  update_txs_.fetch_add(txs, std::memory_order_relaxed);
  update_edges_.fetch_add(edges, std::memory_order_relaxed);
  update_dirty_items_.fetch_add(dirty_items, std::memory_order_relaxed);
  update_shards_swapped_.fetch_add(shards_swapped,
                                   std::memory_order_relaxed);
  last_update_ms_.store(wall_ms, std::memory_order_relaxed);
}

void ServeStats::RecordDeadlineExceeded() {
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
}

void ServeStats::RecordRateLimited() {
  rate_limited_.fetch_add(1, std::memory_order_relaxed);
}

void ServeStats::RecordShed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
}

void ServeStats::SetClientsTracked(uint64_t n) {
  clients_tracked_.store(n, std::memory_order_relaxed);
}

void ServeStats::RegisterMetrics(MetricsRegistry* registry) {
  const auto counter = [](const std::atomic<uint64_t>* v) {
    return [v] {
      return static_cast<double>(v->load(std::memory_order_relaxed));
    };
  };
  registry->RegisterCallback(
      "tcf_connections_accepted_total", "Network connections accepted.",
      MetricsRegistry::CallbackKind::kCounter, counter(&connections_opened_));
  registry->RegisterCallback(
      "tcf_connections_active", "Currently open network connections.",
      MetricsRegistry::CallbackKind::kGauge, [this] {
        const uint64_t opened =
            connections_opened_.load(std::memory_order_relaxed);
        const uint64_t closed =
            connections_closed_.load(std::memory_order_relaxed);
        return static_cast<double>(opened - std::min(opened, closed));
      });
  registry->RegisterCallback(
      "tcf_connections_peak", "High-water mark of active connections.",
      MetricsRegistry::CallbackKind::kGauge, counter(&connections_peak_));
  registry->RegisterCallback(
      "tcf_bytes_in_total", "Request bytes read off sockets.",
      MetricsRegistry::CallbackKind::kCounter, counter(&bytes_in_));
  registry->RegisterCallback(
      "tcf_bytes_out_total", "Response bytes written to sockets.",
      MetricsRegistry::CallbackKind::kCounter, counter(&bytes_out_));
  registry->RegisterCallback(
      "tcf_batches_total", "BATCH requests executed.",
      MetricsRegistry::CallbackKind::kCounter, counter(&batches_));
  registry->RegisterCallback(
      "tcf_batch_queries_total", "Query lines carried inside batches.",
      MetricsRegistry::CallbackKind::kCounter, counter(&batch_queries_));
  registry->RegisterCallback(
      "tcf_reloads_total", "Snapshot reloads completed.",
      MetricsRegistry::CallbackKind::kCounter, counter(&reloads_));
  registry->RegisterCallback(
      "tcf_last_reload_ms", "Wall time of the most recent reload, ms.",
      MetricsRegistry::CallbackKind::kGauge, [this] {
        return last_reload_ms_.load(std::memory_order_relaxed);
      });
  registry->RegisterCallback(
      "tcf_updates_total", "Streaming-update flushes accepted.",
      MetricsRegistry::CallbackKind::kCounter, counter(&updates_));
  registry->RegisterCallback(
      "tcf_update_txs_total", "Transactions applied by streaming updates.",
      MetricsRegistry::CallbackKind::kCounter, counter(&update_txs_));
  registry->RegisterCallback(
      "tcf_update_edges_total", "Edges applied by streaming updates.",
      MetricsRegistry::CallbackKind::kCounter, counter(&update_edges_));
  registry->RegisterCallback(
      "tcf_update_dirty_items_total",
      "Items dirtied by streaming updates (cache-invalidation scope).",
      MetricsRegistry::CallbackKind::kCounter,
      counter(&update_dirty_items_));
  registry->RegisterCallback(
      "tcf_update_shards_swapped_total",
      "Shard snapshots rolled by streaming updates.",
      MetricsRegistry::CallbackKind::kCounter,
      counter(&update_shards_swapped_));
  registry->RegisterCallback(
      "tcf_last_update_ms",
      "Enqueue-to-swap wall time of the most recent update, ms.",
      MetricsRegistry::CallbackKind::kGauge, [this] {
        return last_update_ms_.load(std::memory_order_relaxed);
      });
  registry->RegisterCallback(
      "tcf_deadline_exceeded_total",
      "Queries that expired mid-execution (ERR DeadlineExceeded).",
      MetricsRegistry::CallbackKind::kCounter,
      counter(&deadline_exceeded_));
  registry->RegisterCallback(
      "tcf_rate_limited_total",
      "Requests refused by the per-client token bucket.",
      MetricsRegistry::CallbackKind::kCounter, counter(&rate_limited_));
  registry->RegisterCallback(
      "tcf_shed_total", "Requests dropped by queue-depth load shedding.",
      MetricsRegistry::CallbackKind::kCounter, counter(&shed_));
  registry->RegisterCallback(
      "tcf_clients_tracked",
      "Per-client accounting records currently held in the LRU.",
      MetricsRegistry::CallbackKind::kGauge, counter(&clients_tracked_));
}

void ServeStats::Reset() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.latencies_us.clear();
    stripe.trusses = 0;
  }
  wall_.Reset();
}

ServeReport ServeStats::Report(const ResultCacheStats& cache) const {
  ServeReport report;
  report.cache = cache;
  report.wall_seconds = wall_.Seconds();
  const uint64_t opened = connections_opened_.load(std::memory_order_relaxed);
  const uint64_t closed = connections_closed_.load(std::memory_order_relaxed);
  report.connections_accepted = opened;
  report.connections_active = opened - std::min(opened, closed);
  report.connections_peak =
      connections_peak_.load(std::memory_order_relaxed);
  report.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  report.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  report.batches = batches_.load(std::memory_order_relaxed);
  report.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  report.batch_max_depth =
      batch_max_depth_.load(std::memory_order_relaxed);
  report.reloads = reloads_.load(std::memory_order_relaxed);
  report.last_reload_ms = last_reload_ms_.load(std::memory_order_relaxed);
  report.updates = updates_.load(std::memory_order_relaxed);
  report.update_txs = update_txs_.load(std::memory_order_relaxed);
  report.update_edges = update_edges_.load(std::memory_order_relaxed);
  report.update_dirty_items =
      update_dirty_items_.load(std::memory_order_relaxed);
  report.update_shards_swapped =
      update_shards_swapped_.load(std::memory_order_relaxed);
  report.last_update_ms = last_update_ms_.load(std::memory_order_relaxed);
  report.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  report.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  report.shed = shed_.load(std::memory_order_relaxed);
  report.clients_tracked = clients_tracked_.load(std::memory_order_relaxed);

  std::vector<double> all;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    all.insert(all.end(), stripe.latencies_us.begin(),
               stripe.latencies_us.end());
    report.trusses_returned += stripe.trusses;
  }
  report.queries = all.size();
  if (report.wall_seconds > 0) {
    report.qps = static_cast<double>(report.queries) / report.wall_seconds;
  }
  if (all.empty()) return report;

  std::sort(all.begin(), all.end());
  double sum = 0;
  for (double v : all) sum += v;
  report.mean_us = sum / static_cast<double>(all.size());
  report.p50_us = Percentile(all, 0.50);
  report.p90_us = Percentile(all, 0.90);
  report.p99_us = Percentile(all, 0.99);
  report.max_us = all.back();
  return report;
}

}  // namespace tcf
