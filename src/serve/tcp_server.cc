#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "core/tc_tree_io.h"
#include "util/string_util.h"

namespace tcf {
namespace {

/// A peer that streams bytes without ever sending a newline is buffering
/// garbage, not speaking the protocol; cap what we will hold for it.
constexpr size_t kMaxRequestLine = size_t{1} << 20;  // 1 MiB

/// Writes all of `data`, riding out short writes. MSG_NOSIGNAL so a
/// vanished peer surfaces as EPIPE instead of killing the process.
bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(QueryService& service, const TcpServerOptions& options)
    : service_(service),
      options_(options),
      pool_(options.num_threads == 0 ? 1 : options.num_threads) {}

TcpServer::~TcpServer() { Shutdown(); }

Status TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad IPv4 bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s = Status::IOError(
        StrFormat("bind %s:%u: %s", options_.bind_address.c_str(),
                  options_.port, std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const Status s =
        Status::IOError(StrFormat("listen: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  // Read back the kernel's port choice (options_.port may have been 0).
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    const Status s =
        Status::IOError(StrFormat("getsockname: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(bound.sin_port);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Wake the accept thread: shutdown(2) makes the blocked accept(2)
  // return immediately (EINVAL) without racing on the fd number the way
  // a bare close would.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Kick every connected client off its blocking read; handlers observe
  // EOF, send nothing further, and unwind. Done under the lock so we
  // only touch sockets that are still registered (handlers deregister
  // *before* closing, so no fd here can have been reused).
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  pool_.Wait();
}

void TcpServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient resource exhaustion (fd limits, memory) must not kill
      // the accept loop for good — back off briefly and retry.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listening socket is gone; nothing left to accept
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      open_fds_.insert(fd);
    }
    service_.stats().RecordConnectionOpened();
    pool_.Submit([this, fd] { HandleConnection(fd); });
  }
}

void TcpServer::HandleConnection(int fd) {
  std::string pending;
  char buf[4096];
  bool quit = false;

  while (!quit) {
    // Drain complete lines already buffered before reading more.
    size_t newline;
    while (!quit && (newline = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);

      auto request = ParseRequest(line);
      std::string response;
      if (!request.ok()) {
        response = EncodeErrHeader(request.status());
        response += '\n';
      } else {
        response = HandleRequest(*request, &quit);
      }
      service_.stats().RecordNetworkBytes(line.size() + 1, response.size());
      if (!SendAll(fd, response)) {
        quit = true;  // peer vanished mid-response
      }
    }
    if (quit) break;

    if (pending.size() > kMaxRequestLine) {
      SendAll(fd, EncodeErrHeader(Status::InvalidArgument(
                      "request line exceeds 1 MiB")) +
                      "\n");
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or Shutdown()'s shutdown(2)
    pending.append(buf, static_cast<size_t>(n));
  }

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    open_fds_.erase(fd);
  }
  ::close(fd);
  service_.stats().RecordConnectionClosed();
}

std::string TcpServer::HandleRequest(const Request& request, bool* quit) {
  std::string response;
  switch (request.kind) {
    case Request::Kind::kPing:
      response = EncodeOkHeader("PONG", 0);
      response += '\n';
      return response;

    case Request::Kind::kQuit:
      *quit = true;
      response = EncodeOkHeader("BYE", 0);
      response += '\n';
      return response;

    case Request::Kind::kStats: {
      const std::vector<std::string> lines = EncodeStats(service_.Report());
      response = EncodeOkHeader("STATS", lines.size());
      response += '\n';
      for (const std::string& l : lines) {
        response += l;
        response += '\n';
      }
      return response;
    }

    case Request::Kind::kReload: {
      if (!options_.allow_reload) {
        response = EncodeErrHeader(
            Status::Unimplemented("RELOAD is disabled on this server"));
        response += '\n';
        return response;
      }
      auto tree = LoadTcTreeFromFile(request.reload_path);
      if (!tree.ok()) {
        response = EncodeErrHeader(tree.status());
        response += '\n';
        return response;
      }
      const size_t nodes = tree->num_nodes();
      // The epoch-checked SwapSnapshot path: in-flight queries finish on
      // the old tree and their results are dropped, not cached.
      service_.SwapSnapshot(std::move(*tree));
      response = EncodeOkHeader("RELOADED", 1);
      response += '\n';
      response += StrFormat("nodes %zu\n", nodes);
      return response;
    }

    case Request::Kind::kQuery: {
      auto query = service_.ParseQueryLine(request.query_line);
      if (!query.ok()) {
        response = EncodeErrHeader(query.status());
        response += '\n';
        return response;
      }
      const QueryService::Result result = service_.Execute(*query);
      response = EncodeOkHeader("TRUSSES", result->trusses.size());
      response += '\n';
      for (const PatternTruss& truss : result->trusses) {
        response += EncodeTruss(service_.dictionary(), truss);
        response += '\n';
      }
      return response;
    }
  }
  response = EncodeErrHeader(Status::Internal("unhandled request kind"));
  response += '\n';
  return response;
}

}  // namespace tcf
