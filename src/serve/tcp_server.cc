#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/tc_tree_io.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tcf {
namespace {

/// A peer that streams bytes without ever sending a newline is buffering
/// garbage, not speaking the protocol; cap what we will hold for it.
constexpr size_t kMaxRequestLine = size_t{1} << 20;  // 1 MiB

/// Cap on the bytes one BATCH body may accumulate before execution —
/// n query lines bounded individually by kMaxRequestLine could still
/// add up to gigabytes; real query lines are tens of bytes.
constexpr size_t kMaxBatchBytes = size_t{16} << 20;  // 16 MiB

/// Most bytes drained from one socket per readiness event. A peer that
/// streams nonstop still yields the loop to its neighbours; level-
/// triggered epoll re-reports the leftover immediately.
constexpr size_t kMaxReadPerEvent = size_t{256} << 10;

/// Client records older than this cap get evicted least-recently-seen
/// first — an abuser rotating source ports (or a NAT pool) cannot grow
/// the map unboundedly, and a client idle long enough to be evicted
/// just starts over with a full burst budget.
constexpr size_t kMaxClientRecords = 4096;

/// Writes 1 to an eventfd, riding out EINTR. Used for worker-completion
/// and shutdown wakeups; the counter semantics coalesce any number of
/// signals into one epoll event.
void SignalEventFd(int fd) {
  const uint64_t one = 1;
  while (::write(fd, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
}

/// The peer's IP as text — the rate-limit key. A v4-mapped IPv6 address
/// (what a v4 client looks like through a dual-stack socket) is
/// normalized to its dotted-quad form, so the same client hits the same
/// record whichever family carried the connection.
std::string PeerIpOf(const sockaddr_storage& ss) {
  char buf[INET6_ADDRSTRLEN] = {0};
  if (ss.ss_family == AF_INET) {
    const auto& a = reinterpret_cast<const sockaddr_in&>(ss);
    ::inet_ntop(AF_INET, &a.sin_addr, buf, sizeof(buf));
  } else if (ss.ss_family == AF_INET6) {
    const auto& a = reinterpret_cast<const sockaddr_in6&>(ss);
    if (IN6_IS_ADDR_V4MAPPED(&a.sin6_addr)) {
      in_addr v4;
      std::memcpy(&v4, &a.sin6_addr.s6_addr[12], sizeof(v4));
      ::inet_ntop(AF_INET, &v4, buf, sizeof(buf));
    } else {
      ::inet_ntop(AF_INET6, &a.sin6_addr, buf, sizeof(buf));
    }
  }
  return buf[0] != '\0' ? std::string(buf) : std::string("unknown");
}

/// Health and teardown verbs stay exempt from rate limiting: an
/// operator must be able to PING and scrape STATS/METRICS from an
/// overloaded server — that is when the numbers matter most.
bool RateLimitExempt(Request::Kind kind) {
  return kind == Request::Kind::kPing || kind == Request::Kind::kQuit ||
         kind == Request::Kind::kStats || kind == Request::Kind::kMetrics;
}

}  // namespace

TcpServer::TcpServer(QueryBackend& service, const TcpServerOptions& options)
    : service_(service),
      options_(options),
      parse_us_(service.metrics().GetHistogram(
          "tcf_query_stage_parse_us",
          "Wall microseconds spent in the parse stage")),
      serialize_us_(service.metrics().GetHistogram(
          "tcf_query_stage_serialize_us",
          "Wall microseconds spent in the serialize stage")),
      pending_units_gauge_(service.metrics().GetGauge(
          "tcf_server_pending_units",
          "Request units queued or executing in the TCP server "
          "(the load-shedding pressure signal)")),
      pool_(options.num_threads == 0 ? 1 : options.num_threads) {}

TcpServer::~TcpServer() { Shutdown(); }

Status TcpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already started");
  }
  // Family from the literal: an IPv6 literal (`::`, `::1`) gets a
  // dual-stack socket — IPV6_V6ONLY off, so `::` also accepts IPv4
  // peers through v4-mapped addresses; an IPv4 literal keeps the plain
  // AF_INET socket (a v6 socket cannot bind 127.0.0.1).
  in6_addr v6{};
  in_addr v4{};
  const bool is_v6 =
      ::inet_pton(AF_INET6, options_.bind_address.c_str(), &v6) == 1;
  const bool is_v4 =
      !is_v6 && ::inet_pton(AF_INET, options_.bind_address.c_str(), &v4) == 1;
  if (!is_v6 && !is_v4) {
    return Status::InvalidArgument(
        "bad bind address (need an IPv4 or IPv6 literal): " +
        options_.bind_address);
  }

  listen_fd_ = ::socket(is_v6 ? AF_INET6 : AF_INET,
                        SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  auto fail = [this](Status s) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    epoll_fd_ = -1;
    if (wake_fd_ >= 0) ::close(wake_fd_);
    wake_fd_ = -1;
    return s;
  };

  sockaddr_storage addr{};
  socklen_t addr_len;
  if (is_v6) {
    const int off = 0;
    ::setsockopt(listen_fd_, IPPROTO_IPV6, IPV6_V6ONLY, &off, sizeof(off));
    auto& a6 = reinterpret_cast<sockaddr_in6&>(addr);
    a6.sin6_family = AF_INET6;
    a6.sin6_port = htons(options_.port);
    a6.sin6_addr = v6;
    addr_len = sizeof(sockaddr_in6);
  } else {
    auto& a4 = reinterpret_cast<sockaddr_in&>(addr);
    a4.sin_family = AF_INET;
    a4.sin_port = htons(options_.port);
    a4.sin_addr = v4;
    addr_len = sizeof(sockaddr_in);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), addr_len) < 0) {
    return fail(Status::IOError(
        StrFormat("bind %s:%u: %s", options_.bind_address.c_str(),
                  options_.port, std::strerror(errno))));
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    return fail(
        Status::IOError(StrFormat("listen: %s", std::strerror(errno))));
  }
  // Read back the kernel's port choice (options_.port may have been 0).
  sockaddr_storage bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return fail(
        Status::IOError(StrFormat("getsockname: %s", std::strerror(errno))));
  }
  port_ = ntohs(bound.ss_family == AF_INET6
                    ? reinterpret_cast<sockaddr_in6&>(bound).sin6_port
                    : reinterpret_cast<sockaddr_in&>(bound).sin_port);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    return fail(
        Status::IOError(StrFormat("epoll_create1: %s", std::strerror(errno))));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return fail(
        Status::IOError(StrFormat("eventfd: %s", std::strerror(errno))));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return fail(
        Status::IOError(StrFormat("epoll_ctl: %s", std::strerror(errno))));
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return fail(
        Status::IOError(StrFormat("epoll_ctl: %s", std::strerror(errno))));
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void TcpServer::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  SignalEventFd(wake_fd_);
  if (loop_thread_.joinable()) loop_thread_.join();

  // In-flight executions still hold Conn pointers; let them finish
  // before tearing the connections down. Their completion signals go
  // unanswered — the responses are undeliverable anyway.
  pool_.Wait();
  for (auto& [fd, conn] : conns_) {
    // The registry gauge outlives this server: units dying with their
    // connection must leave it at zero, not a phantom backlog.
    DropQueued(*conn);
    ::close(fd);
    service_.stats().RecordConnectionClosed();
  }
  conns_.clear();
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_fds_.clear();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(epoll_fd_);
  epoll_fd_ = -1;
  ::close(wake_fd_);
  wake_fd_ = -1;
}

void TcpServer::EventLoop() {
  std::vector<epoll_event> events(512);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll set is gone; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      if (stopping_.load(std::memory_order_acquire)) return;
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        ProcessCompletions();
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      // Look the connection up by fd for every sub-step: any step may
      // close it, and a stale entry in this event batch must not touch
      // freed memory.
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        auto it = conns_.find(fd);
        if (it != conns_.end()) ReadReady(*it->second);
      }
      if (events[i].events & EPOLLOUT) {
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        Conn& conn = *it->second;
        FlushWrites(conn);
        if ((conn.quitting || conn.read_closed) && Drained(conn)) {
          CloseConn(conn);
        }
      }
    }
  }
}

void TcpServer::AcceptReady() {
  while (true) {
    sockaddr_storage peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd = ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                             &peer_len, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Resource exhaustion (fd limits, memory): take the listen fd
      // out of the epoll set instead of letting the level-triggered
      // event spin (or stall) the loop that every established
      // connection shares. CloseConn re-arms it when an fd frees up.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        accept_paused_ = true;
        return;
      }
      return;  // listening socket is gone
    }
    if (options_.max_connections > 0 &&
        conns_.size() >= options_.max_connections) {
      TCF_LOG(Warn) << "refusing connection: " << conns_.size()
                    << " open connections at the --max-connections cap";
      ::close(fd);  // over the cap: refuse by immediate close
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->peer_ip = PeerIpOf(peer);
    conn->interest = EPOLLIN;
    conns_.emplace(fd, std::move(conn));
    service_.stats().RecordConnectionOpened();
    TCF_LOG(Debug) << "accepted connection fd=" << fd << " ("
                   << conns_.size() << " open)";
  }
}

void TcpServer::ReadReady(Conn& conn) {
  // A stale readiness event may land after backpressure dropped
  // EPOLLIN in this same epoll batch; honor the pause.
  if (conn.paused_read) return;
  char buf[65536];
  size_t drained = 0;
  while (drained < kMaxReadPerEvent) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      drained += static_cast<size_t>(n);
      // Input after QUIT (or after a protocol violation) is discarded:
      // the connection is already on its way out.
      if (!conn.quitting) conn.in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      conn.read_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.read_closed = true;  // RST or worse: no more requests
    break;
  }

  FrameRequests(conn);
  if (!conn.quitting && conn.in.size() > kMaxRequestLine) {
    // No newline within the cap: this peer is not speaking the protocol.
    TCF_LOG(Warn) << "fd=" << conn.fd
                  << ": request line exceeds 1 MiB without a newline; "
                     "dropping the connection";
    conn.out += EncodeErrHeader(
        Status::InvalidArgument("request line exceeds 1 MiB"));
    conn.out += '\n';
    conn.quitting = true;
    conn.in.clear();
    DropQueued(conn);
  }
  DispatchIfReady(conn);
  FlushWrites(conn);
  if ((conn.quitting || conn.read_closed) && !conn.busy && Drained(conn)) {
    CloseConn(conn);
  }
}

void TcpServer::FrameRequests(Conn& conn) {
  // Scan with an offset and erase the consumed prefix once: a burst of
  // thousands of short lines must not memmove the buffer per line on
  // the loop thread every connection shares.
  size_t pos = 0;
  size_t newline;
  while (!conn.quitting &&
         (newline = conn.in.find('\n', pos)) != std::string::npos) {
    FrameLine(conn, conn.in.substr(pos, newline - pos));
    pos = newline + 1;
  }
  // FrameLine may have cleared the buffer (protocol violation).
  conn.in.erase(0, std::min(pos, conn.in.size()));
}

void TcpServer::FrameLine(Conn& conn, std::string line) {
  if (conn.batch_expect > 0) {
    // Inside a BATCH body: collect raw query lines until the announced
    // count is reached, then frame the whole batch as one unit.
    conn.batch_bytes += line.size() + 1;
    conn.batch_lines.push_back(std::move(line));
    if (conn.batch_bytes > kMaxBatchBytes) {
      TCF_LOG(Warn) << "fd=" << conn.fd << ": BATCH body exceeds "
                    << (kMaxBatchBytes >> 20)
                    << " MiB; dropping the connection";
      conn.out += EncodeErrHeader(Status::InvalidArgument(
          StrFormat("BATCH body exceeds %zu MiB", kMaxBatchBytes >> 20)));
      conn.out += '\n';
      conn.quitting = true;
      conn.in.clear();
      DropQueued(conn);
      conn.batch_expect = 0;
      conn.batch_lines.clear();
      return;
    }
    if (--conn.batch_expect == 0) {
      Unit unit;
      unit.request = conn.batch_header;
      unit.batch_lines = std::move(conn.batch_lines);
      unit.wire_bytes = conn.batch_header_bytes + conn.batch_bytes;
      conn.batch_lines.clear();
      conn.batch_bytes = 0;
      conn.queued.push_back(std::move(unit));
      pending_units_.fetch_add(1, std::memory_order_relaxed);
      pending_units_gauge_.Add(1);
    }
    return;
  }

  auto parsed = ParseRequest(line);
  if (parsed.ok() && (parsed->kind == Request::Kind::kBatch ||
                      parsed->kind == Request::Kind::kUpdate)) {
    // The header alone is not executable; arm the body collector. A
    // malformed header (BATCH 0, BATCH x, over-limit n) falls through
    // as a unit and is answered with ERR — it consumes no body lines.
    // UPDATE bodies are framed identically (the announced count of raw
    // lines follows); only execution differs.
    conn.batch_header = *parsed;
    conn.batch_header_bytes = line.size() + 1;
    conn.batch_expect = parsed->kind == Request::Kind::kBatch
                            ? parsed->batch_size
                            : parsed->update_size;
    conn.batch_lines.clear();
    conn.batch_bytes = 0;
    return;
  }
  Unit unit;
  unit.request = std::move(parsed);
  unit.wire_bytes = line.size() + 1;
  conn.queued.push_back(std::move(unit));
  pending_units_.fetch_add(1, std::memory_order_relaxed);
  pending_units_gauge_.Add(1);
}

void TcpServer::DropQueued(Conn& conn) {
  if (conn.queued.empty()) return;
  pending_units_.fetch_sub(conn.queued.size(), std::memory_order_relaxed);
  pending_units_gauge_.Add(-static_cast<double>(conn.queued.size()));
  conn.queued.clear();
}

Deadline TcpServer::EffectiveDeadline(const Request& request) const {
  const uint64_t ms = request.deadline_ms != 0 ? request.deadline_ms
                                               : options_.default_deadline_ms;
  return Deadline::AfterMillis(ms);
}

bool TcpServer::ShedColdWalk(size_t num_items) const {
  if (options_.shed_watermark == 0) return false;
  const size_t pending = pending_units_.load(std::memory_order_relaxed);
  if (pending >= 2 * options_.shed_watermark) return true;
  return pending >= options_.shed_watermark &&
         num_items >= kShedLargeQueryItems;
}

bool TcpServer::AdmitClient(const std::string& peer_ip, double cost,
                            double* retry_after_ms) {
  if (options_.rate_limit_qps <= 0) return true;
  const double qps = options_.rate_limit_qps;
  const double burst = options_.rate_limit_burst > 0
                           ? options_.rate_limit_burst
                           : std::max(1.0, qps);
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(clients_mu_);
  auto [it, inserted] = clients_.try_emplace(peer_ip);
  ClientRecord& rec = it->second;
  if (inserted) {
    rec.tokens = burst;
    rec.last_refill = now;
    if (clients_.size() > kMaxClientRecords) {
      // Decay: drop the least-recently-seen record. The scan is linear
      // but only ever runs once per insertion past the cap.
      auto oldest = clients_.end();
      for (auto c = clients_.begin(); c != clients_.end(); ++c) {
        if (c == it) continue;  // never evict the record being admitted
        if (oldest == clients_.end() ||
            c->second.last_seen < oldest->second.last_seen) {
          oldest = c;
        }
      }
      if (oldest != clients_.end()) clients_.erase(oldest);
    }
    service_.stats().SetClientsTracked(clients_.size());
  }
  const double elapsed =
      std::chrono::duration<double>(now - rec.last_refill).count();
  rec.tokens = std::min(burst, rec.tokens + elapsed * qps);
  rec.last_refill = now;
  rec.last_seen = now;
  if (rec.tokens >= cost) {
    rec.tokens -= cost;
    ++rec.admitted;
    return true;
  }
  ++rec.limited;
  *retry_after_ms = (cost - rec.tokens) / qps * 1000.0;
  return false;
}

void TcpServer::DispatchIfReady(Conn& conn) {
  if (conn.busy || conn.queued.empty() ||
      stopping_.load(std::memory_order_acquire)) {
    return;
  }
  // Backpressure: while the peer is not consuming responses, don't
  // compute more for it. Queued units wait; FlushWrites re-dispatches
  // once the buffer drains. (0 = unlimited.)
  if (options_.max_write_buffer > 0 &&
      conn.out.size() >= options_.max_write_buffer) {
    return;
  }
  // Take the next run of framed requests: one task executes them in
  // order, and at most one task per connection is ever in flight (the
  // ordering guarantee). The run length is capped so a pipelined flood
  // framed in one gulp cannot materialize its entire output in a
  // single run and sail past the write-buffer gate above — the
  // remainder waits for the next completion, which re-checks the gate.
  constexpr size_t kMaxUnitsPerRun = 64;
  auto units = std::make_shared<std::vector<Unit>>();
  units->reserve(std::min(conn.queued.size(), kMaxUnitsPerRun));
  while (!conn.queued.empty() && units->size() < kMaxUnitsPerRun) {
    units->push_back(std::move(conn.queued.front()));
    conn.queued.pop_front();
  }
  conn.busy = true;
  Conn* c = &conn;
  pool_.Submit([this, c, units] { ExecuteUnits(c, std::move(*units)); });
}

void TcpServer::ExecuteUnits(Conn* conn, std::vector<Unit> units) {
  std::string responses;
  bool quit = false;
  for (const Unit& unit : units) {
    pending_units_.fetch_sub(1, std::memory_order_relaxed);
    pending_units_gauge_.Add(-1);
    if (quit) continue;  // pipelined requests after QUIT are not answered
    std::string response;
    double retry_after_ms = 0;
    if (!unit.request.ok()) {
      response = EncodeErrHeader(unit.request.status());
      response += '\n';
    } else if (!RateLimitExempt(unit.request->kind) &&
               !AdmitClient(
                   conn->peer_ip,
                   static_cast<double>(
                       std::max<size_t>(1, unit.batch_lines.size())),
                   &retry_after_ms)) {
      // Over the per-client budget (a BATCH/UPDATE body costs its line
      // count, so batching cannot launder a flood). The hint tells a
      // well-behaved client exactly how long to back off.
      service_.stats().RecordRateLimited();
      response = EncodeErrHeader(Status::RateLimited(
          StrFormat("client %s over %g req/s; retry in %.0f ms",
                    conn->peer_ip.c_str(), options_.rate_limit_qps,
                    retry_after_ms)));
      response += '\n';
    } else if (unit.request->kind == Request::Kind::kBatch) {
      response = HandleBatch(*unit.request, unit.batch_lines);
    } else if (unit.request->kind == Request::Kind::kUpdate) {
      response = HandleUpdate(unit.batch_lines);
    } else {
      response = HandleRequest(*unit.request, &quit);
    }
    service_.stats().RecordNetworkBytes(unit.wire_bytes, response.size());
    responses += response;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->outbox += responses;
    conn->worker_quit = conn->worker_quit || quit;
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_fds_.push_back(conn->fd);
  }
  // After this signal the loop may clear `busy` and close the
  // connection, so `conn` must not be touched again.
  SignalEventFd(wake_fd_);
}

void TcpServer::ProcessCompletions() {
  std::vector<int> done;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done.swap(done_fds_);
  }
  for (const int fd : done) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;  // closed during shutdown sweep
    Conn& conn = *it->second;
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      conn.out += conn.outbox;
      conn.outbox.clear();
      conn.quitting = conn.quitting || conn.worker_quit;
    }
    conn.busy = false;
    if (conn.quitting) {
      DropQueued(conn);  // QUIT discards the rest of the pipeline
    } else {
      DispatchIfReady(conn);
    }
    FlushWrites(conn);
    if ((conn.quitting || conn.read_closed) && Drained(conn)) {
      CloseConn(conn);
    }
  }
}

void TcpServer::FlushWrites(Conn& conn) {
  while (!conn.out.empty()) {
    // Simulated EAGAIN (docs/robustness.md): bytes stay buffered, the
    // backpressure machinery below runs, EPOLLOUT re-arms, and the next
    // writable event retries — the stream is never corrupted. (An
    // `always` trigger would starve writes forever; chaos tests use
    // prob:/times:.)
    if (TCF_FAILPOINT("net.write.eagain")) break;
    const ssize_t n =
        ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer vanished mid-response: everything pending is undeliverable.
    conn.out.clear();
    conn.read_closed = true;
    break;
  }
  // Backpressure state machine: pause reads above the high-water mark
  // and resume them below half of it. Dispatch must be re-attempted on
  // *every* drain below the mark — not just on unpause — because the
  // gate in DispatchIfReady may have deferred units while the buffer
  // was momentarily full even though reads never paused.
  if (options_.max_write_buffer > 0 &&
      conn.out.size() >= options_.max_write_buffer) {
    conn.paused_read = true;
  } else {
    if (conn.paused_read &&
        conn.out.size() < options_.max_write_buffer / 2) {
      conn.paused_read = false;
      FrameRequests(conn);  // input framed but parked while paused
    }
    DispatchIfReady(conn);
  }
  UpdateInterest(conn);
}

void TcpServer::UpdateInterest(Conn& conn) {
  const uint32_t want =
      (conn.paused_read ? 0u : static_cast<uint32_t>(EPOLLIN)) |
      (conn.out.empty() ? 0u : static_cast<uint32_t>(EPOLLOUT));
  if (want == conn.interest) return;
  conn.interest = want;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

bool TcpServer::Drained(const Conn& conn) const {
  return !conn.busy && conn.queued.empty() && conn.out.empty();
}

void TcpServer::CloseConn(Conn& conn) {
  const int fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(fd);  // destroys conn; the reference is dead now
  service_.stats().RecordConnectionClosed();
  TCF_LOG(Debug) << "closed connection fd=" << fd << " (" << conns_.size()
                 << " open)";
  if (accept_paused_) {
    // An fd just freed up; resume accepting.
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
      accept_paused_ = false;
    }
  }
}

std::string TcpServer::HandleRequest(const Request& request, bool* quit) {
  std::string response;
  switch (request.kind) {
    case Request::Kind::kPing:
      response = EncodeOkHeader("PONG", 0);
      response += '\n';
      return response;

    case Request::Kind::kQuit:
      *quit = true;
      response = EncodeOkHeader("BYE", 0);
      response += '\n';
      return response;

    case Request::Kind::kStats: {
      const std::vector<std::string> lines = EncodeStats(service_.Report());
      response = EncodeOkHeader("STATS", lines.size());
      response += '\n';
      for (const std::string& l : lines) {
        response += l;
        response += '\n';
      }
      return response;
    }

    case Request::Kind::kReload: {
      if (!options_.allow_reload) {
        response = EncodeErrHeader(
            Status::Unimplemented("RELOAD is disabled on this server"));
        response += '\n';
        return response;
      }
      if (TCF_FAILPOINT("reload.load")) {
        response = EncodeErrHeader(Status::IOError(
            "injected fault (failpoint reload.load): index load failed"));
        response += '\n';
        return response;
      }
      WallTimer reload_timer;
      // The backend sniffs the format: a .tcfi file installs as a
      // zero-copy mapped snapshot (O(1) validation, no parse), TCFT
      // goes through the streaming loader. Either way the swap is the
      // epoch-checked path: in-flight queries finish on the old
      // snapshot and their results are dropped, not cached.
      auto reloaded = service_.ReloadFromFile(request.reload_path);
      if (!reloaded.ok()) {
        TCF_LOG(Warn) << "RELOAD " << request.reload_path
                      << " failed: " << reloaded.status().ToString();
        response = EncodeErrHeader(reloaded.status());
        response += '\n';
        return response;
      }
      const size_t nodes = *reloaded;
      const double reload_ms = reload_timer.Millis();
      service_.stats().RecordReload(reload_ms);
      TCF_LOG(Info) << "RELOAD " << request.reload_path << ": " << nodes
                    << " nodes swapped in over live traffic in " << reload_ms
                    << " ms";
      response = EncodeOkHeader("RELOADED", 1);
      response += '\n';
      response += StrFormat("nodes %zu\n", nodes);
      return response;
    }

    case Request::Kind::kMetrics: {
      // One Render, split into payload lines: the exposition is the
      // payload, so `curl`-less scrapers (tcf client --metrics, the
      // smoke script) reassemble the exact Prometheus text by joining.
      std::vector<std::string> lines =
          Split(service_.metrics().Render(), '\n');
      // Render's text ends with '\n'; Split keeps the empty tail.
      while (!lines.empty() && lines.back().empty()) lines.pop_back();
      response = EncodeOkHeader("METRICS", lines.size());
      response += '\n';
      for (const std::string& l : lines) {
        response += l;
        response += '\n';
      }
      return response;
    }

    case Request::Kind::kExplain:
      return HandleExplain(request);

    case Request::Kind::kBatch:
    case Request::Kind::kUpdate:
      break;  // framed by the transport; never reaches here

    case Request::Kind::kQuery:
      return HandleQuery(request);
  }
  response = EncodeErrHeader(Status::Internal("unhandled request kind"));
  response += '\n';
  return response;
}

std::string TcpServer::HandleQuery(const Request& request) {
  const bool traced = service_.tracing_enabled();
  std::string response;

  WallTimer parse_timer;
  auto query = service_.ParseQueryLine(request.query_line);
  if (traced) parse_us_.Record(parse_timer.Micros());
  if (!query.ok()) {
    response = EncodeErrHeader(query.status());
    response += '\n';
    return response;
  }

  query->deadline = EffectiveDeadline(request);
  // Graceful degradation under overload: a shed query runs with an
  // already-spent budget, so an exact cache hit still serves (the hit
  // path never consults the deadline) while a cold walk unwinds
  // immediately — "serve what is cheap, refuse what is not".
  const bool shed = ShedColdWalk(query->items.size());
  if (shed) query->deadline = Deadline::Expired();

  const QueryBackend::Result result = service_.Execute(*query);
  if (result->deadline_exceeded) {
    if (shed) {
      service_.stats().RecordShed();
      response = EncodeErrHeader(Status::RateLimited(StrFormat(
          "overloaded (%zu pending units >= watermark %zu): cold query "
          "walk shed; retry later or narrow the query",
          pending_units_.load(std::memory_order_relaxed),
          options_.shed_watermark)));
    } else {
      response = EncodeErrHeader(Status::DeadlineExceeded(StrFormat(
          "deadline of %llu ms exceeded after %llu visited nodes "
          "(%zu trusses of partial work discarded)",
          static_cast<unsigned long long>(
              request.deadline_ms != 0 ? request.deadline_ms
                                       : options_.default_deadline_ms),
          static_cast<unsigned long long>(result->visited_nodes),
          result->trusses.size())));
    }
    response += '\n';
    return response;
  }

  WallTimer serialize_timer;
  response = EncodeOkHeader("TRUSSES", result->trusses.size());
  response += '\n';
  for (const PatternTruss& truss : result->trusses) {
    response += EncodeTruss(service_.dictionary(), truss);
    response += '\n';
  }
  if (traced) serialize_us_.Record(serialize_timer.Micros());
  return response;
}

std::string TcpServer::HandleExplain(const Request& request) {
  // EXPLAIN answers the query for real — same cache, same counters, same
  // snapshot as the query it replays — but returns the trace instead of
  // the trusses. The serialize stage is measured on the TRUSSES payload
  // the query *would* have sent, so the breakdown is honest about what
  // the un-explained query costs end to end.
  std::string response;
  QueryTrace trace;
  trace.sample_cpu = true;  // one deliberate request; pay for CPU columns
  WallTimer total_timer;

  {
    StageSpan parse(&trace, QueryStage::kParse);
    auto query = service_.ParseQueryLine(request.query_line);
    parse.Stop();
    if (!query.ok()) {
      response = EncodeErrHeader(query.status());
      response += '\n';
      return response;
    }

    // EXPLAIN honours the deadline like the query it replays, but is
    // never shed: it is a deliberate diagnostic, and its trace is how
    // an operator sees *why* things are slow.
    query->deadline = EffectiveDeadline(request);
    const QueryBackend::Result result = service_.Execute(*query, &trace);
    if (result->deadline_exceeded) {
      response = EncodeErrHeader(Status::DeadlineExceeded(StrFormat(
          "deadline of %llu ms exceeded after %llu visited nodes",
          static_cast<unsigned long long>(
              request.deadline_ms != 0 ? request.deadline_ms
                                       : options_.default_deadline_ms),
          static_cast<unsigned long long>(result->visited_nodes))));
      response += '\n';
      return response;
    }

    StageSpan serialize(&trace, QueryStage::kSerialize);
    std::string discarded = EncodeOkHeader("TRUSSES", result->trusses.size());
    discarded += '\n';
    for (const PatternTruss& truss : result->trusses) {
      discarded += EncodeTruss(service_.dictionary(), truss);
      discarded += '\n';
    }
    serialize.Stop();
    if (service_.tracing_enabled()) {
      parse_us_.Record(
          trace.stage_wall_us[static_cast<size_t>(QueryStage::kParse)]);
      serialize_us_.Record(
          trace.stage_wall_us[static_cast<size_t>(QueryStage::kSerialize)]);
    }
  }
  // All five stages are in; the total now covers parse through
  // serialize, which is what the within-10% stage-sum invariant in
  // run_checks.sh is checked against.
  trace.total_us = total_timer.Micros();

  const std::vector<std::string> lines = EncodeExplain(trace);
  response = EncodeOkHeader("EXPLAIN", lines.size());
  response += '\n';
  for (const std::string& l : lines) {
    response += l;
    response += '\n';
  }
  return response;
}

std::string TcpServer::HandleUpdate(const std::vector<std::string>& lines) {
  std::string response;
  if (options_.updater == nullptr) {
    response = EncodeErrHeader(Status::Unimplemented(
        "UPDATE is disabled on this server (started without a streaming "
        "updater — serve from a network, not a prebuilt index)"));
    response += '\n';
    return response;
  }
  // Parse the whole body before touching the updater: a mutation batch
  // is atomic, so one malformed line rejects the frame with the index
  // untouched.
  NetworkUpdate update;
  for (size_t i = 0; i < lines.size(); ++i) {
    const Status s =
        ParseUpdateLine(service_.dictionary(), lines[i], &update);
    if (!s.ok()) {
      const std::string msg =
          StrFormat("update line %zu: %s", i + 1, s.message().c_str());
      response = EncodeErrHeader(s.code() == Status::Code::kNotFound
                                     ? Status::NotFound(msg)
                                     : Status::InvalidArgument(msg));
      response += '\n';
      return response;
    }
  }

  if (TCF_FAILPOINT("update.apply")) {
    response = EncodeErrHeader(Status::Internal(
        "injected fault (failpoint update.apply): update apply failed"));
    response += '\n';
    return response;
  }

  WallTimer update_timer;
  auto outcome = options_.updater->Apply(std::move(update));
  if (!outcome.ok()) {
    TCF_LOG(Warn) << "UPDATE rejected: " << outcome.status().ToString();
    response = EncodeErrHeader(outcome.status());
    response += '\n';
    return response;
  }
  service_.stats().RecordUpdate(outcome->transactions, outcome->edges,
                                outcome->dirty_items,
                                outcome->shards_swapped, outcome->apply_ms);
  TCF_LOG(Info) << "UPDATE: " << outcome->transactions << " txs, "
                << outcome->edges << " edges -> " << outcome->dirty_items
                << " dirty items, " << outcome->changed_roots
                << " changed roots, " << outcome->shards_swapped
                << " snapshots swapped in " << update_timer.Millis()
                << " ms";

  const std::vector<std::string> payload = EncodeUpdateOutcome(*outcome);
  response = EncodeOkHeader("UPDATED", payload.size());
  response += '\n';
  for (const std::string& l : payload) {
    response += l;
    response += '\n';
  }
  return response;
}

std::string TcpServer::HandleBatch(const Request& header,
                                   const std::vector<std::string>& lines) {
  // Parse every member first so the valid ones fan out over the service
  // pool together; each slot is answered independently, in order, and a
  // bad line never aborts its neighbours.
  std::vector<Status> slot_errors(lines.size(), Status::OK());
  std::vector<ptrdiff_t> slot_query(lines.size(), -1);
  std::vector<ServeQuery> queries;
  queries.reserve(lines.size());
  // Every slot inherits the batch header's deadline: the budget bounds
  // the caller-visible request, and the slots run concurrently against
  // the same wall clock.
  const Deadline deadline = EffectiveDeadline(header);
  for (size_t i = 0; i < lines.size(); ++i) {
    auto query = service_.ParseQueryLine(lines[i]);
    if (query.ok()) {
      query->deadline = deadline;
      slot_query[i] = static_cast<ptrdiff_t>(queries.size());
      queries.push_back(std::move(*query));
    } else {
      slot_errors[i] = query.status();
    }
  }
  const std::vector<QueryBackend::Result> results =
      service_.ExecuteBatch(queries);
  service_.stats().RecordBatch(lines.size());

  std::string response;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (slot_query[i] < 0) {
      response += EncodeErrHeader(slot_errors[i]);
      response += '\n';
      continue;
    }
    const QueryBackend::Result& result =
        results[static_cast<size_t>(slot_query[i])];
    if (result->deadline_exceeded) {
      // Slots that beat the deadline still answer normally; only the
      // ones caught by the expiry degrade, each with a clean ERR.
      response += EncodeErrHeader(Status::DeadlineExceeded(StrFormat(
          "batch deadline of %llu ms exceeded in slot %zu",
          static_cast<unsigned long long>(
              header.deadline_ms != 0 ? header.deadline_ms
                                      : options_.default_deadline_ms),
          i + 1)));
      response += '\n';
      continue;
    }
    response += EncodeOkHeader("TRUSSES", result->trusses.size());
    response += '\n';
    for (const PatternTruss& truss : result->trusses) {
      response += EncodeTruss(service_.dictionary(), truss);
      response += '\n';
    }
  }
  return response;
}

}  // namespace tcf
