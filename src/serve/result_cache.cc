#include "serve/result_cache.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <utility>

namespace tcf {
namespace {

/// Smallest power of two >= n (n >= 1).
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

size_t ResultCache::HashKey(const std::vector<ItemId>& items,
                            CohesionValue alpha) {
  // FNV-1a over the item ids, then the alpha — mirrors Itemset::Hash but
  // folds the threshold in so (q, α) pairs spread across shards.
  size_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (ItemId item : items) mix(item);
  mix(static_cast<uint64_t>(alpha));
  return h;
}

ResultCache::ResultCache(const ResultCacheOptions& options) {
  const size_t shards =
      RoundUpPow2(options.num_shards == 0 ? 1 : options.num_shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_bytes_ = options.capacity_bytes / shards;
  admission_bytes_per_node_ = options.admission_bytes_per_node;
  max_covers_ = std::min<size_t>(options.max_covers, 64);
  subset_enum_limit_ = std::min<size_t>(options.subset_enum_limit, 16);
}

ResultCache::Value ResultCache::Lookup(const Itemset& q, CohesionValue alpha) {
  // Hash once; KeyRef probes the map without copying the item vector.
  const size_t hash = HashKey(q.items(), alpha);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(KeyRef{&q.items(), alpha, hash});
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  // Move to the front of the LRU list (most recently used).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

bool ResultCache::Contains(const Itemset& q, CohesionValue alpha) const {
  const size_t hash = HashKey(q.items(), alpha);
  const Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.index.find(KeyRef{&q.items(), alpha, hash}) !=
         shard.index.end();
}

std::vector<ResultCache::CachedCover> ResultCache::LookupSubsets(
    const Itemset& q, CohesionValue alpha, const void* snapshot) {
  std::vector<CachedCover> candidates;
  if (shard_capacity_bytes_ == 0 || max_covers_ == 0 || snapshot == nullptr ||
      q.size() < 2) {
    return candidates;
  }
  const std::vector<ItemId>& items = q.items();
  if (items.size() <= subset_enum_limit_) {
    // Small query: point-probe every proper non-empty subset. A mask
    // selects a subsequence of the sorted items, so each probe key is
    // already canonical.
    const uint64_t full = (uint64_t{1} << items.size()) - 1;
    std::vector<ItemId> subset;
    for (uint64_t mask = 1; mask < full; ++mask) {
      subset.clear();
      for (size_t i = 0; i < items.size(); ++i) {
        if (mask & (uint64_t{1} << i)) subset.push_back(items[i]);
      }
      const size_t hash = HashKey(subset, alpha);
      Shard& shard = ShardFor(hash);
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.index.find(KeyRef{&subset, alpha, hash});
      if (it == shard.index.end()) continue;
      if (it->second->snapshot.get() != snapshot) continue;
      candidates.push_back({Itemset(subset), it->second->value});
    }
  } else {
    for (const auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      std::lock_guard<std::mutex> lock(shard.mu);
      auto consider = [&](const Entry& entry) {
        if (entry.key.alpha != alpha) return;
        if (entry.snapshot.get() != snapshot) return;
        if (entry.key.items.size() >= items.size()) return;
        if (!std::includes(items.begin(), items.end(),
                           entry.key.items.begin(),
                           entry.key.items.end())) {
          return;
        }
        candidates.push_back({Itemset(entry.key.items), entry.value});
      };
      if (items.size() >= shard.lru.size()) {
        // Wildcard-sized queries ('0;*' expands to the whole
        // dictionary): scanning the resident entries — bounded by
        // capacity — beats walking a posting list per query item.
        for (const Entry& entry : shard.lru) consider(entry);
      } else {
        // Any cached subset must contain one of q's items, so the
        // union of q's posting lists covers every candidate.
        std::unordered_set<const Entry*> seen;
        for (ItemId item : items) {
          const auto posting = shard.by_item.find(item);
          if (posting == shard.by_item.end()) continue;
          for (const Entry* entry : posting->second) {
            if (seen.insert(entry).second) consider(*entry);
          }
        }
      }
    }
  }
  std::vector<CachedCover> plan = PlanCovers(std::move(candidates));
  // Promote only the covers actually returned: splicing every candidate
  // would keep perpetually refreshing subsumed entries the planner
  // always drops, aging genuinely hot entries out instead of them.
  for (const CachedCover& cover : plan) {
    const size_t hash = HashKey(cover.itemset.items(), alpha);
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it =
        shard.index.find(KeyRef{&cover.itemset.items(), alpha, hash});
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }
  }
  if (!plan.empty()) {
    composed_queries_.fetch_add(1, std::memory_order_relaxed);
    partial_hits_.fetch_add(plan.size(), std::memory_order_relaxed);
  }
  return plan;
}

std::vector<ResultCache::CachedCover> ResultCache::PlanCovers(
    std::vector<CachedCover> candidates) const {
  // Largest first: a big cover settles more patterns per composition
  // probe, and makes the subsumption filter below effective.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const CachedCover& a, const CachedCover& b) {
                     return a.itemset.size() > b.itemset.size();
                   });
  std::vector<CachedCover> plan;
  for (CachedCover& candidate : candidates) {
    if (plan.size() >= max_covers_) break;
    bool subsumed = false;
    for (const CachedCover& chosen : plan) {
      if (candidate.itemset.IsSubsetOf(chosen.itemset)) {
        subsumed = true;  // every pattern ⊆ candidate is ⊆ chosen already
        break;
      }
    }
    if (!subsumed) plan.push_back(std::move(candidate));
  }
  return plan;
}

void ResultCache::Insert(const Itemset& q, CohesionValue alpha, Value value) {
  Insert(q, alpha, std::move(value), epoch());
}

void ResultCache::UnindexEntry(Shard& shard, std::list<Entry>::iterator it) {
  shard.index.erase(it->Ref());
  for (ItemId item : it->key.items) {
    const auto posting = shard.by_item.find(item);
    if (posting == shard.by_item.end()) continue;
    auto& list = posting->second;
    const auto where = std::find(list.begin(), list.end(), &*it);
    if (where != list.end()) {
      *where = list.back();
      list.pop_back();
    }
    if (list.empty()) shard.by_item.erase(posting);
  }
}

void ResultCache::Insert(const Itemset& q, CohesionValue alpha, Value value,
                         uint64_t epoch_seen,
                         std::shared_ptr<const void> snapshot,
                         bool speculative) {
  if (shard_capacity_bytes_ == 0 || value == nullptr) return;
  const size_t cost = CostOf(q, *value);
  const size_t hash = HashKey(q.items(), alpha);
  Shard& shard = ShardFor(hash);
  // Cost-aware admission, speculative entries only: a derived result
  // that pins many bytes but would save little work (visited_nodes)
  // must not evict denser entries someone actually asked for. Demanded
  // answers are exempt — their rebuild cost scales with their own
  // payload. An entry larger than the whole shard is never admissible
  // regardless (it would only evict everything and then be evicted
  // itself on the next insert).
  const bool too_expensive =
      speculative && admission_bytes_per_node_ != 0 &&
      cost > admission_bytes_per_node_ * (value->visited_nodes + 1);
  if (too_expensive || cost > shard_capacity_bytes_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.admission_rejects;
    return;
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  if (epoch_.load(std::memory_order_acquire) != epoch_seen) return;
  auto it = shard.index.find(KeyRef{&q.items(), alpha, hash});
  if (it != shard.index.end()) {
    // Same key already resident (e.g. two threads raced on the same
    // miss): drop the old entry and fall through to the normal insert
    // path, so a larger replacement still respects the capacity bound.
    // Unlink from the maps first — the index key views the list entry.
    const auto stale = it->second;
    shard.bytes -= stale->cost;
    UnindexEntry(shard, stale);
    shard.lru.erase(stale);
  }
  while (shard.bytes + cost > shard_capacity_bytes_ && !shard.lru.empty()) {
    const auto victim = std::prev(shard.lru.end());
    shard.bytes -= victim->cost;
    UnindexEntry(shard, victim);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{Key{q.items(), alpha, hash}, std::move(value),
                             cost, std::move(snapshot)});
  Entry& entry = shard.lru.front();
  shard.index.emplace(entry.Ref(), shard.lru.begin());
  for (ItemId item : entry.key.items) {
    shard.by_item[item].push_back(&entry);
  }
  shard.bytes += cost;
  ++shard.inserts;
}

void ResultCache::Invalidate() {
  // Bump the epoch before clearing: an epoch-checked Insert either sees
  // the new epoch and drops its value, or completed earlier and its
  // entry is cleared below.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.clear();  // before the list: its keys view list entries
    shard->by_item.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

void ResultCache::InvalidateItems(const std::vector<ItemId>& dirty_items,
                                  const void* old_snapshot,
                                  std::shared_ptr<const void> new_snapshot) {
  // Same ordering discipline as Invalidate(): bump the epoch first so a
  // racing epoch-checked Insert of a pre-update result is dropped
  // rather than cached against the new tree.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Victims via the inverted index: exactly the resident entries
    // whose pattern mentions a dirty item.
    std::unordered_set<const Entry*> victims;
    for (ItemId item : dirty_items) {
      const auto it = shard->by_item.find(item);
      if (it == shard->by_item.end()) continue;
      victims.insert(it->second.begin(), it->second.end());
    }
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (victims.count(&*it) != 0) {
        shard->bytes -= it->cost;
        UnindexEntry(*shard, it);
        it = shard->lru.erase(it);
        continue;
      }
      if (it->snapshot != nullptr && it->snapshot.get() == old_snapshot) {
        it->snapshot = new_snapshot;
      }
      ++it;
    }
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.capacity_bytes = shard_capacity_bytes_ * shards_.size();
  stats.invalidations = epoch();
  stats.partial_hits = partial_hits_.load(std::memory_order_relaxed);
  stats.composed_queries = composed_queries_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.inserts += shard->inserts;
    stats.evictions += shard->evictions;
    stats.admission_rejects += shard->admission_rejects;
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

size_t ResultCache::CostOf(const Itemset& q, const TcTreeQueryResult& result) {
  // Entry + its share of the list, map, and inverted-index nodes (key
  // stored once; the map is keyed by a view into the entry).
  constexpr size_t kNodeOverhead = 6 * sizeof(void*) + sizeof(KeyRef);
  size_t bytes = sizeof(Entry) + kNodeOverhead +
                 q.size() * (sizeof(ItemId) + sizeof(Entry*)) +
                 result.trusses.capacity() * sizeof(PatternTruss);
  for (const PatternTruss& t : result.trusses) {
    bytes += t.pattern.size() * sizeof(ItemId);
    bytes += t.edges.capacity() * sizeof(Edge);
    bytes += t.vertices.capacity() * sizeof(VertexId);
    bytes += t.frequencies.capacity() * sizeof(double);
    bytes += t.edge_cohesions.capacity() * sizeof(CohesionValue);
  }
  return bytes;
}

}  // namespace tcf
