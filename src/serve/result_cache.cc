#include "serve/result_cache.h"

#include <atomic>
#include <utility>

namespace tcf {
namespace {

/// Smallest power of two >= n (n >= 1).
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

size_t ResultCache::HashKey(const std::vector<ItemId>& items,
                            CohesionValue alpha) {
  // FNV-1a over the item ids, then the alpha — mirrors Itemset::Hash but
  // folds the threshold in so (q, α) pairs spread across shards.
  size_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (ItemId item : items) mix(item);
  mix(static_cast<uint64_t>(alpha));
  return h;
}

ResultCache::ResultCache(const ResultCacheOptions& options) {
  const size_t shards =
      RoundUpPow2(options.num_shards == 0 ? 1 : options.num_shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_bytes_ = options.capacity_bytes / shards;
}

ResultCache::Value ResultCache::Lookup(const Itemset& q, CohesionValue alpha) {
  // Hash once; KeyRef probes the map without copying the item vector.
  const size_t hash = HashKey(q.items(), alpha);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(KeyRef{&q.items(), alpha, hash});
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  // Move to the front of the LRU list (most recently used).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ResultCache::Insert(const Itemset& q, CohesionValue alpha, Value value) {
  Insert(q, alpha, std::move(value), epoch());
}

void ResultCache::Insert(const Itemset& q, CohesionValue alpha, Value value,
                         uint64_t epoch_seen) {
  if (shard_capacity_bytes_ == 0 || value == nullptr) return;
  const size_t cost = CostOf(q, *value);
  if (cost > shard_capacity_bytes_) return;  // never admissible

  const size_t hash = HashKey(q.items(), alpha);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (epoch_.load(std::memory_order_acquire) != epoch_seen) return;
  auto it = shard.index.find(KeyRef{&q.items(), alpha, hash});
  if (it != shard.index.end()) {
    // Same key already resident (e.g. two threads raced on the same
    // miss): drop the old entry and fall through to the normal insert
    // path, so a larger replacement still respects the capacity bound.
    // Unlink from the map first — its key views the list entry.
    const auto stale = it->second;
    shard.bytes -= stale->cost;
    shard.index.erase(it);
    shard.lru.erase(stale);
  }
  while (shard.bytes + cost > shard_capacity_bytes_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.cost;
    shard.index.erase(victim.Ref());
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(
      Entry{Key{q.items(), alpha, hash}, std::move(value), cost});
  shard.index.emplace(shard.lru.front().Ref(), shard.lru.begin());
  shard.bytes += cost;
  ++shard.inserts;
}

void ResultCache::Invalidate() {
  // Bump the epoch before clearing: an epoch-checked Insert either sees
  // the new epoch and drops its value, or completed earlier and its
  // entry is cleared below.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.clear();  // before the list: its keys view list entries
    shard->lru.clear();
    shard->bytes = 0;
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.capacity_bytes = shard_capacity_bytes_ * shards_.size();
  stats.invalidations = epoch();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.inserts += shard->inserts;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

size_t ResultCache::CostOf(const Itemset& q, const TcTreeQueryResult& result) {
  // Entry + its share of the list and map nodes (key stored once; the
  // map is keyed by a view into the entry).
  constexpr size_t kNodeOverhead = 6 * sizeof(void*) + sizeof(KeyRef);
  size_t bytes = sizeof(Entry) + kNodeOverhead + q.size() * sizeof(ItemId) +
                 result.trusses.capacity() * sizeof(PatternTruss);
  for (const PatternTruss& t : result.trusses) {
    bytes += t.pattern.size() * sizeof(ItemId);
    bytes += t.edges.capacity() * sizeof(Edge);
    bytes += t.vertices.capacity() * sizeof(VertexId);
    bytes += t.frequencies.capacity() * sizeof(double);
    bytes += t.edge_cohesions.capacity() * sizeof(CohesionValue);
  }
  return bytes;
}

}  // namespace tcf
