#ifndef TCF_SERVE_SHARD_ROUTER_H_
#define TCF_SERVE_SHARD_ROUTER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/partition.h"
#include "core/tc_tree.h"
#include "core/tc_tree_snapshot.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/query_backend.h"
#include "serve/query_service.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "tx/item_dictionary.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tcf {

/// \brief Scatter-gather query service over N item-space shards
/// (ROADMAP "Distributed serving", in-process step).
///
/// Construction splits one built TC-Tree with PartitionTcTree: every
/// pattern lands on the shard of its minimum item, so per-shard answer
/// sets are disjoint and a query only ever needs the shards that own
/// one of its items. Each shard is a full QueryService — its own
/// epoch-safe snapshot, snapshot-tagged result cache (1/N of the
/// configured bytes), compose gate, metrics registry, and slow log —
/// so a shard's reload invalidates that shard's cache only.
///
/// Execute scatters the *whole* query to every relevant shard (the
/// shard tree restricts the walk to owned patterns naturally) and
/// k-way-merges the per-shard trusses on (pattern length,
/// lexicographic items) — exactly the single-tree BFS retrieval order,
/// because BFS retrieval at each depth is lexicographic in the
/// patterns (children commit item-ascending per parent; parents at the
/// same depth already order lexicographically by induction). The
/// merged answer is field-for-field identical to the unsharded one
/// (property-tested in tests/shard_router_test.cc); with `max_results`
/// set, the merged truss list and retrieved_nodes stay exact while
/// visited/pruned counters may exceed the single-tree walk's (each
/// shard walks until its own budget's worth of answers).
///
/// SwapSnapshot is a *rolling* reload: the new tree is partitioned and
/// shards swap one at a time — every shard not mid-swap keeps serving
/// its current snapshot and cache, so there is no global pause and no
/// answer ever mixes two snapshots (per-shard answers are composed
/// only per query, and each shard's own epoch check already rejects
/// stale inserts).
class ShardedQueryService : public QueryBackend {
 public:
  /// Partitions `tree` into `num_shards` shards. `options` configures
  /// the router (batch pool width, tracing, slow log) and each shard
  /// (cache bytes are divided by the shard count; per-shard batch
  /// pools collapse to one thread — the router's pool provides the
  /// fan-out). A null `partitioner` uses HashShardPartitioner.
  ShardedQueryService(TcTree tree, ItemDictionary dictionary,
                      size_t num_shards,
                      const QueryServiceOptions& options = {},
                      std::unique_ptr<ShardPartitioner> partitioner = nullptr);

  /// Serves pre-partitioned shard snapshots (one per shard, ascending
  /// shard id — e.g. mmap'ed TCFI slice files written by
  /// SaveTcfiShardSlices). `parts` must be non-empty and partitioned by
  /// `partitioner` (null = HashShardPartitioner, the slice writer's
  /// choice), or routing would miss patterns.
  ShardedQueryService(std::vector<TcTreeSnapshot> parts,
                      ItemDictionary dictionary,
                      const QueryServiceOptions& options = {},
                      std::unique_ptr<ShardPartitioner> partitioner = nullptr);

  /// Opens the `num_shards` TCFI slice files `TcfiSlicePath(base, s,
  /// num_shards)` as zero-copy mapped shard snapshots. Every slice must
  /// map cleanly and carry matching shard metadata (shard_id == s,
  /// num_shards) or the whole open fails — no half-sharded service.
  static StatusOr<std::unique_ptr<ShardedQueryService>> OpenSlices(
      const std::string& base, ItemDictionary dictionary, size_t num_shards,
      const QueryServiceOptions& options = {});

  ShardedQueryService(const ShardedQueryService&) = delete;
  ShardedQueryService& operator=(const ShardedQueryService&) = delete;

  using QueryBackend::Execute;
  Result Execute(const ServeQuery& query, QueryTrace* trace) override;
  std::vector<Result> ExecuteBatch(
      const std::vector<ServeQuery>& queries) override;

  StatusOr<ServeQuery> ParseQueryLine(std::string_view line) const override {
    return ParseServeQuery(dictionary_, line);
  }

  /// Rolling reload: partitions `tree` and swaps shard snapshots one at
  /// a time (ascending shard id). Shards not mid-swap keep serving.
  void SwapSnapshot(TcTree tree) override;

  /// RELOAD from disk. When all N slice files `TcfiSlicePath(path, s,
  /// N)` are present, each shard swaps its own mapped slice (rolling,
  /// zero-copy, no partitioning work) — every slice is mapped and
  /// validated *before* the first swap, so a corrupt slice never leaves
  /// the service half-rolled. Otherwise falls back to the base
  /// behavior: load/materialize the whole tree at `path` and do a
  /// rolling partitioned swap.
  StatusOr<size_t> ReloadFromFile(const std::string& path) override;

  /// Swaps a single shard's snapshot (`shard_tree` must be that shard's
  /// partition — built by PartitionTcTree or BuildShardTree with the
  /// same partitioner). Only this shard's cache is invalidated; the
  /// other shards' cached answers keep serving. This is the unit the
  /// rolling SwapSnapshot iterates, exposed for per-shard operational
  /// reloads and the reload-survival tests.
  void SwapShardSnapshot(size_t shard, TcTree shard_tree);
  /// Same, for a pre-built snapshot (e.g. a mapped TCFI slice).
  void SwapShardSnapshot(size_t shard, TcTreeSnapshot shard_snapshot);

  /// Shard-aware incremental swap (core/tc_tree_update.h): partitions
  /// the updated tree, then rolls *only* the shards owning a changed
  /// layer-1 root — every pattern lives on the shard of its minimum
  /// item, so a shard owning no changed root has a provably identical
  /// partition and keeps both its snapshot and its whole cache. Swapped
  /// shards invalidate just the entries intersecting `dirty_items`
  /// (QueryService::ApplyUpdatedSnapshot). Returns the number of shards
  /// swapped.
  size_t ApplyUpdatedSnapshot(TcTree tree,
                              const std::vector<ItemId>& changed_roots,
                              const std::vector<ItemId>& dirty_items) override;

  /// Streaming updates applied so far (ApplyUpdatedSnapshot calls).
  uint64_t updates_applied() const {
    return updates_applied_.load(std::memory_order_relaxed);
  }

  const ItemDictionary& dictionary() const override { return dictionary_; }
  size_t num_threads() const override { return pool_.num_threads(); }

  ServeStats& stats() override { return stats_; }
  /// Field-wise sum over the per-shard caches.
  ResultCacheStats cache_stats() const override;
  ServeReport Report() const override;

  MetricsRegistry& metrics() override { return metrics_; }
  const SlowQueryLog& slow_log() const override { return slow_log_; }
  bool tracing_enabled() const override { return options_.tracing; }

  size_t num_shards() const { return shards_.size(); }
  /// The shard owning `item`'s layer-1 subtree.
  size_t ShardOfItem(ItemId item) const {
    return partitioner_->ShardOf(item, shards_.size());
  }
  const ShardPartitioner& partitioner() const { return *partitioner_; }
  /// The underlying per-shard service (tests, diagnostics).
  const QueryService& shard(size_t s) const { return *shards_[s]; }

 private:
  /// Everything the delegating constructors must hand the primary one
  /// in a single argument: the partitioner is *used* to cut the tree
  /// and then *owned* by the service, and bundling both into one value
  /// keeps that free of argument-evaluation-order traps.
  struct ShardedInit {
    std::vector<TcTreeSnapshot> parts;
    std::unique_ptr<ShardPartitioner> partitioner;
  };
  static ShardedInit MakeInit(TcTree tree, size_t num_shards,
                              std::unique_ptr<ShardPartitioner> partitioner);

  ShardedQueryService(ShardedInit init, ItemDictionary dictionary,
                      const QueryServiceOptions& options);

  /// Ascending ids of the shards that can own part of `items`'s answer
  /// (the shard of some item of the query). Empty queries probe shard 0
  /// so Execute still returns the usual empty result.
  std::vector<size_t> RelevantShards(const Itemset& items) const;

  /// Merges disjoint per-shard results into single-tree BFS retrieval
  /// order; truncates at `max_results` when nonzero. Checks `deadline`
  /// every kDeadlineCheckStride merged trusses (the k-way merge is the
  /// router's own long loop); a part that already expired, or an expiry
  /// mid-merge, marks the merged result `deadline_exceeded`.
  static std::shared_ptr<TcTreeQueryResult> MergeShardResults(
      const std::vector<Result>& parts, size_t max_results,
      const Deadline& deadline);

  /// Trace sampling, as in QueryService::ShouldTrace.
  bool ShouldTrace();

  std::string RenderQueryLine(const ServeQuery& query) const;
  void RecordTrace(const ServeQuery& query, const QueryTrace& trace);

  // The registry is declared first (destroyed last): its callback
  // instruments read the shard caches and stats at scrape time.
  MetricsRegistry metrics_;
  SlowQueryLog slow_log_;
  ItemDictionary dictionary_;
  QueryServiceOptions options_;
  std::unique_ptr<ShardPartitioner> partitioner_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<QueryService>> shards_;
  ServeStats stats_;
  std::atomic<uint64_t> trace_clock_{0};      // ShouldTrace clock
  std::atomic<uint64_t> updates_applied_{0};  // incremental swaps so far

  // Router-level instruments (the shard services keep their own
  // registries; TcpServer scrapes only this one).
  Counter& queries_total_;
  Counter& shard_queries_total_;
  Counter& slow_queries_total_;
  Histogram& query_total_us_;
  Histogram& fanout_;
  Gauge& shard_reload_ms_;
  std::vector<Counter*> per_shard_queries_;
  std::vector<Gauge*> per_shard_reload_ms_;
  std::array<Histogram*, kNumQueryStages> stage_us_;
};

}  // namespace tcf

#endif  // TCF_SERVE_SHARD_ROUTER_H_
