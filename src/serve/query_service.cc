#include "serve/query_service.h"

#include <latch>
#include <utility>

#include "core/cohesion.h"
#include "core/tc_tree_io.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tcf {

QueryService::QueryService(TcTree tree, ItemDictionary dictionary,
                           const QueryServiceOptions& options)
    : dictionary_(std::move(dictionary)),
      options_(options),
      pool_(options.num_threads == 0 ? HardwareThreads()
                                     : options.num_threads),
      snapshot_(std::make_shared<const TcTree>(std::move(tree))) {
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(ResultCacheOptions{
        .capacity_bytes = options_.cache_bytes,
        .num_shards = options_.cache_shards});
  }
}

StatusOr<std::unique_ptr<QueryService>> QueryService::Open(
    const std::string& index_path, ItemDictionary dictionary,
    const QueryServiceOptions& options) {
  auto tree = LoadTcTreeFromFile(index_path);
  if (!tree.ok()) return tree.status();
  return std::make_unique<QueryService>(std::move(*tree),
                                        std::move(dictionary), options);
}

std::shared_ptr<const TcTree> QueryService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

QueryService::Result QueryService::Execute(const ServeQuery& query) {
  WallTimer timer;
  const CohesionValue alpha_q = QuantizeAlpha(query.alpha);

  if (cache_) {
    if (Result hit = cache_->Lookup(query.items, alpha_q)) {
      stats_.RecordQuery(timer.Micros(), hit->trusses.size());
      return hit;
    }
  }

  // Read the cache epoch *before* picking the snapshot: if a swap lands
  // while we compute, the epoch check in Insert drops our stale answer.
  const uint64_t epoch = cache_ ? cache_->epoch() : 0;
  const std::shared_ptr<const TcTree> tree = snapshot();
  auto result = std::make_shared<TcTreeQueryResult>(
      QueryTcTree(*tree, query.items, query.alpha, options_.query_options));
  if (cache_) cache_->Insert(query.items, alpha_q, result, epoch);

  stats_.RecordQuery(timer.Micros(), result->trusses.size());
  return result;
}

std::vector<QueryService::Result> QueryService::ExecuteBatch(
    const std::vector<ServeQuery>& queries) {
  std::vector<Result> results(queries.size());
  if (queries.empty()) return results;

  // Chunked fan-out with a per-batch latch (not ThreadPool::Wait, which
  // would also wait on tasks of concurrently running batches).
  const size_t chunks =
      std::min(queries.size(), pool_.num_threads() * 4);
  const size_t step = (queries.size() + chunks - 1) / chunks;
  const size_t num_tasks = (queries.size() + step - 1) / step;
  std::latch done(static_cast<ptrdiff_t>(num_tasks));
  for (size_t begin = 0; begin < queries.size(); begin += step) {
    const size_t end = std::min(queries.size(), begin + step);
    pool_.Submit([this, &queries, &results, &done, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        results[i] = Execute(queries[i]);
      }
      done.count_down();
    });
  }
  done.wait();
  return results;
}

StatusOr<ServeQuery> ParseServeQuery(const ItemDictionary& dictionary,
                                     std::string_view line) {
  const std::string_view trimmed = Trim(line);
  const auto semi = trimmed.find(';');
  if (semi == std::string_view::npos) {
    return Status::InvalidArgument(
        StrFormat("workload line '%.*s' is not 'alpha;item,item,...'",
                  static_cast<int>(trimmed.size()), trimmed.data()));
  }
  auto alpha = ParseDouble(Trim(trimmed.substr(0, semi)));
  if (!alpha.ok()) return alpha.status();

  ServeQuery query;
  query.alpha = *alpha;
  const std::string_view items = Trim(trimmed.substr(semi + 1));
  if (items.empty() || items == "*") {
    std::vector<ItemId> all(dictionary.size());
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<ItemId>(i);
    }
    query.items = Itemset(std::move(all));
    return query;
  }
  std::vector<ItemId> ids;
  for (const std::string& name : Split(items, ',')) {
    auto id = dictionary.Find(Trim(name));
    if (!id.ok()) return id.status();
    ids.push_back(*id);
  }
  query.items = Itemset(std::move(ids));
  return query;
}

void QueryService::SwapSnapshot(TcTree tree) {
  auto fresh = std::make_shared<const TcTree>(std::move(tree));
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(fresh);
  }
  if (cache_) cache_->Invalidate();
}

}  // namespace tcf
