#include "serve/query_service.h"

#include <cmath>
#include <latch>
#include <utility>

#include "core/cohesion.h"
#include "core/tc_tree_io.h"
#include "core/tcfi_format.h"
#include "util/failpoint.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tcf {

QueryService::QueryService(TcTreeSnapshot snapshot, ItemDictionary dictionary,
                           const QueryServiceOptions& options)
    : slow_log_(options.tracing ? options.slow_query_us : 0,
                options.slow_log_capacity),
      dictionary_(std::move(dictionary)),
      options_(options),
      pool_(options.num_threads == 0 ? HardwareThreads()
                                     : options.num_threads),
      queries_total_(metrics_.GetCounter("tcf_queries_total",
                                         "Queries answered by Execute")),
      cache_hits_total_(metrics_.GetCounter(
          "tcf_query_cache_hits_total",
          "Queries answered from the exact-match result cache")),
      cache_misses_total_(metrics_.GetCounter(
          "tcf_query_cache_misses_total",
          "Queries that missed the exact-match result cache")),
      composed_total_(metrics_.GetCounter(
          "tcf_query_composed_total",
          "Misses answered by subset composition instead of a full walk")),
      covers_used_total_(metrics_.GetCounter(
          "tcf_query_covers_used_total",
          "Cached sub-pattern answers reused as composition covers")),
      nodes_visited_total_(metrics_.GetCounter(
          "tcf_query_nodes_visited_total",
          "TC-Tree nodes whose decomposition a query walk consulted")),
      prunes_total_(metrics_.GetCounter(
          "tcf_query_prunes_total",
          "Prop-5.2 subtree prunes taken by query walks")),
      slow_queries_total_(metrics_.GetCounter(
          "tcf_slow_queries_total",
          "Queries admitted to the slow-query ring")),
      query_total_us_(metrics_.GetHistogram(
          "tcf_query_total_us", "End-to-end Execute wall microseconds")),
      snapshot_(std::make_shared<const TcTreeSnapshot>(std::move(snapshot))) {
  for (size_t i = 0; i < kNumQueryStages; ++i) {
    const auto stage = static_cast<QueryStage>(i);
    stage_us_[i] = &metrics_.GetHistogram(
        StrFormat("tcf_query_stage_%.*s_us",
                  static_cast<int>(QueryStageName(stage).size()),
                  QueryStageName(stage).data()),
        std::string("Wall microseconds spent in the ") +
            std::string(QueryStageName(stage)) + " stage");
  }
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(ResultCacheOptions{
        .capacity_bytes = options_.cache_bytes,
        .num_shards = options_.cache_shards,
        .admission_bytes_per_node = options_.cache_admission_bytes_per_node});
    // Scrape-time cache residency and lifetime counters: the callbacks
    // take the cache's shard locks, a cost paid per scrape, never per
    // query. `this` outlives the registry's renders (the registry is a
    // member destroyed after the cache).
    metrics_.RegisterCallback(
        "tcf_cache_entries", "Resident result-cache entries",
        MetricsRegistry::CallbackKind::kGauge,
        [this] { return static_cast<double>(cache_->Stats().entries); });
    metrics_.RegisterCallback(
        "tcf_cache_bytes", "Resident result-cache bytes",
        MetricsRegistry::CallbackKind::kGauge,
        [this] { return static_cast<double>(cache_->Stats().bytes); });
    metrics_.RegisterCallback(
        "tcf_cache_evictions_total", "Result-cache entries evicted",
        MetricsRegistry::CallbackKind::kCounter,
        [this] { return static_cast<double>(cache_->Stats().evictions); });
    metrics_.RegisterCallback(
        "tcf_cache_partial_hits_total",
        "Cached sub-pattern answers reused as covers (cache view)",
        MetricsRegistry::CallbackKind::kCounter,
        [this] { return static_cast<double>(cache_->Stats().partial_hits); });
    metrics_.RegisterCallback(
        "tcf_cache_admission_rejects_total",
        "Inserts refused by cost-aware admission",
        MetricsRegistry::CallbackKind::kCounter, [this] {
          return static_cast<double>(cache_->Stats().admission_rejects);
        });
  }
  stats_.RegisterMetrics(&metrics_);
  metrics_.RegisterCallback(
      "tcf_walk_us_ewma",
      "EWMA of full-walk miss CPU microseconds (composition gate input)",
      MetricsRegistry::CallbackKind::kGauge,
      [this] { return walk_us_ewma_.load(std::memory_order_relaxed); });
  metrics_.RegisterCallback(
      "tcf_query_latency_p99_us",
      "p99 end-to-end query latency, interpolated from the "
      "tcf_query_total_us buckets (0 until a traced query lands)",
      MetricsRegistry::CallbackKind::kGauge,
      [this] { return HistogramQuantile(query_total_us_.Fold(), 0.99); });
}

StatusOr<std::unique_ptr<QueryService>> QueryService::Open(
    const std::string& index_path, ItemDictionary dictionary,
    const QueryServiceOptions& options) {
  if (LooksLikeTcfiFile(index_path)) {
    auto mapped = MapTcTree(index_path);
    if (!mapped.ok()) return mapped.status();
    return std::make_unique<QueryService>(TcTreeSnapshot(std::move(*mapped)),
                                          std::move(dictionary), options);
  }
  auto tree = LoadTcTreeFromFile(index_path);
  if (!tree.ok()) return tree.status();
  return std::make_unique<QueryService>(std::move(*tree),
                                        std::move(dictionary), options);
}

std::shared_ptr<const TcTreeSnapshot> QueryService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

bool QueryService::CanCompose(const Itemset& items) const {
  return options_.cache_composition && items.size() >= 2 &&
         options_.query_options.min_truss_edges == 0 &&
         options_.query_options.max_results == 0;
}

bool QueryService::ShouldCompose(const Itemset& items) const {
  return CanCompose(items) &&
         (options_.cache_compose_min_walk_us <= 0 ||
          walk_us_ewma_.load(std::memory_order_relaxed) >=
              options_.cache_compose_min_walk_us);
}

bool QueryService::ShouldSampleWalk() {
  // The gate floor being 0 means "always compose" — tests and smoke
  // checks rely on that being literal, so sampling is off too.
  if (options_.cache_compose_min_walk_us <= 0) return false;
  return composable_misses_.fetch_add(1, std::memory_order_relaxed) % 64 ==
         0;
}

bool QueryService::ShouldTrace() {
  if (!options_.tracing) return false;
  if (options_.trace_sample_every <= 1) return true;
  return trace_clock_.fetch_add(1, std::memory_order_relaxed) %
             options_.trace_sample_every ==
         0;
}

void QueryService::RecordWalkMicros(double micros) {
  double ewma = walk_us_ewma_.load(std::memory_order_relaxed);
  double next = ewma == 0 ? micros : 0.9 * ewma + 0.1 * micros;
  while (!walk_us_ewma_.compare_exchange_weak(
      ewma, next, std::memory_order_relaxed)) {
    next = ewma == 0 ? micros : 0.9 * ewma + 0.1 * micros;
  }
}

void QueryService::AdmitDerivedSubsets(
    const Itemset& items, CohesionValue alpha_q, const Result& result,
    uint64_t epoch_seen, const std::shared_ptr<const TcTreeSnapshot>& snap) {
  if (!options_.cache_admit_derived || !ShouldCompose(items) ||
      items.size() > 8) {
    return;
  }
  for (const Itemset& sub : items.AllSubsetsMinusOne()) {
    if (sub.empty() || cache_->Contains(sub, alpha_q)) continue;
    cache_->Insert(sub, alpha_q,
                   std::make_shared<TcTreeQueryResult>(
                       DeriveSubResult(*result, sub)),
                   epoch_seen, snap, /*speculative=*/true);
  }
}

std::string QueryService::RenderQueryLine(const ServeQuery& query) const {
  // Mirrors line_protocol's EncodeQueryLine (which lives above this
  // layer): %.17g keeps the alpha bit-exact, so pasting the logged line
  // into `EXPLAIN` replays the identical quantized query.
  std::string out = StrFormat("%.17g;", query.alpha);
  bool first = true;
  for (ItemId item : query.items.items()) {
    if (!first) out += ',';
    out += dictionary_.Name(item);
    first = false;
  }
  return out;
}

void QueryService::RecordTrace(const ServeQuery& query,
                               const QueryTrace& trace) {
  query_total_us_.Record(trace.total_us);
  // kParse/kSerialize belong to the transport; Execute's stages are the
  // middle three. Zero-duration stages that never ran stay out of their
  // histograms so the bucket counts mean "times this stage executed".
  for (const QueryStage stage :
       {QueryStage::kCacheProbe, QueryStage::kCompose, QueryStage::kWalk}) {
    const double us = trace.stage_wall_us[static_cast<size_t>(stage)];
    if (us > 0) stage_us_[static_cast<size_t>(stage)]->Record(us);
  }
  if (slow_log_.Qualifies(trace.total_us)) {
    slow_queries_total_.Increment();
    slow_log_.Record(RenderQueryLine(query), trace);
  }
}

QueryService::Result QueryService::Execute(const ServeQuery& query,
                                           QueryTrace* trace) {
  WallTimer timer;
  // Tracing selects between one shared code path with spans and the
  // span-free fast path: a stack-local trace when the option is on, the
  // caller's when one is passed (EXPLAIN), nullptr otherwise.
  QueryTrace local_trace;
  QueryTrace* t =
      trace != nullptr ? trace : (ShouldTrace() ? &local_trace : nullptr);
  const CohesionValue alpha_q = QuantizeAlpha(query.alpha);
  queries_total_.Increment();

  // Per-call traversal options: the service-wide knobs plus this
  // query's budget. The "walk.deadline" failpoint stamps an
  // already-expired budget so chaos tests exercise the genuine in-walk
  // cancellation path, not a shortcut.
  TcTreeQueryOptions walk_options = options_.query_options;
  walk_options.deadline = query.deadline;
  if (TCF_FAILPOINT("walk.deadline")) {
    walk_options.deadline = Deadline::Expired();
  }

  if (cache_) {
    Result hit;
    {
      StageSpan probe(t, QueryStage::kCacheProbe);
      hit = cache_->Lookup(query.items, alpha_q);
    }
    if (hit) {
      cache_hits_total_.Increment();
      const double us = timer.Micros();
      stats_.RecordQuery(us, hit->trusses.size());
      if (t != nullptr) {
        t->cache_hit = true;
        t->updates_applied = updates_applied();
        t->trusses = hit->trusses.size();
        t->total_us = us;
        RecordTrace(query, *t);
      }
      return hit;
    }
    cache_misses_total_.Increment();
  }

  // Read the cache epoch *before* picking the snapshot: if a swap lands
  // while we compute, the epoch check in Insert drops our stale answer.
  const uint64_t epoch = cache_ ? cache_->epoch() : 0;
  const std::shared_ptr<const TcTreeSnapshot> snap = snapshot();

  std::shared_ptr<TcTreeQueryResult> result;
  if (cache_ && ShouldCompose(query.items) && !ShouldSampleWalk()) {
    // Partial reuse: compose the answer from cached subset answers plus
    // a residual probe. Covers are tagged with the snapshot they were
    // computed from, so a swap racing this miss can at worst leave the
    // plan empty — never mix answers from two trees.
    StageSpan compose(t, QueryStage::kCompose);
    const std::vector<ResultCache::CachedCover> covers =
        cache_->LookupSubsets(query.items, alpha_q, snap.get());
    if (!covers.empty()) {
      std::vector<SubPatternCover> blocks;
      blocks.reserve(covers.size());
      for (const ResultCache::CachedCover& cover : covers) {
        blocks.push_back({&cover.itemset, cover.value.get()});
      }
      result = std::make_shared<TcTreeQueryResult>(
          snap->Compose(query.items, query.alpha, blocks, walk_options));
      composed_total_.Increment();
      covers_used_total_.Increment(covers.size());
      if (t != nullptr) {
        t->composed = true;
        t->covers_used = covers.size();
      }
    }
  }
  if (result == nullptr) {
    // A full walk: its cost feeds the work-aware gate, so partial reuse
    // engages exactly on the workloads where walks are expensive. CPU
    // time, not wall time — an oversubscribed worker pool would
    // otherwise inflate every sample by the timeslicing factor.
    StageSpan walk(t, QueryStage::kWalk);
    ThreadCpuTimer walk_timer;
    result = std::make_shared<TcTreeQueryResult>(
        snap->Query(query.items, query.alpha, walk_options));
    // A truncated walk would feed the composition gate a cost the full
    // walk never had; only clean walks update the EWMA.
    if (!result->deadline_exceeded) RecordWalkMicros(walk_timer.Micros());
  }
  nodes_visited_total_.Increment(result->visited_nodes);
  prunes_total_.Increment(result->pruned_subtrees);
  if (result->deadline_exceeded) {
    // Partial work is not an answer: never cached, never derived from,
    // and not counted as a served query. The transport turns the flag
    // into ERR DeadlineExceeded.
    stats_.RecordDeadlineExceeded();
    if (t != nullptr) {
      t->deadline_exceeded = true;
      t->updates_applied = updates_applied();
      t->visited_nodes = result->visited_nodes;
      t->retrieved_nodes = result->retrieved_nodes;
      t->pruned_subtrees = result->pruned_subtrees;
      t->trusses = result->trusses.size();
      t->total_us = timer.Micros();
      RecordTrace(query, *t);
    }
    return result;
  }
  if (cache_) {
    cache_->Insert(query.items, alpha_q, result, epoch, snap);
    AdmitDerivedSubsets(query.items, alpha_q, result, epoch, snap);
  }

  const double us = timer.Micros();
  stats_.RecordQuery(us, result->trusses.size());
  if (t != nullptr) {
    t->updates_applied = updates_applied();
    t->visited_nodes = result->visited_nodes;
    t->retrieved_nodes = result->retrieved_nodes;
    t->pruned_subtrees = result->pruned_subtrees;
    t->trusses = result->trusses.size();
    t->total_us = us;
    RecordTrace(query, *t);
  }
  return result;
}

std::vector<QueryService::Result> QueryService::ExecuteBatch(
    const std::vector<ServeQuery>& queries) {
  std::vector<Result> results(queries.size());
  if (queries.empty()) return results;

  // Chunked fan-out with a per-batch latch (not ThreadPool::Wait, which
  // would also wait on tasks of concurrently running batches).
  const size_t chunks =
      std::min(queries.size(), pool_.num_threads() * 4);
  const size_t step = (queries.size() + chunks - 1) / chunks;
  const size_t num_tasks = (queries.size() + step - 1) / step;
  std::latch done(static_cast<ptrdiff_t>(num_tasks));
  for (size_t begin = 0; begin < queries.size(); begin += step) {
    const size_t end = std::min(queries.size(), begin + step);
    pool_.Submit([this, &queries, &results, &done, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        results[i] = Execute(queries[i]);
      }
      done.count_down();
    });
  }
  done.wait();
  return results;
}

StatusOr<ServeQuery> ParseServeQuery(const ItemDictionary& dictionary,
                                     std::string_view line) {
  const std::string_view trimmed = Trim(line);
  const auto semi = trimmed.find(';');
  if (semi == std::string_view::npos) {
    return Status::InvalidArgument(
        StrFormat("col 1: '%.*s' is not 'alpha;item,item,...' (no ';')",
                  static_cast<int>(trimmed.size()), trimmed.data()));
  }
  const std::string alpha_field(Trim(trimmed.substr(0, semi)));
  auto alpha = ParseDouble(alpha_field);
  if (!alpha.ok()) {
    // ParseDouble already rejects empty fields and trailing garbage; add
    // the column so the ERR points at the alpha, and keep the code
    // (InvalidArgument vs OutOfRange for e.g. '1e999').
    const std::string msg =
        StrFormat("col 1: alpha '%s': %s", alpha_field.c_str(),
                  alpha.status().message().c_str());
    return alpha.status().IsOutOfRange() ? Status::OutOfRange(msg)
                                         : Status::InvalidArgument(msg);
  }
  if (std::isnan(*alpha)) {
    return Status::InvalidArgument("col 1: alpha is NaN");
  }
  if (*alpha < 0) {
    return Status::InvalidArgument(
        StrFormat("col 1: alpha %s is negative (cohesion thresholds are "
                  ">= 0)",
                  alpha_field.c_str()));
  }
  if (*alpha > kMaxServeAlpha) {  // also catches +inf
    return Status::OutOfRange(
        StrFormat("col 1: alpha %s exceeds the 2^32 fixed-point limit",
                  alpha_field.c_str()));
  }

  ServeQuery query;
  query.alpha = *alpha;
  const std::string_view items = Trim(trimmed.substr(semi + 1));
  if (items.empty() || items == "*") {
    std::vector<ItemId> all(dictionary.size());
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<ItemId>(i);
    }
    query.items = Itemset(std::move(all));
    return query;
  }
  std::vector<ItemId> ids;
  size_t start = semi + 1;
  while (start <= trimmed.size()) {
    const size_t comma = trimmed.find(',', start);
    const size_t end = comma == std::string_view::npos ? trimmed.size()
                                                       : comma;
    const std::string_view field = trimmed.substr(start, end - start);
    const size_t lead = field.find_first_not_of(" \t");
    // 1-based column of the token's first non-space character (or of the
    // empty field itself).
    const size_t col = start + (lead == std::string_view::npos ? 0 : lead)
                       + 1;
    const std::string_view name = Trim(field);
    if (name.empty()) {
      return Status::InvalidArgument(
          StrFormat("col %zu: empty item name", col));
    }
    if (auto id = dictionary.Find(name); id.ok()) {
      ids.push_back(*id);
    } else {
      return Status::NotFound(
          StrFormat("col %zu: unknown item '%.*s'", col,
                    static_cast<int>(name.size()), name.data()));
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  query.items = Itemset(std::move(ids));
  return query;
}

void QueryService::SwapSnapshot(TcTreeSnapshot snapshot) {
  auto fresh = std::make_shared<const TcTreeSnapshot>(std::move(snapshot));
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(fresh);
  }
  if (cache_) cache_->Invalidate();
}

void QueryService::SwapSnapshot(TcTree tree) {
  SwapSnapshot(TcTreeSnapshot(std::move(tree)));
}

StatusOr<size_t> QueryService::ReloadFromFile(const std::string& path) {
  if (LooksLikeTcfiFile(path)) {
    auto mapped = MapTcTree(path);
    if (!mapped.ok()) return mapped.status();
    TcTreeSnapshot snap(std::move(*mapped));
    const size_t nodes = snap.num_nodes();
    SwapSnapshot(std::move(snap));
    return nodes;
  }
  auto tree = LoadTcTreeFromFile(path);
  if (!tree.ok()) return tree.status();
  const size_t nodes = tree->num_nodes();
  SwapSnapshot(std::move(*tree));
  return nodes;
}

size_t QueryService::ApplyUpdatedSnapshot(
    TcTree tree, const std::vector<ItemId>& changed_roots,
    const std::vector<ItemId>& dirty_items) {
  (void)changed_roots;  // a single-tree service always swaps its one tree
  auto fresh = std::make_shared<const TcTreeSnapshot>(std::move(tree));
  std::shared_ptr<const TcTreeSnapshot> old;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    old = std::move(snapshot_);
    snapshot_ = fresh;
  }
  // Install first, invalidate second. A query that read the *old*
  // snapshot also read the cache epoch before that (Execute's
  // discipline), so InvalidateItems' epoch bump makes its insert a
  // no-op; a query that reads the *new* snapshot computes answers the
  // retagged survivors are — by the dirty-set argument — identical to.
  if (cache_) cache_->InvalidateItems(dirty_items, old.get(), fresh);
  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  return 1;
}

}  // namespace tcf
