#include "serve/query_service.h"

#include <cmath>
#include <latch>
#include <utility>

#include "core/cohesion.h"
#include "core/tc_tree_io.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tcf {

QueryService::QueryService(TcTree tree, ItemDictionary dictionary,
                           const QueryServiceOptions& options)
    : dictionary_(std::move(dictionary)),
      options_(options),
      pool_(options.num_threads == 0 ? HardwareThreads()
                                     : options.num_threads),
      snapshot_(std::make_shared<const TcTree>(std::move(tree))) {
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(ResultCacheOptions{
        .capacity_bytes = options_.cache_bytes,
        .num_shards = options_.cache_shards,
        .admission_bytes_per_node = options_.cache_admission_bytes_per_node});
  }
}

StatusOr<std::unique_ptr<QueryService>> QueryService::Open(
    const std::string& index_path, ItemDictionary dictionary,
    const QueryServiceOptions& options) {
  auto tree = LoadTcTreeFromFile(index_path);
  if (!tree.ok()) return tree.status();
  return std::make_unique<QueryService>(std::move(*tree),
                                        std::move(dictionary), options);
}

std::shared_ptr<const TcTree> QueryService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

bool QueryService::CanCompose(const Itemset& items) const {
  return options_.cache_composition && items.size() >= 2 &&
         options_.query_options.min_truss_edges == 0 &&
         options_.query_options.max_results == 0;
}

bool QueryService::ShouldCompose(const Itemset& items) const {
  return CanCompose(items) &&
         (options_.cache_compose_min_walk_us <= 0 ||
          walk_us_ewma_.load(std::memory_order_relaxed) >=
              options_.cache_compose_min_walk_us);
}

bool QueryService::ShouldSampleWalk() {
  // The gate floor being 0 means "always compose" — tests and smoke
  // checks rely on that being literal, so sampling is off too.
  if (options_.cache_compose_min_walk_us <= 0) return false;
  return composable_misses_.fetch_add(1, std::memory_order_relaxed) % 64 ==
         0;
}

void QueryService::RecordWalkMicros(double micros) {
  double ewma = walk_us_ewma_.load(std::memory_order_relaxed);
  double next = ewma == 0 ? micros : 0.9 * ewma + 0.1 * micros;
  while (!walk_us_ewma_.compare_exchange_weak(
      ewma, next, std::memory_order_relaxed)) {
    next = ewma == 0 ? micros : 0.9 * ewma + 0.1 * micros;
  }
}

void QueryService::AdmitDerivedSubsets(
    const Itemset& items, CohesionValue alpha_q, const Result& result,
    uint64_t epoch_seen, const std::shared_ptr<const TcTree>& tree) {
  if (!options_.cache_admit_derived || !ShouldCompose(items) ||
      items.size() > 8) {
    return;
  }
  for (const Itemset& sub : items.AllSubsetsMinusOne()) {
    if (sub.empty() || cache_->Contains(sub, alpha_q)) continue;
    cache_->Insert(sub, alpha_q,
                   std::make_shared<TcTreeQueryResult>(
                       DeriveSubResult(*result, sub)),
                   epoch_seen, tree, /*speculative=*/true);
  }
}

QueryService::Result QueryService::Execute(const ServeQuery& query) {
  WallTimer timer;
  const CohesionValue alpha_q = QuantizeAlpha(query.alpha);

  if (cache_) {
    if (Result hit = cache_->Lookup(query.items, alpha_q)) {
      stats_.RecordQuery(timer.Micros(), hit->trusses.size());
      return hit;
    }
  }

  // Read the cache epoch *before* picking the snapshot: if a swap lands
  // while we compute, the epoch check in Insert drops our stale answer.
  const uint64_t epoch = cache_ ? cache_->epoch() : 0;
  const std::shared_ptr<const TcTree> tree = snapshot();

  std::shared_ptr<TcTreeQueryResult> result;
  if (cache_ && ShouldCompose(query.items) && !ShouldSampleWalk()) {
    // Partial reuse: compose the answer from cached subset answers plus
    // a residual probe. Covers are tagged with the snapshot they were
    // computed from, so a swap racing this miss can at worst leave the
    // plan empty — never mix answers from two trees.
    const std::vector<ResultCache::CachedCover> covers =
        cache_->LookupSubsets(query.items, alpha_q, tree.get());
    if (!covers.empty()) {
      std::vector<SubPatternCover> blocks;
      blocks.reserve(covers.size());
      for (const ResultCache::CachedCover& cover : covers) {
        blocks.push_back({&cover.itemset, cover.value.get()});
      }
      result = std::make_shared<TcTreeQueryResult>(
          ComposeTcTreeQuery(*tree, query.items, query.alpha, blocks,
                             options_.query_options));
    }
  }
  if (result == nullptr) {
    // A full walk: its cost feeds the work-aware gate, so partial reuse
    // engages exactly on the workloads where walks are expensive. CPU
    // time, not wall time — an oversubscribed worker pool would
    // otherwise inflate every sample by the timeslicing factor.
    ThreadCpuTimer walk_timer;
    result = std::make_shared<TcTreeQueryResult>(
        QueryTcTree(*tree, query.items, query.alpha, options_.query_options));
    RecordWalkMicros(walk_timer.Micros());
  }
  if (cache_) {
    cache_->Insert(query.items, alpha_q, result, epoch, tree);
    AdmitDerivedSubsets(query.items, alpha_q, result, epoch, tree);
  }

  stats_.RecordQuery(timer.Micros(), result->trusses.size());
  return result;
}

std::vector<QueryService::Result> QueryService::ExecuteBatch(
    const std::vector<ServeQuery>& queries) {
  std::vector<Result> results(queries.size());
  if (queries.empty()) return results;

  // Chunked fan-out with a per-batch latch (not ThreadPool::Wait, which
  // would also wait on tasks of concurrently running batches).
  const size_t chunks =
      std::min(queries.size(), pool_.num_threads() * 4);
  const size_t step = (queries.size() + chunks - 1) / chunks;
  const size_t num_tasks = (queries.size() + step - 1) / step;
  std::latch done(static_cast<ptrdiff_t>(num_tasks));
  for (size_t begin = 0; begin < queries.size(); begin += step) {
    const size_t end = std::min(queries.size(), begin + step);
    pool_.Submit([this, &queries, &results, &done, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        results[i] = Execute(queries[i]);
      }
      done.count_down();
    });
  }
  done.wait();
  return results;
}

StatusOr<ServeQuery> ParseServeQuery(const ItemDictionary& dictionary,
                                     std::string_view line) {
  const std::string_view trimmed = Trim(line);
  const auto semi = trimmed.find(';');
  if (semi == std::string_view::npos) {
    return Status::InvalidArgument(
        StrFormat("col 1: '%.*s' is not 'alpha;item,item,...' (no ';')",
                  static_cast<int>(trimmed.size()), trimmed.data()));
  }
  const std::string alpha_field(Trim(trimmed.substr(0, semi)));
  auto alpha = ParseDouble(alpha_field);
  if (!alpha.ok()) {
    // ParseDouble already rejects empty fields and trailing garbage; add
    // the column so the ERR points at the alpha, and keep the code
    // (InvalidArgument vs OutOfRange for e.g. '1e999').
    const std::string msg =
        StrFormat("col 1: alpha '%s': %s", alpha_field.c_str(),
                  alpha.status().message().c_str());
    return alpha.status().IsOutOfRange() ? Status::OutOfRange(msg)
                                         : Status::InvalidArgument(msg);
  }
  if (std::isnan(*alpha)) {
    return Status::InvalidArgument("col 1: alpha is NaN");
  }
  if (*alpha < 0) {
    return Status::InvalidArgument(
        StrFormat("col 1: alpha %s is negative (cohesion thresholds are "
                  ">= 0)",
                  alpha_field.c_str()));
  }
  if (*alpha > kMaxServeAlpha) {  // also catches +inf
    return Status::OutOfRange(
        StrFormat("col 1: alpha %s exceeds the 2^32 fixed-point limit",
                  alpha_field.c_str()));
  }

  ServeQuery query;
  query.alpha = *alpha;
  const std::string_view items = Trim(trimmed.substr(semi + 1));
  if (items.empty() || items == "*") {
    std::vector<ItemId> all(dictionary.size());
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<ItemId>(i);
    }
    query.items = Itemset(std::move(all));
    return query;
  }
  std::vector<ItemId> ids;
  size_t start = semi + 1;
  while (start <= trimmed.size()) {
    const size_t comma = trimmed.find(',', start);
    const size_t end = comma == std::string_view::npos ? trimmed.size()
                                                       : comma;
    const std::string_view field = trimmed.substr(start, end - start);
    const size_t lead = field.find_first_not_of(" \t");
    // 1-based column of the token's first non-space character (or of the
    // empty field itself).
    const size_t col = start + (lead == std::string_view::npos ? 0 : lead)
                       + 1;
    const std::string_view name = Trim(field);
    if (name.empty()) {
      return Status::InvalidArgument(
          StrFormat("col %zu: empty item name", col));
    }
    if (auto id = dictionary.Find(name); id.ok()) {
      ids.push_back(*id);
    } else {
      return Status::NotFound(
          StrFormat("col %zu: unknown item '%.*s'", col,
                    static_cast<int>(name.size()), name.data()));
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  query.items = Itemset(std::move(ids));
  return query;
}

void QueryService::SwapSnapshot(TcTree tree) {
  auto fresh = std::make_shared<const TcTree>(std::move(tree));
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(fresh);
  }
  if (cache_) cache_->Invalidate();
}

}  // namespace tcf
