#ifndef TCF_SERVE_RESULT_CACHE_H_
#define TCF_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/cohesion.h"
#include "core/tc_tree_query.h"
#include "tx/itemset.h"

namespace tcf {

/// Configuration of a ResultCache.
struct ResultCacheOptions {
  /// Total capacity across all shards, in (approximate) heap bytes.
  /// 0 disables caching: every Lookup misses and Insert is a no-op.
  size_t capacity_bytes = size_t{64} << 20;
  /// Number of independently locked shards; rounded up to a power of two
  /// so shard selection is a mask. More shards = less lock contention.
  size_t num_shards = 16;
  /// Cost-aware admission for *speculative* inserts (derived
  /// sub-results nobody asked for yet): such an entry is admitted only
  /// when its heap cost is at most `admission_bytes_per_node ×
  /// (visited_nodes + 1)` — the bytes it pins must be justified by the
  /// work its answer saves. Demanded answers are exempt: their rebuild
  /// cost scales with their own payload, so the byte-vs-work test would
  /// only refuse the entries most worth keeping. 0 disables the policy.
  size_t admission_bytes_per_node = size_t{64} << 10;
  /// Most covers LookupSubsets returns per query. Clamped to 64: the
  /// composition walk tracks coverage in a 64-bit mask.
  size_t max_covers = 8;
  /// Queries up to this many items take the exhaustive subset-
  /// enumeration probe in LookupSubsets (2^|q|−2 point lookups); larger
  /// queries scan the per-item inverted index instead. Capped at 16.
  size_t subset_enum_limit = 8;
};

/// Point-in-time counters aggregated over all shards.
struct ResultCacheStats {
  uint64_t hits = 0;    // exact (q, α) matches
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;      // entries removed to make room
  uint64_t invalidations = 0;  // Invalidate() calls (snapshot swaps)
  uint64_t partial_hits = 0;   // cached sub-patterns reused as covers
  uint64_t composed_queries = 0;   // misses that found ≥ 1 cover
  uint64_t admission_rejects = 0;  // inserts refused by the cost policy
  size_t entries = 0;              // resident entries
  size_t bytes = 0;                // resident approximate bytes
  size_t capacity_bytes = 0;

  /// hits / (hits + misses), 0 when nothing was looked up.
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Sharded, subset-composable LRU cache of TC-Tree query results.
///
/// The pattern store is keyed by the *exact* query: the canonical sorted
/// itemset plus the quantized threshold. Because all cohesion arithmetic
/// is fixed-point (core/cohesion.h), two α values that quantize to the
/// same grid point provably produce identical answers, so serving the
/// cached result is not an approximation — the key is exact.
///
/// On top of the exact store, each shard keeps an inverted index from
/// item → resident entries containing it, and `LookupSubsets` plans a
/// set of cached *sub-pattern* answers (covers) that a miss for a
/// superset query can compose with (ComposeTcTreeQuery) instead of
/// walking the whole tree. Covers are only reusable against the tree
/// snapshot they were computed from, so entries carry an opaque snapshot
/// tag and LookupSubsets filters on it — a swap-in-progress can never
/// mix answers from two trees into one composition.
///
/// Values are shared_ptr-to-const: a result stays valid for readers that
/// hold it even after eviction or Invalidate(), and concurrent queries
/// for the same key share one allocation.
///
/// Thread safety: all methods are safe to call concurrently; each shard
/// has its own mutex and LRU list, keyed by a hash of the query, so
/// unrelated queries do not contend. LookupSubsets locks one shard at a
/// time.
class ResultCache {
 public:
  using Value = std::shared_ptr<const TcTreeQueryResult>;

  /// A cached sub-pattern answer planned as a composition building
  /// block: `itemset ⊆ q` and `value` is its complete answer at the
  /// probed α-bucket against the probed snapshot.
  struct CachedCover {
    Itemset itemset;
    Value value;
  };

  explicit ResultCache(const ResultCacheOptions& options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result for `(q, alpha)` and marks it most
  /// recently used, or nullptr on a miss.
  Value Lookup(const Itemset& q, CohesionValue alpha);

  /// True if `(q, alpha)` is resident. Counts nothing and does not touch
  /// LRU order — a side-effect-free probe for admission decisions.
  bool Contains(const Itemset& q, CohesionValue alpha) const;

  /// Plans covers for a miss on `(q, alpha)`: up to `max_covers` cached
  /// entries at the same α-bucket whose itemset is a *proper* subset of
  /// `q` and whose snapshot tag matches `snapshot` (pass
  /// `tree_snapshot.get()`; entries inserted without a tag are never
  /// returned). Small queries enumerate their subsets and point-probe
  /// the store; large ones collect candidates through the inverted
  /// index. The planner keeps the largest covers first and drops any
  /// cover subsumed by an already-chosen one (it could only contribute
  /// duplicate patterns). Returned covers are marked most recently used;
  /// a non-empty plan counts one composed query and
  /// `plan.size()` partial hits.
  std::vector<CachedCover> LookupSubsets(const Itemset& q,
                                         CohesionValue alpha,
                                         const void* snapshot);

  /// Caches `value` for `(q, alpha)`, evicting least-recently-used
  /// entries of the same shard until it fits. An entry larger than the
  /// whole shard is refused and counted in `admission_rejects`.
  void Insert(const Itemset& q, CohesionValue alpha, Value value);

  /// Epoch-checked insert for writers racing against Invalidate(): the
  /// caller reads `epoch()` *before* computing `value`; if an
  /// invalidation lands in between, the stale value is dropped instead
  /// of cached. The check runs under the shard lock and Invalidate()
  /// bumps the epoch before clearing, so no interleaving can leave a
  /// pre-invalidation result resident afterwards. `snapshot` tags the
  /// entry with the tree it was computed from (LookupSubsets only
  /// reuses tagged entries); the shared_ptr keeps the tag comparable —
  /// never dangling or recycled — for the entry's lifetime.
  /// `speculative` marks an entry nobody queried for (a derived
  /// sub-result) and subjects it to the cost-aware admission policy
  /// (ResultCacheOptions::admission_bytes_per_node); demanded answers
  /// pass `false` and are admitted whenever they fit.
  void Insert(const Itemset& q, CohesionValue alpha, Value value,
              uint64_t epoch_seen,
              std::shared_ptr<const void> snapshot = nullptr,
              bool speculative = false);

  /// Monotonic invalidation epoch (see the epoch-checked Insert).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Drops every entry — called when the index snapshot is swapped, as
  /// cached answers may no longer match the new tree.
  void Invalidate();

  /// Targeted invalidation for an *incremental* snapshot swap
  /// (core/tc_tree_update.h): drops exactly the entries whose pattern
  /// intersects `dirty_items` (found through the per-item inverted
  /// index) and keeps everything else serving. A surviving entry's
  /// pattern is disjoint from the dirty set, so its answer under the
  /// new tree is field-for-field what it was under the old one — and
  /// since that holds for its sub-patterns too, survivors tagged with
  /// `old_snapshot` are retagged to `new_snapshot`, keeping them live
  /// as exact hits *and* as composition covers. Entries tagged with
  /// some other (or no) snapshot are left untouched: unreachable for
  /// composition, still exact for direct hits.
  ///
  /// Bumps the epoch first (like Invalidate), so in-flight results
  /// computed against the outgoing tree fail their epoch-checked
  /// Insert instead of landing stale. `dirty_items` must be sorted.
  void InvalidateItems(const std::vector<ItemId>& dirty_items,
                       const void* old_snapshot,
                       std::shared_ptr<const void> new_snapshot);

  /// Aggregated counters; consistent per shard, approximate globally.
  ResultCacheStats Stats() const;

  /// Approximate heap bytes a cached result occupies (key included).
  static size_t CostOf(const Itemset& q, const TcTreeQueryResult& result);

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Key {
    std::vector<ItemId> items;  // sorted + deduped (Itemset invariant)
    CohesionValue alpha = 0;
    size_t hash = 0;  // HashKey(items, alpha), computed once
  };
  /// Non-owning view of a key. Lookups probe with a view of the query
  /// (no item-vector copy), and the map itself is keyed by views into
  /// the owning list Entry (std::list nodes are address-stable), so
  /// each key's item vector is stored exactly once per entry.
  struct KeyRef {
    const std::vector<ItemId>* items;
    CohesionValue alpha;
    size_t hash;
  };
  static size_t HashKey(const std::vector<ItemId>& items,
                        CohesionValue alpha);
  struct KeyHash {
    size_t operator()(const KeyRef& k) const { return k.hash; }
  };
  struct KeyEq {
    bool operator()(const KeyRef& a, const KeyRef& b) const {
      return a.alpha == b.alpha && *a.items == *b.items;
    }
  };
  struct Entry {
    Key key;
    Value value;
    size_t cost = 0;
    /// Identity of the tree snapshot the value answers for; owning, so
    /// the pointer can never be recycled while the entry lives.
    std::shared_ptr<const void> snapshot;

    KeyRef Ref() const { return {&key.items, key.alpha, key.hash}; }
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<KeyRef, std::list<Entry>::iterator, KeyHash, KeyEq>
        index;
    /// item → resident entries containing it (the subset-probe index for
    /// queries too large to enumerate). Kept in lockstep with `lru`.
    std::unordered_map<ItemId, std::vector<Entry*>> by_item;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t admission_rejects = 0;
  };

  Shard& ShardFor(size_t hash) {
    return *shards_[hash & (shards_.size() - 1)];
  }
  const Shard& ShardFor(size_t hash) const {
    return *shards_[hash & (shards_.size() - 1)];
  }

  /// Unlinks `it` from a shard's maps (not the LRU list) — inverted
  /// index included. Caller holds the shard lock.
  static void UnindexEntry(Shard& shard, std::list<Entry>::iterator it);

  /// Largest-first greedy cover selection; see LookupSubsets.
  std::vector<CachedCover> PlanCovers(
      std::vector<CachedCover> candidates) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_capacity_bytes_ = 0;
  size_t admission_bytes_per_node_ = 0;
  size_t max_covers_ = 0;
  size_t subset_enum_limit_ = 0;
  /// Bumped by Invalidate(); doubles as the invalidation counter.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> partial_hits_{0};
  std::atomic<uint64_t> composed_queries_{0};
};

}  // namespace tcf

#endif  // TCF_SERVE_RESULT_CACHE_H_
