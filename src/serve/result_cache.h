#ifndef TCF_SERVE_RESULT_CACHE_H_
#define TCF_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/cohesion.h"
#include "core/tc_tree_query.h"
#include "tx/itemset.h"

namespace tcf {

/// Configuration of a ResultCache.
struct ResultCacheOptions {
  /// Total capacity across all shards, in (approximate) heap bytes.
  /// 0 disables caching: every Lookup misses and Insert is a no-op.
  size_t capacity_bytes = size_t{64} << 20;
  /// Number of independently locked shards; rounded up to a power of two
  /// so shard selection is a mask. More shards = less lock contention.
  size_t num_shards = 16;
};

/// Point-in-time counters aggregated over all shards.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;      // entries removed to make room
  uint64_t invalidations = 0;  // Invalidate() calls (snapshot swaps)
  size_t entries = 0;          // resident entries
  size_t bytes = 0;            // resident approximate bytes
  size_t capacity_bytes = 0;

  /// hits / (hits + misses), 0 when nothing was looked up.
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// \brief Sharded LRU cache of TC-Tree query results.
///
/// Keyed by the *exact* query: the canonical sorted itemset plus the
/// quantized threshold. Because all cohesion arithmetic is fixed-point
/// (core/cohesion.h), two α values that quantize to the same grid point
/// provably produce identical answers, so serving the cached result is
/// not an approximation — the key is exact.
///
/// Values are shared_ptr-to-const: a result stays valid for readers that
/// hold it even after eviction or Invalidate(), and concurrent queries
/// for the same key share one allocation.
///
/// Thread safety: all methods are safe to call concurrently; each shard
/// has its own mutex and LRU list, keyed by a hash of the query, so
/// unrelated queries do not contend.
class ResultCache {
 public:
  using Value = std::shared_ptr<const TcTreeQueryResult>;

  explicit ResultCache(const ResultCacheOptions& options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result for `(q, alpha)` and marks it most
  /// recently used, or nullptr on a miss.
  Value Lookup(const Itemset& q, CohesionValue alpha);

  /// Caches `value` for `(q, alpha)`, evicting least-recently-used
  /// entries of the same shard until it fits. An entry larger than the
  /// whole shard is not admitted (it would only evict everything and
  /// then be evicted itself on the next insert).
  void Insert(const Itemset& q, CohesionValue alpha, Value value);

  /// Epoch-checked insert for writers racing against Invalidate(): the
  /// caller reads `epoch()` *before* computing `value`; if an
  /// invalidation lands in between, the stale value is dropped instead
  /// of cached. The check runs under the shard lock and Invalidate()
  /// bumps the epoch before clearing, so no interleaving can leave a
  /// pre-invalidation result resident afterwards.
  void Insert(const Itemset& q, CohesionValue alpha, Value value,
              uint64_t epoch_seen);

  /// Monotonic invalidation epoch (see the epoch-checked Insert).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Drops every entry — called when the index snapshot is swapped, as
  /// cached answers may no longer match the new tree.
  void Invalidate();

  /// Aggregated counters; consistent per shard, approximate globally.
  ResultCacheStats Stats() const;

  /// Approximate heap bytes a cached result occupies (key included).
  static size_t CostOf(const Itemset& q, const TcTreeQueryResult& result);

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Key {
    std::vector<ItemId> items;  // sorted + deduped (Itemset invariant)
    CohesionValue alpha = 0;
    size_t hash = 0;  // HashKey(items, alpha), computed once
  };
  /// Non-owning view of a key. Lookups probe with a view of the query
  /// (no item-vector copy), and the map itself is keyed by views into
  /// the owning list Entry (std::list nodes are address-stable), so
  /// each key's item vector is stored exactly once per entry.
  struct KeyRef {
    const std::vector<ItemId>* items;
    CohesionValue alpha;
    size_t hash;
  };
  static size_t HashKey(const std::vector<ItemId>& items,
                        CohesionValue alpha);
  struct KeyHash {
    size_t operator()(const KeyRef& k) const { return k.hash; }
  };
  struct KeyEq {
    bool operator()(const KeyRef& a, const KeyRef& b) const {
      return a.alpha == b.alpha && *a.items == *b.items;
    }
  };
  struct Entry {
    Key key;
    Value value;
    size_t cost = 0;

    KeyRef Ref() const { return {&key.items, key.alpha, key.hash}; }
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<KeyRef, std::list<Entry>::iterator, KeyHash, KeyEq>
        index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(size_t hash) {
    return *shards_[hash & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_capacity_bytes_ = 0;
  /// Bumped by Invalidate(); doubles as the invalidation counter.
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace tcf

#endif  // TCF_SERVE_RESULT_CACHE_H_
