#ifndef TCF_SERVE_CLIENT_H_
#define TCF_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/line_protocol.h"
#include "util/status.h"

namespace tcf {

/// \brief Small blocking client for the tcf line protocol.
///
/// One `Client` owns one TCP connection and speaks one request/response
/// exchange at a time — where an exchange is either a single request or
/// a pipelined `BATCH` of query lines sent in one write and answered in
/// one round trip (`Batch()`). It is the counterpart `TcpServer` is
/// tested against, and what `tcf client` and the bench_serve network
/// mode are built on. Not thread-safe: use one Client per thread
/// (connections are cheap; the server parks idle ones in epoll).
class Client {
 public:
  /// Connects to `host:port`. `host` is an IPv4 dotted quad, an IPv6
  /// literal (e.g. "::1"), or "localhost" — which tries ::1 and then
  /// 127.0.0.1, so it reaches both dual-stack and v4-only servers.
  /// IOError if every candidate connection is refused.
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host,
                                                   uint16_t port);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// A framed server reply: the decoded status line plus its payload
  /// lines (already count-checked against the header).
  struct Reply {
    ResponseHeader header;
    std::vector<std::string> payload;
  };

  /// Sends one request and reads the complete reply. The returned Reply
  /// may carry an ERR header (a *protocol-level* error the server
  /// reported); a non-OK Status means the exchange itself failed
  /// (connection lost, unparseable response).
  StatusOr<Reply> RoundTrip(const Request& request);

  /// PING; OK iff the server answered PONG.
  Status Ping();

  /// Sends `alpha;item,item,...` and decodes the returned communities.
  /// Server-side query errors (unknown item, bad alpha) come back as the
  /// carried ERR status.
  StatusOr<std::vector<WireTruss>> Query(const std::string& query_line);

  /// One slot of a BATCH answer: the slot's carried status (OK, or the
  /// server's per-line ERR — an unknown item in slot 3 does not disturb
  /// slots 4..n), and the decoded communities when OK.
  struct BatchItem {
    Status status;
    std::vector<WireTruss> trusses;
  };

  /// Pipelines `query_lines` as one `BATCH <n>` exchange: a single
  /// write carries the header and all n lines, a single round trip
  /// returns n responses in request order. A non-OK *return* status
  /// means the exchange itself failed (connection lost, unparseable
  /// response, more lines than kMaxBatchLines); per-query errors live
  /// in the slots. An empty input returns an empty vector without
  /// touching the wire.
  StatusOr<std::vector<BatchItem>> Batch(
      const std::vector<std::string>& query_lines);

  /// Sends `update_lines` (`tx <vertex> <name,...>` / `edge <u> <v>`,
  /// ParseUpdateLine grammar) as one `UPDATE <n>` exchange — a single
  /// write carries the header and the whole body, and the server applies
  /// it as one atomic batch. Returns the UPDATED summary as ordered
  /// `key value` pairs (update_txs, dirty_items, changed_roots,
  /// shards_swapped, ...). The carried ERR status reports a rejected
  /// batch (bad line, unknown item, updates disabled) — the index is
  /// untouched then.
  StatusOr<std::vector<std::pair<std::string, std::string>>> Update(
      const std::vector<std::string>& update_lines);

  /// STATS as ordered `key value` pairs.
  StatusOr<std::vector<std::pair<std::string, std::string>>> Stats();

  /// METRICS: the server's registry in Prometheus text exposition, lines
  /// rejoined with '\n' (trailing newline included) — ready to pipe to a
  /// scrape endpoint or a file.
  StatusOr<std::string> Metrics();

  /// EXPLAIN: answers `query_line` server-side and returns the trace as
  /// ordered `key value` pairs (stage_<name>_us spans, total_us, walk
  /// facts — see docs/observability.md).
  StatusOr<std::vector<std::pair<std::string, std::string>>> Explain(
      const std::string& query_line);

  /// Asks the server to hot-reload the index at `index_path` (a path on
  /// the server's filesystem). Returns the new tree's node count.
  StatusOr<uint64_t> Reload(const std::string& index_path);

  /// Sends QUIT, waits for BYE, and closes the connection. Further
  /// calls fail. The destructor closes silently; Quit() is the polite
  /// shutdown the CLI and tests use to assert the server's goodbye.
  Status Quit();

  /// Raw bytes exchanged over this connection's lifetime.
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Next '\n'-terminated line off the socket (newline stripped).
  StatusOr<std::string> ReadLine();
  Status SendLine(const std::string& line);
  /// Writes `data` verbatim, riding out short writes.
  Status SendAll(std::string_view data);

  int fd_ = -1;
  std::string buffer_;  // bytes read but not yet consumed as lines
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace tcf

#endif  // TCF_SERVE_CLIENT_H_
