#ifndef TCF_SERVE_FILE_WATCHER_H_
#define TCF_SERVE_FILE_WATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "serve/query_backend.h"
#include "util/status.h"

namespace tcf {

/// Configuration of a FileWatcher.
struct FileWatcherOptions {
  /// Index file to watch — TCFT (core/tc_tree_io.h) or TCFI
  /// (core/tcfi_format.h), sniffed per reload. Need not exist at
  /// Start(): the watcher arms on its first appearance.
  std::string path;
  /// Poll cadence. mtime polling (not inotify) keeps the watcher
  /// portable and dependency-free; at serving timescales a sub-second
  /// poll is indistinguishable from an event.
  double poll_ms = 500;
};

/// \brief Hot-reload-on-write: polls an index file's mtime and rolls
/// each new version into a live backend (`tcf serve --watch=PATH`).
///
/// The operational complement of the RELOAD verb: instead of a client
/// pushing a reload, the server watches the artifact the index build
/// pipeline writes and swaps every new version in through the same
/// epoch-safe snapshot-swap path (full invalidation semantics, counted
/// in `reloads`/`last_reload_ms` like a wire RELOAD), format-sniffed by
/// `ReloadFromFile` — a `.tcfi` file installs as a zero-copy mapped
/// snapshot. A half-written file is harmless: a TCFI file is *probed*
/// first (header + checksum, a 232-byte read — ProbeTcfiFile) and a
/// failing probe is counted in `skipped`, not `failures`, with no load
/// attempted; a non-TCFI file that fails the loader's validation counts
/// a failure. Either way the watcher leaves `last_seen_` alone so the
/// next tick (or the finished write's mtime bump) retries. Writers
/// should still prefer write-to-temp + rename (SaveTcTreeBinary does),
/// which makes the swap atomic at the filesystem level.
class FileWatcher {
 public:
  /// `backend` must outlive the watcher.
  FileWatcher(QueryBackend& backend, FileWatcherOptions options);
  ~FileWatcher();

  FileWatcher(const FileWatcher&) = delete;
  FileWatcher& operator=(const FileWatcher&) = delete;

  /// Records the file's current fingerprint (so only *subsequent*
  /// writes trigger reloads) and starts the poll thread.
  /// InvalidArgument if already started or the path is empty.
  Status Start();

  /// Stops the poll thread. Idempotent; called by the destructor.
  void Stop();

  /// Successful watch-triggered reloads so far.
  uint64_t reloads() const { return reloads_.load(std::memory_order_acquire); }
  /// Changed-but-unloadable observations (e.g. a write in progress).
  uint64_t failures() const {
    return failures_.load(std::memory_order_acquire);
  }
  /// Changed TCFI files whose header probe said "not done being
  /// written" (bad or truncated header/checksum) — skipped without
  /// attempting a load, retried on a later tick.
  uint64_t skipped() const { return skipped_.load(std::memory_order_acquire); }

 private:
  /// (mtime ns, size) — enough to see every completed write, including
  /// same-size rewrites on filesystems with nanosecond timestamps.
  struct Fingerprint {
    int64_t mtime_ns = -1;  // -1: file absent
    int64_t size = -1;
    bool operator==(const Fingerprint& o) const {
      return mtime_ns == o.mtime_ns && size == o.size;
    }
  };

  static Fingerprint Stat(const std::string& path);
  void Loop();

  QueryBackend& backend_;
  FileWatcherOptions options_;
  Fingerprint last_seen_;

  std::thread thread_;
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> skipped_{0};
  std::mutex mu_;
  std::condition_variable cv_;  // wakes the poll loop for prompt Stop()
  bool stopping_ = false;       // guarded by mu_
  bool started_ = false;
};

}  // namespace tcf

#endif  // TCF_SERVE_FILE_WATCHER_H_
