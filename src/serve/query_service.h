#ifndef TCF_SERVE_QUERY_SERVICE_H_
#define TCF_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "core/tc_tree_snapshot.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/query_backend.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "tx/item_dictionary.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tcf {

/// Configuration of a QueryService.
struct QueryServiceOptions {
  /// Workers for ExecuteBatch fan-out (0 = hardware threads).
  size_t num_threads = 0;
  /// Result-cache capacity in bytes (0 disables caching).
  size_t cache_bytes = size_t{64} << 20;
  /// Result-cache shards (see ResultCacheOptions::num_shards).
  size_t cache_shards = 16;
  /// When true, a miss for `(q, α)` probes the cache for sub-pattern
  /// covers (ResultCache::LookupSubsets) and composes the answer from
  /// them plus a residual tree probe (ComposeTcTreeQuery) instead of
  /// walking the whole tree. Only engaged while the result-shaping
  /// query_options knobs are at their defaults — composition needs
  /// complete answers. False restores the exact-only PR-1 cache.
  bool cache_composition = true;
  /// When true, answering `q` (2 ≤ |q| ≤ 8) also derives and admits the
  /// answers for q's size-(|q|−1) sub-itemsets (DeriveSubResult): the
  /// covers an overlapping workload's *next* superset query composes
  /// with. Each derived entry still passes cost-aware admission.
  bool cache_admit_derived = true;
  /// Cost-aware admission knob, forwarded to
  /// ResultCacheOptions::admission_bytes_per_node.
  size_t cache_admission_bytes_per_node = size_t{64} << 10;
  /// Work-aware engagement floor for partial reuse, in microseconds.
  /// Subset probing and derived admission only run while the service's
  /// EWMA of *full-walk* miss latency is at least this value — on
  /// workloads whose tree walks are already nearly free (a handful of
  /// visited nodes), every microsecond of cover planning is pure tax
  /// and the cache behaves exactly-only. 0 engages partial reuse
  /// unconditionally (tests and smoke checks use this).
  double cache_compose_min_walk_us = 100.0;
  /// Per-query traversal knobs, fixed for the service's lifetime so that
  /// cached results are interchangeable with fresh ones.
  TcTreeQueryOptions query_options;
  /// Request-scoped tracing (docs/observability.md): every Execute
  /// records per-stage wall/CPU spans into the metrics registry's
  /// histograms and threshold-checks the slow-query log. Off, queries
  /// keep only the flat counters (a handful of relaxed atomic adds) —
  /// the bench_micro overhead guard holds that path regression-free.
  /// `EXPLAIN` passes its own trace and works either way.
  bool tracing = true;
  /// Queries at least this slow (total wall µs) enter the slow-query
  /// ring with their full trace and rendered query line. <= 0 disables
  /// the ring. Only consulted while `tracing` is on.
  double slow_query_us = 10000.0;
  /// Slow-query ring capacity (oldest evicted first).
  size_t slow_log_capacity = 128;
  /// While `tracing` is on, span-time every Nth query instead of every
  /// one (`--trace-sample=N`): the sampled queries keep the stage
  /// histograms and slow-query ring alive at 1/N the span overhead.
  /// Unsampled queries keep only the flat counters. <= 1 traces
  /// everything; `EXPLAIN` always traces its own query regardless.
  size_t trace_sample_every = 1;
};

/// \brief The online query-answering facade (§6.3 as a service).
///
/// Owns an immutable TC-Tree snapshot (built in-process or loaded via
/// tc_tree_io), the item dictionary used to resolve query item names, a
/// sharded result cache, and a worker pool. `Execute` answers a single
/// query; `ExecuteBatch` fans a workload out over the pool. All entry
/// points are thread-safe: the tree snapshot is read-only and reference
/// counted, and the cache does its own locking.
///
/// `SwapSnapshot` installs a new tree (e.g. a freshly rebuilt index)
/// without stopping traffic: in-flight queries finish against the old
/// snapshot, the cache is invalidated, and results computed against the
/// superseded snapshot are dropped rather than cached (epoch check).
class QueryService : public QueryBackend {
 public:
  /// The primary constructor: serves whichever snapshot flavor it is
  /// handed — a heap-owned TcTree or a zero-copy mmap'ed TCFI file.
  QueryService(TcTreeSnapshot snapshot, ItemDictionary dictionary,
               const QueryServiceOptions& options = {});

  QueryService(TcTree tree, ItemDictionary dictionary,
               const QueryServiceOptions& options = {})
      : QueryService(TcTreeSnapshot(std::move(tree)), std::move(dictionary),
                     options) {}

  /// Loads a persisted index and pairs it with `dictionary` (the
  /// network's, so query item names resolve to the ids the index was
  /// built over). A `.tcfi` file (sniffed by magic, not extension) is
  /// mmap'ed and served zero-copy; anything else goes through the
  /// streaming TCFT loader into an owned tree.
  static StatusOr<std::unique_ptr<QueryService>> Open(
      const std::string& index_path, ItemDictionary dictionary,
      const QueryServiceOptions& options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// The nullptr-trace convenience overload from the base class.
  using QueryBackend::Execute;

  /// Execute with an explicit trace: stage spans (cache probe, compose,
  /// walk), walk facts, and total_us are recorded into `*trace` even
  /// when the service-wide `tracing` option is off — this is what the
  /// `EXPLAIN` verb rides on. A null trace falls back to the option:
  /// tracing on uses a stack-local trace to feed the stage histograms
  /// and the slow-query ring; off skips all span timing.
  Result Execute(const ServeQuery& query, QueryTrace* trace) override;

  /// Answers `queries[i]` into slot i of the returned vector, fanning
  /// out over the worker pool. Results are byte-identical to calling
  /// Execute (or QueryTcTree) serially on each query.
  std::vector<Result> ExecuteBatch(
      const std::vector<ServeQuery>& queries) override;

  /// ParseServeQuery against this service's dictionary.
  StatusOr<ServeQuery> ParseQueryLine(std::string_view line) const override {
    return ParseServeQuery(dictionary_, line);
  }

  /// Installs a new snapshot (either flavor) and invalidates the cache.
  void SwapSnapshot(TcTreeSnapshot snapshot);
  /// Installs a new tree snapshot and invalidates the cache.
  void SwapSnapshot(TcTree tree) override;

  /// RELOAD from disk: a valid `.tcfi` file is installed as a mapped
  /// snapshot (no materialization — the load is O(1) validation plus an
  /// epoch swap); anything else parses as TCFT. See
  /// QueryBackend::ReloadFromFile.
  StatusOr<size_t> ReloadFromFile(const std::string& path) override;

  /// Incremental swap (core/tc_tree_update.h): installs the updated
  /// tree, then drops *only* the cached entries whose pattern
  /// intersects `dirty_items` — survivors are retagged to the new
  /// snapshot and keep serving as exact hits and composition covers.
  /// Always returns 1 (one snapshot swapped; `changed_roots` only
  /// matters to sharded backends).
  size_t ApplyUpdatedSnapshot(TcTree tree,
                              const std::vector<ItemId>& changed_roots,
                              const std::vector<ItemId>& dirty_items) override;

  /// Streaming updates applied so far (ApplyUpdatedSnapshot calls).
  uint64_t updates_applied() const {
    return updates_applied_.load(std::memory_order_relaxed);
  }

  /// The current snapshot (shared; stays valid across swaps).
  std::shared_ptr<const TcTreeSnapshot> snapshot() const;

  const ItemDictionary& dictionary() const override { return dictionary_; }
  size_t num_threads() const override { return pool_.num_threads(); }

  ServeStats& stats() override { return stats_; }
  ResultCacheStats cache_stats() const override {
    return cache_ ? cache_->Stats() : ResultCacheStats{};
  }
  /// Stats + cache counters in one report.
  ServeReport Report() const override { return stats_.Report(cache_stats()); }

  /// The service-owned metrics registry (rendered by the METRICS verb).
  /// Transports and build hooks register their own instruments here.
  MetricsRegistry& metrics() override { return metrics_; }
  /// The slow-query ring (empty while tracing is off or nothing crossed
  /// the threshold).
  const SlowQueryLog& slow_log() const override { return slow_log_; }
  bool tracing_enabled() const override { return options_.tracing; }

 private:
  /// True when subset composition is both enabled and sound (the
  /// result-shaping query_options knobs are off; see ComposeTcTreeQuery
  /// preconditions) for a query over `items`.
  bool CanCompose(const Itemset& items) const;

  /// CanCompose plus the work-aware gate: full walks must currently be
  /// expensive enough (cache_compose_min_walk_us) for reuse to pay.
  bool ShouldCompose(const Itemset& items) const;

  /// True for every 64th otherwise-composable miss: that miss walks the
  /// tree instead, keeping the walk-cost EWMA a live estimate while
  /// composition serves the rest — so the gate can disengage when a
  /// snapshot swap or workload shift makes walks cheap, not only
  /// engage. (An EWMA fed solely by pre-engagement walks would latch on
  /// a few cold-start outliers forever.)
  bool ShouldSampleWalk();

  /// Folds one measured full-walk miss latency into the EWMA behind
  /// ShouldCompose.
  void RecordWalkMicros(double micros);

  /// True when this query should carry a stack-local trace: tracing is
  /// on and the sample clock says it's this query's turn (every
  /// trace_sample_every-th; <= 1 means all).
  bool ShouldTrace();

  /// Derives answers for `items`'s size-(|items|−1) sub-itemsets from
  /// `result` and admits the ones not already resident (see
  /// QueryServiceOptions::cache_admit_derived).
  void AdmitDerivedSubsets(const Itemset& items, CohesionValue alpha_q,
                           const Result& result, uint64_t epoch_seen,
                           const std::shared_ptr<const TcTreeSnapshot>& snap);

  /// Renders the query back into its `alpha;item,...` wire form for the
  /// slow-query ring (paid only for queries that already crossed the
  /// threshold).
  std::string RenderQueryLine(const ServeQuery& query) const;

  /// Folds one finished traced query into the registry histograms and,
  /// when slow enough, the ring.
  void RecordTrace(const ServeQuery& query, const QueryTrace& trace);

  // Declared before the cache and stats so the registry (whose callback
  // instruments read them at scrape time) is destroyed last.
  MetricsRegistry metrics_;
  SlowQueryLog slow_log_;
  ItemDictionary dictionary_;
  QueryServiceOptions options_;
  ThreadPool pool_;
  std::unique_ptr<ResultCache> cache_;  // null when caching is disabled
  ServeStats stats_;

  // Hot-path instrument handles, resolved once at construction.
  Counter& queries_total_;
  Counter& cache_hits_total_;
  Counter& cache_misses_total_;
  Counter& composed_total_;
  Counter& covers_used_total_;
  Counter& nodes_visited_total_;
  Counter& prunes_total_;
  Counter& slow_queries_total_;
  Histogram& query_total_us_;
  std::array<Histogram*, kNumQueryStages> stage_us_;
  /// EWMA (α = 0.1) of full-walk miss latency, µs. Composed misses do
  /// not update it — it tracks what a walk *would* cost, so the gate
  /// cannot oscillate by measuring its own savings; ShouldSampleWalk's
  /// periodic forced walks keep it live while composition is engaged.
  std::atomic<double> walk_us_ewma_{0.0};
  std::atomic<uint64_t> composable_misses_{0};  // ShouldSampleWalk clock
  std::atomic<uint64_t> trace_clock_{0};        // ShouldTrace clock
  std::atomic<uint64_t> updates_applied_{0};    // incremental swaps so far

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const TcTreeSnapshot> snapshot_;
};

}  // namespace tcf

#endif  // TCF_SERVE_QUERY_SERVICE_H_
