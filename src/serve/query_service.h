#ifndef TCF_SERVE_QUERY_SERVICE_H_
#define TCF_SERVE_QUERY_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "tx/item_dictionary.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tcf {

/// One online query: a theme plus its cohesion threshold.
struct ServeQuery {
  Itemset items;
  double alpha = 0;
};

/// Largest alpha the serving layer accepts. Cohesion arithmetic is
/// fixed-point with 2^-30 resolution (core/cohesion.h), so thresholds
/// beyond 2^32 would overflow the int64 grid; no real network's edge
/// cohesion gets anywhere near this.
inline constexpr double kMaxServeAlpha = 4294967296.0;  // 2^32

/// Parses one workload line: `alpha;name,name,...`. Item names resolve
/// through `dictionary`; `*` (or an empty item list) means every
/// dictionary item. Free-standing so callers can validate a workload
/// before building/loading the (expensive) index a QueryService needs.
///
/// Rejects — with a 1-based column of the offending token (relative to
/// the line after outer trimming) in the message, so protocol ERR
/// replies and workload-file diagnostics can point at the problem —
/// lines with no `;`, alphas that are non-numeric, carry trailing
/// garbage, are NaN, negative, or exceed kMaxServeAlpha
/// (InvalidArgument / OutOfRange), and empty or unknown item names
/// (InvalidArgument / NotFound).
StatusOr<ServeQuery> ParseServeQuery(const ItemDictionary& dictionary,
                                     std::string_view line);

/// Configuration of a QueryService.
struct QueryServiceOptions {
  /// Workers for ExecuteBatch fan-out (0 = hardware threads).
  size_t num_threads = 0;
  /// Result-cache capacity in bytes (0 disables caching).
  size_t cache_bytes = size_t{64} << 20;
  /// Result-cache shards (see ResultCacheOptions::num_shards).
  size_t cache_shards = 16;
  /// Per-query traversal knobs, fixed for the service's lifetime so that
  /// cached results are interchangeable with fresh ones.
  TcTreeQueryOptions query_options;
};

/// \brief The online query-answering facade (§6.3 as a service).
///
/// Owns an immutable TC-Tree snapshot (built in-process or loaded via
/// tc_tree_io), the item dictionary used to resolve query item names, a
/// sharded result cache, and a worker pool. `Execute` answers a single
/// query; `ExecuteBatch` fans a workload out over the pool. All entry
/// points are thread-safe: the tree snapshot is read-only and reference
/// counted, and the cache does its own locking.
///
/// `SwapSnapshot` installs a new tree (e.g. a freshly rebuilt index)
/// without stopping traffic: in-flight queries finish against the old
/// snapshot, the cache is invalidated, and results computed against the
/// superseded snapshot are dropped rather than cached (epoch check).
class QueryService {
 public:
  using Result = std::shared_ptr<const TcTreeQueryResult>;

  QueryService(TcTree tree, ItemDictionary dictionary,
               const QueryServiceOptions& options = {});

  /// Loads a persisted index (tc_tree_io) and pairs it with `dictionary`
  /// (the network's, so query item names resolve to the ids the index
  /// was built over).
  static StatusOr<std::unique_ptr<QueryService>> Open(
      const std::string& index_path, ItemDictionary dictionary,
      const QueryServiceOptions& options = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Answers one query, consulting the cache first. Never returns null.
  Result Execute(const ServeQuery& query);

  /// Answers `queries[i]` into slot i of the returned vector, fanning
  /// out over the worker pool. Results are byte-identical to calling
  /// Execute (or QueryTcTree) serially on each query.
  std::vector<Result> ExecuteBatch(const std::vector<ServeQuery>& queries);

  /// ParseServeQuery against this service's dictionary.
  StatusOr<ServeQuery> ParseQueryLine(std::string_view line) const {
    return ParseServeQuery(dictionary_, line);
  }

  /// Installs a new tree snapshot and invalidates the cache.
  void SwapSnapshot(TcTree tree);

  /// The current snapshot (shared; stays valid across swaps).
  std::shared_ptr<const TcTree> snapshot() const;

  const ItemDictionary& dictionary() const { return dictionary_; }
  size_t num_threads() const { return pool_.num_threads(); }

  ServeStats& stats() { return stats_; }
  ResultCacheStats cache_stats() const {
    return cache_ ? cache_->Stats() : ResultCacheStats{};
  }
  /// Stats + cache counters in one report.
  ServeReport Report() const { return stats_.Report(cache_stats()); }

 private:
  ItemDictionary dictionary_;
  QueryServiceOptions options_;
  ThreadPool pool_;
  std::unique_ptr<ResultCache> cache_;  // null when caching is disabled
  ServeStats stats_;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const TcTree> snapshot_;
};

}  // namespace tcf

#endif  // TCF_SERVE_QUERY_SERVICE_H_
