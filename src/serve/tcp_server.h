#ifndef TCF_SERVE_TCP_SERVER_H_
#define TCF_SERVE_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "serve/line_protocol.h"
#include "serve/query_service.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tcf {

/// Configuration of a TcpServer.
struct TcpServerOptions {
  /// IPv4 address to bind. The default keeps the server loopback-only;
  /// bind 0.0.0.0 explicitly to accept remote traffic.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read the choice
  /// back from port() after Start — tests and the smoke script do this).
  uint16_t port = 0;
  /// Connection-handler pool size: the number of connections serviced
  /// *concurrently*. Further accepted connections queue until a handler
  /// frees up.
  size_t num_threads = 8;
  /// listen(2) backlog.
  int backlog = 64;
  /// When false, RELOAD answers ERR Unimplemented — for deployments
  /// where the index must only change via restart.
  bool allow_reload = true;
};

/// \brief Line-protocol TCP front end over a QueryService.
///
/// `Start()` binds a POSIX listening socket and spawns one accept
/// thread; each accepted connection is fanned out to the shared
/// `ThreadPool`, where a handler loops reading request lines and writing
/// responses (grammar in serve/line_protocol.h, spec in
/// docs/serve-protocol.md) until the peer sends `QUIT`, disconnects, or
/// the server shuts down. Queries go through `QueryService::Execute`, so
/// remote traffic shares the result cache, the snapshot/epoch machinery,
/// and the latency percentiles with in-process callers; `RELOAD <path>`
/// loads a persisted index and installs it via the epoch-safe
/// `SwapSnapshot`, rolling a rebuilt index in under live traffic.
///
/// Shutdown is graceful and idempotent: the listening socket stops
/// accepting, every open connection is shutdown(2) so blocked reads
/// return, and `Shutdown()` joins the accept thread and drains the
/// handler pool before returning. Connection and byte counters are
/// folded into the service's ServeStats.
class TcpServer {
 public:
  /// `service` must outlive the server.
  explicit TcpServer(QueryService& service,
                     const TcpServerOptions& options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts accepting. IOError on bind/listen
  /// failure (port in use, bad address); InvalidArgument if already
  /// started.
  Status Start();

  /// Stops accepting, disconnects every client, waits for in-flight
  /// handlers. Safe to call twice and from a destructor.
  void Shutdown();

  /// True between a successful Start() and Shutdown().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the kernel's pick when options.port was 0).
  /// Valid after a successful Start().
  uint16_t port() const { return port_; }

  const std::string& bind_address() const { return options_.bind_address; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Executes one parsed request; returns the full response (status line
  /// + payload, newline-terminated). Sets `*quit` on QUIT.
  std::string HandleRequest(const Request& request, bool* quit);

  QueryService& service_;
  TcpServerOptions options_;
  ThreadPool pool_;
  std::thread accept_thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex conn_mu_;
  std::unordered_set<int> open_fds_;
};

}  // namespace tcf

#endif  // TCF_SERVE_TCP_SERVER_H_
