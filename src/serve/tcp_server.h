#ifndef TCF_SERVE_TCP_SERVER_H_
#define TCF_SERVE_TCP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/line_protocol.h"
#include "serve/query_backend.h"
#include "util/deadline.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tcf {

/// Configuration of a TcpServer.
struct TcpServerOptions {
  /// Address to bind — an IPv4 or IPv6 literal. An IPv6 literal (e.g.
  /// `::` or `::1`) gets a dual-stack socket (IPV6_V6ONLY off), so `::`
  /// accepts IPv4 peers too via v4-mapped addresses. The default keeps
  /// the server loopback-only; bind 0.0.0.0 or :: explicitly to accept
  /// remote traffic.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read the choice
  /// back from port() after Start — tests and the smoke script do this).
  uint16_t port = 0;
  /// Request-execution pool size: how many *ready* requests are executed
  /// concurrently. Unrelated to the connection count — idle connections
  /// are parked in epoll and cost a file descriptor, not a thread.
  size_t num_threads = 8;
  /// listen(2) backlog.
  int backlog = 64;
  /// Open-connection cap; further accepts are closed immediately.
  /// 0 = unlimited (bounded only by the process fd limit).
  size_t max_connections = 0;
  /// Write-buffer high-water mark, per connection. A peer that sends
  /// requests but does not read its responses stops being *read* once
  /// this many response bytes are queued for it, and resumes when the
  /// buffer drains below half — so a non-consuming client bounds its
  /// own memory cost instead of growing the server's. (One in-flight
  /// response can still exceed the mark transiently; the cap gates new
  /// work, it does not truncate answers.)
  size_t max_write_buffer = size_t{4} << 20;  // 4 MiB
  /// When false, RELOAD answers ERR Unimplemented — for deployments
  /// where the index must only change via restart.
  bool allow_reload = true;
  /// Streaming-update sink for the UPDATE verb (core/tc_tree_update.h).
  /// Null (the default) answers UPDATE with ERR Unimplemented. The
  /// updater must outlive the server, own the authoritative network for
  /// the served index, and sink its snapshots into the same backend
  /// (QueryBackend::ApplyUpdatedSnapshot) — `tcf serve` wires this when
  /// it has the network to build from.
  IndexUpdater* updater = nullptr;
  /// Default per-request compute budget in milliseconds, applied to any
  /// request that carries no `DEADLINE <ms>` prefix of its own. The
  /// budget covers execution (walk, compose, shard merge); an expired
  /// query answers ERR DeadlineExceeded with its partial-work counters.
  /// 0 = unbounded (the pre-deadline behaviour).
  uint64_t default_deadline_ms = 0;
  /// Per-client token-bucket rate limit, in sustained requests per
  /// second per peer IP (a BATCH/UPDATE body costs its line count;
  /// PING/STATS/METRICS/QUIT are exempt so health checks keep working
  /// under pressure). Client records are keyed by peer address, so the
  /// budget survives reconnects. Over-budget requests answer ERR
  /// RateLimited with a retry-after hint. 0 = off.
  double rate_limit_qps = 0;
  /// Token-bucket capacity (burst allowance). <= 0 defaults to
  /// max(1, rate_limit_qps).
  double rate_limit_burst = 0;
  /// Load-shedding watermark, in request units queued or executing
  /// across all connections (docs/robustness.md). At the watermark,
  /// *large* cold query walks (>= kShedLargeQueryItems items) degrade
  /// to cache-only — a hit still serves, a cold walk answers ERR
  /// RateLimited immediately; at twice the watermark every cold walk is
  /// shed. Lowest-value work goes first, and the server keeps answering
  /// from cache instead of queueing unboundedly. 0 = off.
  size_t shed_watermark = 0;
};

/// Queries with at least this many items count as "large" for load
/// shedding: their walks touch the most subtrees, so they are the
/// first work shed at the watermark.
inline constexpr size_t kShedLargeQueryItems = 4;

/// \brief Line-protocol TCP front end over a QueryBackend
/// (a single-tree QueryService or the sharded scatter-gather router).
///
/// `Start()` binds a POSIX listening socket and spawns one event-loop
/// thread. The loop owns every connection through a level-triggered
/// epoll set: sockets are non-blocking, inbound bytes accumulate in a
/// per-connection read buffer, and only *complete* requests (a framed
/// line, or a full `BATCH <n>` header plus its n query lines) are
/// dispatched onto the shared `ThreadPool` for execution. N idle or
/// slow-trickling connections therefore cost N file descriptors, not N
/// threads — the C10K shape. Responses are handed back to the loop
/// (eventfd wakeup) and written from its per-connection write buffer,
/// with EPOLLOUT armed only while a short write leaves bytes pending.
///
/// Per connection, requests are executed strictly in arrival order and
/// at most one execution task is in flight, so pipelined clients (many
/// requests sent before the first response is read) get responses in
/// request order. Queries go through `QueryBackend::Execute` — and
/// `BATCH` bodies through `QueryBackend::ExecuteBatch` — so remote
/// traffic shares the result cache, the snapshot/epoch machinery, and
/// the latency percentiles with in-process callers; `RELOAD <path>`
/// loads a persisted index and installs it via the epoch-safe
/// `SwapSnapshot`, rolling a rebuilt index in under live traffic.
///
/// Shutdown is graceful and idempotent: the loop stops accepting and
/// exits, in-flight executions drain, and every remaining connection is
/// closed before `Shutdown()` returns. Connection, byte, and batch
/// counters are folded into the service's ServeStats.
class TcpServer {
 public:
  /// `service` must outlive the server.
  explicit TcpServer(QueryBackend& service,
                     const TcpServerOptions& options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the event loop. IOError on bind/listen
  /// failure (port in use, bad address); InvalidArgument if already
  /// started.
  Status Start();

  /// Stops accepting, waits for in-flight request executions, and
  /// disconnects every client. Safe to call twice and from a destructor.
  void Shutdown();

  /// True between a successful Start() and Shutdown().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the kernel's pick when options.port was 0).
  /// Valid after a successful Start().
  uint16_t port() const { return port_; }

  const std::string& bind_address() const { return options_.bind_address; }

 private:
  /// One framed request unit, ready for execution: either a single
  /// request line (possibly a parse error, answered with ERR) or a
  /// complete BATCH / UPDATE with its collected body lines.
  struct Unit {
    StatusOr<Request> request = Status::Internal("unparsed");
    std::vector<std::string> batch_lines;  // kBatch / kUpdate bodies only
    uint64_t wire_bytes = 0;  // request bytes incl. newlines, for stats
  };

  /// Per-client accounting record, keyed by peer IP in `clients_` so it
  /// survives reconnects. Token-bucket state plus counters.
  struct ClientRecord {
    double tokens = 0;
    std::chrono::steady_clock::time_point last_refill{};
    std::chrono::steady_clock::time_point last_seen{};
    uint64_t admitted = 0;
    uint64_t limited = 0;
  };

  /// Per-connection state. Everything except the outbox (mutex-guarded,
  /// written by pool workers) is owned by the event-loop thread.
  struct Conn {
    int fd = -1;
    std::string peer_ip;      // rate-limit key; set at accept, immutable
    std::string in;           // unframed inbound bytes
    std::deque<Unit> queued;  // framed requests not yet dispatched

    // Incremental BATCH / UPDATE framing: header seen, body lines
    // outstanding (both verbs share the collector — at most one body is
    // ever in flight per connection).
    Request batch_header;
    uint64_t batch_header_bytes = 0;
    size_t batch_expect = 0;  // body lines still missing (0 = no batch)
    std::vector<std::string> batch_lines;
    size_t batch_bytes = 0;

    std::string out;          // bytes awaiting write to the socket
    uint32_t interest = 0;    // epoll mask currently registered
    bool paused_read = false; // EPOLLIN dropped: write buffer over the
                              // high-water mark (backpressure)
    bool busy = false;        // an execution task is in flight
    bool read_closed = false; // peer EOF / read error seen
    bool quitting = false;    // QUIT answered: flush, then close

    std::mutex mu;            // guards the two fields below
    std::string outbox;       // responses produced by the worker
    bool worker_quit = false; // the worker executed a QUIT
  };

  void EventLoop();
  void AcceptReady();
  void ReadReady(Conn& conn);
  /// Extracts complete lines from conn.in and frames them into units.
  void FrameRequests(Conn& conn);
  void FrameLine(Conn& conn, std::string line);
  /// Launches one execution task if the connection has framed units and
  /// none in flight.
  void DispatchIfReady(Conn& conn);
  /// Worker-side: executes `units` in order, delivers the concatenated
  /// responses through conn.outbox, and wakes the loop.
  void ExecuteUnits(Conn* conn, std::vector<Unit> units);
  /// Drains the completion queue: moves outboxes into write buffers,
  /// clears busy flags, re-dispatches, flushes.
  void ProcessCompletions();
  void FlushWrites(Conn& conn);
  /// Reconciles the epoll interest mask with the connection's state:
  /// EPOLLOUT while bytes are pending, EPOLLIN unless backpressure has
  /// paused reading.
  void UpdateInterest(Conn& conn);
  /// Closes the socket, deregisters it, and destroys the connection.
  /// Must not be called while conn.busy (a worker still holds the
  /// pointer); busy connections are closed from ProcessCompletions.
  void CloseConn(Conn& conn);
  /// True once the connection has nothing left to do (no pending input,
  /// no in-flight execution, nothing to write) and no way to get more.
  bool Drained(const Conn& conn) const;

  /// Drops every still-queued unit of `conn` (QUIT, protocol
  /// violations), keeping the server-wide pending-unit count honest.
  void DropQueued(Conn& conn);

  /// The effective Deadline for a request: its own `DEADLINE <ms>`
  /// prefix when given, else the server default, else unbounded. The
  /// clock starts when execution starts (queue time is not billed).
  Deadline EffectiveDeadline(const Request& request) const;

  /// True when the load-shedding policy says this query's cold walk
  /// should not run right now (see TcpServerOptions::shed_watermark).
  bool ShedColdWalk(size_t num_items) const;

  /// Token-bucket admission for `peer_ip` at `cost` tokens. On denial
  /// returns false and sets `*retry_after_ms` to when one token's worth
  /// of budget is back.
  bool AdmitClient(const std::string& peer_ip, double cost,
                   double* retry_after_ms);

  /// Executes one parsed request; returns the full response (status line
  /// + payload, newline-terminated). Sets `*quit` on QUIT.
  std::string HandleRequest(const Request& request, bool* quit);
  /// Executes a BATCH body: n query lines through ExecuteBatch, n
  /// back-to-back responses in order. Every slot inherits the batch
  /// header's deadline.
  std::string HandleBatch(const Request& header,
                          const std::vector<std::string>& lines);
  /// Executes an UPDATE body: parses all n update lines, applies them as
  /// one atomic batch through options_.updater, answers with a single
  /// UPDATED summary (or one ERR — a bad line rejects the whole frame).
  std::string HandleUpdate(const std::vector<std::string>& lines);
  /// The kQuery / kExplain paths of HandleRequest: parse and serialize
  /// are timed here (they are transport stages — the service cannot see
  /// them), Execute fills in the middle three.
  std::string HandleQuery(const Request& request);
  std::string HandleExplain(const Request& request);

  QueryBackend& service_;
  TcpServerOptions options_;
  /// Transport-stage histograms (tcf_query_stage_{parse,serialize}_us in
  /// the service's registry); recorded only while the service traces.
  Histogram& parse_us_;
  Histogram& serialize_us_;
  /// Mirror of pending_units_ in the service registry
  /// (tcf_server_pending_units). A Gauge, not a callback: the registry
  /// outlives this server, so a callback capturing `this` would dangle.
  Gauge& pending_units_gauge_;
  ThreadPool pool_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: worker completions + shutdown
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// True while the listen fd is out of the epoll set because accept
  /// hit fd exhaustion; re-armed when a connection closes.
  bool accept_paused_ = false;

  /// Live connections, keyed by fd. Owned by the event-loop thread
  /// while it runs; Shutdown() sweeps leftovers after joining it.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;

  /// Request units framed but not yet executed, across all connections
  /// — the load-shedding pressure signal. Bumped on the loop thread,
  /// drained by workers.
  std::atomic<size_t> pending_units_{0};

  /// Per-client records, keyed by peer IP (decaying LRU, capped at
  /// kMaxClientRecords; least-recently-seen evicted first). Accessed by
  /// pool workers under clients_mu_.
  std::mutex clients_mu_;
  std::unordered_map<std::string, ClientRecord> clients_;

  std::mutex done_mu_;
  std::vector<int> done_fds_;  // connections with a filled outbox
};

}  // namespace tcf

#endif  // TCF_SERVE_TCP_SERVER_H_
