#ifndef TCF_SERVE_QUERY_BACKEND_H_
#define TCF_SERVE_QUERY_BACKEND_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "tx/item_dictionary.h"
#include "util/status.h"

namespace tcf {

/// One online query: a theme plus its cohesion threshold.
struct ServeQuery {
  Itemset items;
  double alpha = 0;
  /// Compute budget for this query. The transport stamps it from the
  /// request's `DEADLINE <ms>` prefix (or the server-wide
  /// `--default-deadline-ms`); in-process callers that leave it
  /// default-constructed get the unbounded pre-deadline behaviour.
  /// An expired budget surfaces as `deadline_exceeded` on the result —
  /// partial work the transport turns into ERR DeadlineExceeded.
  Deadline deadline;
};

/// Largest alpha the serving layer accepts. Cohesion arithmetic is
/// fixed-point with 2^-30 resolution (core/cohesion.h), so thresholds
/// beyond 2^32 would overflow the int64 grid; no real network's edge
/// cohesion gets anywhere near this.
inline constexpr double kMaxServeAlpha = 4294967296.0;  // 2^32

/// Parses one workload line: `alpha;name,name,...`. Item names resolve
/// through `dictionary`; `*` (or an empty item list) means every
/// dictionary item. Free-standing so callers can validate a workload
/// before building/loading the (expensive) index a QueryService needs.
///
/// Rejects — with a 1-based column of the offending token (relative to
/// the line after outer trimming) in the message, so protocol ERR
/// replies and workload-file diagnostics can point at the problem —
/// lines with no `;`, alphas that are non-numeric, carry trailing
/// garbage, are NaN, negative, or exceed kMaxServeAlpha
/// (InvalidArgument / OutOfRange), and empty or unknown item names
/// (InvalidArgument / NotFound).
StatusOr<ServeQuery> ParseServeQuery(const ItemDictionary& dictionary,
                                     std::string_view line);

/// \brief What a transport needs from whatever answers queries.
///
/// TcpServer, the CLI serve loop, and the benches are written against
/// this interface, so a single-tree QueryService and the scatter-gather
/// ShardedQueryService (serve/shard_router.h) are interchangeable
/// behind one `--shards=N` flag. The contract every implementation
/// honours: Execute never returns null, answers are in single-tree BFS
/// retrieval order field-for-field, all entry points are thread-safe,
/// and SwapSnapshot rolls a new index in under live traffic without
/// mixing snapshots inside any one answer.
class QueryBackend {
 public:
  using Result = std::shared_ptr<const TcTreeQueryResult>;

  virtual ~QueryBackend() = default;

  /// Answers one query, consulting caches first. Never returns null.
  Result Execute(const ServeQuery& query) { return Execute(query, nullptr); }

  /// Execute with an explicit trace (the EXPLAIN verb rides on this):
  /// stage spans, walk facts, and total_us are recorded into `*trace`
  /// even when service-wide tracing is off. A null trace falls back to
  /// the backend's tracing option.
  virtual Result Execute(const ServeQuery& query, QueryTrace* trace) = 0;

  /// Answers `queries[i]` into slot i, fanning out over worker threads.
  /// Results are identical to calling Execute serially on each query.
  virtual std::vector<Result> ExecuteBatch(
      const std::vector<ServeQuery>& queries) = 0;

  /// ParseServeQuery against this backend's dictionary.
  virtual StatusOr<ServeQuery> ParseQueryLine(std::string_view line) const = 0;

  /// Installs a new tree snapshot under live traffic (RELOAD).
  virtual void SwapSnapshot(TcTree tree) = 0;

  /// Reloads the index from `path` under live traffic and returns the
  /// pattern-bearing node count installed. A `.tcfi` file (sniffed by
  /// magic) takes the zero-copy path: mmap + O(1) validation + epoch
  /// swap — no parse, no per-node heap build; anything else goes
  /// through the streaming TCFT loader. Every RELOAD surface (the wire
  /// verb, `--watch`, operational tooling) funnels through here so the
  /// format dispatch lives in one place. The default implementation
  /// works for any backend via SwapSnapshot (materializing a mapped
  /// file); QueryService and ShardedQueryService override it to install
  /// mapped snapshots directly.
  virtual StatusOr<size_t> ReloadFromFile(const std::string& path);

  /// Installs an *incrementally updated* snapshot (the UPDATE verb /
  /// IndexUpdater sink; core/tc_tree_update.h). `changed_roots` are the
  /// layer-1 items whose subtrees may differ from the live snapshot's,
  /// and `dirty_items` the items whose patterns changed — backends use
  /// them to bound the work: a sharded backend swaps only the shards
  /// owning a changed root, a caching backend drops only the entries
  /// whose patterns intersect the dirty set and keeps the rest serving.
  /// Returns the number of shard snapshots actually swapped. The
  /// default ignores the hints and does a plain full swap (correct for
  /// any backend; just not targeted).
  virtual size_t ApplyUpdatedSnapshot(TcTree tree,
                                      const std::vector<ItemId>& changed_roots,
                                      const std::vector<ItemId>& dirty_items) {
    (void)changed_roots;
    (void)dirty_items;
    SwapSnapshot(std::move(tree));
    return 1;
  }

  virtual const ItemDictionary& dictionary() const = 0;
  virtual size_t num_threads() const = 0;

  virtual ServeStats& stats() = 0;
  virtual ResultCacheStats cache_stats() const = 0;
  /// Stats + cache counters in one report.
  virtual ServeReport Report() const = 0;

  /// The backend-owned metrics registry (rendered by the METRICS verb).
  /// Transports and build hooks register their own instruments here.
  virtual MetricsRegistry& metrics() = 0;
  /// The slow-query ring (empty while tracing is off or nothing crossed
  /// the threshold).
  virtual const SlowQueryLog& slow_log() const = 0;
  virtual bool tracing_enabled() const = 0;
};

}  // namespace tcf

#endif  // TCF_SERVE_QUERY_BACKEND_H_
