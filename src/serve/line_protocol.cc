#include "serve/line_protocol.h"

#include <array>
#include <cstdlib>

#include "util/string_util.h"

namespace tcf {
namespace {

/// The four admin verbs plus the pipelining verb. Everything else on
/// the request side is a query line (workload-file format).
constexpr std::string_view kPing = "PING";
constexpr std::string_view kStats = "STATS";
constexpr std::string_view kReload = "RELOAD";
constexpr std::string_view kQuit = "QUIT";
constexpr std::string_view kBatch = "BATCH";
constexpr std::string_view kMetrics = "METRICS";
constexpr std::string_view kExplain = "EXPLAIN";
constexpr std::string_view kUpdate = "UPDATE";
constexpr std::string_view kDeadline = "DEADLINE";

/// Update body-line verbs (lower-case: they are data lines, not
/// request verbs, and never collide with the upper-case request space).
constexpr std::string_view kUpdateTx = "tx";
constexpr std::string_view kUpdateEdge = "edge";

/// First whitespace-delimited token of `s`.
std::string_view FirstToken(std::string_view s) {
  const size_t end = s.find_first_of(" \t");
  return end == std::string_view::npos ? s : s.substr(0, end);
}

/// Strips one trailing '\r' (CRLF tolerance — telnet/netcat sessions).
std::string_view StripCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

Status AtColumn(size_t col, const std::string& msg) {
  return Status::InvalidArgument(StrFormat("col %zu: %s", col, msg.c_str()));
}

/// Status codes that may cross the wire, in a fixed order so name<->code
/// translation stays total. kOk is excluded: OK responses use the OK
/// grammar, never an ERR line.
constexpr std::array<Status::Code, 10> kWireCodes = {
    Status::Code::kInvalidArgument,  Status::Code::kNotFound,
    Status::Code::kAlreadyExists,    Status::Code::kOutOfRange,
    Status::Code::kCorruption,       Status::Code::kIOError,
    Status::Code::kUnimplemented,    Status::Code::kInternal,
    Status::Code::kDeadlineExceeded, Status::Code::kRateLimited,
};

StatusOr<Status::Code> CodeFromName(std::string_view name) {
  for (Status::Code code : kWireCodes) {
    if (StatusCodeName(code) == name) return code;
  }
  return Status::InvalidArgument(
      StrFormat("unknown status code '%.*s'", static_cast<int>(name.size()),
                name.data()));
}

Status MakeStatus(Status::Code code, std::string msg) {
  switch (code) {
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case Status::Code::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(msg));
    case Status::Code::kIOError:
      return Status::IOError(std::move(msg));
    case Status::Code::kUnimplemented:
      return Status::Unimplemented(std::move(msg));
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case Status::Code::kRateLimited:
      return Status::RateLimited(std::move(msg));
    default:
      return Status::Internal(std::move(msg));
  }
}

}  // namespace

StatusOr<Request> ParseRequest(std::string_view line) {
  const std::string_view trimmed = Trim(StripCr(line));
  if (trimmed.empty()) return AtColumn(1, "empty request");
  const std::string_view verb = FirstToken(trimmed);
  const std::string_view rest = Trim(trimmed.substr(verb.size()));

  Request request;
  if (verb == kDeadline) {
    // Additive prefix: `DEADLINE <ms> <request...>` bounds the request
    // that follows. Parsed by recursion so every verb (and the query
    // grammar) accepts it uniformly.
    const std::string_view ms_tok = FirstToken(rest);
    auto ms = ParseUint64(ms_tok);
    if (ms_tok.empty() || !ms.ok() || *ms == 0) {
      return AtColumn(verb.size() + 2,
                      "DEADLINE requires a positive millisecond budget, "
                      "'DEADLINE <ms> <request>'");
    }
    auto inner = ParseRequest(Trim(rest.substr(ms_tok.size())));
    if (!inner.ok()) return inner.status();
    if (inner->deadline_ms != 0) {
      return AtColumn(verb.size() + 2, "duplicate DEADLINE prefix");
    }
    inner->deadline_ms = *ms;
    return inner;
  }
  if (verb == kPing || verb == kStats || verb == kQuit ||
      verb == kMetrics) {
    if (!rest.empty()) {
      return AtColumn(verb.size() + 2,
                      StrFormat("verb %.*s takes no arguments",
                                static_cast<int>(verb.size()), verb.data()));
    }
    request.kind = verb == kPing    ? Request::Kind::kPing
                   : verb == kStats ? Request::Kind::kStats
                   : verb == kQuit  ? Request::Kind::kQuit
                                    : Request::Kind::kMetrics;
    return request;
  }
  if (verb == kExplain) {
    if (rest.empty() || rest.find(';') == std::string_view::npos) {
      return AtColumn(verb.size() + 2,
                      "EXPLAIN requires a query line, "
                      "'EXPLAIN alpha;item,...'");
    }
    request.kind = Request::Kind::kExplain;
    request.query_line = std::string(rest);
    return request;
  }
  if (verb == kReload) {
    if (rest.empty()) {
      return AtColumn(verb.size() + 2, "RELOAD requires an index path");
    }
    request.kind = Request::Kind::kReload;
    request.reload_path = std::string(rest);
    return request;
  }
  if (verb == kBatch) {
    auto n = ParseUint64(rest);
    if (rest.empty() || !n.ok()) {
      return AtColumn(verb.size() + 2,
                      "BATCH requires a line count, 'BATCH <n>'");
    }
    if (*n == 0) {
      return AtColumn(verb.size() + 2, "BATCH of 0 lines is meaningless");
    }
    if (*n > kMaxBatchLines) {
      return AtColumn(verb.size() + 2,
                      StrFormat("BATCH of %llu lines exceeds the limit of "
                                "%zu",
                                static_cast<unsigned long long>(*n),
                                kMaxBatchLines));
    }
    request.kind = Request::Kind::kBatch;
    request.batch_size = static_cast<size_t>(*n);
    return request;
  }
  if (verb == kUpdate) {
    auto n = ParseUint64(rest);
    if (rest.empty() || !n.ok()) {
      return AtColumn(verb.size() + 2,
                      "UPDATE requires a line count, 'UPDATE <n>'");
    }
    if (*n == 0) {
      return AtColumn(verb.size() + 2, "UPDATE of 0 lines is meaningless");
    }
    if (*n > kMaxUpdateLines) {
      return AtColumn(verb.size() + 2,
                      StrFormat("UPDATE of %llu lines exceeds the limit of "
                                "%zu",
                                static_cast<unsigned long long>(*n),
                                kMaxUpdateLines));
    }
    request.kind = Request::Kind::kUpdate;
    request.update_size = static_cast<size_t>(*n);
    return request;
  }
  // Not a verb: a query line. Insist on the `alpha;items` separator here
  // so a typo'd verb ("RELAOD /x") fails fast with a protocol error
  // instead of a confusing alpha-parse error downstream.
  if (trimmed.find(';') == std::string_view::npos) {
    return AtColumn(
        1, StrFormat("'%.*s' is neither a verb (PING, STATS, "
                     "RELOAD <path>, QUIT, BATCH <n>, METRICS, "
                     "EXPLAIN <query>, UPDATE <n>, optionally "
                     "prefixed DEADLINE <ms>) nor a query "
                     "'alpha;item,...'",
                     static_cast<int>(verb.size()), verb.data()));
  }
  request.kind = Request::Kind::kQuery;
  request.query_line = std::string(trimmed);
  return request;
}

std::string EncodeRequest(const Request& request) {
  if (request.deadline_ms != 0) {
    Request bare = request;
    bare.deadline_ms = 0;
    return StrFormat("%.*s %llu %s", static_cast<int>(kDeadline.size()),
                     kDeadline.data(),
                     static_cast<unsigned long long>(request.deadline_ms),
                     EncodeRequest(bare).c_str());
  }
  switch (request.kind) {
    case Request::Kind::kPing:
      return std::string(kPing);
    case Request::Kind::kStats:
      return std::string(kStats);
    case Request::Kind::kQuit:
      return std::string(kQuit);
    case Request::Kind::kReload:
      return std::string(kReload) + " " + request.reload_path;
    case Request::Kind::kMetrics:
      return std::string(kMetrics);
    case Request::Kind::kExplain:
      return std::string(kExplain) + " " + request.query_line;
    case Request::Kind::kBatch:
      return StrFormat("%.*s %zu", static_cast<int>(kBatch.size()),
                       kBatch.data(), request.batch_size);
    case Request::Kind::kUpdate:
      return StrFormat("%.*s %zu", static_cast<int>(kUpdate.size()),
                       kUpdate.data(), request.update_size);
    case Request::Kind::kQuery:
      return request.query_line;
  }
  return {};
}

Status ResponseHeader::ToStatus() const {
  if (ok) return Status::OK();
  return MakeStatus(code, message);
}

std::string EncodeOkHeader(std::string_view kind, size_t payload_lines) {
  return StrFormat("%.*s OK %.*s %zu",
                   static_cast<int>(kProtocolVersion.size()),
                   kProtocolVersion.data(), static_cast<int>(kind.size()),
                   kind.data(), payload_lines);
}

std::string EncodeErrHeader(const Status& status) {
  std::string msg = status.message();
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  const std::string_view code = StatusCodeName(status.code());
  return StrFormat("%.*s ERR %.*s %s",
                   static_cast<int>(kProtocolVersion.size()),
                   kProtocolVersion.data(), static_cast<int>(code.size()),
                   code.data(), msg.c_str());
}

StatusOr<ResponseHeader> ParseResponseHeader(std::string_view line) {
  const std::string_view trimmed = Trim(StripCr(line));
  const std::string_view version = FirstToken(trimmed);
  if (version != kProtocolVersion) {
    return AtColumn(1, StrFormat("expected version '%.*s', got '%.*s'",
                                 static_cast<int>(kProtocolVersion.size()),
                                 kProtocolVersion.data(),
                                 static_cast<int>(version.size()),
                                 version.data()));
  }
  std::string_view rest = Trim(trimmed.substr(version.size()));
  const std::string_view disposition = FirstToken(rest);
  rest = Trim(rest.substr(disposition.size()));

  ResponseHeader header;
  if (disposition == "OK") {
    const std::string_view kind = FirstToken(rest);
    const std::string_view count = Trim(rest.substr(kind.size()));
    if (kind.empty() || count.empty()) {
      return AtColumn(version.size() + 4,
                      "OK header needs '<KIND> <payload-lines>'");
    }
    auto n = ParseUint64(count);
    if (!n.ok()) {
      return AtColumn(trimmed.size() - count.size() + 1,
                      "payload-line count is not a number: " +
                          std::string(count));
    }
    header.ok = true;
    header.kind = std::string(kind);
    header.payload_lines = static_cast<size_t>(*n);
    return header;
  }
  if (disposition == "ERR") {
    const std::string_view code_name = FirstToken(rest);
    auto code = CodeFromName(code_name);
    if (!code.ok()) return code.status();
    header.ok = false;
    header.code = *code;
    header.message = std::string(Trim(rest.substr(code_name.size())));
    return header;
  }
  return AtColumn(version.size() + 2,
                  StrFormat("expected OK or ERR, got '%.*s'",
                            static_cast<int>(disposition.size()),
                            disposition.data()));
}

std::string EncodeTruss(const ItemDictionary& dictionary,
                        const PatternTruss& truss) {
  std::string out;
  bool first = true;
  for (ItemId item : truss.pattern.items()) {
    if (!first) out += ',';
    out += dictionary.Name(item);
    first = false;
  }
  out += '|';
  first = true;
  for (VertexId v : truss.vertices) {
    if (!first) out += ' ';
    out += std::to_string(v);
    first = false;
  }
  out += '|';
  first = true;
  for (const Edge& e : truss.edges) {
    if (!first) out += ' ';
    out += std::to_string(e.u);
    out += '-';
    out += std::to_string(e.v);
    first = false;
  }
  return out;
}

StatusOr<WireTruss> DecodeTruss(std::string_view line) {
  const std::string_view trimmed = StripCr(line);
  const size_t bar1 = trimmed.find('|');
  const size_t bar2 =
      bar1 == std::string_view::npos ? bar1 : trimmed.find('|', bar1 + 1);
  if (bar2 == std::string_view::npos) {
    return AtColumn(trimmed.size() + 1,
                    "truss line needs 'names|vertices|edges'");
  }
  if (trimmed.find('|', bar2 + 1) != std::string_view::npos) {
    return AtColumn(trimmed.find('|', bar2 + 1) + 1,
                    "truss line has more than three '|' fields");
  }

  WireTruss truss;
  const std::string_view names = trimmed.substr(0, bar1);
  if (!Trim(names).empty()) {
    for (const std::string& name : Split(names, ',')) {
      const std::string_view t = Trim(name);
      if (t.empty()) return AtColumn(1, "empty item name in pattern");
      truss.pattern.emplace_back(t);
    }
  }
  const size_t vertex_col = bar1 + 2;
  for (const std::string& tok :
       SplitWhitespace(trimmed.substr(bar1 + 1, bar2 - bar1 - 1))) {
    auto v = ParseUint64(tok);
    if (!v.ok() || *v >= kInvalidVertex) {  // the sentinel is not an id
      return AtColumn(vertex_col, "bad vertex id '" + tok + "'");
    }
    truss.vertices.push_back(static_cast<VertexId>(*v));
  }
  const size_t edge_col = bar2 + 2;
  for (const std::string& tok : SplitWhitespace(trimmed.substr(bar2 + 1))) {
    const size_t dash = tok.find('-');
    if (dash == std::string::npos) {
      return AtColumn(edge_col, "edge '" + tok + "' is not 'u-v'");
    }
    auto u = ParseUint64(std::string_view(tok).substr(0, dash));
    auto v = ParseUint64(std::string_view(tok).substr(dash + 1));
    if (!u.ok() || !v.ok() || *u >= kInvalidVertex || *v >= kInvalidVertex) {
      return AtColumn(edge_col, "bad edge '" + tok + "'");
    }
    truss.edges.push_back(
        {static_cast<VertexId>(*u), static_cast<VertexId>(*v)});
  }
  return truss;
}

std::string EncodeQueryLine(const ItemDictionary& dictionary,
                            const ServeQuery& query) {
  // %.17g survives the double -> text -> double round trip bit-exactly,
  // so a replayed query quantizes to the same alpha grid point.
  std::string out = StrFormat("%.17g;", query.alpha);
  bool first = true;
  for (ItemId item : query.items.items()) {
    if (!first) out += ',';
    out += dictionary.Name(item);
    first = false;
  }
  return out;
}

Status ParseUpdateLine(const ItemDictionary& dictionary,
                       std::string_view line, NetworkUpdate* update) {
  const std::string_view trimmed = Trim(StripCr(line));
  if (trimmed.empty()) return AtColumn(1, "empty update line");
  const std::string_view verb = FirstToken(trimmed);
  const std::string_view rest = Trim(trimmed.substr(verb.size()));

  if (verb == kUpdateTx) {
    const std::string_view vertex_tok = FirstToken(rest);
    auto v = ParseUint64(vertex_tok);
    if (vertex_tok.empty() || !v.ok() || *v >= kInvalidVertex) {
      return AtColumn(verb.size() + 2,
                      "tx needs 'tx <vertex> <name,name,...>'");
    }
    const std::string_view names = Trim(rest.substr(vertex_tok.size()));
    if (names.empty()) {
      return AtColumn(trimmed.size() + 1, "tx has no item names");
    }
    std::vector<ItemId> ids;
    for (const std::string& name : Split(names, ',')) {
      const std::string_view t = Trim(name);
      if (t.empty()) {
        return AtColumn(trimmed.size() - names.size() + 1,
                        "empty item name in tx");
      }
      auto id = dictionary.Find(t);
      if (!id.ok()) {
        // Streaming updates reuse the built vocabulary; a new item needs
        // a dictionary rebuild (RELOAD), so surface it as NotFound.
        return Status::NotFound(
            StrFormat("unknown item '%.*s' (streaming updates may only "
                      "use items the index was built over)",
                      static_cast<int>(t.size()), t.data()));
      }
      ids.push_back(*id);
    }
    NetworkUpdate::TxInsert tx;
    tx.vertex = static_cast<VertexId>(*v);
    tx.items = Itemset(std::move(ids));
    update->transactions.push_back(std::move(tx));
    return Status::OK();
  }

  if (verb == kUpdateEdge) {
    const std::string_view u_tok = FirstToken(rest);
    const std::string_view v_tok = Trim(rest.substr(u_tok.size()));
    auto u = ParseUint64(u_tok);
    auto v = ParseUint64(v_tok);
    if (u_tok.empty() || v_tok.empty() || !u.ok() || !v.ok() ||
        v_tok.find_first_of(" \t") != std::string_view::npos ||
        *u >= kInvalidVertex || *v >= kInvalidVertex) {
      return AtColumn(verb.size() + 2, "edge needs 'edge <u> <v>'");
    }
    update->edges.push_back(
        {static_cast<VertexId>(*u), static_cast<VertexId>(*v)});
    return Status::OK();
  }

  return AtColumn(1, StrFormat("'%.*s' is not an update line ('tx "
                               "<vertex> <name,...>' or 'edge <u> <v>')",
                               static_cast<int>(verb.size()), verb.data()));
}

std::vector<std::string> EncodeUpdate(const ItemDictionary& dictionary,
                                      const NetworkUpdate& update) {
  std::vector<std::string> lines;
  lines.reserve(update.transactions.size() + update.edges.size());
  for (const NetworkUpdate::TxInsert& tx : update.transactions) {
    std::string out = StrFormat("%.*s %llu ",
                                static_cast<int>(kUpdateTx.size()),
                                kUpdateTx.data(),
                                static_cast<unsigned long long>(tx.vertex));
    bool first = true;
    for (ItemId item : tx.items.items()) {
      if (!first) out += ',';
      out += dictionary.Name(item);
      first = false;
    }
    lines.push_back(std::move(out));
  }
  for (const Edge& e : update.edges) {
    lines.push_back(StrFormat("%.*s %llu %llu",
                              static_cast<int>(kUpdateEdge.size()),
                              kUpdateEdge.data(),
                              static_cast<unsigned long long>(e.u),
                              static_cast<unsigned long long>(e.v)));
  }
  return lines;
}

std::vector<std::string> EncodeUpdateOutcome(const UpdateOutcome& outcome) {
  std::vector<std::string> lines;
  auto add_u = [&lines](const char* key, uint64_t value) {
    lines.push_back(StrFormat("%s %llu", key,
                              static_cast<unsigned long long>(value)));
  };
  auto add_d = [&lines](const char* key, double value) {
    lines.push_back(StrFormat("%s %.6g", key, value));
  };
  add_u("update_txs", outcome.transactions);
  add_u("update_edges", outcome.edges);
  add_u("dirty_items", outcome.dirty_items);
  add_u("changed_roots", outcome.changed_roots);
  add_u("shards_swapped", outcome.shards_swapped);
  add_u("nodes", outcome.tree_nodes);
  add_u("copied", outcome.stats.copied);
  add_u("recomputed", outcome.stats.recomputed);
  add_u("full_rebuild", outcome.stats.full_rebuild ? 1 : 0);
  add_d("update_ms", outcome.apply_ms);
  return lines;
}

std::vector<std::string> EncodeStats(const ServeReport& report) {
  std::vector<std::string> lines;
  auto add_u = [&lines](const char* key, uint64_t value) {
    lines.push_back(StrFormat("%s %llu", key,
                              static_cast<unsigned long long>(value)));
  };
  auto add_d = [&lines](const char* key, double value) {
    lines.push_back(StrFormat("%s %.6g", key, value));
  };
  add_u("queries", report.queries);
  add_u("trusses_returned", report.trusses_returned);
  add_d("wall_seconds", report.wall_seconds);
  add_d("qps", report.qps);
  add_d("mean_us", report.mean_us);
  add_d("p50_us", report.p50_us);
  add_d("p90_us", report.p90_us);
  add_d("p99_us", report.p99_us);
  add_d("max_us", report.max_us);
  add_u("cache_hits", report.cache.hits);
  add_u("cache_misses", report.cache.misses);
  add_d("cache_hit_rate", report.cache.HitRate());
  add_u("cache_entries", report.cache.entries);
  add_u("cache_bytes", report.cache.bytes);
  add_u("snapshot_swaps", report.cache.invalidations);
  add_u("connections_accepted", report.connections_accepted);
  add_u("connections_active", report.connections_active);
  add_u("connections_peak", report.connections_peak);
  add_u("bytes_in", report.bytes_in);
  add_u("bytes_out", report.bytes_out);
  add_u("batches", report.batches);
  add_u("batch_queries", report.batch_queries);
  add_u("batch_max_depth", report.batch_max_depth);
  // Subset-composable cache counters — appended at the end, per the
  // STATS compatibility rule (docs/serve-protocol.md).
  add_u("cache_partial_hits", report.cache.partial_hits);
  add_u("cache_composed_queries", report.cache.composed_queries);
  add_u("cache_admission_rejects", report.cache.admission_rejects);
  // Snapshot-roll counters — appended after the cache block, same rule.
  add_u("reloads", report.reloads);
  add_d("last_reload_ms", report.last_reload_ms);
  // Shard counters — appended after the snapshot-roll block, same rule.
  // All zero (shards 0) on an unsharded backend.
  add_u("shards", report.shards);
  add_u("shard_queries", report.shard_queries);
  add_d("shard_reload_ms", report.shard_reload_ms);
  // Streaming-update counters — appended after the shard block, same
  // rule. All zero while no UPDATE has been accepted.
  add_u("updates", report.updates);
  add_u("update_txs", report.update_txs);
  add_u("update_edges", report.update_edges);
  add_u("update_dirty_items", report.update_dirty_items);
  add_u("update_shards_swapped", report.update_shards_swapped);
  add_d("last_update_ms", report.last_update_ms);
  // Overload-protection counters — appended after the update block,
  // same rule. All zero while no deadline expired and nothing was
  // refused.
  add_u("deadline_exceeded", report.deadline_exceeded);
  add_u("rate_limited", report.rate_limited);
  add_u("shed", report.shed);
  add_u("clients_tracked", report.clients_tracked);
  return lines;
}

std::vector<std::string> EncodeExplain(const QueryTrace& trace) {
  std::vector<std::string> lines;
  auto add_u = [&lines](const char* key, uint64_t value) {
    lines.push_back(StrFormat("%s %llu", key,
                              static_cast<unsigned long long>(value)));
  };
  auto add_d = [&lines](const std::string& key, double value) {
    lines.push_back(StrFormat("%s %.6g", key.c_str(), value));
  };
  for (size_t i = 0; i < kNumQueryStages; ++i) {
    const std::string name(QueryStageName(static_cast<QueryStage>(i)));
    add_d("stage_" + name + "_us", trace.stage_wall_us[i]);
  }
  for (size_t i = 0; i < kNumQueryStages; ++i) {
    const std::string name(QueryStageName(static_cast<QueryStage>(i)));
    add_d("stage_" + name + "_cpu_us", trace.stage_cpu_us[i]);
  }
  add_d("total_us", trace.total_us);
  add_u("visited_nodes", trace.visited_nodes);
  add_u("retrieved_nodes", trace.retrieved_nodes);
  add_u("pruned_subtrees", trace.pruned_subtrees);
  add_u("covers_used", trace.covers_used);
  add_u("trusses", trace.trusses);
  add_u("cache_hit", trace.cache_hit ? 1 : 0);
  add_u("composed", trace.composed ? 1 : 0);
  // Appended (additive TCF1 rule): scatter fan-out of this query, 0 on
  // an unsharded backend.
  add_u("shards_probed", trace.shards_probed);
  // Appended (same rule): streaming updates the backend had applied
  // when this query ran — ties a trace to an index freshness point.
  add_u("updates_applied", trace.updates_applied);
  // Appended (same rule): whether the walk/merge was cut short by the
  // request deadline — the walk facts above are then partial-work
  // counters, not a full answer's.
  add_u("deadline_exceeded", trace.deadline_exceeded ? 1 : 0);
  return lines;
}

StatusOr<std::vector<std::pair<std::string, std::string>>> DecodeStats(
    const std::vector<std::string>& payload) {
  std::vector<std::pair<std::string, std::string>> stats;
  for (const std::string& line : payload) {
    const std::string_view trimmed = Trim(StripCr(line));
    const std::string_view key = FirstToken(trimmed);
    const std::string_view value = Trim(trimmed.substr(key.size()));
    if (key.empty() || value.empty()) {
      return Status::InvalidArgument("stats line '" + line +
                                     "' is not 'key value'");
    }
    stats.emplace_back(std::string(key), std::string(value));
  }
  return stats;
}

}  // namespace tcf
