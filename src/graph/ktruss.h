#ifndef TCF_GRAPH_KTRUSS_H_
#define TCF_GRAPH_KTRUSS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tcf {

/// \brief Cohen's classic k-truss (related work, §2.1), kept as a
/// substrate both for the special-case equivalence of pattern trusses
/// (Def. 3.3: f ≡ 1 and α = k−3 makes a pattern truss a k-truss) and for
/// the equivalence tests against MPTD.

/// Edges of the maximal k-truss of `g`: the maximal subgraph whose every
/// edge is contained in at least k−2 triangles of the subgraph. Requires
/// k >= 2 (k = 2 returns all edges).
std::vector<Edge> KTrussEdges(const Graph& g, uint32_t k);

/// Truss decomposition: for every edge, the largest k such that the edge
/// belongs to the k-truss ("trussness"). Edges outside any triangle get 2.
std::vector<uint32_t> TrussDecomposition(const Graph& g);

/// Exhaustive fixpoint reference for tests: repeatedly delete edges with
/// subgraph-support < k−2 until stable.
std::vector<Edge> KTrussEdgesBruteForce(const Graph& g, uint32_t k);

}  // namespace tcf

#endif  // TCF_GRAPH_KTRUSS_H_
