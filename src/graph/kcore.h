#ifndef TCF_GRAPH_KCORE_H_
#define TCF_GRAPH_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tcf {

/// \brief k-core decomposition (Seidman; related work §2.1).
///
/// The core number of a vertex is the largest k such that the vertex
/// belongs to a subgraph of minimum degree k. A connected k-truss is a
/// (k−1)-core, which the tests verify against MPTD's special case.

/// Core number per vertex (Matula–Beck peeling, O(n + m)).
std::vector<uint32_t> CoreDecomposition(const Graph& g);

/// Vertices of the maximal k-core (possibly empty), ascending.
std::vector<VertexId> KCoreVertices(const Graph& g, uint32_t k);

}  // namespace tcf

#endif  // TCF_GRAPH_KCORE_H_
