#include "graph/kcore.h"

#include <algorithm>

namespace tcf {

std::vector<uint32_t> CoreDecomposition(const Graph& g) {
  const size_t n = g.num_vertices();
  std::vector<uint32_t> deg(n);
  uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = static_cast<uint32_t>(g.degree(v));
    max_deg = std::max(max_deg, deg[v]);
  }

  // Bucket sort vertices by degree (Matula–Beck).
  std::vector<uint32_t> bin(max_deg + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[deg[v]];
  uint32_t start = 0;
  for (uint32_t d = 0; d <= max_deg; ++d) {
    uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> order(n);
  std::vector<uint32_t> pos(n);
  {
    std::vector<uint32_t> next = bin;
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = next[deg[v]]++;
      order[pos[v]] = v;
    }
  }

  std::vector<uint32_t> core(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    core[v] = deg[v];
    for (const Neighbor& nb : g.neighbors(v)) {
      const VertexId u = nb.vertex;
      if (deg[u] > deg[v]) {
        // Move u one bucket down: swap into the head of its bucket.
        const uint32_t du = deg[u];
        const uint32_t pu = pos[u];
        const uint32_t pw = bin[du];
        const VertexId w = order[pw];
        if (u != w) {
          std::swap(order[pu], order[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --deg[u];
      }
    }
  }
  return core;
}

std::vector<VertexId> KCoreVertices(const Graph& g, uint32_t k) {
  auto core = CoreDecomposition(g);
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (core[v] >= k) out.push_back(v);
  }
  return out;
}

}  // namespace tcf
