#include "graph/random_graphs.h"

#include <algorithm>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace tcf {

namespace {
uint64_t PairKey(VertexId a, VertexId b) {
  Edge e = MakeEdge(a, b);
  return (static_cast<uint64_t>(e.u) << 32) | e.v;
}
}  // namespace

Graph ErdosRenyi(size_t n, size_t m, Rng& rng) {
  GraphBuilder builder(n);
  if (n < 2) return builder.Build();
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  m = static_cast<size_t>(std::min<uint64_t>(m, max_edges));

  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    VertexId a = static_cast<VertexId>(rng.NextUint64(n));
    VertexId b = static_cast<VertexId>(rng.NextUint64(n));
    if (a == b) continue;
    if (seen.insert(PairKey(a, b)).second) {
      TCF_CHECK(builder.AddEdge(a, b).ok());
    }
  }
  return builder.Build();
}

Graph BarabasiAlbert(size_t n, size_t attach, Rng& rng) {
  TCF_CHECK_MSG(attach >= 1, "BarabasiAlbert requires attach >= 1");
  const size_t m0 = attach + 1;
  GraphBuilder builder(n);
  if (n <= m0) {
    // Too small for attachment: emit a clique on n vertices.
    for (VertexId a = 0; a < n; ++a) {
      for (VertexId b = a + 1; b < n; ++b) {
        TCF_CHECK(builder.AddEdge(a, b).ok());
      }
    }
    return builder.Build();
  }

  // `targets` holds one entry per edge endpoint, so uniform sampling from
  // it is degree-proportional sampling.
  std::vector<VertexId> targets;
  targets.reserve(2 * attach * n);
  for (VertexId a = 0; a < m0; ++a) {
    for (VertexId b = a + 1; b < m0; ++b) {
      TCF_CHECK(builder.AddEdge(a, b).ok());
      targets.push_back(a);
      targets.push_back(b);
    }
  }
  for (VertexId v = static_cast<VertexId>(m0); v < n; ++v) {
    std::unordered_set<VertexId> chosen;
    while (chosen.size() < attach) {
      VertexId t = targets[rng.NextUint64(targets.size())];
      chosen.insert(t);
    }
    for (VertexId t : chosen) {
      TCF_CHECK(builder.AddEdge(v, t).ok());
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return builder.Build();
}

Graph WattsStrogatz(size_t n, size_t k, double beta, Rng& rng) {
  TCF_CHECK_MSG(k >= 1, "WattsStrogatz requires k >= 1");
  GraphBuilder builder(n);
  if (n < 3) {
    if (n == 2) TCF_CHECK(builder.AddEdge(0, 1).ok());
    return builder.Build();
  }
  k = std::min(k, (n - 1) / 2);

  std::unordered_set<uint64_t> present;
  auto add = [&](VertexId a, VertexId b) {
    if (a == b) return false;
    if (!present.insert(PairKey(a, b)).second) return false;
    TCF_CHECK(builder.AddEdge(a, b).ok());
    return true;
  };

  for (VertexId v = 0; v < n; ++v) {
    for (size_t off = 1; off <= k; ++off) {
      VertexId u = static_cast<VertexId>((v + off) % n);
      if (rng.NextBool(beta)) {
        // Rewire: random endpoint avoiding self-loops and duplicates.
        for (int tries = 0; tries < 32; ++tries) {
          VertexId w = static_cast<VertexId>(rng.NextUint64(n));
          if (add(v, w)) break;
        }
      } else {
        add(v, u);
      }
    }
  }
  return builder.Build();
}

}  // namespace tcf
