#include "graph/graph.h"

#include <algorithm>

namespace tcf {

EdgeId Graph::FindEdge(VertexId a, VertexId b) const {
  if (a >= adjacency_.size() || b >= adjacency_.size()) return kInvalidEdge;
  // Search the shorter adjacency list.
  if (adjacency_[a].size() > adjacency_[b].size()) std::swap(a, b);
  const auto& adj = adjacency_[a];
  auto it = std::lower_bound(
      adj.begin(), adj.end(), b,
      [](const Neighbor& n, VertexId v) { return n.vertex < v; });
  if (it != adj.end() && it->vertex == b) return it->edge;
  return kInvalidEdge;
}

uint64_t Graph::SumDegreeSquared() const {
  uint64_t sum = 0;
  for (const auto& adj : adjacency_) {
    sum += static_cast<uint64_t>(adj.size()) * adj.size();
  }
  return sum;
}

}  // namespace tcf
