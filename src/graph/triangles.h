#ifndef TCF_GRAPH_TRIANGLES_H_
#define TCF_GRAPH_TRIANGLES_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"

namespace tcf {

/// \brief Triangle enumeration over sorted adjacency lists.
///
/// Every triangle containing edge {u, v} corresponds to one common
/// neighbour w of u and v (§3.2), so enumeration is a sorted-merge of the
/// two adjacency lists, O(deg(u) + deg(v)) per edge and O(Σ d²(v)) total —
/// the complexity bound MPTD inherits (§4.1).

/// Calls `fn(w, e_uw, e_vw)` for every common neighbour w of edge `e`'s
/// endpoints. `alive` (optional) masks deleted edges: a triangle is
/// reported only if both wing edges (and implicitly `e` itself) are alive.
void ForEachTriangle(const Graph& g, EdgeId e,
                     const std::vector<uint8_t>* alive,
                     const std::function<void(VertexId, EdgeId, EdgeId)>& fn);

/// Number of triangles containing each edge (the classic "edge support").
std::vector<uint32_t> CountEdgeTriangles(const Graph& g);

/// Total number of distinct triangles in `g`.
uint64_t CountTriangles(const Graph& g);

/// Exhaustive O(n³) reference counter for tests.
uint64_t CountTrianglesBruteForce(const Graph& g);

}  // namespace tcf

#endif  // TCF_GRAPH_TRIANGLES_H_
