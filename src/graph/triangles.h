#ifndef TCF_GRAPH_TRIANGLES_H_
#define TCF_GRAPH_TRIANGLES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tcf {

/// \brief Triangle enumeration over sorted adjacency lists.
///
/// Every triangle containing edge {u, v} corresponds to one common
/// neighbour w of u and v (§3.2), so enumeration is a sorted-merge of the
/// two adjacency lists, O(deg(u) + deg(v)) per edge and O(Σ d²(v)) total —
/// the complexity bound MPTD inherits (§4.1).

/// Calls `fn(w, e_uw, e_vw)` for every common neighbour w of edge `e`'s
/// endpoints. `alive` (optional) masks deleted edges: a triangle is
/// reported only if both wing edges (and implicitly `e` itself) are alive.
///
/// `fn` is a template parameter — not a `std::function` — so the callback
/// inlines into the merge loop; this enumeration sits on the k-truss
/// peeling hot path (`graph/ktruss.cc`), where one indirect call per
/// triangle is measurable (`bench_micro`'s BM_EdgeSupport pair shows the
/// delta).
template <typename Fn>
void ForEachTriangle(const Graph& g, EdgeId e,
                     const std::vector<uint8_t>* alive, Fn&& fn) {
  const Edge& edge = g.edge(e);
  auto a = g.neighbors(edge.u);
  auto b = g.neighbors(edge.v);
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].vertex < b[j].vertex) {
      ++i;
    } else if (a[i].vertex > b[j].vertex) {
      ++j;
    } else {
      const VertexId w = a[i].vertex;
      const EdgeId e_uw = a[i].edge;
      const EdgeId e_vw = b[j].edge;
      // w == u or w == v is impossible in a simple graph.
      if (alive == nullptr || ((*alive)[e_uw] && (*alive)[e_vw])) {
        fn(w, e_uw, e_vw);
      }
      ++i;
      ++j;
    }
  }
}

/// Number of triangles containing each edge (the classic "edge support").
std::vector<uint32_t> CountEdgeTriangles(const Graph& g);

/// Total number of distinct triangles in `g`.
uint64_t CountTriangles(const Graph& g);

/// Exhaustive O(n³) reference counter for tests.
uint64_t CountTrianglesBruteForce(const Graph& g);

}  // namespace tcf

#endif  // TCF_GRAPH_TRIANGLES_H_
