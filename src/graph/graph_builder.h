#ifndef TCF_GRAPH_GRAPH_BUILDER_H_
#define TCF_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tcf {

/// \brief Accumulates edges and produces an immutable `Graph`.
///
/// Self-loops are rejected; duplicate edges are coalesced (the graph is
/// simple). Vertex count grows to cover the largest endpoint unless fixed
/// up-front with `ReserveVertices`.
class GraphBuilder {
 public:
  GraphBuilder() = default;
  /// Pre-declares `n` vertices (ids 0..n-1), possibly isolated.
  explicit GraphBuilder(size_t n) : num_vertices_(n) {}

  /// Ensures the graph has at least `n` vertices.
  void ReserveVertices(size_t n);

  /// Adds undirected edge {a, b}. Self-loops return InvalidArgument.
  /// Duplicates are accepted and coalesced at Build time.
  Status AddEdge(VertexId a, VertexId b);

  size_t num_pending_edges() const { return pending_.size(); }

  /// Sorts, dedups, assigns edge ids in canonical (u,v) order and builds
  /// sorted adjacency. The builder is left empty.
  Graph Build();

 private:
  size_t num_vertices_ = 0;
  std::vector<Edge> pending_;
};

}  // namespace tcf

#endif  // TCF_GRAPH_GRAPH_BUILDER_H_
