#ifndef TCF_GRAPH_COMPONENTS_H_
#define TCF_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tcf {

/// \brief Connected components over a graph or an edge-induced subgraph.
///
/// Theme communities are the maximal connected subgraphs of a maximal
/// pattern truss (Def. 3.5), so community extraction is exactly
/// `ConnectedComponentsOfEdges` over the truss's edge set.

/// Component label per vertex (0-based, dense). Isolated vertices get
/// their own component.
struct ComponentLabels {
  std::vector<uint32_t> label;  // size = num vertices
  uint32_t num_components = 0;
};

/// Components of the full graph (isolated vertices included).
ComponentLabels ConnectedComponents(const Graph& g);

/// Components of the subgraph induced by `edges` (given as endpoint
/// pairs). Only vertices incident to at least one listed edge belong to a
/// component; each inner vector lists one component's vertices, sorted.
/// Components are ordered by their smallest vertex.
std::vector<std::vector<VertexId>> ConnectedComponentsOfEdges(
    const std::vector<Edge>& edges);

/// Splits `edges` into per-component edge lists, aligned with the vertex
/// components returned by `ConnectedComponentsOfEdges`.
std::vector<std::vector<Edge>> GroupEdgesByComponent(
    const std::vector<Edge>& edges);

}  // namespace tcf

#endif  // TCF_GRAPH_COMPONENTS_H_
