#ifndef TCF_GRAPH_GRAPH_H_
#define TCF_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace tcf {

/// Dense vertex identifier, 0-based.
using VertexId = uint32_t;
/// Dense edge identifier, 0-based.
using EdgeId = uint32_t;

constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);
constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// An undirected edge; canonical form keeps u < v.
struct Edge {
  VertexId u;
  VertexId v;

  bool operator==(const Edge& o) const { return u == o.u && v == o.v; }
  bool operator<(const Edge& o) const {
    return u != o.u ? u < o.u : v < o.v;
  }
};

/// Canonicalizes an unordered vertex pair to (min, max).
inline Edge MakeEdge(VertexId a, VertexId b) {
  return a < b ? Edge{a, b} : Edge{b, a};
}

/// One adjacency entry: the neighbour and the id of the connecting edge.
struct Neighbor {
  VertexId vertex;
  EdgeId edge;
};

/// \brief Immutable, simple (no self-loops, no multi-edges) undirected
/// graph with dense vertex and edge ids.
///
/// Adjacency lists are sorted by neighbour id, which makes triangle
/// enumeration a sorted-merge intersection and edge lookup a binary
/// search. Algorithms that delete edges (MPTD, k-truss) keep their own
/// per-edge alive bitmaps; the `Graph` itself never mutates after
/// `GraphBuilder::Build`.
class Graph {
 public:
  Graph() = default;

  size_t num_vertices() const { return adjacency_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Endpoints of edge `e`, with `u < v`.
  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Sorted adjacency of `v`.
  std::span<const Neighbor> neighbors(VertexId v) const {
    return adjacency_[v];
  }

  size_t degree(VertexId v) const { return adjacency_[v].size(); }

  /// Id of edge {a, b}, or kInvalidEdge if absent. O(log deg).
  EdgeId FindEdge(VertexId a, VertexId b) const;

  bool HasEdge(VertexId a, VertexId b) const {
    return FindEdge(a, b) != kInvalidEdge;
  }

  /// Sum over vertices of degree² — the MPTD complexity measure
  /// O(Σ d²(v)) from §4.1; reported by the stats module.
  uint64_t SumDegreeSquared() const;

 private:
  friend class GraphBuilder;

  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adjacency_;
};

}  // namespace tcf

#endif  // TCF_GRAPH_GRAPH_H_
