#include "graph/ktruss.h"

#include <algorithm>
#include <queue>

#include "graph/triangles.h"

namespace tcf {

std::vector<Edge> KTrussEdges(const Graph& g, uint32_t k) {
  const uint32_t need = k >= 2 ? k - 2 : 0;
  std::vector<uint32_t> support = CountEdgeTriangles(g);
  std::vector<uint8_t> alive(g.num_edges(), 1);

  std::queue<EdgeId> q;
  std::vector<uint8_t> queued(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (support[e] < need) {
      q.push(e);
      queued[e] = 1;
    }
  }
  while (!q.empty()) {
    EdgeId e = q.front();
    q.pop();
    if (!alive[e]) continue;
    alive[e] = 0;
    ForEachTriangle(g, e, &alive, [&](VertexId, EdgeId e1, EdgeId e2) {
      for (EdgeId wing : {e1, e2}) {
        if (support[wing] > 0) --support[wing];
        if (alive[wing] && !queued[wing] && support[wing] < need) {
          q.push(wing);
          queued[wing] = 1;
        }
      }
    });
  }

  std::vector<Edge> out;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (alive[e]) out.push_back(g.edge(e));
  }
  return out;
}

std::vector<uint32_t> TrussDecomposition(const Graph& g) {
  std::vector<uint32_t> support = CountEdgeTriangles(g);
  std::vector<uint8_t> alive(g.num_edges(), 1);
  std::vector<uint32_t> trussness(g.num_edges(), 2);

  // Peel in ascending support order. Bucket queue over support values.
  const size_t m = g.num_edges();
  std::vector<std::vector<EdgeId>> bucket;
  auto push_bucket = [&](EdgeId e) {
    const uint32_t s = support[e];
    if (bucket.size() <= s) bucket.resize(s + 1);
    bucket[s].push_back(e);
  };
  for (EdgeId e = 0; e < m; ++e) push_bucket(e);

  uint32_t k = 2;
  size_t remaining = m;
  uint32_t level = 0;  // current minimum support scanned
  while (remaining > 0) {
    while (level < bucket.size() && bucket[level].empty()) ++level;
    if (level >= bucket.size()) break;
    EdgeId e = bucket[level].back();
    bucket[level].pop_back();
    if (!alive[e] || support[e] != level) continue;  // stale entry
    k = std::max(k, level + 2);
    trussness[e] = k;
    alive[e] = 0;
    --remaining;
    ForEachTriangle(g, e, &alive, [&](VertexId, EdgeId e1, EdgeId e2) {
      for (EdgeId wing : {e1, e2}) {
        if (support[wing] > 0) {
          --support[wing];
          push_bucket(wing);
          if (support[wing] < level) level = support[wing];
        }
      }
    });
  }
  return trussness;
}

std::vector<Edge> KTrussEdgesBruteForce(const Graph& g, uint32_t k) {
  const uint32_t need = k >= 2 ? k - 2 : 0;
  std::vector<uint8_t> alive(g.num_edges(), 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!alive[e]) continue;
      uint32_t s = 0;
      ForEachTriangle(g, e, &alive, [&](VertexId, EdgeId, EdgeId) { ++s; });
      if (s < need) {
        alive[e] = 0;
        changed = true;
      }
    }
  }
  std::vector<Edge> out;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (alive[e]) out.push_back(g.edge(e));
  }
  return out;
}

}  // namespace tcf
