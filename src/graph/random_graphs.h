#ifndef TCF_GRAPH_RANDOM_GRAPHS_H_
#define TCF_GRAPH_RANDOM_GRAPHS_H_

#include <cstddef>

#include "graph/graph.h"
#include "util/rng.h"

namespace tcf {

/// \brief Random graph models used by the dataset generators.
///
/// The paper's SYN dataset uses a JUNG-generated network; BK/GW are
/// small-world friendship graphs; AMINER is a heavy-tailed collaboration
/// graph. We provide the three standard models those observations map to.

/// Erdős–Rényi G(n, m): `m` distinct uniform edges over `n` vertices.
/// m is clamped to n*(n-1)/2.
Graph ErdosRenyi(size_t n, size_t m, Rng& rng);

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m0 = attach + 1` vertices, then each new vertex attaches to `attach`
/// existing vertices chosen proportionally to degree. Heavy-tailed degree
/// distribution, as in collaboration networks.
Graph BarabasiAlbert(size_t n, size_t attach, Rng& rng);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbours
/// per side rewired with probability `beta`. High clustering + short
/// paths, as in friendship networks. `k` must be >= 1.
Graph WattsStrogatz(size_t n, size_t k, double beta, Rng& rng);

}  // namespace tcf

#endif  // TCF_GRAPH_RANDOM_GRAPHS_H_
