#include "graph/graph_builder.h"

#include <algorithm>

namespace tcf {

void GraphBuilder::ReserveVertices(size_t n) {
  num_vertices_ = std::max(num_vertices_, n);
}

Status GraphBuilder::AddEdge(VertexId a, VertexId b) {
  if (a == b) {
    return Status::InvalidArgument("self-loop on vertex " +
                                   std::to_string(a));
  }
  pending_.push_back(MakeEdge(a, b));
  num_vertices_ =
      std::max(num_vertices_, static_cast<size_t>(std::max(a, b)) + 1);
  return Status::OK();
}

Graph GraphBuilder::Build() {
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());

  Graph g;
  g.edges_ = std::move(pending_);
  pending_.clear();
  g.adjacency_.assign(num_vertices_, {});

  std::vector<uint32_t> deg(num_vertices_, 0);
  for (const Edge& e : g.edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  for (size_t v = 0; v < num_vertices_; ++v) g.adjacency_[v].reserve(deg[v]);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adjacency_[e.u].push_back({e.v, id});
    g.adjacency_[e.v].push_back({e.u, id});
  }
  for (auto& adj : g.adjacency_) {
    std::sort(adj.begin(), adj.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.vertex < b.vertex;
              });
  }
  num_vertices_ = 0;
  return g;
}

}  // namespace tcf
