#include "graph/components.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace tcf {

namespace {

/// Union-find with path halving and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace

ComponentLabels ConnectedComponents(const Graph& g) {
  DisjointSets ds(g.num_vertices());
  for (const Edge& e : g.edges()) ds.Union(e.u, e.v);

  ComponentLabels out;
  out.label.assign(g.num_vertices(), 0);
  std::map<uint32_t, uint32_t> remap;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    uint32_t root = ds.Find(v);
    auto [it, inserted] = remap.emplace(root, out.num_components);
    if (inserted) ++out.num_components;
    out.label[v] = it->second;
  }
  return out;
}

std::vector<std::vector<VertexId>> ConnectedComponentsOfEdges(
    const std::vector<Edge>& edges) {
  // Remap touched vertices to dense ids.
  std::map<VertexId, uint32_t> dense;
  for (const Edge& e : edges) {
    dense.emplace(e.u, 0);
    dense.emplace(e.v, 0);
  }
  uint32_t next = 0;
  for (auto& [v, id] : dense) id = next++;

  DisjointSets ds(dense.size());
  for (const Edge& e : edges) ds.Union(dense[e.u], dense[e.v]);

  // Group by root; dense ids ascend with vertex ids, so each component's
  // vertex list comes out sorted and components order by smallest vertex.
  std::map<uint32_t, std::vector<VertexId>> groups;
  for (const auto& [v, id] : dense) groups[ds.Find(id)].push_back(v);

  std::vector<std::vector<VertexId>> out;
  out.reserve(groups.size());
  std::vector<std::pair<VertexId, uint32_t>> order;  // (min vertex, root)
  for (auto& [root, verts] : groups) order.emplace_back(verts.front(), root);
  std::sort(order.begin(), order.end());
  for (const auto& [minv, root] : order) out.push_back(std::move(groups[root]));
  return out;
}

std::vector<std::vector<Edge>> GroupEdgesByComponent(
    const std::vector<Edge>& edges) {
  auto components = ConnectedComponentsOfEdges(edges);
  // Vertex -> component index.
  std::map<VertexId, size_t> comp_of;
  for (size_t c = 0; c < components.size(); ++c) {
    for (VertexId v : components[c]) comp_of[v] = c;
  }
  std::vector<std::vector<Edge>> out(components.size());
  for (const Edge& e : edges) out[comp_of[e.u]].push_back(e);
  return out;
}

}  // namespace tcf
