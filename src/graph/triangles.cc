#include "graph/triangles.h"

namespace tcf {

void ForEachTriangle(const Graph& g, EdgeId e,
                     const std::vector<uint8_t>* alive,
                     const std::function<void(VertexId, EdgeId, EdgeId)>& fn) {
  const Edge& edge = g.edge(e);
  auto a = g.neighbors(edge.u);
  auto b = g.neighbors(edge.v);
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].vertex < b[j].vertex) {
      ++i;
    } else if (a[i].vertex > b[j].vertex) {
      ++j;
    } else {
      const VertexId w = a[i].vertex;
      const EdgeId e_uw = a[i].edge;
      const EdgeId e_vw = b[j].edge;
      // w == u or w == v is impossible in a simple graph.
      if (alive == nullptr || ((*alive)[e_uw] && (*alive)[e_vw])) {
        fn(w, e_uw, e_vw);
      }
      ++i;
      ++j;
    }
  }
}

std::vector<uint32_t> CountEdgeTriangles(const Graph& g) {
  std::vector<uint32_t> support(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ForEachTriangle(g, e, nullptr,
                    [&](VertexId, EdgeId, EdgeId) { ++support[e]; });
  }
  return support;
}

uint64_t CountTriangles(const Graph& g) {
  uint64_t total = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ForEachTriangle(g, e, nullptr,
                    [&](VertexId, EdgeId, EdgeId) { ++total; });
  }
  // Every triangle has three edges, so it was counted three times.
  return total / 3;
}

uint64_t CountTrianglesBruteForce(const Graph& g) {
  const size_t n = g.num_vertices();
  uint64_t total = 0;
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      if (!g.HasEdge(a, b)) continue;
      for (VertexId c = b + 1; c < n; ++c) {
        if (g.HasEdge(a, c) && g.HasEdge(b, c)) ++total;
      }
    }
  }
  return total;
}

}  // namespace tcf
