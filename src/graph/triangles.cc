#include "graph/triangles.h"

namespace tcf {

std::vector<uint32_t> CountEdgeTriangles(const Graph& g) {
  std::vector<uint32_t> support(g.num_edges(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ForEachTriangle(g, e, nullptr,
                    [&](VertexId, EdgeId, EdgeId) { ++support[e]; });
  }
  return support;
}

uint64_t CountTriangles(const Graph& g) {
  uint64_t total = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ForEachTriangle(g, e, nullptr,
                    [&](VertexId, EdgeId, EdgeId) { ++total; });
  }
  // Every triangle has three edges, so it was counted three times.
  return total / 3;
}

uint64_t CountTrianglesBruteForce(const Graph& g) {
  const size_t n = g.num_vertices();
  uint64_t total = 0;
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      if (!g.HasEdge(a, b)) continue;
      for (VertexId c = b + 1; c < n; ++c) {
        if (g.HasEdge(a, c) && g.HasEdge(b, c)) ++total;
      }
    }
  }
  return total;
}

}  // namespace tcf
