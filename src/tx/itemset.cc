#include "tx/itemset.h"

#include <algorithm>
#include <cassert>

namespace tcf {

Itemset::Itemset(std::vector<ItemId> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

Itemset::Itemset(std::initializer_list<ItemId> items)
    : Itemset(std::vector<ItemId>(items)) {}

Itemset Itemset::Single(ItemId item) {
  Itemset s;
  s.items_.push_back(item);
  return s;
}

bool Itemset::Contains(ItemId item) const {
  return std::binary_search(items_.begin(), items_.end(), item);
}

bool Itemset::IsSubsetOf(const Itemset& other) const {
  return std::includes(other.items_.begin(), other.items_.end(),
                       items_.begin(), items_.end());
}

Itemset Itemset::Union(const Itemset& other) const {
  Itemset out;
  out.items_.reserve(items_.size() + other.items_.size());
  std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                 other.items_.end(), std::back_inserter(out.items_));
  return out;
}

Itemset Itemset::Union(ItemId item) const {
  Itemset out;
  out.items_.reserve(items_.size() + 1);
  auto it = std::lower_bound(items_.begin(), items_.end(), item);
  out.items_.assign(items_.begin(), it);
  if (it == items_.end() || *it != item) out.items_.push_back(item);
  out.items_.insert(out.items_.end(), it, items_.end());
  return out;
}

Itemset Itemset::Intersect(const Itemset& other) const {
  Itemset out;
  std::set_intersection(items_.begin(), items_.end(), other.items_.begin(),
                        other.items_.end(), std::back_inserter(out.items_));
  return out;
}

Itemset Itemset::Minus(const Itemset& other) const {
  Itemset out;
  std::set_difference(items_.begin(), items_.end(), other.items_.begin(),
                      other.items_.end(), std::back_inserter(out.items_));
  return out;
}

std::vector<Itemset> Itemset::AllSubsetsMinusOne() const {
  std::vector<Itemset> out;
  out.reserve(items_.size());
  for (size_t skip = 0; skip < items_.size(); ++skip) {
    Itemset sub;
    sub.items_.reserve(items_.size() - 1);
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i != skip) sub.items_.push_back(items_[i]);
    }
    out.push_back(std::move(sub));
  }
  return out;
}

bool Itemset::HasPrefix(const Itemset& prefix) const {
  if (prefix.size() > size()) return false;
  return std::equal(prefix.items_.begin(), prefix.items_.end(),
                    items_.begin());
}

ItemId Itemset::Back() const {
  assert(!items_.empty());
  return items_.back();
}

std::string Itemset::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(items_[i]);
  }
  out += "}";
  return out;
}

size_t Itemset::Hash() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (ItemId item : items_) {
    h ^= item;
    h *= 0x100000001B3ULL;
  }
  return static_cast<size_t>(h);
}

bool AprioriJoin(const Itemset& a, const Itemset& b, Itemset* out) {
  if (a.size() != b.size() || a.empty()) return false;
  const size_t k1 = a.size();
  for (size_t i = 0; i + 1 < k1; ++i) {
    if (a[i] != b[i]) return false;
  }
  if (a.Back() == b.Back()) return false;
  *out = a.Union(b.Back());
  return true;
}

}  // namespace tcf
