#include "tx/transaction_db.h"

#include <algorithm>

namespace tcf {

Tid TransactionDb::Add(Itemset transaction) {
  transactions_.push_back(std::move(transaction));
  return static_cast<Tid>(transactions_.size() - 1);
}

uint64_t TransactionDb::SupportCount(const Itemset& p) const {
  uint64_t count = 0;
  for (const Itemset& t : transactions_) {
    if (p.IsSubsetOf(t)) ++count;
  }
  return count;
}

double TransactionDb::Frequency(const Itemset& p) const {
  if (transactions_.empty()) return 0.0;
  return static_cast<double>(SupportCount(p)) /
         static_cast<double>(transactions_.size());
}

uint64_t TransactionDb::TotalItemOccurrences() const {
  uint64_t total = 0;
  for (const Itemset& t : transactions_) total += t.size();
  return total;
}

Itemset TransactionDb::DistinctItems() const {
  std::vector<ItemId> all;
  for (const Itemset& t : transactions_) {
    all.insert(all.end(), t.begin(), t.end());
  }
  return Itemset(std::move(all));
}

}  // namespace tcf
