#ifndef TCF_TX_VERTICAL_INDEX_H_
#define TCF_TX_VERTICAL_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tx/itemset.h"
#include "tx/transaction_db.h"

namespace tcf {

/// \brief Vertical (tid-list) representation of one `TransactionDb`.
///
/// For each item, stores the sorted list of transaction ids containing it.
/// Support of a pattern is the size of the intersection of its items'
/// tid-lists (the Eclat representation), which turns the frequency queries
/// issued per candidate pattern by TCS/TCFA/TCFI/TC-Tree from full
/// database scans into short sorted-list intersections.
class VerticalIndex {
 public:
  /// Builds the index by one pass over `db`. The index keeps a reference-
  /// free copy of the tid-lists and the transaction count; it remains
  /// valid independent of `db`'s lifetime.
  explicit VerticalIndex(const TransactionDb& db);

  /// Sorted tid-list of `item` (empty if absent).
  const std::vector<Tid>& TidList(ItemId item) const;

  /// Support count of `p` = |∩ tid-lists|. The empty pattern is contained
  /// in every transaction.
  uint64_t SupportCount(const Itemset& p) const;

  /// Frequency `f(p)` = support / #transactions (0 on empty db).
  double Frequency(const Itemset& p) const;

  /// Intersection of `base` with `item`'s tid-list; the Eclat DFS step.
  std::vector<Tid> IntersectWith(const std::vector<Tid>& base,
                                 ItemId item) const;

  uint64_t num_transactions() const { return num_transactions_; }

  /// Items with non-empty tid-lists, ascending.
  const std::vector<ItemId>& items() const { return items_; }

 private:
  uint64_t num_transactions_;
  std::vector<ItemId> items_;
  std::unordered_map<ItemId, std::vector<Tid>> tid_lists_;
  static const std::vector<Tid> kEmpty;
};

/// Size of the intersection of two sorted vectors.
uint64_t SortedIntersectionSize(const std::vector<Tid>& a,
                                const std::vector<Tid>& b);

/// Intersection of two sorted vectors.
std::vector<Tid> SortedIntersect(const std::vector<Tid>& a,
                                 const std::vector<Tid>& b);

}  // namespace tcf

#endif  // TCF_TX_VERTICAL_INDEX_H_
