#ifndef TCF_TX_ITEMSET_H_
#define TCF_TX_ITEMSET_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace tcf {

/// Dictionary-encoded item identifier. The global item set `S` of a
/// database network maps items to dense ids `0 .. |S|-1`.
using ItemId = uint32_t;

/// \brief An itemset (pattern/theme): a set of items kept as a sorted,
/// duplicate-free vector of `ItemId`.
///
/// The total order `≺` the TC-Tree relies on (Rymon's set-enumeration
/// order) is the natural `<` on `ItemId`; `Itemset` comparison is
/// lexicographic on the sorted sequence.
class Itemset {
 public:
  Itemset() = default;
  /// Builds from arbitrary items; sorts and deduplicates.
  explicit Itemset(std::vector<ItemId> items);
  Itemset(std::initializer_list<ItemId> items);

  /// Singleton {item}.
  static Itemset Single(ItemId item);

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<ItemId>& items() const { return items_; }
  ItemId operator[](size_t i) const { return items_[i]; }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  /// Membership test. O(log n).
  bool Contains(ItemId item) const;

  /// True if every item of this set is in `other` (`this ⊆ other`).
  bool IsSubsetOf(const Itemset& other) const;

  /// Set union.
  Itemset Union(const Itemset& other) const;
  /// Set union with a single item.
  Itemset Union(ItemId item) const;
  /// Set intersection.
  Itemset Intersect(const Itemset& other) const;
  /// Set difference `this \ other`.
  Itemset Minus(const Itemset& other) const;

  /// All subsets of size `size()-1`, i.e. the itemset with each item
  /// removed in turn; used by Apriori's prune step (Alg. 2 line 4).
  std::vector<Itemset> AllSubsetsMinusOne() const;

  /// True if `prefix` equals the first `prefix.size()` items of this set
  /// in `≺` order (SE-tree parent test).
  bool HasPrefix(const Itemset& prefix) const;

  /// The last (largest) item. Requires non-empty.
  ItemId Back() const;

  /// "{1, 5, 9}"-style rendering of raw ids.
  std::string ToString() const;

  bool operator==(const Itemset& other) const { return items_ == other.items_; }
  bool operator!=(const Itemset& other) const { return !(*this == other); }
  /// Lexicographic order on the sorted item sequences.
  bool operator<(const Itemset& other) const { return items_ < other.items_; }

  /// FNV-1a style hash for unordered containers.
  size_t Hash() const;

 private:
  std::vector<ItemId> items_;
};

/// Hash functor so `Itemset` can key unordered_map/set.
struct ItemsetHash {
  size_t operator()(const Itemset& s) const { return s.Hash(); }
};

/// Apriori join (candidate generation, Alg. 2 line 2-3): if `a` and `b`
/// are k-1 sized sets sharing their first k-2 items, returns their union
/// (size k) through `out` and true; otherwise false.
bool AprioriJoin(const Itemset& a, const Itemset& b, Itemset* out);

}  // namespace tcf

#endif  // TCF_TX_ITEMSET_H_
