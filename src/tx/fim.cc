#include "tx/fim.h"

#include <algorithm>

#include "util/logging.h"

namespace tcf {

namespace {

// Depth-first Eclat recursion. `prefix` is the current pattern, `tids` its
// tid-list, `tail` the items (all > prefix.Back()) still extendable.
void EclatRecurse(const VerticalIndex& index, double epsilon,
                  size_t max_length, const Itemset& prefix,
                  const std::vector<Tid>& tids,
                  const std::vector<ItemId>& tail,
                  std::vector<FrequentPattern>& out) {
  const double n = static_cast<double>(index.num_transactions());
  for (size_t i = 0; i < tail.size(); ++i) {
    const ItemId item = tail[i];
    std::vector<Tid> next_tids = index.IntersectWith(tids, item);
    const double freq = static_cast<double>(next_tids.size()) / n;
    if (freq <= epsilon) continue;
    Itemset next = prefix.Union(item);
    out.push_back({next, freq});
    if (max_length != 0 && next.size() >= max_length) continue;
    std::vector<ItemId> next_tail(tail.begin() + i + 1, tail.end());
    if (!next_tail.empty()) {
      EclatRecurse(index, epsilon, max_length, next, next_tids, next_tail,
                   out);
    }
  }
}

}  // namespace

std::vector<FrequentPattern> MineFrequentItemsets(const VerticalIndex& index,
                                                  double epsilon,
                                                  size_t max_length) {
  std::vector<FrequentPattern> out;
  if (index.num_transactions() == 0) return out;
  const double n = static_cast<double>(index.num_transactions());

  // Roots: frequent single items.
  std::vector<ItemId> frequent_items;
  for (ItemId item : index.items()) {
    const double freq = static_cast<double>(index.TidList(item).size()) / n;
    if (freq > epsilon) frequent_items.push_back(item);
  }

  for (size_t i = 0; i < frequent_items.size(); ++i) {
    const ItemId item = frequent_items[i];
    const auto& tids = index.TidList(item);
    const double freq = static_cast<double>(tids.size()) / n;
    Itemset single = Itemset::Single(item);
    out.push_back({single, freq});
    if (max_length != 0 && max_length <= 1) continue;
    std::vector<ItemId> tail(frequent_items.begin() + i + 1,
                             frequent_items.end());
    if (!tail.empty()) {
      EclatRecurse(index, epsilon, max_length, single, tids, tail, out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FrequentPattern& a, const FrequentPattern& b) {
              return a.pattern < b.pattern;
            });
  return out;
}

std::vector<FrequentPattern> MineFrequentItemsets(const TransactionDb& db,
                                                  double epsilon,
                                                  size_t max_length) {
  VerticalIndex index(db);
  return MineFrequentItemsets(index, epsilon, max_length);
}

std::vector<FrequentPattern> MineFrequentItemsetsBruteForce(
    const TransactionDb& db, double epsilon, size_t max_length) {
  std::vector<FrequentPattern> out;
  if (db.empty()) return out;
  const Itemset universe = db.DistinctItems();
  TCF_CHECK_MSG(universe.size() <= 24,
                "brute-force miner is for test-sized inputs");
  const uint32_t n_items = static_cast<uint32_t>(universe.size());
  for (uint64_t mask = 1; mask < (1ULL << n_items); ++mask) {
    std::vector<ItemId> items;
    for (uint32_t b = 0; b < n_items; ++b) {
      if (mask & (1ULL << b)) items.push_back(universe[b]);
    }
    if (max_length != 0 && items.size() > max_length) continue;
    Itemset p(std::move(items));
    const double freq = db.Frequency(p);
    if (freq > epsilon) out.push_back({p, freq});
  }
  std::sort(out.begin(), out.end(),
            [](const FrequentPattern& a, const FrequentPattern& b) {
              return a.pattern < b.pattern;
            });
  return out;
}

}  // namespace tcf
