#ifndef TCF_TX_ITEM_DICTIONARY_H_
#define TCF_TX_ITEM_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tx/itemset.h"
#include "util/status.h"

namespace tcf {

/// \brief Bidirectional mapping between human-readable item names
/// (keywords, location names, product names) and dense `ItemId`s.
///
/// A `DatabaseNetwork` owns one dictionary; its size is `|S|`, the number
/// of unique items in the network (Table 2's "#Items (unique)").
class ItemDictionary {
 public:
  ItemDictionary() = default;

  /// Returns the id of `name`, interning it if new.
  ItemId GetOrAdd(std::string_view name);

  /// Id of an existing item, or NotFound.
  StatusOr<ItemId> Find(std::string_view name) const;

  /// Name of `id`; ids are dense so this is an array lookup.
  /// Requires id < size().
  const std::string& Name(ItemId id) const;

  /// Renders an itemset as "{name1, name2}" using this dictionary.
  std::string Render(const Itemset& itemset) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ItemId> ids_;
};

}  // namespace tcf

#endif  // TCF_TX_ITEM_DICTIONARY_H_
