#include "tx/vertical_index.h"

#include <algorithm>

namespace tcf {

const std::vector<Tid> VerticalIndex::kEmpty;

VerticalIndex::VerticalIndex(const TransactionDb& db)
    : num_transactions_(db.num_transactions()) {
  for (Tid t = 0; t < db.num_transactions(); ++t) {
    for (ItemId item : db.transaction(t)) {
      tid_lists_[item].push_back(t);
    }
  }
  items_.reserve(tid_lists_.size());
  for (const auto& [item, _] : tid_lists_) items_.push_back(item);
  std::sort(items_.begin(), items_.end());
  // Tids are appended in ascending order, so each list is already sorted.
}

const std::vector<Tid>& VerticalIndex::TidList(ItemId item) const {
  auto it = tid_lists_.find(item);
  return it == tid_lists_.end() ? kEmpty : it->second;
}

uint64_t VerticalIndex::SupportCount(const Itemset& p) const {
  if (p.empty()) return num_transactions_;
  // Start from the rarest item to keep intermediate lists short.
  const std::vector<Tid>* shortest = &TidList(p[0]);
  for (size_t i = 1; i < p.size(); ++i) {
    const auto& l = TidList(p[i]);
    if (l.size() < shortest->size()) shortest = &l;
  }
  std::vector<Tid> acc = *shortest;
  for (ItemId item : p) {
    const auto& l = TidList(item);
    if (&l == shortest) continue;
    acc = SortedIntersect(acc, l);
    if (acc.empty()) return 0;
  }
  return acc.size();
}

double VerticalIndex::Frequency(const Itemset& p) const {
  if (num_transactions_ == 0) return 0.0;
  return static_cast<double>(SupportCount(p)) /
         static_cast<double>(num_transactions_);
}

std::vector<Tid> VerticalIndex::IntersectWith(const std::vector<Tid>& base,
                                              ItemId item) const {
  return SortedIntersect(base, TidList(item));
}

uint64_t SortedIntersectionSize(const std::vector<Tid>& a,
                                const std::vector<Tid>& b) {
  uint64_t n = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++n; ++i; ++j; }
  }
  return n;
}

std::vector<Tid> SortedIntersect(const std::vector<Tid>& a,
                                 const std::vector<Tid>& b) {
  std::vector<Tid> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace tcf
