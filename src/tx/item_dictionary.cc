#include "tx/item_dictionary.h"

#include <cassert>

namespace tcf {

ItemId ItemDictionary::GetOrAdd(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  ItemId id = static_cast<ItemId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

StatusOr<ItemId> ItemDictionary::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("unknown item: " + std::string(name));
  }
  return it->second;
}

const std::string& ItemDictionary::Name(ItemId id) const {
  assert(id < names_.size());
  return names_[id];
}

std::string ItemDictionary::Render(const Itemset& itemset) const {
  std::string out = "{";
  bool first = true;
  for (ItemId id : itemset) {
    if (!first) out += ", ";
    first = false;
    out += id < names_.size() ? names_[id] : ("#" + std::to_string(id));
  }
  out += "}";
  return out;
}

}  // namespace tcf
