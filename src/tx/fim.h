#ifndef TCF_TX_FIM_H_
#define TCF_TX_FIM_H_

#include <vector>

#include "tx/itemset.h"
#include "tx/transaction_db.h"
#include "tx/vertical_index.h"

namespace tcf {

/// One mined pattern with its relative frequency.
struct FrequentPattern {
  Itemset pattern;
  double frequency = 0.0;

  bool operator==(const FrequentPattern& o) const {
    return pattern == o.pattern && frequency == o.frequency;
  }
};

/// \brief Frequent itemset mining over a single transaction database.
///
/// TCS (§4.2) obtains its candidate set `P = {p : ∃v_i, f_i(p) > ε}` by
/// mining every vertex database with relative threshold ε. The production
/// miner is Eclat (depth-first tid-list intersection); a quadratic
/// brute-force reference backs the property tests.
///
/// Patterns with frequency strictly greater than `epsilon` are returned
/// (matching the paper's strict `f_i(p) > ε`); the empty pattern is never
/// returned. `max_length` caps the pattern length (0 = unlimited).
std::vector<FrequentPattern> MineFrequentItemsets(const TransactionDb& db,
                                                  double epsilon,
                                                  size_t max_length = 0);

/// Same, reusing a prebuilt vertical index.
std::vector<FrequentPattern> MineFrequentItemsets(const VerticalIndex& index,
                                                  double epsilon,
                                                  size_t max_length = 0);

/// Exhaustive reference miner: enumerates every subset of the distinct
/// items and checks its support. Exponential; test-sized inputs only.
std::vector<FrequentPattern> MineFrequentItemsetsBruteForce(
    const TransactionDb& db, double epsilon, size_t max_length = 0);

}  // namespace tcf

#endif  // TCF_TX_FIM_H_
