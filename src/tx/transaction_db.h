#ifndef TCF_TX_TRANSACTION_DB_H_
#define TCF_TX_TRANSACTION_DB_H_

#include <cstdint>
#include <vector>

#include "tx/itemset.h"

namespace tcf {

/// Transaction identifier, local to one `TransactionDb`.
using Tid = uint32_t;

/// \brief A vertex database `d_i`: a multiset of transactions over the
/// global item set `S` (§3.1).
///
/// Transactions are itemsets; the same itemset may appear many times (the
/// database is a multiset), and pattern frequency `f(p)` is the fraction
/// of *transactions* (not distinct itemsets) containing `p`.
class TransactionDb {
 public:
  TransactionDb() = default;

  /// Appends one transaction; returns its tid (dense, 0-based).
  Tid Add(Itemset transaction);

  size_t num_transactions() const { return transactions_.size(); }
  bool empty() const { return transactions_.empty(); }

  const Itemset& transaction(Tid t) const { return transactions_[t]; }
  const std::vector<Itemset>& transactions() const { return transactions_; }

  /// Number of transactions containing `p` (support count). O(Σ|t|) scan;
  /// prefer `VerticalIndex` for repeated queries.
  uint64_t SupportCount(const Itemset& p) const;

  /// Frequency `f(p)` = SupportCount(p) / num_transactions().
  /// Returns 0 for an empty database.
  double Frequency(const Itemset& p) const;

  /// Total number of item occurrences across all transactions
  /// (Table 2's "#Items (total)" contribution of this database).
  uint64_t TotalItemOccurrences() const;

  /// All distinct items appearing in at least one transaction.
  Itemset DistinctItems() const;

 private:
  std::vector<Itemset> transactions_;
};

}  // namespace tcf

#endif  // TCF_TX_TRANSACTION_DB_H_
