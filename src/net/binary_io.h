#ifndef TCF_NET_BINARY_IO_H_
#define TCF_NET_BINARY_IO_H_

#include <iosfwd>
#include <string>

#include "net/database_network.h"
#include "util/status.h"

namespace tcf {

/// \brief Compact binary serialization of database networks.
///
/// Orders of magnitude faster than the text format on large networks;
/// used by warehouse pipelines (generate once, mine/index many times).
/// Little-endian, length-prefixed, versioned:
/// \code
///   magic "TCFB" | u32 version=1
///   u64 num_vertices | u64 num_items
///   per item:  u32 name_len | bytes
///   u64 num_edges | per edge: u32 u, u32 v
///   per vertex: u64 num_tx | per tx: u32 len | u32 items[len]
/// \endcode
Status SaveNetworkBinary(const DatabaseNetwork& net, std::ostream& os);
Status SaveNetworkBinaryToFile(const DatabaseNetwork& net,
                               const std::string& path);

StatusOr<DatabaseNetwork> LoadNetworkBinary(std::istream& is);
StatusOr<DatabaseNetwork> LoadNetworkBinaryFromFile(const std::string& path);

namespace io_internal {

/// Little-endian scalar writers/readers shared with the TC-Tree codec.
void WriteU32(std::ostream& os, uint32_t v);
void WriteU64(std::ostream& os, uint64_t v);
void WriteString(std::ostream& os, const std::string& s);
bool ReadU32(std::istream& is, uint32_t* v);
bool ReadU64(std::istream& is, uint64_t* v);
bool ReadString(std::istream& is, std::string* s, size_t max_len = 1 << 20);

}  // namespace io_internal
}  // namespace tcf

#endif  // TCF_NET_BINARY_IO_H_
