#include "net/stats.h"

#include <unordered_set>

namespace tcf {

NetworkStats ComputeStats(const DatabaseNetwork& net) {
  NetworkStats s;
  s.num_vertices = net.num_vertices();
  s.num_edges = net.num_edges();
  s.sum_degree_squared = net.graph().SumDegreeSquared();

  std::unordered_set<ItemId> unique;
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    const TransactionDb& db = net.db(v);
    s.num_transactions += db.num_transactions();
    for (const Itemset& t : db.transactions()) {
      s.num_items_total += t.size();
      for (ItemId item : t) unique.insert(item);
    }
  }
  s.num_items_unique = unique.size();

  if (s.num_vertices > 0) {
    s.avg_degree = 2.0 * static_cast<double>(s.num_edges) /
                   static_cast<double>(s.num_vertices);
    s.avg_transactions_per_vertex =
        static_cast<double>(s.num_transactions) /
        static_cast<double>(s.num_vertices);
  }
  if (s.num_transactions > 0) {
    s.avg_transaction_length = static_cast<double>(s.num_items_total) /
                               static_cast<double>(s.num_transactions);
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const NetworkStats& s) {
  os << "vertices=" << s.num_vertices << " edges=" << s.num_edges
     << " transactions=" << s.num_transactions
     << " items_total=" << s.num_items_total
     << " items_unique=" << s.num_items_unique;
  return os;
}

}  // namespace tcf
