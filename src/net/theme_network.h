#ifndef TCF_NET_THEME_NETWORK_H_
#define TCF_NET_THEME_NETWORK_H_

#include <vector>

#include "net/database_network.h"
#include "tx/itemset.h"

namespace tcf {

/// \brief A theme network `G_p` (§3.1): the subgraph of the database
/// network induced by the vertices with `f_i(p) > 0`, annotated with
/// those frequencies.
///
/// Vertices keep their *global* ids; MPTD remaps to dense local ids
/// internally. `vertices` is sorted ascending and `frequencies` is
/// parallel to it; `edges` is sorted in canonical (u,v) order.
struct ThemeNetwork {
  Itemset pattern;
  std::vector<VertexId> vertices;
  std::vector<double> frequencies;
  std::vector<Edge> edges;

  size_t num_vertices() const { return vertices.size(); }
  size_t num_edges() const { return edges.size(); }
  bool empty() const { return edges.empty(); }

  /// Frequency of `v` in this theme network; 0 if `v` is not a member.
  double FrequencyOf(VertexId v) const;
};

/// Induces `G_p` from the full database network. Implementation note:
/// the vertex set starts from the item→vertex index of the rarest item
/// of `p` and is filtered by full-pattern frequency, so the cost is
/// proportional to the rarest item's vertex list, not to |V|.
ThemeNetwork InduceThemeNetwork(const DatabaseNetwork& net,
                                const Itemset& pattern);

/// Induces the theme network of `pattern` restricted to `candidate_edges`
/// (the TCFI/TC-Tree path, Prop. 5.3): only endpoints of the candidate
/// edges are frequency-checked, and only edges with both endpoints
/// positive survive. `candidate_edges` need not be sorted.
ThemeNetwork InduceThemeNetworkFromEdges(const DatabaseNetwork& net,
                                         const Itemset& pattern,
                                         const std::vector<Edge>& candidate_edges);

/// Reusable scratch for InduceThemeNetworkFromEdgesInto; buffers stay
/// high-water sized across calls.
struct ThemeInductionScratch {
  std::vector<VertexId> endpoints;
};

/// Allocation-free variant of InduceThemeNetworkFromEdges: the result is
/// written into `*out` (whose vectors keep their capacity across calls)
/// and endpoint collection reuses `*scratch*`. Membership tests run as
/// binary searches over the induced (sorted) vertex list instead of a
/// freshly built hash map. Output is identical to the value-returning
/// overload.
void InduceThemeNetworkFromEdgesInto(const DatabaseNetwork& net,
                                     const Itemset& pattern,
                                     const std::vector<Edge>& candidate_edges,
                                     ThemeNetwork* out,
                                     ThemeInductionScratch* scratch);

}  // namespace tcf

#endif  // TCF_NET_THEME_NETWORK_H_
