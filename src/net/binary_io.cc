#include "net/binary_io.h"

#include <cstring>
#include <fstream>

#include "graph/graph_builder.h"

namespace tcf {

namespace io_internal {

void WriteU32(std::ostream& os, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 4);
}

void WriteU64(std::ostream& os, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(buf, 8);
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU32(std::istream& is, uint32_t* v) {
  char buf[4];
  if (!is.read(buf, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return true;
}

bool ReadU64(std::istream& is, uint64_t* v) {
  char buf[8];
  if (!is.read(buf, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return true;
}

bool ReadString(std::istream& is, std::string* s, size_t max_len) {
  uint32_t len = 0;
  if (!ReadU32(is, &len)) return false;
  if (len > max_len) return false;
  s->resize(len);
  return static_cast<bool>(is.read(s->data(), len));
}

}  // namespace io_internal

using io_internal::ReadString;
using io_internal::ReadU32;
using io_internal::ReadU64;
using io_internal::WriteString;
using io_internal::WriteU32;
using io_internal::WriteU64;

namespace {
constexpr char kMagic[4] = {'T', 'C', 'F', 'B'};
constexpr uint32_t kVersion = 1;
}  // namespace

Status SaveNetworkBinary(const DatabaseNetwork& net, std::ostream& os) {
  os.write(kMagic, 4);
  WriteU32(os, kVersion);
  WriteU64(os, net.num_vertices());
  WriteU64(os, net.dictionary().size());
  for (ItemId i = 0; i < net.dictionary().size(); ++i) {
    WriteString(os, net.dictionary().Name(i));
  }
  WriteU64(os, net.num_edges());
  for (const Edge& e : net.graph().edges()) {
    WriteU32(os, e.u);
    WriteU32(os, e.v);
  }
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    const TransactionDb& db = net.db(v);
    WriteU64(os, db.num_transactions());
    for (const Itemset& t : db.transactions()) {
      WriteU32(os, static_cast<uint32_t>(t.size()));
      for (ItemId item : t) WriteU32(os, item);
    }
  }
  if (!os.good()) return Status::IOError("binary write failed");
  return Status::OK();
}

Status SaveNetworkBinaryToFile(const DatabaseNetwork& net,
                               const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f.is_open()) return Status::IOError("cannot open for write: " + path);
  return SaveNetworkBinary(net, f);
}

StatusOr<DatabaseNetwork> LoadNetworkBinary(std::istream& is) {
  char magic[4];
  if (!is.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad binary magic");
  }
  uint32_t version = 0;
  if (!ReadU32(is, &version) || version != kVersion) {
    return Status::Corruption("unsupported binary version");
  }
  uint64_t n = 0, k = 0;
  if (!ReadU64(is, &n) || !ReadU64(is, &k)) {
    return Status::Corruption("truncated header");
  }
  ItemDictionary dict;
  for (uint64_t i = 0; i < k; ++i) {
    std::string name;
    if (!ReadString(is, &name)) return Status::Corruption("truncated items");
    if (dict.GetOrAdd(name) != i) {
      return Status::Corruption("duplicate item name");
    }
  }
  uint64_t m = 0;
  if (!ReadU64(is, &m)) return Status::Corruption("truncated edge count");
  GraphBuilder builder(n);
  for (uint64_t e = 0; e < m; ++e) {
    uint32_t u = 0, v = 0;
    if (!ReadU32(is, &u) || !ReadU32(is, &v)) {
      return Status::Corruption("truncated edges");
    }
    if (u >= n || v >= n) return Status::Corruption("edge out of range");
    TCF_RETURN_IF_ERROR(builder.AddEdge(u, v));
  }
  std::vector<TransactionDb> dbs(n);
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t n_tx = 0;
    if (!ReadU64(is, &n_tx)) return Status::Corruption("truncated db header");
    for (uint64_t t = 0; t < n_tx; ++t) {
      uint32_t len = 0;
      if (!ReadU32(is, &len)) return Status::Corruption("truncated tx");
      std::vector<ItemId> items(len);
      for (uint32_t i = 0; i < len; ++i) {
        if (!ReadU32(is, &items[i])) return Status::Corruption("truncated tx");
        if (items[i] >= k) return Status::Corruption("item out of range");
      }
      dbs[v].Add(Itemset(std::move(items)));
    }
  }
  return DatabaseNetwork(builder.Build(), std::move(dbs), std::move(dict));
}

StatusOr<DatabaseNetwork> LoadNetworkBinaryFromFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) return Status::IOError("cannot open for read: " + path);
  return LoadNetworkBinary(f);
}

}  // namespace tcf
