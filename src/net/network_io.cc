#include "net/network_io.h"

#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace tcf {

std::string EscapeItemName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char ch : name) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case ' ': out += "\\s"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

StatusOr<std::string> UnescapeItemName(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out += escaped[i];
      continue;
    }
    if (i + 1 >= escaped.size()) {
      return Status::Corruption("dangling escape in item name");
    }
    switch (escaped[++i]) {
      case '\\': out += '\\'; break;
      case 's': out += ' '; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      default:
        return Status::Corruption("bad escape in item name");
    }
  }
  return out;
}

Status SaveNetwork(const DatabaseNetwork& net, std::ostream& os) {
  os << "tcf-dbnet 1\n";
  os << "vertices " << net.num_vertices() << "\n";
  os << "items " << net.dictionary().size() << "\n";
  for (ItemId i = 0; i < net.dictionary().size(); ++i) {
    os << "i " << i << " " << EscapeItemName(net.dictionary().Name(i)) << "\n";
  }
  for (const Edge& e : net.graph().edges()) {
    os << "e " << e.u << " " << e.v << "\n";
  }
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    const TransactionDb& db = net.db(v);
    os << "d " << v << " " << db.num_transactions() << "\n";
    for (const Itemset& t : db.transactions()) {
      os << "t";
      for (ItemId item : t) os << " " << item;
      os << "\n";
    }
  }
  os << "end\n";
  if (!os.good()) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveNetworkToFile(const DatabaseNetwork& net, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for write: " + path);
  return SaveNetwork(net, f);
}

namespace {

Status NextDataLine(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    std::string_view t = Trim(*line);
    if (t.empty() || t[0] == '#') continue;
    *line = std::string(t);
    return Status::OK();
  }
  return Status::Corruption("unexpected end of network file");
}

}  // namespace

StatusOr<DatabaseNetwork> LoadNetwork(std::istream& is) {
  std::string line;
  TCF_RETURN_IF_ERROR(NextDataLine(is, &line));
  if (line != "tcf-dbnet 1") {
    return Status::Corruption("bad magic, expected 'tcf-dbnet 1', got: " +
                              line);
  }

  TCF_RETURN_IF_ERROR(NextDataLine(is, &line));
  auto fields = SplitWhitespace(line);
  if (fields.size() != 2 || fields[0] != "vertices") {
    return Status::Corruption("expected 'vertices <n>'");
  }
  auto n_or = ParseUint64(fields[1]);
  if (!n_or.ok()) return n_or.status();
  const size_t n = *n_or;

  TCF_RETURN_IF_ERROR(NextDataLine(is, &line));
  fields = SplitWhitespace(line);
  if (fields.size() != 2 || fields[0] != "items") {
    return Status::Corruption("expected 'items <k>'");
  }
  auto k_or = ParseUint64(fields[1]);
  if (!k_or.ok()) return k_or.status();
  const size_t k = *k_or;

  ItemDictionary dict;
  GraphBuilder builder(n);
  std::vector<TransactionDb> dbs(n);

  size_t items_seen = 0;
  for (;;) {
    TCF_RETURN_IF_ERROR(NextDataLine(is, &line));
    if (line == "end") break;
    fields = SplitWhitespace(line);
    if (fields.empty()) continue;
    const std::string& tag = fields[0];

    if (tag == "i") {
      if (fields.size() != 3) return Status::Corruption("bad item line");
      auto id_or = ParseUint64(fields[1]);
      if (!id_or.ok()) return id_or.status();
      auto name_or = UnescapeItemName(fields[2]);
      if (!name_or.ok()) return name_or.status();
      ItemId got = dict.GetOrAdd(*name_or);
      if (got != *id_or) {
        return Status::Corruption("item ids must be dense and in order");
      }
      ++items_seen;
    } else if (tag == "e") {
      if (fields.size() != 3) return Status::Corruption("bad edge line");
      auto u_or = ParseUint64(fields[1]);
      auto v_or = ParseUint64(fields[2]);
      if (!u_or.ok()) return u_or.status();
      if (!v_or.ok()) return v_or.status();
      if (*u_or >= n || *v_or >= n) {
        return Status::Corruption("edge endpoint out of range");
      }
      Status s = builder.AddEdge(static_cast<VertexId>(*u_or),
                                 static_cast<VertexId>(*v_or));
      if (!s.ok()) return s;
    } else if (tag == "d") {
      if (fields.size() != 3) return Status::Corruption("bad db header");
      auto v_or = ParseUint64(fields[1]);
      auto c_or = ParseUint64(fields[2]);
      if (!v_or.ok()) return v_or.status();
      if (!c_or.ok()) return c_or.status();
      if (*v_or >= n) return Status::Corruption("db vertex out of range");
      TransactionDb& db = dbs[*v_or];
      for (uint64_t t = 0; t < *c_or; ++t) {
        TCF_RETURN_IF_ERROR(NextDataLine(is, &line));
        auto tf = SplitWhitespace(line);
        if (tf.empty() || tf[0] != "t") {
          return Status::Corruption("expected transaction line");
        }
        std::vector<ItemId> items;
        items.reserve(tf.size() - 1);
        for (size_t i = 1; i < tf.size(); ++i) {
          auto item_or = ParseUint64(tf[i]);
          if (!item_or.ok()) return item_or.status();
          if (*item_or >= k) {
            return Status::Corruption("item id out of range in transaction");
          }
          items.push_back(static_cast<ItemId>(*item_or));
        }
        db.Add(Itemset(std::move(items)));
      }
    } else {
      return Status::Corruption("unknown line tag: " + tag);
    }
  }
  if (items_seen != k) {
    return Status::Corruption("item count mismatch");
  }
  return DatabaseNetwork(builder.Build(), std::move(dbs), std::move(dict));
}

StatusOr<DatabaseNetwork> LoadNetworkFromFile(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IOError("cannot open for read: " + path);
  return LoadNetwork(f);
}

}  // namespace tcf
