#ifndef TCF_NET_STATS_H_
#define TCF_NET_STATS_H_

#include <cstdint>
#include <ostream>

#include "net/database_network.h"

namespace tcf {

/// \brief The dataset statistics the paper reports in Table 2.
struct NetworkStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t num_transactions = 0;   // Σ_v |d_v|
  uint64_t num_items_total = 0;    // Σ_v Σ_t |t|  ("#Items (total)")
  uint64_t num_items_unique = 0;   // |S|          ("#Items (unique)")
  double avg_degree = 0.0;
  double avg_transactions_per_vertex = 0.0;
  double avg_transaction_length = 0.0;
  uint64_t sum_degree_squared = 0;  // MPTD cost measure O(Σ d²)
};

/// One pass over the network.
NetworkStats ComputeStats(const DatabaseNetwork& net);

std::ostream& operator<<(std::ostream& os, const NetworkStats& s);

}  // namespace tcf

#endif  // TCF_NET_STATS_H_
