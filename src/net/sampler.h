#ifndef TCF_NET_SAMPLER_H_
#define TCF_NET_SAMPLER_H_

#include <cstddef>

#include "net/database_network.h"
#include "util/rng.h"
#include "util/status.h"

namespace tcf {

/// \brief Breadth-first edge sampling of a database network (§7.1/§7.2).
///
/// The paper builds its scalability series by BFS from a random seed
/// vertex until a target number of edges is collected. We mirror that:
/// starting from a random seed, vertices are visited in BFS order and
/// every scanned edge is taken until `target_edges` have been collected;
/// if a connected component is exhausted first, BFS restarts from a new
/// random unvisited seed. Vertex ids are remapped densely; each sampled
/// vertex keeps a full copy of its transaction database; the item
/// dictionary is copied verbatim (ids remain comparable across samples).
///
/// Returns InvalidArgument if `target_edges` is 0, OutOfRange if the
/// network has fewer edges than requested.
StatusOr<DatabaseNetwork> SampleByBfs(const DatabaseNetwork& net,
                                      size_t target_edges, Rng& rng);

}  // namespace tcf

#endif  // TCF_NET_SAMPLER_H_
