#include "net/theme_network.h"

#include <algorithm>

#include "util/logging.h"

namespace tcf {

double ThemeNetwork::FrequencyOf(VertexId v) const {
  auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  if (it == vertices.end() || *it != v) return 0.0;
  return frequencies[static_cast<size_t>(it - vertices.begin())];
}

ThemeNetwork InduceThemeNetwork(const DatabaseNetwork& net,
                                const Itemset& pattern) {
  ThemeNetwork tn;
  tn.pattern = pattern;
  if (pattern.empty()) {
    // G_∅ is the whole network with f ≡ 1 on non-empty databases (every
    // transaction contains ∅). Vertices with empty databases stay out.
    for (VertexId v = 0; v < net.num_vertices(); ++v) {
      if (net.db(v).num_transactions() > 0) {
        tn.vertices.push_back(v);
        tn.frequencies.push_back(1.0);
      }
    }
  } else {
    // Candidate vertices: the item with the fewest carriers bounds the
    // vertex set of G_p from above (anti-monotonicity on vertices).
    const std::vector<VertexFrequency>* seed = &net.ItemVertices(pattern[0]);
    for (size_t i = 1; i < pattern.size(); ++i) {
      const auto& cand = net.ItemVertices(pattern[i]);
      if (cand.size() < seed->size()) seed = &cand;
    }
    for (const VertexFrequency& vf : *seed) {
      const double f = pattern.size() == 1
                           ? vf.frequency
                           : net.Frequency(vf.vertex, pattern);
      if (f > 0) {
        tn.vertices.push_back(vf.vertex);
        tn.frequencies.push_back(f);
      }
    }
  }

  // Membership test over the sorted vertex list.
  auto member = [&](VertexId v) {
    auto it = std::lower_bound(tn.vertices.begin(), tn.vertices.end(), v);
    return it != tn.vertices.end() && *it == v;
  };
  for (VertexId u : tn.vertices) {
    for (const Neighbor& nb : net.graph().neighbors(u)) {
      if (nb.vertex > u && member(nb.vertex)) {
        tn.edges.push_back({u, nb.vertex});
      }
    }
  }
  std::sort(tn.edges.begin(), tn.edges.end());
  return tn;
}

ThemeNetwork InduceThemeNetworkFromEdges(
    const DatabaseNetwork& net, const Itemset& pattern,
    const std::vector<Edge>& candidate_edges) {
  ThemeNetwork tn;
  ThemeInductionScratch scratch;
  InduceThemeNetworkFromEdgesInto(net, pattern, candidate_edges, &tn,
                                  &scratch);
  return tn;
}

void InduceThemeNetworkFromEdgesInto(const DatabaseNetwork& net,
                                     const Itemset& pattern,
                                     const std::vector<Edge>& candidate_edges,
                                     ThemeNetwork* out,
                                     ThemeInductionScratch* scratch) {
  out->pattern = pattern;
  out->vertices.clear();
  out->frequencies.clear();
  out->edges.clear();

  // Collect distinct endpoints.
  std::vector<VertexId>& endpoints = scratch->endpoints;
  endpoints.clear();
  endpoints.reserve(candidate_edges.size() * 2);
  for (const Edge& e : candidate_edges) {
    endpoints.push_back(e.u);
    endpoints.push_back(e.v);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());

  // Frequency-check each endpoint once; the surviving vertices inherit
  // the endpoints' sorted order, so edge membership below is a binary
  // search instead of a per-call hash map.
  for (VertexId v : endpoints) {
    const double f = net.Frequency(v, pattern);
    if (f > 0) {
      out->vertices.push_back(v);
      out->frequencies.push_back(f);
    }
  }

  auto member = [&](VertexId v) {
    auto it = std::lower_bound(out->vertices.begin(), out->vertices.end(), v);
    return it != out->vertices.end() && *it == v;
  };
  for (const Edge& e : candidate_edges) {
    if (member(e.u) && member(e.v)) out->edges.push_back(e);
  }
  std::sort(out->edges.begin(), out->edges.end());
  out->edges.erase(std::unique(out->edges.begin(), out->edges.end()),
                   out->edges.end());

  // Drop vertices that lost all incident edges? No: Def. 3.3 induces the
  // truss from edges anyway, and MPTD ignores isolated vertices; keeping
  // them preserves the formal V_p for inspection.
}

}  // namespace tcf
