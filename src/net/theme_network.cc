#include "net/theme_network.h"

#include <algorithm>

#include "util/logging.h"

namespace tcf {

double ThemeNetwork::FrequencyOf(VertexId v) const {
  auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  if (it == vertices.end() || *it != v) return 0.0;
  return frequencies[static_cast<size_t>(it - vertices.begin())];
}

ThemeNetwork InduceThemeNetwork(const DatabaseNetwork& net,
                                const Itemset& pattern) {
  ThemeNetwork tn;
  tn.pattern = pattern;
  if (pattern.empty()) {
    // G_∅ is the whole network with f ≡ 1 on non-empty databases (every
    // transaction contains ∅). Vertices with empty databases stay out.
    for (VertexId v = 0; v < net.num_vertices(); ++v) {
      if (net.db(v).num_transactions() > 0) {
        tn.vertices.push_back(v);
        tn.frequencies.push_back(1.0);
      }
    }
  } else {
    // Candidate vertices: the item with the fewest carriers bounds the
    // vertex set of G_p from above (anti-monotonicity on vertices).
    const std::vector<VertexFrequency>* seed = &net.ItemVertices(pattern[0]);
    for (size_t i = 1; i < pattern.size(); ++i) {
      const auto& cand = net.ItemVertices(pattern[i]);
      if (cand.size() < seed->size()) seed = &cand;
    }
    for (const VertexFrequency& vf : *seed) {
      const double f = pattern.size() == 1
                           ? vf.frequency
                           : net.Frequency(vf.vertex, pattern);
      if (f > 0) {
        tn.vertices.push_back(vf.vertex);
        tn.frequencies.push_back(f);
      }
    }
  }

  // Membership test over the sorted vertex list.
  auto member = [&](VertexId v) {
    auto it = std::lower_bound(tn.vertices.begin(), tn.vertices.end(), v);
    return it != tn.vertices.end() && *it == v;
  };
  for (VertexId u : tn.vertices) {
    for (const Neighbor& nb : net.graph().neighbors(u)) {
      if (nb.vertex > u && member(nb.vertex)) {
        tn.edges.push_back({u, nb.vertex});
      }
    }
  }
  std::sort(tn.edges.begin(), tn.edges.end());
  return tn;
}

ThemeNetwork InduceThemeNetworkFromEdges(
    const DatabaseNetwork& net, const Itemset& pattern,
    const std::vector<Edge>& candidate_edges) {
  ThemeNetwork tn;
  tn.pattern = pattern;

  // Collect distinct endpoints.
  std::vector<VertexId> endpoints;
  endpoints.reserve(candidate_edges.size() * 2);
  for (const Edge& e : candidate_edges) {
    endpoints.push_back(e.u);
    endpoints.push_back(e.v);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());

  // Frequency-check each endpoint once.
  std::unordered_map<VertexId, double> freq;
  freq.reserve(endpoints.size() * 2);
  for (VertexId v : endpoints) {
    const double f = net.Frequency(v, pattern);
    if (f > 0) {
      tn.vertices.push_back(v);
      tn.frequencies.push_back(f);
      freq.emplace(v, f);
    }
  }

  for (const Edge& e : candidate_edges) {
    if (freq.count(e.u) && freq.count(e.v)) tn.edges.push_back(e);
  }
  std::sort(tn.edges.begin(), tn.edges.end());
  tn.edges.erase(std::unique(tn.edges.begin(), tn.edges.end()),
                 tn.edges.end());

  // Drop vertices that lost all incident edges? No: Def. 3.3 induces the
  // truss from edges anyway, and MPTD ignores isolated vertices; keeping
  // them preserves the formal V_p for inspection.
  return tn;
}

}  // namespace tcf
