#ifndef TCF_NET_NETWORK_IO_H_
#define TCF_NET_NETWORK_IO_H_

#include <iosfwd>
#include <string>

#include "net/database_network.h"
#include "util/status.h"

namespace tcf {

/// \brief Versioned plain-text serialization of database networks.
///
/// Format (line oriented, '#' comments allowed before the header):
/// \code
///   tcf-dbnet 1
///   vertices <n>
///   items <k>
///   i <id> <name>          # one per item, ids dense 0..k-1
///   e <u> <v>              # one per edge
///   d <vertex> <num_tx>    # database header, then num_tx lines:
///   t <item> <item> ...    # one transaction (may be empty: "t")
///   end
/// \endcode
/// Item names are escaped: '\\' -> "\\\\", ' ' -> "\\s", '\n' -> "\\n".

Status SaveNetwork(const DatabaseNetwork& net, std::ostream& os);
Status SaveNetworkToFile(const DatabaseNetwork& net, const std::string& path);

StatusOr<DatabaseNetwork> LoadNetwork(std::istream& is);
StatusOr<DatabaseNetwork> LoadNetworkFromFile(const std::string& path);

/// Escapes/unescapes item names for the text format.
std::string EscapeItemName(const std::string& name);
StatusOr<std::string> UnescapeItemName(const std::string& escaped);

}  // namespace tcf

#endif  // TCF_NET_NETWORK_IO_H_
