#ifndef TCF_NET_DATABASE_NETWORK_H_
#define TCF_NET_DATABASE_NETWORK_H_

#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "tx/item_dictionary.h"
#include "tx/itemset.h"
#include "tx/transaction_db.h"
#include "tx/vertical_index.h"
#include "util/status.h"

namespace tcf {

/// A vertex together with a pattern frequency, used by item indexes and
/// theme networks.
struct VertexFrequency {
  VertexId vertex;
  double frequency;

  bool operator==(const VertexFrequency& o) const {
    return vertex == o.vertex && frequency == o.frequency;
  }
};

/// \brief A database network `G = (V, E, D, S)` (§3.1): an undirected
/// graph whose every vertex carries a transaction database over the
/// global item set `S`.
///
/// Construction takes ownership of the graph, the per-vertex databases
/// (aligned with vertex ids) and the item dictionary. Two indexes are
/// built eagerly:
///  - a per-vertex `VerticalIndex` (tid-lists), making `Frequency` a
///    sorted-list intersection rather than a database scan; and
///  - an item→vertex index listing, for each item `s`, the vertices with
///    `f_i({s}) > 0` — exactly the vertex set of the singleton theme
///    network `G_{{s}}`, which seeds TCFA/TCFI level 1 and the TC-Tree
///    first layer.
class DatabaseNetwork {
 public:
  /// `databases.size()` must equal `graph.num_vertices()`.
  DatabaseNetwork(Graph graph, std::vector<TransactionDb> databases,
                  ItemDictionary dictionary);

  DatabaseNetwork(const DatabaseNetwork&) = delete;
  DatabaseNetwork& operator=(const DatabaseNetwork&) = delete;
  DatabaseNetwork(DatabaseNetwork&&) = default;
  DatabaseNetwork& operator=(DatabaseNetwork&&) = default;

  const Graph& graph() const { return graph_; }
  size_t num_vertices() const { return graph_.num_vertices(); }
  size_t num_edges() const { return graph_.num_edges(); }
  size_t num_items() const { return dictionary_.size(); }

  const TransactionDb& db(VertexId v) const { return databases_[v]; }
  const std::vector<TransactionDb>& databases() const { return databases_; }

  const ItemDictionary& dictionary() const { return dictionary_; }
  ItemDictionary& mutable_dictionary() { return dictionary_; }

  /// Pattern frequency `f_v(p)` via the vertex's vertical index.
  double Frequency(VertexId v, const Itemset& p) const;

  /// The vertical index of vertex `v`.
  const VerticalIndex& vertical(VertexId v) const { return *verticals_[v]; }

  /// Vertices with `f_i({item}) > 0`, with their frequencies, ascending
  /// by vertex id. Empty for out-of-range items.
  const std::vector<VertexFrequency>& ItemVertices(ItemId item) const;

  /// All item ids present in at least one vertex database.
  std::vector<ItemId> ActiveItems() const;

  // --- Streaming mutation (core/tc_tree_update.h) ----------------------
  //
  // Updates only *add*: transactions append to an existing vertex's
  // database and edges join existing vertices. New vertices or items are
  // not created here — the dictionary and vertex space are fixed at
  // construction, which is what keeps incremental index maintenance a
  // pure re-peel of dirty theme networks.

  /// Appends `tx` to vertex `v`'s database and reindexes the vertex: its
  /// vertical index is rebuilt and every item→vertex entry mentioning
  /// `v` is refreshed (appending one transaction grows the denominator
  /// |D_v|, so *every* active item's frequency at `v` changes). Fails
  /// without mutating anything if `v` is out of range.
  Status AddTransaction(VertexId v, Itemset tx);

  /// Inserts the undirected edge {u, v}. Duplicates are accepted and
  /// coalesced (the graph stays simple); self-loops and out-of-range
  /// endpoints fail without mutating anything.
  Status AddEdge(VertexId u, VertexId v);

 private:
  /// Rebuilds vertex `v`'s vertical index and its item→vertex entries
  /// after its database changed.
  void ReindexVertex(VertexId v);

  Graph graph_;
  std::vector<TransactionDb> databases_;
  ItemDictionary dictionary_;
  std::vector<std::unique_ptr<VerticalIndex>> verticals_;
  std::vector<std::vector<VertexFrequency>> item_vertices_;
  static const std::vector<VertexFrequency> kNoVertices;
};

}  // namespace tcf

#endif  // TCF_NET_DATABASE_NETWORK_H_
