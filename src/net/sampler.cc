#include "net/sampler.h"

#include <deque>
#include <unordered_map>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace tcf {

StatusOr<DatabaseNetwork> SampleByBfs(const DatabaseNetwork& net,
                                      size_t target_edges, Rng& rng) {
  if (target_edges == 0) {
    return Status::InvalidArgument("target_edges must be positive");
  }
  if (target_edges > net.num_edges()) {
    return Status::OutOfRange("network has " +
                              std::to_string(net.num_edges()) +
                              " edges, requested " +
                              std::to_string(target_edges));
  }

  const Graph& g = net.graph();
  const size_t n = g.num_vertices();
  std::vector<uint8_t> visited(n, 0);
  std::vector<uint8_t> edge_taken(g.num_edges(), 0);
  std::vector<Edge> sampled;
  sampled.reserve(target_edges);
  std::deque<VertexId> queue;

  size_t num_visited = 0;
  auto push_seed = [&]() -> bool {
    if (num_visited == n) return false;
    // Random unvisited seed; fall back to a scan when density of
    // unvisited vertices is low.
    for (int tries = 0; tries < 64; ++tries) {
      VertexId s = static_cast<VertexId>(rng.NextUint64(n));
      if (!visited[s]) {
        visited[s] = 1;
        ++num_visited;
        queue.push_back(s);
        return true;
      }
    }
    for (VertexId s = 0; s < n; ++s) {
      if (!visited[s]) {
        visited[s] = 1;
        ++num_visited;
        queue.push_back(s);
        return true;
      }
    }
    return false;
  };

  TCF_CHECK(push_seed());
  while (sampled.size() < target_edges) {
    if (queue.empty()) {
      if (!push_seed()) break;  // all vertices visited
      continue;
    }
    VertexId u = queue.front();
    queue.pop_front();
    for (const Neighbor& nb : g.neighbors(u)) {
      if (!edge_taken[nb.edge]) {
        edge_taken[nb.edge] = 1;
        sampled.push_back(g.edge(nb.edge));
        if (!visited[nb.vertex]) {
          visited[nb.vertex] = 1;
          ++num_visited;
          queue.push_back(nb.vertex);
        }
        if (sampled.size() == target_edges) break;
      } else if (!visited[nb.vertex]) {
        visited[nb.vertex] = 1;
        ++num_visited;
        queue.push_back(nb.vertex);
      }
    }
  }
  TCF_CHECK_MSG(sampled.size() == target_edges,
                "BFS sampling exhausted the graph prematurely");

  // Dense remap of touched vertices, in first-touch (sorted) order.
  std::unordered_map<VertexId, VertexId> remap;
  std::vector<VertexId> originals;
  auto touch = [&](VertexId v) {
    auto [it, inserted] =
        remap.emplace(v, static_cast<VertexId>(originals.size()));
    if (inserted) originals.push_back(v);
    return it->second;
  };

  GraphBuilder builder;
  for (const Edge& e : sampled) {
    TCF_CHECK(builder.AddEdge(touch(e.u), touch(e.v)).ok());
  }
  Graph sub = builder.Build();

  std::vector<TransactionDb> dbs(originals.size());
  for (size_t i = 0; i < originals.size(); ++i) dbs[i] = net.db(originals[i]);

  ItemDictionary dict = net.dictionary();  // copy, ids preserved
  return DatabaseNetwork(std::move(sub), std::move(dbs), std::move(dict));
}

}  // namespace tcf
