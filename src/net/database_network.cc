#include "net/database_network.h"

#include "util/logging.h"

namespace tcf {

const std::vector<VertexFrequency> DatabaseNetwork::kNoVertices;

DatabaseNetwork::DatabaseNetwork(Graph graph,
                                 std::vector<TransactionDb> databases,
                                 ItemDictionary dictionary)
    : graph_(std::move(graph)),
      databases_(std::move(databases)),
      dictionary_(std::move(dictionary)) {
  TCF_CHECK_MSG(databases_.size() == graph_.num_vertices(),
                "one transaction database per vertex required");
  verticals_.reserve(databases_.size());
  for (const TransactionDb& db : databases_) {
    verticals_.push_back(std::make_unique<VerticalIndex>(db));
  }
  // Item -> vertices with positive singleton frequency.
  for (VertexId v = 0; v < databases_.size(); ++v) {
    const VerticalIndex& vi = *verticals_[v];
    const double n = static_cast<double>(vi.num_transactions());
    if (n == 0) continue;
    for (ItemId item : vi.items()) {
      const double freq = static_cast<double>(vi.TidList(item).size()) / n;
      if (freq > 0) {
        if (item_vertices_.size() <= item) item_vertices_.resize(item + 1);
        item_vertices_[item].push_back({v, freq});
      }
    }
  }
}

double DatabaseNetwork::Frequency(VertexId v, const Itemset& p) const {
  return verticals_[v]->Frequency(p);
}

const std::vector<VertexFrequency>& DatabaseNetwork::ItemVertices(
    ItemId item) const {
  if (item >= item_vertices_.size()) return kNoVertices;
  return item_vertices_[item];
}

std::vector<ItemId> DatabaseNetwork::ActiveItems() const {
  std::vector<ItemId> out;
  for (ItemId item = 0; item < item_vertices_.size(); ++item) {
    if (!item_vertices_[item].empty()) out.push_back(item);
  }
  return out;
}

}  // namespace tcf
