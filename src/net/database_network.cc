#include "net/database_network.h"

#include <algorithm>

#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace tcf {

const std::vector<VertexFrequency> DatabaseNetwork::kNoVertices;

DatabaseNetwork::DatabaseNetwork(Graph graph,
                                 std::vector<TransactionDb> databases,
                                 ItemDictionary dictionary)
    : graph_(std::move(graph)),
      databases_(std::move(databases)),
      dictionary_(std::move(dictionary)) {
  TCF_CHECK_MSG(databases_.size() == graph_.num_vertices(),
                "one transaction database per vertex required");
  verticals_.reserve(databases_.size());
  for (const TransactionDb& db : databases_) {
    verticals_.push_back(std::make_unique<VerticalIndex>(db));
  }
  // Item -> vertices with positive singleton frequency.
  for (VertexId v = 0; v < databases_.size(); ++v) {
    const VerticalIndex& vi = *verticals_[v];
    const double n = static_cast<double>(vi.num_transactions());
    if (n == 0) continue;
    for (ItemId item : vi.items()) {
      const double freq = static_cast<double>(vi.TidList(item).size()) / n;
      if (freq > 0) {
        if (item_vertices_.size() <= item) item_vertices_.resize(item + 1);
        item_vertices_[item].push_back({v, freq});
      }
    }
  }
}

double DatabaseNetwork::Frequency(VertexId v, const Itemset& p) const {
  return verticals_[v]->Frequency(p);
}

const std::vector<VertexFrequency>& DatabaseNetwork::ItemVertices(
    ItemId item) const {
  if (item >= item_vertices_.size()) return kNoVertices;
  return item_vertices_[item];
}

void DatabaseNetwork::ReindexVertex(VertexId v) {
  // Drop v's stale item→vertex entries before the vertical is replaced:
  // the old index names exactly the items whose lists mention v.
  for (ItemId item : verticals_[v]->items()) {
    auto& list = item_vertices_[item];
    const auto it = std::find_if(
        list.begin(), list.end(),
        [v](const VertexFrequency& vf) { return vf.vertex == v; });
    if (it != list.end()) list.erase(it);
  }
  verticals_[v] = std::make_unique<VerticalIndex>(databases_[v]);
  const VerticalIndex& vi = *verticals_[v];
  const double n = static_cast<double>(vi.num_transactions());
  if (n == 0) return;
  for (ItemId item : vi.items()) {
    const double freq = static_cast<double>(vi.TidList(item).size()) / n;
    if (freq <= 0) continue;
    if (item_vertices_.size() <= item) item_vertices_.resize(item + 1);
    auto& list = item_vertices_[item];
    // Lists stay ascending by vertex id — theme-network induction and
    // the singleton seeds rely on that order.
    const auto pos = std::lower_bound(
        list.begin(), list.end(), v,
        [](const VertexFrequency& vf, VertexId id) { return vf.vertex < id; });
    list.insert(pos, {v, freq});
  }
}

Status DatabaseNetwork::AddTransaction(VertexId v, Itemset tx) {
  if (v >= num_vertices()) {
    return Status::InvalidArgument(
        StrFormat("vertex %u out of range (network has %zu vertices)", v,
                  num_vertices()));
  }
  databases_[v].Add(std::move(tx));
  ReindexVertex(v);
  return Status::OK();
}

Status DatabaseNetwork::AddEdge(VertexId u, VertexId v) {
  if (u >= num_vertices() || v >= num_vertices()) {
    return Status::InvalidArgument(
        StrFormat("edge {%u, %u} leaves the vertex range [0, %zu)", u, v,
                  num_vertices()));
  }
  if (u == v) {
    return Status::InvalidArgument(
        StrFormat("self-loop {%u, %u} rejected", u, v));
  }
  GraphBuilder builder(graph_.num_vertices());
  for (const Edge& e : graph_.edges()) {
    TCF_CHECK(builder.AddEdge(e.u, e.v).ok());
  }
  TCF_CHECK(builder.AddEdge(u, v).ok());
  graph_ = builder.Build();
  return Status::OK();
}

std::vector<ItemId> DatabaseNetwork::ActiveItems() const {
  std::vector<ItemId> out;
  for (ItemId item = 0; item < item_vertices_.size(); ++item) {
    if (!item_vertices_[item].empty()) out.push_back(item);
  }
  return out;
}

}  // namespace tcf
