#include "gen/syn_generator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "graph/random_graphs.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace tcf {

namespace {

// ⌈e^{rate·d}⌉ with a cap.
size_t ExpOfDegree(double rate, size_t degree, size_t cap) {
  const double v = std::exp(rate * static_cast<double>(degree));
  if (v >= static_cast<double>(cap)) return cap;
  return static_cast<size_t>(std::ceil(v));
}

}  // namespace

DatabaseNetwork GenerateSynNetwork(const SynParams& params) {
  TCF_CHECK_MSG(params.num_vertices >= 2, "need at least two vertices");
  TCF_CHECK_MSG(params.num_items >= 2, "need at least two items");
  TCF_CHECK_MSG(params.num_seeds >= 1, "need at least one seed vertex");
  Rng rng(params.seed);

  Graph g;
  switch (params.model) {
    case SynParams::Model::kErdosRenyi:
      g = ErdosRenyi(params.num_vertices, params.num_edges, rng);
      break;
    case SynParams::Model::kBarabasiAlbert: {
      const size_t attach = std::max<size_t>(
          1, params.num_edges / std::max<size_t>(1, params.num_vertices));
      g = BarabasiAlbert(params.num_vertices, attach, rng);
      break;
    }
  }

  ItemDictionary dict;
  for (size_t i = 0; i < params.num_items; ++i) {
    dict.GetOrAdd(StrFormat("s%zu", i));
  }

  const size_t n = g.num_vertices();
  std::vector<TransactionDb> dbs(n);
  std::vector<uint8_t> populated(n, 0);

  auto tx_count = [&](VertexId v) {
    return ExpOfDegree(0.1, g.degree(v), params.max_transactions_per_vertex);
  };
  auto tx_length = [&](VertexId v) {
    return std::min(
        ExpOfDegree(0.13, g.degree(v), params.max_transaction_length),
        params.num_items);
  };
  auto random_item = [&]() {
    return static_cast<ItemId>(rng.NextUint64(params.num_items));
  };

  // Seed vertices: uniform random itemsets over S.
  const size_t num_seeds = std::min(params.num_seeds, n);
  std::vector<uint64_t> seed_ids = rng.SampleDistinct(n, num_seeds);
  std::deque<VertexId> queue;
  for (uint64_t s : seed_ids) {
    const VertexId v = static_cast<VertexId>(s);
    const size_t count = tx_count(v);
    const size_t len = tx_length(v);
    for (size_t t = 0; t < count; ++t) {
      std::unordered_set<ItemId> items;
      while (items.size() < len) items.insert(random_item());
      dbs[v].Add(Itemset(std::vector<ItemId>(items.begin(), items.end())));
    }
    populated[v] = 1;
    queue.push_back(v);
  }

  // BFS propagation: copy transactions from populated neighbours,
  // re-randomizing `mutation_rate` of each transaction's items.
  auto populate_from_neighbors = [&](VertexId v) {
    std::vector<VertexId> sources;
    for (const Neighbor& nb : g.neighbors(v)) {
      if (populated[nb.vertex] && !dbs[nb.vertex].empty()) {
        sources.push_back(nb.vertex);
      }
    }
    const size_t count = tx_count(v);
    const size_t len = tx_length(v);
    for (size_t t = 0; t < count; ++t) {
      std::unordered_set<ItemId> items;
      if (!sources.empty()) {
        const TransactionDb& src = dbs[sources[rng.NextUint64(sources.size())]];
        const Itemset& base = src.transaction(
            static_cast<Tid>(rng.NextUint64(src.num_transactions())));
        for (ItemId item : base) {
          if (rng.NextBool(params.mutation_rate)) {
            items.insert(random_item());
          } else {
            items.insert(item);
          }
        }
      }
      // Trim or top up so the transaction length is exactly ⌈e^{0.13·d}⌉,
      // as §7 prescribes (copied transactions may come from a neighbour
      // of different degree).
      std::vector<ItemId> final_items(items.begin(), items.end());
      if (final_items.size() > len) {
        rng.Shuffle(final_items);
        final_items.resize(len);
      } else {
        std::unordered_set<ItemId> present(final_items.begin(),
                                           final_items.end());
        while (present.size() < len) {
          ItemId it = random_item();
          if (present.insert(it).second) final_items.push_back(it);
        }
      }
      dbs[v].Add(Itemset(std::move(final_items)));
    }
    populated[v] = 1;
  };

  size_t num_populated = num_seeds;
  while (num_populated < n) {
    if (queue.empty()) {
      // Disconnected remainder: promote an unpopulated vertex.
      for (VertexId v = 0; v < n; ++v) {
        if (!populated[v]) {
          populate_from_neighbors(v);
          ++num_populated;
          queue.push_back(v);
          break;
        }
      }
      continue;
    }
    const VertexId u = queue.front();
    queue.pop_front();
    for (const Neighbor& nb : g.neighbors(u)) {
      if (!populated[nb.vertex]) {
        populate_from_neighbors(nb.vertex);
        ++num_populated;
        queue.push_back(nb.vertex);
      }
    }
  }

  return DatabaseNetwork(std::move(g), std::move(dbs), std::move(dict));
}

}  // namespace tcf
