#ifndef TCF_GEN_CHECKIN_GENERATOR_H_
#define TCF_GEN_CHECKIN_GENERATOR_H_

#include <cstdint>

#include "net/database_network.h"

namespace tcf {

/// Parameters of the location-based-social-network generator.
struct CheckinParams {
  /// Number of users (vertices).
  size_t num_users = 2000;
  /// Number of distinct check-in locations (items), named "loc<i>".
  size_t num_locations = 300;
  /// Watts–Strogatz lattice half-degree of the friendship graph.
  size_t friends_k = 5;
  /// Watts–Strogatz rewiring probability.
  double rewire_beta = 0.1;
  /// Check-in periods per user; each period becomes one transaction
  /// (the paper cuts check-in history into 2-day periods).
  size_t periods_per_user = 40;
  /// Mean number of locations visited per period.
  double locations_per_period = 3.0;
  /// Zipf skew of global location popularity (heavy tail).
  double popularity_skew = 1.1;
  /// Size of a user's habitual location set.
  size_t favorites_per_user = 8;
  /// Fraction of a user's favourites copied from already-generated
  /// friends — this is what makes friend groups co-visit the same
  /// places and hence form theme communities.
  double social_mimicry = 0.6;
  /// Probability a period check-in is exploratory (random location)
  /// rather than drawn from the user's favourites.
  double exploration_rate = 0.15;
  uint64_t seed = 42;
};

/// \brief Generates a Brightkite/Gowalla-like database network (§7's BK
/// and GW): a small-world friendship graph where each user's database
/// holds one transaction per check-in period, listing the locations
/// visited in it.
///
/// Substitution note (see DESIGN.md): the real datasets are unreachable
/// offline; this generator reproduces the properties the algorithms are
/// sensitive to — sparse high-clustering friendship topology, Zipfian
/// location popularity, and neighbour-correlated vertex databases.
DatabaseNetwork GenerateCheckinNetwork(const CheckinParams& params);

}  // namespace tcf

#endif  // TCF_GEN_CHECKIN_GENERATOR_H_
