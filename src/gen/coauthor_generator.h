#ifndef TCF_GEN_COAUTHOR_GENERATOR_H_
#define TCF_GEN_COAUTHOR_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/database_network.h"

namespace tcf {

/// A planted research group: ground truth for the case study.
struct PlantedGroup {
  std::vector<VertexId> members;  // sorted
  Itemset theme;                  // the group's keyword set
};

/// Parameters of the co-author network generator.
struct CoauthorParams {
  /// Number of research groups to plant.
  size_t num_groups = 12;
  /// Members per group (uniform in [min, max]).
  size_t group_size_min = 5;
  size_t group_size_max = 12;
  /// Fraction of a group's members drawn from existing authors (these
  /// become the multi-community "hub" scholars of Fig. 6, e.g. authors
  /// active in several sub-disciplines).
  double overlap_fraction = 0.25;
  /// Keywords per group theme.
  size_t theme_size = 4;
  /// Probability that two members of the same group co-author.
  double intra_group_edge_prob = 0.75;
  /// Random background collaborations (fraction of |V| extra edges).
  double background_edge_factor = 1.0;
  /// Papers each member writes *per group membership*.
  size_t papers_per_membership = 12;
  /// Probability each theme keyword appears in a group paper's abstract.
  double keyword_recall = 0.9;
  /// Noise keywords in the global vocabulary, named "noise<i>".
  size_t num_noise_keywords = 60;
  /// Noise keywords added to each paper.
  size_t noise_per_paper = 2;
  /// Extra solo papers (pure noise) per author.
  size_t solo_papers = 3;
  uint64_t seed = 7;
};

/// A generated co-author network plus its planted ground truth.
struct CoauthorNetwork {
  DatabaseNetwork network;
  std::vector<PlantedGroup> groups;
};

/// \brief Generates an AMINER-like co-author database network (§7's case
/// study): authors are vertices, co-authorship edges, and each author's
/// database holds one transaction per paper (the paper's abstract
/// keywords).
///
/// Groups of collaborating scholars are *planted* with known themes and
/// deliberate member overlap, so the case-study harness can report
/// precision/recall of theme-community recovery in addition to the
/// qualitative Fig.-6-style output. Theme keywords are named
/// "kw<g>_<j>"; noise keywords "noise<i>".
CoauthorNetwork GenerateCoauthorNetwork(const CoauthorParams& params);

}  // namespace tcf

#endif  // TCF_GEN_COAUTHOR_GENERATOR_H_
