#include "gen/checkin_generator.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "graph/random_graphs.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace tcf {

DatabaseNetwork GenerateCheckinNetwork(const CheckinParams& params) {
  TCF_CHECK_MSG(params.num_users >= 2, "need at least two users");
  TCF_CHECK_MSG(params.num_locations >= 2, "need at least two locations");
  Rng rng(params.seed);

  Graph friendship = WattsStrogatz(params.num_users, params.friends_k,
                                   params.rewire_beta, rng);

  ItemDictionary dict;
  for (size_t i = 0; i < params.num_locations; ++i) {
    dict.GetOrAdd(StrFormat("loc%zu", i));
  }

  // Favourite location sets, built in BFS order so that friends share
  // habits: each user copies a fraction from already-built friends and
  // fills the rest from the Zipfian popularity distribution.
  const size_t n = params.num_users;
  std::vector<std::vector<ItemId>> favorites(n);
  std::vector<uint8_t> built(n, 0);

  std::deque<VertexId> queue;
  auto build_favorites = [&](VertexId u) {
    std::unordered_set<ItemId> favs;
    // Mimic friends that already have habits.
    std::vector<ItemId> friend_pool;
    for (const Neighbor& nb : friendship.neighbors(u)) {
      if (built[nb.vertex]) {
        friend_pool.insert(friend_pool.end(), favorites[nb.vertex].begin(),
                           favorites[nb.vertex].end());
      }
    }
    while (favs.size() < params.favorites_per_user) {
      if (!friend_pool.empty() && rng.NextBool(params.social_mimicry)) {
        favs.insert(friend_pool[rng.NextUint64(friend_pool.size())]);
      } else {
        favs.insert(static_cast<ItemId>(
            rng.NextZipf(params.num_locations, params.popularity_skew)));
      }
    }
    favorites[u].assign(favs.begin(), favs.end());
    std::sort(favorites[u].begin(), favorites[u].end());
    built[u] = 1;
  };

  size_t num_built = 0;
  for (VertexId seed = 0; seed < n; ++seed) {
    if (built[seed]) continue;
    build_favorites(seed);
    ++num_built;
    queue.push_back(seed);
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop_front();
      for (const Neighbor& nb : friendship.neighbors(u)) {
        if (!built[nb.vertex]) {
          build_favorites(nb.vertex);
          ++num_built;
          queue.push_back(nb.vertex);
        }
      }
    }
  }
  TCF_CHECK(num_built == n);

  // Check-in periods -> transactions.
  std::vector<TransactionDb> dbs(n);
  for (VertexId u = 0; u < n; ++u) {
    for (size_t period = 0; period < params.periods_per_user; ++period) {
      // Poisson-ish count via geometric mixing around the mean.
      size_t visits = 1 + static_cast<size_t>(rng.NextUint64(
                              static_cast<uint64_t>(
                                  std::max(1.0, 2.0 * params.locations_per_period))));
      std::unordered_set<ItemId> where;
      for (size_t i = 0; i < visits; ++i) {
        if (rng.NextBool(params.exploration_rate)) {
          where.insert(static_cast<ItemId>(
              rng.NextZipf(params.num_locations, params.popularity_skew)));
        } else {
          where.insert(
              favorites[u][rng.NextUint64(favorites[u].size())]);
        }
      }
      dbs[u].Add(Itemset(std::vector<ItemId>(where.begin(), where.end())));
    }
  }

  return DatabaseNetwork(std::move(friendship), std::move(dbs),
                         std::move(dict));
}

}  // namespace tcf
