#include "gen/coauthor_generator.h"

#include <algorithm>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace tcf {

CoauthorNetwork GenerateCoauthorNetwork(const CoauthorParams& params) {
  TCF_CHECK_MSG(params.num_groups >= 1, "need at least one group");
  TCF_CHECK_MSG(params.group_size_min >= 3,
                "groups below 3 members cannot form triangles");
  TCF_CHECK_MSG(params.group_size_max >= params.group_size_min,
                "group_size_max < group_size_min");
  Rng rng(params.seed);

  ItemDictionary dict;
  std::vector<PlantedGroup> groups;
  size_t num_authors = 0;

  // --- Plant groups: membership + themes. ------------------------------
  for (size_t g = 0; g < params.num_groups; ++g) {
    PlantedGroup group;
    const size_t size =
        params.group_size_min +
        rng.NextUint64(params.group_size_max - params.group_size_min + 1);

    std::unordered_set<VertexId> members;
    // Overlap members: recruit existing authors (hubs across groups).
    if (num_authors > 0) {
      const size_t want_overlap = static_cast<size_t>(
          static_cast<double>(size) * params.overlap_fraction);
      for (size_t i = 0; i < want_overlap; ++i) {
        members.insert(static_cast<VertexId>(rng.NextUint64(num_authors)));
      }
    }
    // Fresh members.
    while (members.size() < size) {
      members.insert(static_cast<VertexId>(num_authors++));
    }
    group.members.assign(members.begin(), members.end());
    std::sort(group.members.begin(), group.members.end());

    std::vector<ItemId> theme;
    for (size_t j = 0; j < params.theme_size; ++j) {
      theme.push_back(dict.GetOrAdd(StrFormat("kw%zu_%zu", g, j)));
    }
    group.theme = Itemset(std::move(theme));
    groups.push_back(std::move(group));
  }

  std::vector<ItemId> noise;
  for (size_t i = 0; i < params.num_noise_keywords; ++i) {
    noise.push_back(dict.GetOrAdd(StrFormat("noise%zu", i)));
  }

  // --- Collaboration edges. --------------------------------------------
  GraphBuilder builder(num_authors);
  for (const PlantedGroup& g : groups) {
    for (size_t i = 0; i < g.members.size(); ++i) {
      for (size_t j = i + 1; j < g.members.size(); ++j) {
        if (rng.NextBool(params.intra_group_edge_prob)) {
          TCF_CHECK(builder.AddEdge(g.members[i], g.members[j]).ok());
        }
      }
    }
  }
  const size_t background =
      static_cast<size_t>(static_cast<double>(num_authors) *
                          params.background_edge_factor);
  for (size_t i = 0; i < background && num_authors >= 2; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextUint64(num_authors));
    VertexId b = static_cast<VertexId>(rng.NextUint64(num_authors));
    if (a != b) TCF_CHECK(builder.AddEdge(a, b).ok());
  }

  // --- Papers -> vertex databases. --------------------------------------
  std::vector<TransactionDb> dbs(num_authors);
  auto add_noise = [&](std::vector<ItemId>* kw) {
    for (size_t i = 0; i < params.noise_per_paper; ++i) {
      if (!noise.empty()) {
        kw->push_back(noise[rng.NextUint64(noise.size())]);
      }
    }
  };
  for (const PlantedGroup& g : groups) {
    for (VertexId author : g.members) {
      for (size_t paper = 0; paper < params.papers_per_membership; ++paper) {
        std::vector<ItemId> kw;
        for (ItemId item : g.theme) {
          if (rng.NextBool(params.keyword_recall)) kw.push_back(item);
        }
        add_noise(&kw);
        if (!kw.empty()) dbs[author].Add(Itemset(std::move(kw)));
      }
    }
  }
  for (VertexId author = 0; author < num_authors; ++author) {
    for (size_t paper = 0; paper < params.solo_papers; ++paper) {
      std::vector<ItemId> kw;
      add_noise(&kw);
      if (!kw.empty()) dbs[author].Add(Itemset(std::move(kw)));
    }
  }

  CoauthorNetwork out{
      DatabaseNetwork(builder.Build(), std::move(dbs), std::move(dict)),
      std::move(groups)};
  return out;
}

}  // namespace tcf
