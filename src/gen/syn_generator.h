#ifndef TCF_GEN_SYN_GENERATOR_H_
#define TCF_GEN_SYN_GENERATOR_H_

#include <cstdint>

#include "net/database_network.h"

namespace tcf {

/// Parameters of the paper's SYN recipe (§7, "Synthetic (SYN) dataset").
struct SynParams {
  /// Vertices of the random network (paper: 1e6).
  size_t num_vertices = 5000;
  /// Edges of the random network (paper: 1e7).
  size_t num_edges = 25000;
  /// Random-graph model. The paper generates its network with JUNG and
  /// does not name the model; Erdős–Rényi keeps degrees near the mean so
  /// the e^{0.1·d} database sizes stay bounded, Barabási–Albert adds
  /// heavy-tailed hubs.
  enum class Model { kErdosRenyi, kBarabasiAlbert } model = Model::kErdosRenyi;
  /// Items in S (paper: 1e4), named "s<i>".
  size_t num_items = 500;
  /// Seed vertices whose databases are sampled directly from S
  /// (paper: 1000).
  size_t num_seeds = 50;
  /// Fraction of items of each copied transaction that are re-randomized
  /// for non-seed vertices (paper: 10%).
  double mutation_rate = 0.1;
  /// Safety caps on the e^{0.1·d(v)} transaction count and e^{0.13·d(v)}
  /// transaction length (hub degrees would otherwise explode them).
  size_t max_transactions_per_vertex = 2000;
  size_t max_transaction_length = 200;
  uint64_t seed = 2026;
};

/// \brief The paper's synthetic database network, generated exactly per
/// §7's recipe: (1) a random network; (2) 1000 (here: `num_seeds`) seed
/// vertices whose transactions are random itemsets over S; (3) every
/// other vertex, visited in breadth-first order, samples transactions
/// from already-populated neighbours and re-randomizes 10% of the items;
/// (4) vertex `v` gets ⌈e^{0.1·d(v)}⌉ transactions of length
/// ⌈e^{0.13·d(v)}⌉.
DatabaseNetwork GenerateSynNetwork(const SynParams& params);

}  // namespace tcf

#endif  // TCF_GEN_SYN_GENERATOR_H_
