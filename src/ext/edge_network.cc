#include "ext/edge_network.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace tcf {

EdgeDatabaseNetwork::EdgeDatabaseNetwork(Graph graph,
                                         std::vector<TransactionDb> databases,
                                         ItemDictionary dictionary)
    : graph_(std::move(graph)),
      databases_(std::move(databases)),
      dictionary_(std::move(dictionary)) {
  TCF_CHECK_MSG(databases_.size() == graph_.num_edges(),
                "one transaction database per edge required");
  verticals_.reserve(databases_.size());
  for (const TransactionDb& db : databases_) {
    verticals_.push_back(std::make_unique<VerticalIndex>(db));
  }
}

double EdgeDatabaseNetwork::Frequency(EdgeId e, const Itemset& p) const {
  return verticals_[e]->Frequency(p);
}

std::vector<ItemId> EdgeDatabaseNetwork::ActiveItems() const {
  std::set<ItemId> items;
  for (const auto& vi : verticals_) {
    items.insert(vi->items().begin(), vi->items().end());
  }
  return std::vector<ItemId>(items.begin(), items.end());
}

EdgeThemeNetwork InduceEdgeThemeNetwork(const EdgeDatabaseNetwork& net,
                                        const Itemset& pattern) {
  EdgeThemeNetwork tn;
  tn.pattern = pattern;
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    const double f = net.Frequency(e, pattern);
    if (f > 0) {
      tn.edges.push_back(net.graph().edge(e));
      tn.frequencies.push_back(f);
    }
  }
  // Graph edge ids ascend in canonical order, so tn.edges is sorted.
  return tn;
}

EdgeThemeNetwork InduceEdgeThemeNetworkFromEdges(
    const EdgeDatabaseNetwork& net, const Itemset& pattern,
    const std::vector<Edge>& candidate_edges) {
  EdgeThemeNetwork tn;
  tn.pattern = pattern;
  std::vector<Edge> sorted = candidate_edges;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const Edge& e : sorted) {
    const EdgeId id = net.graph().FindEdge(e.u, e.v);
    if (id == kInvalidEdge) continue;
    const double f = net.Frequency(id, pattern);
    if (f > 0) {
      tn.edges.push_back(e);
      tn.frequencies.push_back(f);
    }
  }
  return tn;
}

}  // namespace tcf
