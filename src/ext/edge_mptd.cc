#include "ext/edge_mptd.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/logging.h"

namespace tcf {

EdgePeeler::EdgePeeler(const EdgeThemeNetwork& tn) : tn_(&tn) {
  for (const Edge& e : tn.edges) {
    vertices_.push_back(e.u);
    vertices_.push_back(e.v);
  }
  std::sort(vertices_.begin(), vertices_.end());
  vertices_.erase(std::unique(vertices_.begin(), vertices_.end()),
                  vertices_.end());
  auto local_of = [&](VertexId g) {
    return static_cast<uint32_t>(
        std::lower_bound(vertices_.begin(), vertices_.end(), g) -
        vertices_.begin());
  };
  adj_.assign(vertices_.size(), {});
  local_edges_.reserve(tn.edges.size());
  qfreq_.reserve(tn.edges.size());
  for (EdgeId e = 0; e < tn.edges.size(); ++e) {
    const uint32_t lu = local_of(tn.edges[e].u);
    const uint32_t lv = local_of(tn.edges[e].v);
    local_edges_.push_back({lu, lv});
    adj_[lu].push_back({lv, e});
    adj_[lv].push_back({lu, e});
    qfreq_.push_back(QuantizeFrequency(tn.frequencies[e]));
  }
  for (auto& a : adj_) {
    std::sort(a.begin(), a.end(),
              [](const LocalNeighbor& x, const LocalNeighbor& y) {
                return x.vertex < y.vertex;
              });
  }
  alive_.assign(local_edges_.size(), 1);
  num_alive_ = local_edges_.size();

  cohesion_.assign(local_edges_.size(), 0);
  for (EdgeId e = 0; e < local_edges_.size(); ++e) {
    CohesionValue total = 0;
    ForEachAliveTriangle(e, [&](EdgeId e1, EdgeId e2) {
      total += std::min({qfreq_[e], qfreq_[e1], qfreq_[e2]});
    });
    cohesion_[e] = total;
  }
}

template <typename Fn>
void EdgePeeler::ForEachAliveTriangle(EdgeId e, Fn&& fn) const {
  const LocalEdge& le = local_edges_[e];
  const auto& a = adj_[le.u];
  const auto& b = adj_[le.v];
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].vertex < b[j].vertex) {
      ++i;
    } else if (a[i].vertex > b[j].vertex) {
      ++j;
    } else {
      if (alive_[a[i].edge] && alive_[b[j].edge]) {
        fn(a[i].edge, b[j].edge);
      }
      ++i;
      ++j;
    }
  }
}

void EdgePeeler::PeelToThreshold(CohesionValue alpha_q,
                                 std::vector<EdgeId>* removed) {
  std::vector<EdgeId> queue;
  std::vector<uint8_t> in_queue(local_edges_.size(), 0);
  for (EdgeId e = 0; e < local_edges_.size(); ++e) {
    if (alive_[e] && cohesion_[e] <= alpha_q) {
      queue.push_back(e);
      in_queue[e] = 1;
    }
  }
  size_t head = 0;
  while (head < queue.size()) {
    const EdgeId e = queue[head++];
    if (!alive_[e]) continue;
    alive_[e] = 0;
    --num_alive_;
    ForEachAliveTriangle(e, [&](EdgeId e1, EdgeId e2) {
      const CohesionValue m = std::min({qfreq_[e], qfreq_[e1], qfreq_[e2]});
      for (EdgeId wing : {e1, e2}) {
        cohesion_[wing] -= m;
        if (min_tracking_) min_heap_.emplace(cohesion_[wing], wing);
        if (!in_queue[wing] && cohesion_[wing] <= alpha_q) {
          queue.push_back(wing);
          in_queue[wing] = 1;
        }
      }
    });
    if (removed != nullptr) removed->push_back(e);
  }
}

CohesionValue EdgePeeler::MinAliveCohesion() {
  if (!min_tracking_) {
    min_tracking_ = true;
    for (EdgeId e = 0; e < local_edges_.size(); ++e) {
      if (alive_[e]) min_heap_.emplace(cohesion_[e], e);
    }
  }
  while (!min_heap_.empty()) {
    const auto& [c, e] = min_heap_.top();
    if (alive_[e] && cohesion_[e] == c) return c;
    min_heap_.pop();
  }
  return kNoAliveEdges;
}

PatternTruss EdgePeeler::ExtractTruss() const {
  PatternTruss truss;
  truss.pattern = tn_->pattern;
  for (EdgeId e = 0; e < local_edges_.size(); ++e) {
    if (alive_[e]) {
      truss.edges.push_back(tn_->edges[e]);
      truss.edge_cohesions.push_back(cohesion_[e]);
    }
  }
  std::vector<VertexId> endpoints;
  for (const Edge& e : truss.edges) {
    endpoints.push_back(e.u);
    endpoints.push_back(e.v);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  truss.vertices = std::move(endpoints);
  return truss;
}

Edge EdgePeeler::GlobalEdge(EdgeId e) const { return tn_->edges[e]; }

PatternTruss EdgeMptd(const EdgeThemeNetwork& tn, double alpha) {
  PatternTruss truss;
  truss.pattern = tn.pattern;
  if (tn.edges.empty()) return truss;
  EdgePeeler peeler(tn);
  peeler.PeelToThreshold(QuantizeAlpha(alpha));
  return peeler.ExtractTruss();
}

PatternTruss EdgeMptdBruteForce(const EdgeThemeNetwork& tn, double alpha) {
  const CohesionValue alpha_q = QuantizeAlpha(alpha);
  std::map<Edge, CohesionValue> freq;
  for (size_t i = 0; i < tn.edges.size(); ++i) {
    freq[tn.edges[i]] = QuantizeFrequency(tn.frequencies[i]);
  }
  std::set<Edge> edges(tn.edges.begin(), tn.edges.end());

  bool changed = true;
  while (changed) {
    changed = false;
    std::map<VertexId, std::vector<VertexId>> adj;
    for (const Edge& e : edges) {
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
    }
    std::vector<Edge> to_remove;
    for (const Edge& e : edges) {
      CohesionValue eco = 0;
      for (VertexId w : adj[e.u]) {
        if (w == e.v) continue;
        const Edge e1 = MakeEdge(e.u, w);
        const Edge e2 = MakeEdge(e.v, w);
        if (edges.count(e2)) {
          eco += std::min({freq[e], freq[e1], freq[e2]});
        }
      }
      if (eco <= alpha_q) to_remove.push_back(e);
    }
    for (const Edge& e : to_remove) {
      edges.erase(e);
      changed = true;
    }
  }

  PatternTruss truss;
  truss.pattern = tn.pattern;
  truss.edges.assign(edges.begin(), edges.end());
  {
    std::map<VertexId, std::vector<VertexId>> adj;
    for (const Edge& e : truss.edges) {
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
    }
    for (const Edge& e : truss.edges) {
      CohesionValue eco = 0;
      for (VertexId w : adj[e.u]) {
        if (w == e.v) continue;
        if (edges.count(MakeEdge(e.v, w))) {
          eco += std::min(
              {freq[e], freq[MakeEdge(e.u, w)], freq[MakeEdge(e.v, w)]});
        }
      }
      truss.edge_cohesions.push_back(eco);
    }
  }
  std::vector<VertexId> endpoints;
  for (const Edge& e : truss.edges) {
    endpoints.push_back(e.u);
    endpoints.push_back(e.v);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  truss.vertices = std::move(endpoints);
  return truss;
}

}  // namespace tcf
