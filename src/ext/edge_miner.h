#ifndef TCF_EXT_EDGE_MINER_H_
#define TCF_EXT_EDGE_MINER_H_

#include "core/mining_result.h"
#include "ext/edge_network.h"

namespace tcf {

/// Options for the edge-network theme-community miner.
struct EdgeMinerOptions {
  double alpha = 0.0;
  size_t max_pattern_length = 0;  // 0 = unlimited
};

/// \brief TCFI lifted to edge database networks (§8 future work).
///
/// Level-wise Apriori search with intersection pruning: the graph
/// anti-monotonicity argument transfers verbatim — `p1 ⊆ p2` implies
/// `f_ij(p1) ≥ f_ij(p2)` on every edge, so each triangle's min cannot
/// grow, so `C*_{p2}(α) ⊆ C*_{p1}(α)` — and with it Prop. 5.2 (subtree
/// pruning) and Prop. 5.3 (candidate trusses live inside their parents'
/// intersection).
MiningResult RunEdgeTcfi(const EdgeDatabaseNetwork& net,
                         const EdgeMinerOptions& options);

/// Exhaustive oracle (all supported patterns × fixpoint MPTD) for tests.
MiningResult BruteForceEdgeMineAll(const EdgeDatabaseNetwork& net,
                                   double alpha, size_t max_length = 0);

}  // namespace tcf

#endif  // TCF_EXT_EDGE_MINER_H_
