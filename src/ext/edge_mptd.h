#ifndef TCF_EXT_EDGE_MPTD_H_
#define TCF_EXT_EDGE_MPTD_H_

#include <limits>
#include <queue>
#include <vector>

#include "core/cohesion.h"
#include "core/pattern_truss.h"
#include "ext/edge_network.h"

namespace tcf {

/// \brief Peeling engine for edge database networks (§8 future work) —
/// the `ThemePeeler` counterpart with frequencies living on edges.
///
/// The cohesion of edge e_ij within the surviving subgraph sums
/// `min(f_ij, f_ik, f_jk)` over its triangles — the min over the three
/// *edge* frequencies. Removing an edge breaks its triangles and
/// decrements both wing edges by that min, maintained exactly in fixed
/// point, so ascending-threshold peeling (the decomposition loop) works
/// the same way it does for vertex networks.
class EdgePeeler {
 public:
  explicit EdgePeeler(const EdgeThemeNetwork& tn);

  size_t num_edges() const { return local_edges_.size(); }
  size_t num_alive() const { return num_alive_; }

  /// Removes every edge with cohesion ≤ `alpha_q`, cascading. Local ids
  /// of removed edges are appended to `*removed` when non-null. Calls
  /// must use non-decreasing thresholds.
  void PeelToThreshold(CohesionValue alpha_q,
                       std::vector<EdgeId>* removed = nullptr);

  /// Minimum cohesion among alive edges, or `kNoAliveEdges`.
  CohesionValue MinAliveCohesion();

  static constexpr CohesionValue kNoAliveEdges =
      std::numeric_limits<CohesionValue>::max();

  /// Materializes the surviving subgraph. `vertices` holds the edge
  /// endpoints; `frequencies` is empty (frequencies live on edges).
  PatternTruss ExtractTruss() const;

  Edge GlobalEdge(EdgeId e) const;

 private:
  struct LocalNeighbor {
    uint32_t vertex;
    uint32_t edge;
  };
  struct LocalEdge {
    uint32_t u;
    uint32_t v;
  };

  template <typename Fn>
  void ForEachAliveTriangle(EdgeId e, Fn&& fn) const;

  const EdgeThemeNetwork* tn_;
  std::vector<VertexId> vertices_;  // sorted global endpoints
  std::vector<LocalEdge> local_edges_;
  std::vector<std::vector<LocalNeighbor>> adj_;
  std::vector<CohesionValue> qfreq_;     // per local *edge*
  std::vector<CohesionValue> cohesion_;  // per local edge
  std::vector<uint8_t> alive_;
  size_t num_alive_ = 0;

  using HeapEntry = std::pair<CohesionValue, EdgeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      min_heap_;
  bool min_tracking_ = false;
};

/// MPTD for edge theme networks: `C*_p(α)`.
PatternTruss EdgeMptd(const EdgeThemeNetwork& tn, double alpha);

/// Fixpoint reference for the tests (recomputes every cohesion from
/// scratch each round).
PatternTruss EdgeMptdBruteForce(const EdgeThemeNetwork& tn, double alpha);

}  // namespace tcf

#endif  // TCF_EXT_EDGE_MPTD_H_
