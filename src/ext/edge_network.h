#ifndef TCF_EXT_EDGE_NETWORK_H_
#define TCF_EXT_EDGE_NETWORK_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "tx/item_dictionary.h"
#include "tx/transaction_db.h"
#include "tx/vertical_index.h"

namespace tcf {

/// \brief An *edge database network* — the paper's future-work extension
/// (§8): an undirected graph where every **edge** carries a transaction
/// database describing the relationship between its endpoints (e.g. the
/// products two friends bought together, the venues of papers two
/// scholars co-authored).
///
/// The theme-community machinery lifts naturally: pattern frequency
/// lives on edges, `f_ij(p)`; the theme network `G_p` keeps the edges
/// with `f_ij(p) > 0`; and the cohesion of an edge within a subgraph is
///
///   eco_ij(C_p) = Σ_{△ijk ⊆ C_p} min(f_ij(p), f_ik(p), f_jk(p)),
///
/// the min now ranging over the *three edges* of each triangle. All the
/// structural results carry over (anti-monotonicity, intersection,
/// decomposability) because they only rely on min(...) being monotone in
/// the per-element frequencies — which the tests verify empirically.
class EdgeDatabaseNetwork {
 public:
  /// `databases.size()` must equal `graph.num_edges()`; `databases[e]`
  /// belongs to edge id `e`.
  EdgeDatabaseNetwork(Graph graph, std::vector<TransactionDb> databases,
                      ItemDictionary dictionary);

  EdgeDatabaseNetwork(EdgeDatabaseNetwork&&) = default;
  EdgeDatabaseNetwork& operator=(EdgeDatabaseNetwork&&) = default;

  const Graph& graph() const { return graph_; }
  size_t num_vertices() const { return graph_.num_vertices(); }
  size_t num_edges() const { return graph_.num_edges(); }

  const TransactionDb& db(EdgeId e) const { return databases_[e]; }
  const ItemDictionary& dictionary() const { return dictionary_; }

  /// Pattern frequency on edge `e` via its vertical index.
  double Frequency(EdgeId e, const Itemset& p) const;

  /// All items appearing in at least one edge database.
  std::vector<ItemId> ActiveItems() const;

 private:
  Graph graph_;
  std::vector<TransactionDb> databases_;
  ItemDictionary dictionary_;
  std::vector<std::unique_ptr<VerticalIndex>> verticals_;
};

/// The edge-frequency-annotated theme network of `pattern`: the edges
/// with `f_ij(p) > 0` (canonical order) and their frequencies.
struct EdgeThemeNetwork {
  Itemset pattern;
  std::vector<Edge> edges;            // sorted canonical
  std::vector<double> frequencies;    // parallel to edges
  bool empty() const { return edges.empty(); }
};

EdgeThemeNetwork InduceEdgeThemeNetwork(const EdgeDatabaseNetwork& net,
                                        const Itemset& pattern);

/// Induction restricted to a candidate edge set (Prop.-5.3 analogue).
EdgeThemeNetwork InduceEdgeThemeNetworkFromEdges(
    const EdgeDatabaseNetwork& net, const Itemset& pattern,
    const std::vector<Edge>& candidate_edges);

}  // namespace tcf

#endif  // TCF_EXT_EDGE_NETWORK_H_
