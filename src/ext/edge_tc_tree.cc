#include "ext/edge_tc_tree.h"

#include <algorithm>

#include "util/logging.h"

namespace tcf {

TrussDecomposition DecomposeEdgeThemeNetwork(const EdgeThemeNetwork& tn) {
  if (tn.edges.empty()) {
    return TrussDecomposition::FromParts(tn.pattern, {}, {}, {});
  }
  EdgePeeler peeler(tn);
  peeler.PeelToThreshold(0);
  if (peeler.num_alive() == 0) {
    return TrussDecomposition::FromParts(tn.pattern, {}, {}, {});
  }
  PatternTruss base = peeler.ExtractTruss();

  std::vector<DecompositionLevel> levels;
  while (peeler.num_alive() > 0) {
    const CohesionValue beta = peeler.MinAliveCohesion();
    TCF_CHECK(beta != EdgePeeler::kNoAliveEdges);
    std::vector<EdgeId> removed_local;
    peeler.PeelToThreshold(beta, &removed_local);
    TCF_CHECK(!removed_local.empty());
    DecompositionLevel level;
    level.alpha = beta;
    level.removed.reserve(removed_local.size());
    for (EdgeId e : removed_local) {
      level.removed.push_back(peeler.GlobalEdge(e));
    }
    levels.push_back(std::move(level));
  }
  // Frequencies live on edges in this model; store zeros for the
  // endpoint list so reconstruction still yields the right vertex sets.
  std::vector<double> zeros(base.vertices.size(), 0.0);
  return TrussDecomposition::FromParts(tn.pattern, std::move(base.vertices),
                                       std::move(zeros), std::move(levels));
}

EdgeTcTree EdgeTcTree::Build(const EdgeDatabaseNetwork& net,
                             const EdgeTcTreeOptions& options) {
  EdgeTcTree tree;
  tree.nodes_.emplace_back();  // root

  std::vector<NodeId> frontier;
  for (ItemId item : net.ActiveItems()) {
    EdgeThemeNetwork tn = InduceEdgeThemeNetwork(net, Itemset::Single(item));
    if (tn.empty()) continue;
    TrussDecomposition d = DecomposeEdgeThemeNetwork(tn);
    if (d.empty()) continue;
    Node n;
    n.item = item;
    n.parent = kRoot;
    n.decomposition = std::move(d);
    tree.nodes_.push_back(std::move(n));
    const NodeId id = static_cast<NodeId>(tree.nodes_.size() - 1);
    tree.nodes_[kRoot].children.push_back(id);
    frontier.push_back(id);
  }

  size_t head = 0;
  while (head < frontier.size()) {
    if (options.max_nodes != 0 && tree.num_nodes() >= options.max_nodes) {
      tree.truncated_ = true;
      break;
    }
    const NodeId f = frontier[head++];
    size_t depth_f = 0;
    for (NodeId x = f; x != kRoot; x = tree.nodes_[x].parent) ++depth_f;
    if (options.max_depth != 0 && depth_f >= options.max_depth) continue;

    const std::vector<NodeId>& siblings =
        tree.nodes_[tree.nodes_[f].parent].children;
    auto it = std::find(siblings.begin(), siblings.end(), f);
    TCF_CHECK(it != siblings.end());
    for (auto bit = it + 1; bit != siblings.end(); ++bit) {
      const NodeId b = *bit;
      std::vector<Edge> overlap =
          IntersectEdgeSets(tree.nodes_[f].decomposition.sorted_edges(),
                            tree.nodes_[b].decomposition.sorted_edges());
      if (overlap.empty()) continue;
      const Itemset pc = tree.PatternOf(f).Union(tree.nodes_[b].item);
      EdgeThemeNetwork tn =
          InduceEdgeThemeNetworkFromEdges(net, pc, overlap);
      if (tn.empty()) continue;
      TrussDecomposition d = DecomposeEdgeThemeNetwork(tn);
      if (d.empty()) continue;
      Node n;
      n.item = tree.nodes_[b].item;
      n.parent = f;
      n.decomposition = std::move(d);
      tree.nodes_.push_back(std::move(n));
      const NodeId id = static_cast<NodeId>(tree.nodes_.size() - 1);
      tree.nodes_[f].children.push_back(id);
      frontier.push_back(id);
    }
  }
  return tree;
}

Itemset EdgeTcTree::PatternOf(NodeId id) const {
  std::vector<ItemId> items;
  for (NodeId x = id; x != kRoot; x = nodes_[x].parent) {
    items.push_back(nodes_[x].item);
  }
  return Itemset(std::move(items));
}

EdgeTcTreeQueryResult EdgeTcTree::Query(const Itemset& q,
                                        double alpha_q) const {
  EdgeTcTreeQueryResult result;
  const CohesionValue aq = QuantizeAlpha(alpha_q);
  std::vector<NodeId> queue = {kRoot};
  size_t head = 0;
  while (head < queue.size()) {
    const NodeId f = queue[head++];
    for (NodeId c : nodes_[f].children) {
      const Node& child = nodes_[c];
      if (!q.Contains(child.item)) continue;
      ++result.visited_nodes;
      if (child.decomposition.max_alpha() <= aq) continue;
      PatternTruss truss;
      truss.pattern = PatternOf(c);
      truss.edges = child.decomposition.EdgesAtAlphaQ(aq);
      if (truss.edges.empty()) continue;
      std::vector<VertexId> endpoints;
      for (const Edge& e : truss.edges) {
        endpoints.push_back(e.u);
        endpoints.push_back(e.v);
      }
      std::sort(endpoints.begin(), endpoints.end());
      endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                      endpoints.end());
      truss.vertices = std::move(endpoints);
      result.trusses.push_back(std::move(truss));
      ++result.retrieved_nodes;
      queue.push_back(c);
    }
  }
  return result;
}

}  // namespace tcf
