#ifndef TCF_EXT_EDGE_TC_TREE_H_
#define TCF_EXT_EDGE_TC_TREE_H_

#include <deque>
#include <vector>

#include "core/decomposition.h"
#include "core/pattern_truss.h"
#include "ext/edge_mptd.h"
#include "ext/edge_network.h"

namespace tcf {

/// Decomposes the maximal edge-pattern truss `C*_p(0)` of an edge theme
/// network into ascending removed-edge levels — Thm. 6.1 transfers: the
/// proof only uses that cohesions are per-edge sums that shrink
/// monotonically under edge removal. The result reuses
/// `TrussDecomposition` (vertices = endpoints, frequencies empty since
/// they live on edges).
TrussDecomposition DecomposeEdgeThemeNetwork(const EdgeThemeNetwork& tn);

/// Build options mirror the vertex-network TC-Tree.
struct EdgeTcTreeOptions {
  size_t max_depth = 0;  // 0 = unlimited
  size_t max_nodes = 0;  // 0 = unlimited
};

/// Query result mirrors `TcTreeQueryResult`.
struct EdgeTcTreeQueryResult {
  std::vector<PatternTruss> trusses;
  uint64_t retrieved_nodes = 0;
  uint64_t visited_nodes = 0;
};

/// \brief TC-Tree for edge database networks: the §8 extension carried
/// through to indexing and query answering.
///
/// Same SE-tree layout as `TcTree` (Alg. 4/5); children are computed
/// inside the parents' edge-set intersection (the Prop.-5.3 argument
/// holds: edge frequencies are anti-monotone in the pattern, so
/// `C*_{p∪q}(0) ⊆ C*_p(0) ∩ C*_q(0)`).
class EdgeTcTree {
 public:
  using NodeId = uint32_t;
  static constexpr NodeId kRoot = 0;
  static constexpr NodeId kNoParent = static_cast<NodeId>(-1);

  struct Node {
    ItemId item = 0;
    NodeId parent = kNoParent;
    std::vector<NodeId> children;
    TrussDecomposition decomposition;
  };

  static EdgeTcTree Build(const EdgeDatabaseNetwork& net,
                          const EdgeTcTreeOptions& options = {});

  const Node& node(NodeId id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size() - 1; }
  Itemset PatternOf(NodeId id) const;
  bool truncated() const { return truncated_; }

  /// Alg. 5 over the edge tree: `{C*_p(α_q) ≠ ∅ : p ⊆ q}`.
  EdgeTcTreeQueryResult Query(const Itemset& q, double alpha_q) const;

 private:
  std::deque<Node> nodes_;
  bool truncated_ = false;
};

}  // namespace tcf

#endif  // TCF_EXT_EDGE_TC_TREE_H_
