#include "ext/edge_miner.h"

#include <set>

#include "core/apriori.h"
#include "ext/edge_mptd.h"
#include "tx/fim.h"

namespace tcf {

MiningResult RunEdgeTcfi(const EdgeDatabaseNetwork& net,
                         const EdgeMinerOptions& options) {
  MiningResult result;

  std::vector<Itemset> qualified;
  std::vector<PatternTruss> qualified_trusses;
  for (ItemId item : net.ActiveItems()) {
    const Itemset p = Itemset::Single(item);
    ++result.counters.candidates_generated;
    ++result.counters.mptd_calls;
    EdgeThemeNetwork tn = InduceEdgeThemeNetwork(net, p);
    if (tn.empty()) continue;
    PatternTruss truss = EdgeMptd(tn, options.alpha);
    if (!truss.empty()) {
      qualified.push_back(p);
      qualified_trusses.push_back(truss);
      result.trusses.push_back(std::move(truss));
      ++result.counters.qualified_patterns;
    }
  }

  size_t k = 2;
  while (!qualified.empty() &&
         (options.max_pattern_length == 0 ||
          k <= options.max_pattern_length)) {
    auto candidates = GenerateAprioriCandidates(qualified);
    result.counters.candidates_generated += candidates.size();
    std::vector<Itemset> next_qualified;
    std::vector<PatternTruss> next_trusses;
    for (const CandidatePattern& cand : candidates) {
      std::vector<Edge> overlap =
          IntersectEdgeSets(qualified_trusses[cand.parent_a].edges,
                            qualified_trusses[cand.parent_b].edges);
      if (overlap.empty()) {
        ++result.counters.pruned_by_intersection;
        continue;
      }
      ++result.counters.mptd_calls;
      EdgeThemeNetwork tn =
          InduceEdgeThemeNetworkFromEdges(net, cand.pattern, overlap);
      if (tn.empty()) continue;
      PatternTruss truss = EdgeMptd(tn, options.alpha);
      if (!truss.empty()) {
        next_qualified.push_back(cand.pattern);
        next_trusses.push_back(truss);
        result.trusses.push_back(std::move(truss));
        ++result.counters.qualified_patterns;
      }
    }
    qualified = std::move(next_qualified);
    qualified_trusses = std::move(next_trusses);
    ++k;
  }
  result.Canonicalize();
  return result;
}

MiningResult BruteForceEdgeMineAll(const EdgeDatabaseNetwork& net,
                                   double alpha, size_t max_length) {
  MiningResult result;
  // All patterns with positive frequency on at least one edge.
  std::set<Itemset> patterns;
  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    auto mined = MineFrequentItemsets(net.db(e), 0.0, max_length);
    for (auto& fp : mined) patterns.insert(std::move(fp.pattern));
  }
  for (const Itemset& p : patterns) {
    ++result.counters.candidates_generated;
    EdgeThemeNetwork tn = InduceEdgeThemeNetwork(net, p);
    if (tn.empty()) continue;
    ++result.counters.mptd_calls;
    PatternTruss truss = EdgeMptdBruteForce(tn, alpha);
    if (!truss.empty()) {
      result.trusses.push_back(std::move(truss));
      ++result.counters.qualified_patterns;
    }
  }
  result.Canonicalize();
  return result;
}

}  // namespace tcf
