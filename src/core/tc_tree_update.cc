#include "core/tc_tree_update.h"

#include <algorithm>
#include <iterator>
#include <optional>
#include <utility>

#include "core/mptd.h"
#include "core/pattern_truss.h"
#include "net/theme_network.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tcf {

/// Friend key into TcTree's private arena (tc_tree.h grants
/// `friend class TcTreeBuilder`). The incremental replay appends nodes
/// and writes stats exactly the way TcTree::Build does, so everything
/// downstream — persistence, partitioning, queries — sees an ordinary
/// built tree.
class TcTreeBuilder {
 public:
  static std::deque<TcTree::Node>& Nodes(TcTree& tree) { return tree.nodes_; }
  static TcTreeBuildStats& Stats(TcTree& tree) { return tree.stats_; }
};

namespace {

using NodeId = TcTree::NodeId;

/// BFS frontier entry of the incremental replay. On top of Build's
/// {id, depth, sibling_pos} it carries the lockstep cursor into the old
/// tree (`old_id`), the layer-1 ancestor item (`root`, the shard routing
/// key), and whether the node's pattern is disjoint from the dirty set
/// (`clean` — in which case `old_id` is valid and the subtrees agree
/// until a dirty sibling item enters a candidate union).
struct UFrontierEntry {
  NodeId id;
  NodeId old_id;  // matching node in the old tree; kNoParent when dirty
  ItemId root;
  uint32_t depth;
  uint32_t sibling_pos;
  bool clean;
};

struct UChildResult {
  ItemId item;
  TrussDecomposition decomposition;
  NodeId old_id;  // old-tree counterpart when copied, else kNoParent
  bool clean;
};

/// What one frontier node's expansion produced. Mirrors Build's
/// Expansion so the sequential commit can fold stats and trip the node
/// budget at exactly the point the from-scratch build would.
struct UExpansion {
  std::vector<UChildResult> children;  // sibling order = item-ascending
  uint64_t candidates = 0;             // dirty candidates attempted
  uint64_t pruned = 0;
  uint64_t mptd_calls = 0;
  uint64_t clean_candidates = 0;
  uint64_t copied = 0;
  bool touched_dirty = false;  // any dirty candidate under this entry
};

/// Same per-worker buffers as Build's (its BuildWorkspace lives in an
/// anonymous namespace, so it is re-stated here).
struct BuildWorkspace {
  ThemePeeler peeler;
  std::vector<Edge> overlap;
  ThemeNetwork tn;
  ThemeInductionScratch induction;
};

BuildWorkspace& WorkspaceForThisWorker(std::vector<BuildWorkspace>& all) {
  const size_t idx = ThreadPool::CurrentWorkerIndex();
  TCF_CHECK(idx < all.size());
  return all[idx];
}

/// The child of `parent` (in `old_tree`) carrying `item`, or kNoParent.
/// Child lists are item-ascending, so the scan can stop early.
NodeId FindOldChild(const TcTree& old_tree, NodeId parent, ItemId item) {
  for (NodeId c : old_tree.node(parent).children) {
    const ItemId ci = old_tree.node(c).item;
    if (ci == item) return c;
    if (ci > item) break;
  }
  return TcTree::kNoParent;
}

}  // namespace

void NetworkUpdate::Merge(NetworkUpdate other) {
  transactions.insert(transactions.end(),
                      std::make_move_iterator(other.transactions.begin()),
                      std::make_move_iterator(other.transactions.end()));
  edges.insert(edges.end(), other.edges.begin(), other.edges.end());
}

Status ValidateUpdate(const DatabaseNetwork& net, const NetworkUpdate& update) {
  const size_t n = net.num_vertices();
  const size_t num_items = net.num_items();
  for (const NetworkUpdate::TxInsert& tx : update.transactions) {
    if (tx.vertex >= n) {
      return Status::InvalidArgument(
          StrFormat("update transaction at vertex %u, but the network has "
                    "%zu vertices",
                    tx.vertex, n));
    }
    if (tx.items.empty()) {
      return Status::InvalidArgument(
          StrFormat("update transaction at vertex %u has no items", tx.vertex));
    }
    for (ItemId item : tx.items.items()) {
      if (item >= num_items) {
        return Status::InvalidArgument(
            StrFormat("update transaction item %u outside the dictionary "
                      "(%zu items)",
                      item, num_items));
      }
    }
  }
  for (const Edge& e : update.edges) {
    if (e.u >= n || e.v >= n) {
      return Status::InvalidArgument(
          StrFormat("update edge {%u, %u} leaves the vertex range [0, %zu)",
                    e.u, e.v, n));
    }
    if (e.u == e.v) {
      return Status::InvalidArgument(
          StrFormat("update edge {%u, %u} is a self-loop", e.u, e.u));
    }
  }
  return Status::OK();
}

std::vector<ItemId> ComputeDirtyItems(const DatabaseNetwork& net,
                                      const NetworkUpdate& update) {
  std::vector<ItemId> dirty;
  for (const NetworkUpdate::TxInsert& tx : update.transactions) {
    // The appended transaction grows |D_v|: every item active at the
    // vertex before the update changes frequency, and the new items
    // gain support.
    const std::vector<ItemId>& active = net.vertical(tx.vertex).items();
    dirty.insert(dirty.end(), active.begin(), active.end());
    dirty.insert(dirty.end(), tx.items.items().begin(),
                 tx.items.items().end());
  }
  for (const Edge& e : update.edges) {
    // The edge can only join a theme network G_p when p is supported at
    // *both* endpoints, so only items active on both sides are dirtied
    // by it. (An item activated at an endpoint by a same-batch
    // transaction is already dirty through the rule above.)
    const std::vector<ItemId>& a = net.vertical(e.u).items();
    const std::vector<ItemId>& b = net.vertical(e.v).items();
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(dirty));
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

TcTreeUpdateResult UpdateTcTree(const TcTree& old_tree,
                                const DatabaseNetwork& net,
                                const std::vector<ItemId>& dirty_items,
                                const TcTreeOptions& options) {
  WallTimer timer;
  TcTreeUpdateResult result;

  // A truncated old tree cannot serve as the copy oracle: a clean
  // candidate absent from it might have been cut by the budget rather
  // than peeled empty, and "absent means prune" would wrongly drop a
  // live subtree. (The node-count test also catches trees loaded from
  // disk, whose build stats did not survive serialization.)
  const bool old_unusable =
      old_tree.build_stats().truncated ||
      (options.max_nodes != 0 && old_tree.num_nodes() >= options.max_nodes);
  if (old_unusable) {
    result.tree = TcTree::Build(net, options);
    result.changed_roots = net.ActiveItems();
    result.stats.full_rebuild = true;
    result.stats.recomputed = result.tree.build_stats().mptd_calls;
    result.stats.seconds = timer.Seconds();
    return result;
  }

  std::vector<char> dirty_mask(
      dirty_items.empty() ? 0 : dirty_items.back() + 1, 0);
  for (ItemId i : dirty_items) dirty_mask[i] = 1;
  auto dirty = [&](ItemId i) {
    return i < dirty_mask.size() && dirty_mask[i] != 0;
  };

  TcTree& tree = result.tree;
  std::deque<TcTree::Node>& nodes = TcTreeBuilder::Nodes(tree);
  TcTreeBuildStats& stats = TcTreeBuilder::Stats(tree);
  TcTreeUpdateStats& ustats = result.stats;
  nodes.emplace_back();  // root: pattern ∅, empty decomposition

  ThreadPool pool(options.num_threads);
  std::vector<BuildWorkspace> workspaces(pool.num_threads());

  // Updates only add support, so the post-update active set contains
  // the pre-update one — and a *clean* active item was already active
  // before (an item newly activated by a transaction is dirty by
  // construction). Every clean layer-1 candidate was therefore
  // considered by the old build with an identical singleton theme
  // network: present in the old tree means same decomposition, absent
  // means it peeled empty. Dirty items are recomputed from scratch and
  // their roots marked changed whatever the outcome (the subtree may
  // have vanished).
  const std::vector<ItemId> items = net.ActiveItems();
  std::vector<char> root_changed(items.empty() ? 0 : items.back() + 1, 0);

  struct Layer1Result {
    std::optional<TrussDecomposition> d;
    NodeId old_id = TcTree::kNoParent;
    bool clean = false;
  };
  std::vector<Layer1Result> layer1(items.size());
  WallTimer wave_timer;  // layer 1 is wave 0, as in Build
  ParallelForDynamic(pool, items.size(), [&](size_t i) {
    const ItemId item = items[i];
    Layer1Result& r = layer1[i];
    if (!dirty(item)) {
      r.clean = true;
      const NodeId oc = FindOldChild(old_tree, TcTree::kRoot, item);
      if (oc != TcTree::kNoParent) {
        r.old_id = oc;
        r.d = old_tree.node(oc).decomposition;
      }
      return;
    }
    BuildWorkspace& ws = WorkspaceForThisWorker(workspaces);
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    if (tn.empty()) return;
    TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn, &ws.peeler);
    if (!d.empty()) r.d = std::move(d);
  });

  std::vector<UFrontierEntry> frontier;
  for (size_t i = 0; i < items.size(); ++i) {
    Layer1Result& r = layer1[i];
    if (r.clean) {
      ++ustats.clean_candidates;
      if (r.d.has_value()) ++ustats.copied;
    } else {
      ++ustats.dirty_candidates;
      ++stats.candidates_considered;
      ++stats.mptd_calls;
      ++ustats.recomputed;
      root_changed[items[i]] = 1;
    }
    if (!r.d.has_value()) continue;
    TcTree::Node n;
    n.item = items[i];
    n.parent = TcTree::kRoot;
    n.decomposition = std::move(*r.d);
    nodes.push_back(std::move(n));
    const NodeId id = static_cast<NodeId>(nodes.size() - 1);
    const uint32_t pos =
        static_cast<uint32_t>(nodes[TcTree::kRoot].children.size());
    nodes[TcTree::kRoot].children.push_back(id);
    frontier.push_back({id, r.old_id, items[i], 1, pos, r.clean});
  }
  stats.waves.push_back({/*depth=*/0, static_cast<uint32_t>(items.size()),
                         static_cast<uint64_t>(frontier.size()),
                         wave_timer.Millis()});

  // Deeper layers: the exact Build BFS — same wave windows, same
  // candidate enumeration, same ordered commit, same budget and depth
  // semantics — except that a candidate whose pattern avoids the dirty
  // set resolves by lockstep lookup in the old tree instead of
  // intersect + induce + peel. A clean candidate's sibling is clean too
  // (its pattern is a subset of the candidate's), so both cursors into
  // the old tree exist and the old build evaluated this exact candidate
  // with identical inputs: copying its recorded outcome is the same as
  // recomputing it.
  const size_t max_wave = pool.num_threads() * 32;
  size_t head = 0;
  std::vector<UExpansion> wave;
  auto trip_budget = [&] {
    stats.truncated = true;
    TCF_LOG(Warn) << "TC-Tree node budget (" << options.max_nodes
                  << ") exhausted; deeper themes are not indexed";
  };
  bool budget_exhausted = false;
  while (head < frontier.size() && !budget_exhausted) {
    if (options.max_nodes != 0 && tree.num_nodes() >= options.max_nodes) {
      trip_budget();
      break;
    }
    const size_t wave_begin = head;
    const size_t wave_end = std::min(frontier.size(), head + max_wave);
    wave.clear();
    wave.resize(wave_end - wave_begin);
    wave_timer.Reset();
    const size_t nodes_before_wave = nodes.size();

    ParallelForDynamic(pool, wave_end - wave_begin, [&](size_t w) {
      const UFrontierEntry entry = frontier[wave_begin + w];
      if (options.max_depth != 0 && entry.depth >= options.max_depth) {
        return;
      }
      BuildWorkspace& ws = WorkspaceForThisWorker(workspaces);
      UExpansion& ex = wave[w];
      const NodeId f = entry.id;
      const TcTree::Node& node_f = nodes[f];
      const std::vector<NodeId>& siblings = nodes[node_f.parent].children;
      const Itemset pattern_f = tree.PatternOf(f);

      for (size_t s = entry.sibling_pos + 1; s < siblings.size(); ++s) {
        const NodeId b = siblings[s];
        const ItemId item_b = nodes[b].item;

        if (entry.clean && !dirty(item_b)) {
          ++ex.clean_candidates;
          const NodeId oc = FindOldChild(old_tree, entry.old_id, item_b);
          if (oc == TcTree::kNoParent) continue;  // old build pruned it
          ex.children.push_back(
              {item_b, old_tree.node(oc).decomposition, oc, true});
          ++ex.copied;
          continue;
        }

        ex.touched_dirty = true;
        ++ex.candidates;
        IntersectEdgeSetsInto(node_f.decomposition.sorted_edges(),
                              nodes[b].decomposition.sorted_edges(),
                              &ws.overlap);
        if (ws.overlap.empty()) {
          ++ex.pruned;
          continue;
        }
        const Itemset pc = pattern_f.Union(item_b);
        InduceThemeNetworkFromEdgesInto(net, pc, ws.overlap, &ws.tn,
                                        &ws.induction);
        if (ws.tn.empty()) {
          ++ex.pruned;
          continue;
        }
        ++ex.mptd_calls;
        TrussDecomposition d =
            TrussDecomposition::FromThemeNetwork(ws.tn, &ws.peeler);
        if (d.empty()) continue;  // Prop. 5.2 prunes the whole subtree
        ex.children.push_back({item_b, std::move(d), TcTree::kNoParent, false});
      }
    });

    // Ordered commit, replicating Build's: per frontier entry, per
    // parent, item-ascending — so node ids and the budget-trip point
    // match the from-scratch build for any thread count.
    for (size_t w = 0; w < wave.size(); ++w) {
      if (options.max_nodes != 0 && tree.num_nodes() >= options.max_nodes) {
        trip_budget();
        budget_exhausted = true;
        break;
      }
      const UFrontierEntry entry = frontier[wave_begin + w];
      if (options.max_depth != 0 && entry.depth >= options.max_depth) {
        continue;
      }
      UExpansion& ex = wave[w];
      stats.candidates_considered += ex.candidates;
      stats.pruned_by_intersection += ex.pruned;
      stats.mptd_calls += ex.mptd_calls;
      ustats.clean_candidates += ex.clean_candidates;
      ustats.dirty_candidates += ex.candidates;
      ustats.copied += ex.copied;
      ustats.recomputed += ex.mptd_calls;
      if (ex.touched_dirty) root_changed[entry.root] = 1;
      for (UChildResult& child : ex.children) {
        TcTree::Node n;
        n.item = child.item;
        n.parent = entry.id;
        n.decomposition = std::move(child.decomposition);
        nodes.push_back(std::move(n));
        const NodeId id = static_cast<NodeId>(nodes.size() - 1);
        const uint32_t pos =
            static_cast<uint32_t>(nodes[entry.id].children.size());
        nodes[entry.id].children.push_back(id);
        frontier.push_back({id, child.old_id, entry.root, entry.depth + 1, pos,
                            child.clean});
      }
    }
    stats.waves.push_back({frontier[wave_begin].depth,
                           static_cast<uint32_t>(wave_end - wave_begin),
                           static_cast<uint64_t>(nodes.size() -
                                                 nodes_before_wave),
                           wave_timer.Millis()});
    head = wave_end;
  }

  if (stats.truncated) {
    // The replay outgrew the budget the old build fit under. The new
    // tree is still byte-identical to Build(post-update net), but the
    // truncation frontier can cut through *clean* subtrees, so the
    // changed set must widen to everything.
    result.changed_roots = items;
  } else {
    for (ItemId item : items) {
      if (root_changed[item]) result.changed_roots.push_back(item);
    }
  }

  stats.build_seconds = timer.Seconds();
  ustats.seconds = stats.build_seconds;
  return result;
}

IndexUpdater::IndexUpdater(DatabaseNetwork net, TcTree tree, SnapshotSink sink,
                           const TcTreeOptions& build_options)
    : net_(std::move(net)),
      tree_(std::move(tree)),
      sink_(std::move(sink)),
      options_(build_options) {}

void IndexUpdater::Enqueue(NetworkUpdate update) {
  if (update.empty()) return;
  std::lock_guard<std::mutex> lock(queue_mu_);
  queue_.push_back(std::move(update));
}

size_t IndexUpdater::pending() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

StatusOr<UpdateOutcome> IndexUpdater::Flush() {
  std::lock_guard<std::mutex> apply_lock(apply_mu_);
  NetworkUpdate batch;
  UpdateOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    outcome.batches = queue_.size();
    for (NetworkUpdate& u : queue_) batch.Merge(std::move(u));
    queue_.clear();
  }
  if (batch.empty()) {
    outcome.tree_nodes = tree_.num_nodes();
    return outcome;
  }
  WallTimer timer;

  // Validate the whole merged batch before mutating anything: a bad
  // line rejects the batch and leaves network, tree, and serving state
  // exactly as they were.
  Status valid = ValidateUpdate(net_, batch);
  if (!valid.ok()) return valid;

  const std::vector<ItemId> dirty = ComputeDirtyItems(net_, batch);
  outcome.transactions = batch.transactions.size();
  outcome.edges = batch.edges.size();
  for (NetworkUpdate::TxInsert& tx : batch.transactions) {
    TCF_CHECK(net_.AddTransaction(tx.vertex, std::move(tx.items)).ok());
  }
  for (const Edge& e : batch.edges) {
    TCF_CHECK(net_.AddEdge(e.u, e.v).ok());
  }

  TcTreeUpdateResult result = UpdateTcTree(tree_, net_, dirty, options_);
  outcome.dirty_items = dirty.size();
  outcome.changed_roots = result.changed_roots.size();
  outcome.tree_nodes = result.tree.num_nodes();
  outcome.stats = result.stats;
  if (sink_) {
    TcTree copy = result.tree;
    outcome.shards_swapped =
        sink_(std::move(copy), result.changed_roots, dirty);
  }
  tree_ = std::move(result.tree);
  outcome.apply_ms = timer.Millis();
  return outcome;
}

StatusOr<UpdateOutcome> IndexUpdater::Apply(NetworkUpdate update) {
  Enqueue(std::move(update));
  return Flush();
}

}  // namespace tcf
