#ifndef TCF_CORE_TC_TREE_UPDATE_H_
#define TCF_CORE_TC_TREE_UPDATE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "core/tc_tree.h"
#include "net/database_network.h"
#include "tx/itemset.h"
#include "util/status.h"

namespace tcf {

/// \file
/// \brief Incremental TC-Tree maintenance (docs/architecture.md,
/// "Incremental maintenance").
///
/// Production database networks churn: check-ins, posts, and citations
/// accrue while the index serves traffic. This module turns a batch of
/// additions into a fresh snapshot *without* re-peeling the whole item
/// lattice: the vertical index pins down the dirty item set, patterns
/// disjoint from it provably answer identically (their theme networks
/// are untouched), and the build BFS is replayed with every clean
/// subtree copied from the live snapshot instead of recomputed. The
/// result is field-for-field identical to `TcTree::Build` on the
/// post-update network — the differential suite in
/// tests/incremental_update_test.cc holds the two byte-to-byte equal —
/// so serving correctness never depends on the incremental path.

/// A batch of additions to a database network: transactions appended to
/// existing vertices and edges joining existing vertices. Updates only
/// add — support never retracts — which is what keeps the dirty-set
/// algebra one-sided (an item active before stays active after).
struct NetworkUpdate {
  struct TxInsert {
    VertexId vertex = 0;
    Itemset items;
  };
  std::vector<TxInsert> transactions;
  std::vector<Edge> edges;

  bool empty() const { return transactions.empty() && edges.empty(); }

  /// Appends `other`'s additions to this batch (queue coalescing).
  void Merge(NetworkUpdate other);
};

/// Checks `update` against `net` without mutating anything: every
/// transaction vertex and edge endpoint must exist, and edges must not
/// be self-loops. The updater validates the *whole* batch before
/// applying any of it, so a rejected batch leaves the network untouched.
Status ValidateUpdate(const DatabaseNetwork& net, const NetworkUpdate& update);

/// The dirty item set of `update`, computed against the *pre-mutation*
/// network (sorted ascending, deduplicated). A pattern whose items all
/// avoid this set keeps its exact theme network — and therefore its
/// truss decomposition — across the update:
///  - a transaction appended at `v` grows the denominator |D_v|, so the
///    frequency of every item active at `v` (and of the new
///    transaction's items) changes: all of them are dirty;
///  - a new edge {u, w} can only enter G_p for a pattern supported at
///    *both* endpoints, so the items active at u *and* at w are dirty
///    (the intersection — a pattern needs all its items on both sides;
///    same-batch transactions at u or w are covered by the rule above).
std::vector<ItemId> ComputeDirtyItems(const DatabaseNetwork& net,
                                      const NetworkUpdate& update);

/// Work counters of one incremental rebuild.
struct TcTreeUpdateStats {
  uint64_t copied = 0;       // decompositions reused from the old tree
  uint64_t recomputed = 0;   // fresh MPTD peels (dirty candidates kept)
  uint64_t clean_candidates = 0;
  uint64_t dirty_candidates = 0;
  bool full_rebuild = false;  // old tree truncated: fell back to Build
  double seconds = 0;
};

/// What UpdateTcTree hands back.
struct TcTreeUpdateResult {
  TcTree tree;
  /// Layer-1 items whose subtrees may differ from the old tree's,
  /// ascending. This is the unit of shard ownership — core/partition.h
  /// routes every pattern to the shard of its minimum item, i.e. its
  /// layer-1 ancestor — so a shard owning none of these items has a
  /// byte-identical slice and can skip its snapshot swap (and keep its
  /// whole cache) during the roll-in.
  std::vector<ItemId> changed_roots;
  TcTreeUpdateStats stats;
};

/// Incrementally rebuilds the index for the *post-mutation* `net`.
///
/// Replays the exact Build BFS — same candidate enumeration, same
/// ordered commit, same `max_depth`/`max_nodes` budget semantics — but a
/// candidate pattern disjoint from `dirty_items` is *copied* from
/// `old_tree` (present there with the same decomposition, or absent and
/// therefore pruned) instead of intersected, induced, and peeled.
/// Because copy and recompute agree on every clean candidate, the
/// committed arena (node ids, child lists, decompositions) is
/// field-for-field identical to `TcTree::Build(net, options)`; only the
/// build *stats* differ — they describe the incremental work actually
/// done.
///
/// `old_tree` must have been built over the pre-mutation network with
/// the same `max_depth`/`max_nodes` options (the IndexUpdater pins
/// them). A truncated `old_tree` cannot prove absence-means-empty, so
/// the call falls back to a full Build and reports every active item as
/// a changed root.
TcTreeUpdateResult UpdateTcTree(const TcTree& old_tree,
                                const DatabaseNetwork& net,
                                const std::vector<ItemId>& dirty_items,
                                const TcTreeOptions& options = {});

/// Aggregate outcome of one IndexUpdater::Flush (the payload of the
/// wire-level `UPDATED` response).
struct UpdateOutcome {
  size_t batches = 0;        // queued batches folded into this apply
  size_t transactions = 0;
  size_t edges = 0;
  size_t dirty_items = 0;
  size_t changed_roots = 0;
  size_t shards_swapped = 0;  // what the snapshot sink reported
  size_t tree_nodes = 0;      // node count of the new snapshot
  TcTreeUpdateStats stats;
  double apply_ms = 0;
};

/// \brief Serialized streaming updater for a live index.
///
/// Owns the authoritative DatabaseNetwork and the current TcTree.
/// Producers Enqueue() batches from any thread; Flush() drains the
/// queue as one merged batch under a single apply lock — validate,
/// compute the dirty set, mutate the network, incrementally rebuild,
/// then hand the new snapshot (plus the changed-root and dirty-item
/// hints) to the snapshot sink, which rolls it into the serving backend
/// through the epoch-safe swap machinery. Queries keep running on the
/// previous snapshot throughout; nothing here blocks the read path.
class IndexUpdater {
 public:
  /// Receives each freshly built snapshot. `changed_roots` bounds the
  /// shards that must swap; `dirty_items` bounds the cache entries that
  /// must drop. Returns the number of shard snapshots actually swapped
  /// (QueryBackend::ApplyUpdatedSnapshot has this exact shape).
  using SnapshotSink = std::function<size_t(
      TcTree tree, const std::vector<ItemId>& changed_roots,
      const std::vector<ItemId>& dirty_items)>;

  /// `net` and `tree` must agree (tree built over net with
  /// `build_options`); `sink` may be null for updaters that only
  /// maintain their own copy (tests).
  IndexUpdater(DatabaseNetwork net, TcTree tree, SnapshotSink sink,
               const TcTreeOptions& build_options = {});

  IndexUpdater(const IndexUpdater&) = delete;
  IndexUpdater& operator=(const IndexUpdater&) = delete;

  /// Queues a batch without applying it. Thread-safe and cheap.
  void Enqueue(NetworkUpdate update);

  /// Batches currently queued (racy under concurrent Enqueue/Flush —
  /// a scheduling hint, not a synchronization point).
  size_t pending() const;

  /// Drains the queue and applies everything as ONE merged batch: one
  /// validation, one dirty set, one incremental rebuild, one swap.
  /// Returns a zeroed outcome if the queue was empty. A validation
  /// failure rejects the whole batch and mutates nothing.
  StatusOr<UpdateOutcome> Flush();

  /// Enqueue + Flush in one call (the UPDATE verb's synchronous path;
  /// serialized against concurrent Flushes like everything else).
  StatusOr<UpdateOutcome> Apply(NetworkUpdate update);

  /// The authoritative post-update state. Only safe to read while no
  /// Flush/Apply is in flight (tests join their updater threads first).
  const DatabaseNetwork& network() const { return net_; }
  const TcTree& tree() const { return tree_; }

 private:
  mutable std::mutex queue_mu_;
  std::vector<NetworkUpdate> queue_;

  std::mutex apply_mu_;  // serializes Flush end to end
  DatabaseNetwork net_;
  TcTree tree_;
  SnapshotSink sink_;
  TcTreeOptions options_;
};

}  // namespace tcf

#endif  // TCF_CORE_TC_TREE_UPDATE_H_
