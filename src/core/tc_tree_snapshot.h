#ifndef TCF_CORE_TC_TREE_SNAPSHOT_H_
#define TCF_CORE_TC_TREE_SNAPSHOT_H_

#include <optional>
#include <utility>
#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "core/tcfi_format.h"

namespace tcf {

/// \brief An immutable, queryable index snapshot: either a heap-owned
/// TcTree or a zero-copy MappedTcTree over a TCFI file.
///
/// The serving layer (serve/query_service.h) holds snapshots by
/// shared_ptr and never cares which flavor it got — Query/Compose
/// dispatch to the same templated walk (tc_tree_query.cc), so answers
/// are byte-identical for the same index bytes. Only the places that
/// must *mutate* (the incremental updater's baseline, partitioning)
/// materialize an owned tree out of a mapped one.
class TcTreeSnapshot {
 public:
  explicit TcTreeSnapshot(TcTree tree) : owned_(std::move(tree)) {}
  explicit TcTreeSnapshot(MappedTcTree mapped) : mapped_(std::move(mapped)) {}

  TcTreeSnapshot(TcTreeSnapshot&&) = default;
  TcTreeSnapshot& operator=(TcTreeSnapshot&&) = default;
  TcTreeSnapshot(const TcTreeSnapshot&) = delete;
  TcTreeSnapshot& operator=(const TcTreeSnapshot&) = delete;

  /// True when queries serve out of mmap'ed arenas.
  bool mapped() const { return mapped_.has_value(); }

  /// The owned tree, or null for a mapped snapshot.
  const TcTree* owned_tree() const {
    return owned_ ? &*owned_ : nullptr;
  }
  /// The mapped tree, or null for an owned snapshot.
  const MappedTcTree* mapped_tree() const {
    return mapped_ ? &*mapped_ : nullptr;
  }

  /// Pattern-bearing nodes (excludes the root).
  size_t num_nodes() const {
    return mapped_ ? mapped_->num_nodes() : owned_->num_nodes();
  }

  CohesionValue MaxAlphaOverNodes() const {
    return mapped_ ? mapped_->MaxAlphaOverNodes()
                   : owned_->MaxAlphaOverNodes();
  }

  /// Resident footprint: heap bytes for an owned tree, mapped file
  /// bytes for a TCFI snapshot (shared page cache, not private heap).
  size_t MemoryBytes() const {
    return mapped_ ? mapped_->FileBytes() : owned_->MemoryBytes();
  }

  /// A heap-owned copy of the index — the raw material for mutation
  /// (incremental update baseline, partitioning into shard slices).
  TcTree MaterializeTree() const {
    return mapped_ ? MaterializeTcTree(*mapped_) : TcTree(*owned_);
  }

  /// Consumes the snapshot into an owned tree: moves the owned flavor
  /// out (no copy), materializes the mapped one.
  TcTree TakeTree() && {
    return owned_ ? std::move(*owned_) : MaterializeTcTree(*mapped_);
  }

  /// Algorithm 5 over whichever arena this snapshot holds.
  TcTreeQueryResult Query(const Itemset& q, double alpha_q,
                          const TcTreeQueryOptions& options = {}) const {
    return mapped_ ? QueryTcTree(*mapped_, q, alpha_q, options)
                   : QueryTcTree(*owned_, q, alpha_q, options);
  }

  /// Subset composition over whichever arena this snapshot holds.
  TcTreeQueryResult Compose(const Itemset& q, double alpha_q,
                            const std::vector<SubPatternCover>& covers,
                            const TcTreeQueryOptions& options = {},
                            TcTreeComposeStats* compose_stats =
                                nullptr) const {
    return mapped_ ? ComposeTcTreeQuery(*mapped_, q, alpha_q, covers,
                                        options, compose_stats)
                   : ComposeTcTreeQuery(*owned_, q, alpha_q, covers, options,
                                        compose_stats);
  }

 private:
  std::optional<TcTree> owned_;
  std::optional<MappedTcTree> mapped_;
};

}  // namespace tcf

#endif  // TCF_CORE_TC_TREE_SNAPSHOT_H_
