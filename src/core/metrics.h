#ifndef TCF_CORE_METRICS_H_
#define TCF_CORE_METRICS_H_

#include <vector>

#include "core/communities.h"
#include "core/pattern_truss.h"
#include "net/database_network.h"

namespace tcf {

/// \brief Quality metrics for theme communities, used by the case-study
/// harness and available to downstream users for ranking/filtering
/// mining output.
struct CommunityMetrics {
  /// |E| / C(|V|, 2): 1.0 for a clique.
  double edge_density = 0.0;
  /// Mean pattern frequency over member vertices (theme strength).
  double mean_frequency = 0.0;
  /// Min pattern frequency over members (the weakest theme carrier).
  double min_frequency = 0.0;
  /// Triangles per edge inside the community (structural cohesion).
  double triangles_per_edge = 0.0;
};

/// Computes metrics for one community. `net` supplies frequencies when
/// the community came from a source without them (e.g. a reconstructed
/// truss with skipped materialization).
CommunityMetrics ComputeCommunityMetrics(const DatabaseNetwork& net,
                                         const ThemeCommunity& community);

/// Jaccard similarity of two vertex sets (both sorted). 0 when both are
/// empty.
double JaccardSimilarity(const std::vector<VertexId>& a,
                         const std::vector<VertexId>& b);

/// \brief Recovery scoring of mined communities against planted ground
/// truth (our generators expose it; the paper's datasets do not, so this
/// goes beyond the paper's qualitative case study).
struct RecoveryScore {
  /// Best-match Jaccard averaged over ground-truth groups ("how well is
  /// each planted group represented by some mined community").
  double average_best_jaccard = 0.0;
  /// Fraction of ground-truth groups with a match above 0.5 Jaccard.
  double recovered_fraction = 0.0;
};

RecoveryScore ScoreRecovery(
    const std::vector<std::vector<VertexId>>& ground_truth_groups,
    const std::vector<ThemeCommunity>& mined);

}  // namespace tcf

#endif  // TCF_CORE_METRICS_H_
