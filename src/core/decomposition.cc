#include "core/decomposition.h"

#include <algorithm>

#include "util/logging.h"

namespace tcf {

TrussDecomposition TrussDecomposition::FromThemeNetwork(
    const ThemeNetwork& tn, ThemePeeler* reusable) {
  TrussDecomposition d;
  d.pattern_ = tn.pattern;

  ThemePeeler local;
  ThemePeeler& peeler = reusable != nullptr ? *reusable : local;
  peeler.Reset(tn);
  // C*_p(α_0 = 0): drop edges with eco ≤ 0; they are in no pattern truss
  // and therefore never stored in L_p.
  peeler.PeelToThreshold(0);
  if (peeler.num_alive() == 0) return d;

  // Vertices/frequencies of C*_p(0).
  {
    PatternTruss base = peeler.ExtractTruss();
    d.vertices_ = std::move(base.vertices);
    d.frequencies_ = std::move(base.frequencies);
    d.sorted_edges_ = base.edges;  // already sorted
  }

  // Ascending-threshold peeling: each wave at β = min alive cohesion is
  // exactly R_p(β) = E*(previous α) \ E*(β), because peeling at β from
  // C*(previous α) is MPTD's fixpoint at β (Thm. 6.1).
  std::vector<EdgeId> removed_local;
  while (peeler.num_alive() > 0) {
    const CohesionValue beta = peeler.MinAliveCohesion();
    TCF_CHECK(beta != ThemePeeler::kNoAliveEdges);
    TCF_CHECK_MSG(beta > 0, "edges at or below the previous level survived");
    removed_local.clear();
    peeler.PeelToThreshold(beta, &removed_local);
    TCF_CHECK(!removed_local.empty());
    DecompositionLevel level;
    level.alpha = beta;
    level.removed.reserve(removed_local.size());
    for (EdgeId e : removed_local) level.removed.push_back(peeler.GlobalEdge(e));
    d.levels_.push_back(std::move(level));
  }
  return d;
}

TrussDecomposition TrussDecomposition::FromParts(
    Itemset pattern, std::vector<VertexId> vertices,
    std::vector<double> frequencies, std::vector<DecompositionLevel> levels) {
  TrussDecomposition d;
  d.pattern_ = std::move(pattern);
  d.vertices_ = std::move(vertices);
  d.frequencies_ = std::move(frequencies);
  d.levels_ = std::move(levels);
  TCF_CHECK(d.vertices_.size() == d.frequencies_.size());
  for (size_t k = 0; k < d.levels_.size(); ++k) {
    TCF_CHECK_MSG(!d.levels_[k].removed.empty(), "empty decomposition level");
    TCF_CHECK_MSG(k == 0 || d.levels_[k].alpha > d.levels_[k - 1].alpha,
                  "levels must strictly ascend");
    d.sorted_edges_.insert(d.sorted_edges_.end(),
                           d.levels_[k].removed.begin(),
                           d.levels_[k].removed.end());
  }
  std::sort(d.sorted_edges_.begin(), d.sorted_edges_.end());
  TCF_CHECK_MSG(std::adjacent_find(d.sorted_edges_.begin(),
                                   d.sorted_edges_.end()) ==
                    d.sorted_edges_.end(),
                "levels must be disjoint");
  return d;
}

CohesionValue TrussDecomposition::max_alpha() const {
  return levels_.empty() ? 0 : levels_.back().alpha;
}

std::vector<Edge> TrussDecomposition::EdgesAtAlphaQ(
    CohesionValue alpha_q) const {
  std::vector<Edge> out;
  // Levels ascend, so binary search for the first level with α_k > α.
  auto it = std::upper_bound(
      levels_.begin(), levels_.end(), alpha_q,
      [](CohesionValue a, const DecompositionLevel& l) { return a < l.alpha; });
  size_t total = 0;
  for (auto j = it; j != levels_.end(); ++j) total += j->removed.size();
  out.reserve(total);
  for (auto j = it; j != levels_.end(); ++j) {
    out.insert(out.end(), j->removed.begin(), j->removed.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

PatternTruss TrussDecomposition::TrussAtAlphaQ(CohesionValue alpha_q) const {
  PatternTruss truss;
  truss.pattern = pattern_;
  truss.edges = EdgesAtAlphaQ(alpha_q);
  FillVerticesFromEdges(vertices_, frequencies_, &truss);
  return truss;
}

PatternTruss TrussDecomposition::TrussAtAlpha(double alpha) const {
  return TrussAtAlphaQ(QuantizeAlpha(alpha));
}

size_t TrussDecomposition::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += pattern_.size() * sizeof(ItemId);
  bytes += vertices_.capacity() * sizeof(VertexId);
  bytes += frequencies_.capacity() * sizeof(double);
  bytes += sorted_edges_.capacity() * sizeof(Edge);
  bytes += levels_.capacity() * sizeof(DecompositionLevel);
  for (const auto& l : levels_) bytes += l.removed.capacity() * sizeof(Edge);
  return bytes;
}

}  // namespace tcf
