#include "core/tcfi.h"

#include <atomic>
#include <optional>

#include "core/apriori.h"
#include "core/mptd.h"
#include "util/thread_pool.h"

namespace tcf {

namespace {

// Outcome of evaluating one candidate (slot-collected for determinism).
struct CandidateOutcome {
  std::optional<PatternTruss> truss;  // set iff qualified
  bool pruned_by_intersection = false;
  uint64_t triangle_visits = 0;
};

CandidateOutcome EvaluateCandidate(const DatabaseNetwork& net,
                                   const CandidatePattern& cand,
                                   const PatternTruss& parent_a,
                                   const PatternTruss& parent_b,
                                   CohesionValue alpha_q) {
  CandidateOutcome out;
  // Prop. 5.3: C*_{p∪q}(α) lives inside the parents' intersection.
  std::vector<Edge> overlap =
      IntersectEdgeSets(parent_a.edges, parent_b.edges);
  if (overlap.empty()) {
    out.pruned_by_intersection = true;
    return out;
  }
  ThemeNetwork tn = InduceThemeNetworkFromEdges(net, cand.pattern, overlap);
  if (tn.empty()) return out;
  ThemePeeler peeler(tn);
  peeler.PeelToThreshold(alpha_q);
  out.triangle_visits = peeler.triangle_visits();
  if (peeler.num_alive() > 0) out.truss = peeler.ExtractTruss();
  return out;
}

}  // namespace

MiningResult RunTcfi(const DatabaseNetwork& net, const TcfiOptions& options) {
  MiningResult result;
  const CohesionValue alpha_q = QuantizeAlpha(options.alpha);

  // Level 1 is identical to TCFA: singleton theme networks come from the
  // item->vertex index, there is nothing to intersect yet.
  std::vector<Itemset> qualified;
  std::vector<PatternTruss> qualified_trusses;
  for (ItemId item : net.ActiveItems()) {
    const Itemset p = Itemset::Single(item);
    ++result.counters.candidates_generated;
    ++result.counters.mptd_calls;  // counted per candidate, as in TCFA
    ThemeNetwork tn = InduceThemeNetwork(net, p);
    if (tn.empty()) continue;
    ThemePeeler peeler(tn);
    peeler.PeelToThreshold(alpha_q);
    result.counters.triangle_visits += peeler.triangle_visits();
    if (peeler.num_alive() > 0) {
      PatternTruss truss = peeler.ExtractTruss();
      qualified.push_back(p);
      qualified_trusses.push_back(truss);
      result.trusses.push_back(std::move(truss));
      ++result.counters.qualified_patterns;
    }
  }

  std::optional<ThreadPool> pool;
  if (options.num_threads > 1) pool.emplace(options.num_threads);

  size_t k = 2;
  while (!qualified.empty() &&
         (options.max_pattern_length == 0 ||
          k <= options.max_pattern_length)) {
    auto candidates = GenerateAprioriCandidates(qualified);
    result.counters.candidates_generated += candidates.size();

    std::vector<CandidateOutcome> outcomes(candidates.size());
    auto evaluate = [&](size_t i) {
      const CandidatePattern& cand = candidates[i];
      outcomes[i] = EvaluateCandidate(net, cand,
                                      qualified_trusses[cand.parent_a],
                                      qualified_trusses[cand.parent_b],
                                      alpha_q);
    };
    if (pool.has_value()) {
      ParallelFor(*pool, candidates.size(), evaluate);
    } else {
      for (size_t i = 0; i < candidates.size(); ++i) evaluate(i);
    }

    std::vector<Itemset> next_qualified;
    std::vector<PatternTruss> next_trusses;
    for (size_t i = 0; i < candidates.size(); ++i) {
      CandidateOutcome& out = outcomes[i];
      result.counters.triangle_visits += out.triangle_visits;
      if (out.pruned_by_intersection) {
        ++result.counters.pruned_by_intersection;
        continue;
      }
      ++result.counters.mptd_calls;
      if (!out.truss.has_value()) continue;
      next_qualified.push_back(candidates[i].pattern);
      next_trusses.push_back(*out.truss);
      result.trusses.push_back(std::move(*out.truss));
      ++result.counters.qualified_patterns;
    }
    qualified = std::move(next_qualified);
    qualified_trusses = std::move(next_trusses);
    ++k;
  }
  result.Canonicalize();
  return result;
}

}  // namespace tcf
