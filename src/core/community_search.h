#ifndef TCF_CORE_COMMUNITY_SEARCH_H_
#define TCF_CORE_COMMUNITY_SEARCH_H_

#include <vector>

#include "core/communities.h"
#include "core/tc_tree.h"

namespace tcf {

/// \brief Online community search over the TC-Tree — the query pattern
/// of Huang et al.'s k-truss community search (§2.1), lifted to theme
/// communities: given a *query vertex*, return every theme community
/// that contains it.
///
/// This is the "show me this user's communities" primitive of the
/// paper's motivating applications (personalized advertising targets the
/// communities a user belongs to). Answered from the index with no
/// mining: Alg.-5 traversal restricted to themes ⊆ `q`, followed by a
/// membership check against each node's stored vertex set *before* the
/// truss is materialized, so non-member nodes cost O(log |V|).
///
/// Returns the communities (maximal connected truss components
/// containing `v`), ordered by tree BFS; a vertex may appear in many
/// communities of different themes (Def. 3.5 allows arbitrary overlap).
/// Note membership is *not* anti-monotone in the pattern — `v` can drop
/// out of a sub-theme's truss component yet persist in a super-theme's —
/// so subtree pruning uses only the Prop.-5.2 emptiness rule, never the
/// membership test.
std::vector<ThemeCommunity> SearchCommunitiesOfVertex(const TcTree& tree,
                                                      VertexId v,
                                                      const Itemset& q,
                                                      double alpha);

/// Convenience: all communities of `v` over every indexed theme.
std::vector<ThemeCommunity> SearchCommunitiesOfVertex(const TcTree& tree,
                                                      VertexId v,
                                                      double alpha);

}  // namespace tcf

#endif  // TCF_CORE_COMMUNITY_SEARCH_H_
