#include "core/apriori.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace tcf {

std::vector<CandidatePattern> GenerateAprioriCandidates(
    const std::vector<Itemset>& qualified) {
  std::vector<CandidatePattern> out;
  if (qualified.empty()) return out;

  // Sort indices by pattern so prefix-sharing patterns are contiguous.
  std::vector<size_t> order(qualified.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return qualified[a] < qualified[b];
  });

  std::unordered_set<Itemset, ItemsetHash> qualified_set(qualified.begin(),
                                                         qualified.end());
  const size_t k1 = qualified[0].size();  // = k-1

  // Join step: pairs within the same (k−2)-prefix block.
  auto same_prefix = [&](const Itemset& a, const Itemset& b) {
    for (size_t i = 0; i + 1 < k1; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  };

  for (size_t bi = 0; bi < order.size();) {
    size_t bj = bi + 1;
    while (bj < order.size() &&
           same_prefix(qualified[order[bi]], qualified[order[bj]])) {
      ++bj;
    }
    for (size_t x = bi; x < bj; ++x) {
      for (size_t y = x + 1; y < bj; ++y) {
        Itemset joined;
        TCF_CHECK(AprioriJoin(qualified[order[x]], qualified[order[y]],
                              &joined));
        // Prune step (Alg. 2 line 4): all (k−1)-subsets must be qualified.
        bool all_qualified = true;
        for (const Itemset& sub : joined.AllSubsetsMinusOne()) {
          if (!qualified_set.count(sub)) {
            all_qualified = false;
            break;
          }
        }
        if (all_qualified) {
          out.push_back({std::move(joined), order[x], order[y]});
        }
      }
    }
    bi = bj;
  }
  std::sort(out.begin(), out.end(),
            [](const CandidatePattern& a, const CandidatePattern& b) {
              return a.pattern < b.pattern;
            });
  return out;
}

}  // namespace tcf
