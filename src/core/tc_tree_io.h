#ifndef TCF_CORE_TC_TREE_IO_H_
#define TCF_CORE_TC_TREE_IO_H_

#include <iosfwd>
#include <string>

#include "core/tc_tree.h"
#include "util/status.h"

namespace tcf {

/// \brief Persistence for the TC-Tree index.
///
/// §6 advocates a *data warehouse* of maximal pattern trusses: build the
/// index once (expensive — Table 3), answer queries forever. That story
/// needs the index to survive process restarts, so we serialize the
/// whole tree — structure plus every node's decomposition `L_p` — in a
/// compact versioned binary format:
/// \code
///   magic "TCFT" | u32 version=1
///   u64 num_nodes (incl. root)
///   per node: u32 item | u32 parent | u32 num_children | children...
///             u64 num_levels
///             per level: i64 alpha | u64 num_edges | (u32 u, u32 v)...
///             u64 num_vertices | u32 vertex[] | f64 frequency[]
/// \endcode
/// A loaded tree answers queries identically to the freshly built one
/// (verified by the round-trip tests); build stats are not persisted.
Status SaveTcTree(const TcTree& tree, std::ostream& os);
Status SaveTcTreeToFile(const TcTree& tree, const std::string& path);

StatusOr<TcTree> LoadTcTree(std::istream& is);
StatusOr<TcTree> LoadTcTreeFromFile(const std::string& path);

}  // namespace tcf

#endif  // TCF_CORE_TC_TREE_IO_H_
