#ifndef TCF_CORE_BRUTE_FORCE_H_
#define TCF_CORE_BRUTE_FORCE_H_

#include <vector>

#include "core/mining_result.h"
#include "core/pattern_truss.h"
#include "net/database_network.h"
#include "net/theme_network.h"

namespace tcf {

/// \brief Exhaustive reference implementations ("oracles").
///
/// These recompute everything from scratch with no incremental updates,
/// no pruning and no candidate generation, so the property tests can
/// check the optimized miners and the index against ground truth.
/// Exponential in |S| — test-sized networks only.

/// All non-empty patterns `p` with `f_i(p) > 0` on at least one vertex
/// (the patterns whose theme network is non-trivial). Sorted.
std::vector<Itemset> AllSupportedPatterns(const DatabaseNetwork& net,
                                          size_t max_length = 0);

/// `C*_p(α)` by fixpoint iteration: recompute every edge's cohesion
/// within the current subgraph, delete all unqualified edges, repeat
/// until stable. Matches Def. 3.3/3.4 literally.
PatternTruss BruteForceMaximalPatternTruss(const ThemeNetwork& tn,
                                           double alpha);

/// The complete `C(α)` over all supported patterns.
MiningResult BruteForceMineAll(const DatabaseNetwork& net, double alpha,
                               size_t max_length = 0);

}  // namespace tcf

#endif  // TCF_CORE_BRUTE_FORCE_H_
