#include "core/community_search.h"

#include <algorithm>
#include <deque>

namespace tcf {

std::vector<ThemeCommunity> SearchCommunitiesOfVertex(const TcTree& tree,
                                                      VertexId v,
                                                      const Itemset& q,
                                                      double alpha) {
  std::vector<ThemeCommunity> out;
  const CohesionValue aq = QuantizeAlpha(alpha);

  std::deque<TcTree::NodeId> queue;
  queue.push_back(TcTree::kRoot);
  while (!queue.empty()) {
    const TcTree::NodeId f = queue.front();
    queue.pop_front();
    for (TcTree::NodeId c : tree.node(f).children) {
      const TcTree::Node& child = tree.node(c);
      if (!q.Contains(child.item)) continue;
      const TrussDecomposition& d = child.decomposition;
      if (d.max_alpha() <= aq) continue;  // empty at α — prune subtree
      queue.push_back(c);                 // descend regardless of membership

      // Cheap pre-check: v must at least be in C*_p(0)'s vertex set.
      if (!std::binary_search(d.vertices().begin(), d.vertices().end(), v)) {
        continue;
      }
      PatternTruss truss = d.TrussAtAlphaQ(aq);
      if (truss.empty()) continue;
      truss.pattern = tree.PatternOf(c);
      for (ThemeCommunity& community : ExtractThemeCommunities(truss)) {
        if (std::binary_search(community.vertices.begin(),
                               community.vertices.end(), v)) {
          out.push_back(std::move(community));
          break;  // components are disjoint: v is in at most one
        }
      }
    }
  }
  return out;
}

std::vector<ThemeCommunity> SearchCommunitiesOfVertex(const TcTree& tree,
                                                      VertexId v,
                                                      double alpha) {
  // q = union of all first-layer items covers every indexed theme.
  std::vector<ItemId> items;
  for (TcTree::NodeId c : tree.node(TcTree::kRoot).children) {
    items.push_back(tree.node(c).item);
  }
  return SearchCommunitiesOfVertex(tree, v, Itemset(std::move(items)), alpha);
}

}  // namespace tcf
