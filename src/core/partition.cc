#include "core/partition.h"

#include <cstdint>
#include <deque>
#include <utility>

namespace tcf {
namespace {

// splitmix64 finalizer (Steele/Vigna): full-avalanche mix so shard
// assignment is uniform even over the dense, frequency-rank-correlated
// ids an ItemDictionary hands out.
uint64_t MixItem(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

size_t HashShardPartitioner::ShardOf(ItemId item, size_t num_shards) const {
  if (num_shards <= 1) return 0;
  return static_cast<size_t>(MixItem(item) % num_shards);
}

std::vector<TcTree> PartitionTcTree(TcTree tree,
                                    const ShardPartitioner& partitioner,
                                    size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  std::vector<TcTree> shards;
  shards.reserve(num_shards);
  if (num_shards == 1) {
    shards.push_back(std::move(tree));
    return shards;
  }
  std::deque<TcTree::Node> nodes = std::move(tree).TakeNodes();
  std::vector<std::deque<TcTree::Node>> arenas(num_shards);
  for (auto& arena : arenas) arena.emplace_back();  // fresh root per shard
  // Owner of a node = shard of its layer-1 ancestor's item. The arena is
  // in BFS commit order (parents strictly precede children), so one
  // forward scan both resolves owners and keeps each shard's slice in
  // the original relative order — per-parent child lists stay contiguous
  // and item-ascending, and parents keep smaller ids than children.
  std::vector<uint32_t> owner(nodes.size(), 0);
  std::vector<TcTree::NodeId> new_id(nodes.size(), TcTree::kRoot);
  for (size_t id = 1; id < nodes.size(); ++id) {
    TcTree::Node& node = nodes[id];
    const uint32_t s =
        node.parent == TcTree::kRoot
            ? static_cast<uint32_t>(partitioner.ShardOf(node.item, num_shards))
            : owner[node.parent];
    owner[id] = s;
    std::deque<TcTree::Node>& arena = arenas[s];
    const TcTree::NodeId nid = static_cast<TcTree::NodeId>(arena.size());
    new_id[id] = nid;
    const TcTree::NodeId parent =
        node.parent == TcTree::kRoot ? TcTree::kRoot : new_id[node.parent];
    arena.emplace_back();
    TcTree::Node& moved = arena.back();
    moved.item = node.item;
    moved.parent = parent;
    moved.decomposition = std::move(node.decomposition);
    arena[parent].children.push_back(nid);
  }
  for (auto& arena : arenas) {
    shards.push_back(TcTree::FromNodes(std::move(arena)));
  }
  return shards;
}

std::vector<DatabaseNetwork> PartitionTransactions(
    const DatabaseNetwork& net, const ShardPartitioner& partitioner,
    size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  std::vector<DatabaseNetwork> out;
  out.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    std::vector<TransactionDb> databases;
    databases.reserve(net.num_vertices());
    for (size_t v = 0; v < net.num_vertices(); ++v) {
      const TransactionDb& db = net.db(static_cast<VertexId>(v));
      const Itemset distinct = db.DistinctItems();
      bool keep = false;
      for (ItemId item : distinct) {
        if (partitioner.ShardOf(item, num_shards) == s) {
          keep = true;
          break;
        }
      }
      databases.push_back(keep ? db : TransactionDb{});
    }
    out.emplace_back(net.graph(), std::move(databases), net.dictionary());
  }
  return out;
}

TcTree BuildShardTree(const DatabaseNetwork& shard_net,
                      const ShardPartitioner& partitioner, size_t num_shards,
                      size_t shard, const TcTreeOptions& options) {
  TcTree full = TcTree::Build(shard_net, options);
  std::vector<TcTree> parts =
      PartitionTcTree(std::move(full), partitioner, num_shards);
  return std::move(parts[shard]);
}

}  // namespace tcf
