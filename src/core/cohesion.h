#ifndef TCF_CORE_COHESION_H_
#define TCF_CORE_COHESION_H_

#include <cmath>
#include <cstdint>

namespace tcf {

/// \brief Fixed-point edge-cohesion arithmetic.
///
/// Edge cohesion (Def. 3.1) is a sum of `min(f_i, f_j, f_k)` terms that
/// MPTD maintains *incrementally*: when a triangle breaks, its term is
/// subtracted from the two surviving wing edges. With IEEE doubles,
/// `(a + b) - b != a` in general, so after thousands of updates an edge
/// whose true cohesion is 0 could read 1e-17 and wrongly survive the
/// `eco > α` test — breaking the exactness guarantees (Thm. 5.1/6.1) the
/// index relies on.
///
/// We therefore quantize every vertex frequency to a 2^-30 grid once, and
/// do all cohesion arithmetic in int64. Integer adds/subtracts are exact,
/// so peeling, decomposition levels and reconstruction agree bit-for-bit
/// with a from-scratch recomputation. The quantization error of a
/// frequency is < 2^-30 ≈ 9.3e-10, far below the 1/|d_i| resolution of
/// any real frequency, and the semantics are consistent everywhere
/// because *all* code paths (miners, index, oracles) share this header.
using CohesionValue = int64_t;

/// One unit = 2^-30 of frequency.
inline constexpr int64_t kCohesionScale = int64_t{1} << 30;

/// Quantizes a vertex frequency f ∈ [0, 1]. Negative inputs clamp to 0.
inline CohesionValue QuantizeFrequency(double f) {
  if (f <= 0.0) return 0;
  return static_cast<CohesionValue>(
      std::llround(f * static_cast<double>(kCohesionScale)));
}

/// Quantizes a user threshold α for the strict test `eco > α`.
///
/// α lands on the *same* 2^-30 grid with the *same* round-to-nearest as
/// frequencies. This makes boundary semantics intuitive and exact: if a
/// user passes α equal to a frequency value (e.g. α = 0.2 against edges
/// of cohesion 0.2), both quantize to the same grid point and the strict
/// predicate `eco > α` is false — exactly the paper's `eco_ij > α`
/// convention. The deviation from the real-valued predicate is confined
/// to a half-grid window of 2^-31 around α, far below the resolution of
/// any real pattern frequency.
inline CohesionValue QuantizeAlpha(double alpha) {
  if (alpha <= 0.0) return 0;
  return static_cast<CohesionValue>(
      std::llround(alpha * static_cast<double>(kCohesionScale)));
}

/// Back to double for reporting.
inline double CohesionToDouble(CohesionValue c) {
  return static_cast<double>(c) / static_cast<double>(kCohesionScale);
}

}  // namespace tcf

#endif  // TCF_CORE_COHESION_H_
