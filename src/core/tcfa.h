#ifndef TCF_CORE_TCFA_H_
#define TCF_CORE_TCFA_H_

#include "core/mining_result.h"
#include "net/database_network.h"

namespace tcf {

/// Options for Theme Community Finder Apriori.
struct TcfaOptions {
  /// Minimum cohesion threshold α ≥ 0.
  double alpha = 0.0;
  /// Optional cap on pattern length (0 = unlimited), for bounded runs.
  size_t max_pattern_length = 0;
};

/// \brief TCFA (Alg. 3): exact level-wise mining of all maximal pattern
/// trusses.
///
/// Level 1 peels the theme network of every single item; level k joins
/// the qualified (k−1)-patterns via Alg. 2 and peels each candidate's
/// theme network, *induced from the whole database network*. Pattern
/// anti-monotonicity (Prop. 5.2) guarantees exactness: any pattern with a
/// non-empty truss has all sub-patterns qualified, so it is generated.
MiningResult RunTcfa(const DatabaseNetwork& net, const TcfaOptions& options);

}  // namespace tcf

#endif  // TCF_CORE_TCFA_H_
