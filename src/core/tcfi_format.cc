#include "core/tcfi_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <utility>

#include "core/partition.h"
#include "util/string_util.h"

namespace tcf {

namespace tcfi_internal {

namespace {

/// Slicing-by-8 tables for the reflected IEEE CRC-32 polynomial,
/// generated once (thread-safe magic static).
struct Crc32Tables {
  uint32_t t[8][256];
  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int s = 1; s < 8; ++s) {
        t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xFF];
      }
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const Crc32Tables tables;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    crc ^= lo;
    crc = tables.t[7][crc & 0xFF] ^ tables.t[6][(crc >> 8) & 0xFF] ^
          tables.t[5][(crc >> 16) & 0xFF] ^ tables.t[4][crc >> 24] ^
          tables.t[3][hi & 0xFF] ^ tables.t[2][(hi >> 8) & 0xFF] ^
          tables.t[1][(hi >> 16) & 0xFF] ^ tables.t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = tables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace tcfi_internal

namespace {

using tcfi_internal::Crc32;

static_assert(std::is_trivially_copyable_v<TcfiHeader>);
static_assert(std::is_trivially_copyable_v<TcfiNodeRec>);
static_assert(std::is_trivially_copyable_v<TcfiLevelRec>);
static_assert(std::is_trivially_copyable_v<Edge>);
static_assert(sizeof(Edge) == 8, "Edge must pack into the TCFI arena");

uint64_t AlignUp8(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

/// Record size of each section slot (slot = kind - 1).
constexpr size_t kSectionRecordSize[kTcfiNumSections] = {
    sizeof(TcfiNodeRec),       // kTcfiNodes
    sizeof(uint32_t),          // kTcfiChildren
    sizeof(TcfiLevelRec),      // kTcfiLevels
    sizeof(Edge),              // kTcfiEdges
    sizeof(VertexId),          // kTcfiVertices
    sizeof(double),            // kTcfiFrequencies
    sizeof(TcfiRootIndexRec),  // kTcfiRootIndex
};

uint32_t HeaderCrc(const TcfiHeader& header) {
  TcfiHeader copy = header;
  copy.header_crc = 0;
  return Crc32(&copy, sizeof(copy));
}

Status WriteSection(std::ofstream& os, uint64_t offset, const void* data,
                    uint64_t size) {
  const auto pos = static_cast<uint64_t>(os.tellp());
  // Zero padding up to the section's aligned offset.
  for (uint64_t i = pos; i < offset; ++i) os.put('\0');
  if (size > 0) os.write(static_cast<const char*>(data), size);
  if (!os.good()) return Status::IOError("tcfi write failed");
  return Status::OK();
}

/// Reads and fully validates the fixed header (magic, endianness,
/// version, CRC, size match, section-table sanity). `actual_size` is
/// the byte count on disk.
Status ValidateHeader(const TcfiHeader& header, uint64_t actual_size) {
  static const char kMagic[4] = {'T', 'C', 'F', 'I'};
  if (std::memcmp(header.magic, kMagic, 4) != 0) {
    return Status::Corruption("bad tcfi magic");
  }
  if (header.endian != kTcfiEndianMarker) {
    const uint32_t swapped = __builtin_bswap32(header.endian);
    if (swapped == kTcfiEndianMarker) {
      return Status::Corruption(
          "tcfi file was written on a machine with different endianness");
    }
    return Status::Corruption("bad tcfi endian marker");
  }
  if (header.version == 0 || header.version > kTcfiVersion) {
    return Status::Corruption(
        StrFormat("unsupported tcfi version %u", header.version));
  }
  if (HeaderCrc(header) != header.header_crc) {
    return Status::Corruption("tcfi header checksum mismatch");
  }
  if (header.file_size != actual_size) {
    return Status::Corruption(
        StrFormat("tcfi size mismatch: header says %llu bytes, file has %llu",
                  static_cast<unsigned long long>(header.file_size),
                  static_cast<unsigned long long>(actual_size)));
  }
  if (header.num_sections != kTcfiNumSections) {
    return Status::Corruption("tcfi section count mismatch");
  }
  if (header.num_nodes == 0) {
    return Status::Corruption("tcfi has no nodes (not even a root)");
  }
  if (header.num_nodes > static_cast<uint64_t>(TcTree::kNoParent)) {
    return Status::Corruption("tcfi node count exceeds the id space");
  }
  for (uint32_t s = 0; s < kTcfiNumSections; ++s) {
    const TcfiSection& sec = header.sections[s];
    if (sec.kind != s + 1) {
      return Status::Corruption("tcfi section table out of order");
    }
    if (sec.offset % 8 != 0 || sec.offset < sizeof(TcfiHeader)) {
      return Status::Corruption("tcfi section misaligned");
    }
    if (sec.offset > header.file_size ||
        sec.size > header.file_size - sec.offset) {
      return Status::Corruption("tcfi section out of bounds");
    }
    if (sec.size % kSectionRecordSize[s] != 0) {
      return Status::Corruption("tcfi section size not record-aligned");
    }
  }
  if (header.sections[kTcfiNodes - 1].size !=
      header.num_nodes * sizeof(TcfiNodeRec)) {
    return Status::Corruption("tcfi node section disagrees with header");
  }
  if (header.sections[kTcfiVertices - 1].size / sizeof(VertexId) !=
      header.sections[kTcfiFrequencies - 1].size / sizeof(double)) {
    return Status::Corruption("tcfi vertex/frequency sections diverge");
  }
  return Status::OK();
}

}  // namespace

Status SaveTcTreeBinary(const TcTree& tree, const std::string& path,
                        const TcfiWriteOptions& options) {
  const uint64_t total = tree.num_nodes() + 1;
  std::vector<TcfiNodeRec> nodes(total);
  std::vector<uint32_t> children;
  std::vector<TcfiLevelRec> levels;
  std::vector<Edge> edges;
  std::vector<VertexId> verts;
  std::vector<double> freqs;
  std::vector<TcfiRootIndexRec> roots;

  TcfiHeader header;
  header.num_nodes = total;
  header.shard_id = options.shard_id;
  header.num_shards = options.num_shards == 0 ? 1 : options.num_shards;

  for (TcTree::NodeId id = 0; id < total; ++id) {
    const TcTree::Node& n = tree.node(id);
    TcfiNodeRec& rec = nodes[id];
    rec.item = n.item;
    rec.parent = n.parent;
    rec.depth = id == 0 ? 0 : nodes[n.parent].depth + 1;
    header.max_depth = std::max(header.max_depth, rec.depth);

    rec.children_begin = children.size();
    rec.children_count = static_cast<uint32_t>(n.children.size());
    children.insert(children.end(), n.children.begin(), n.children.end());

    const TrussDecomposition& d = n.decomposition;
    rec.levels_begin = levels.size();
    rec.levels_count = static_cast<uint32_t>(d.levels().size());
    for (const DecompositionLevel& level : d.levels()) {
      TcfiLevelRec lrec;
      lrec.alpha = level.alpha;
      lrec.edges_begin = edges.size();
      lrec.edges_count = static_cast<uint32_t>(level.removed.size());
      levels.push_back(lrec);
      edges.insert(edges.end(), level.removed.begin(), level.removed.end());
    }
    rec.verts_begin = verts.size();
    rec.verts_count = static_cast<uint32_t>(d.vertices().size());
    verts.insert(verts.end(), d.vertices().begin(), d.vertices().end());
    freqs.insert(freqs.end(), d.frequencies().begin(), d.frequencies().end());

    rec.max_alpha = d.max_alpha();
    header.max_alpha = std::max(header.max_alpha, rec.max_alpha);
  }
  header.total_edges = edges.size();
  for (TcTree::NodeId c : tree.node(TcTree::kRoot).children) {
    roots.push_back({tree.node(c).item, c});
  }

  const void* payloads[kTcfiNumSections] = {
      nodes.data(), children.data(), levels.data(),  edges.data(),
      verts.data(), freqs.data(),    roots.data(),
  };
  const uint64_t sizes[kTcfiNumSections] = {
      nodes.size() * sizeof(TcfiNodeRec),
      children.size() * sizeof(uint32_t),
      levels.size() * sizeof(TcfiLevelRec),
      edges.size() * sizeof(Edge),
      verts.size() * sizeof(VertexId),
      freqs.size() * sizeof(double),
      roots.size() * sizeof(TcfiRootIndexRec),
  };
  uint64_t offset = sizeof(TcfiHeader);
  for (uint32_t s = 0; s < kTcfiNumSections; ++s) {
    offset = AlignUp8(offset);
    TcfiSection& sec = header.sections[s];
    sec.kind = s + 1;
    sec.offset = offset;
    sec.size = sizes[s];
    sec.crc32 = Crc32(payloads[s], sizes[s]);
    offset += sizes[s];
  }
  header.file_size = offset;
  header.header_crc = HeaderCrc(header);

  // Stream to a sibling temp file and rename into place: a watcher (or
  // a concurrent mapper) can never observe a half-written index under
  // the final name, and even a torn copy fails ProbeTcfiFile's CRC +
  // size check.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f.is_open()) {
      return Status::IOError("cannot open for write: " + tmp);
    }
    f.write(reinterpret_cast<const char*>(&header), sizeof(header));
    for (uint32_t s = 0; s < kTcfiNumSections; ++s) {
      const Status st = WriteSection(f, header.sections[s].offset,
                                     payloads[s], sizes[s]);
      if (!st.ok()) return st;
    }
    if (!f.good()) return Status::IOError("tcfi write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " into " + path);
  }
  return Status::OK();
}

MappedTcTree::~MappedTcTree() { Reset(); }

void MappedTcTree::Reset() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
  }
  size_ = 0;
}

MappedTcTree::MappedTcTree(MappedTcTree&& other) noexcept {
  *this = std::move(other);
}

MappedTcTree& MappedTcTree::operator=(MappedTcTree&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  base_ = std::exchange(other.base_, nullptr);
  size_ = std::exchange(other.size_, 0);
  path_ = std::move(other.path_);
  nodes_ = other.nodes_;
  children_ = other.children_;
  levels_ = other.levels_;
  edges_ = other.edges_;
  vertices_ = other.vertices_;
  frequencies_ = other.frequencies_;
  roots_ = other.roots_;
  num_nodes_total_ = other.num_nodes_total_;
  num_roots_ = other.num_roots_;
  total_edges_ = other.total_edges_;
  max_alpha_ = other.max_alpha_;
  max_depth_ = other.max_depth_;
  shard_id_ = other.shard_id_;
  num_shards_ = other.num_shards_;
  return *this;
}

std::vector<Edge> MappedTcTree::EdgesAtAlphaQ(NodeId id,
                                              CohesionValue alpha_q) const {
  const TcfiLevelRec* begin = levels(id);
  const TcfiLevelRec* end = begin + num_levels(id);
  // Levels ascend, so binary search for the first level with α_k > α —
  // the same upper_bound TrussDecomposition::EdgesAtAlphaQ runs.
  const TcfiLevelRec* it = std::upper_bound(
      begin, end, alpha_q,
      [](CohesionValue a, const TcfiLevelRec& l) { return a < l.alpha; });
  size_t count = 0;
  for (const TcfiLevelRec* j = it; j != end; ++j) count += j->edges_count;
  std::vector<Edge> out;
  out.reserve(count);
  for (const TcfiLevelRec* j = it; j != end; ++j) {
    const Edge* e = level_edges(*j);
    out.insert(out.end(), e, e + j->edges_count);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Itemset MappedTcTree::PatternOf(NodeId id) const {
  std::vector<ItemId> items;
  for (NodeId x = id; x != TcTree::kRoot; x = nodes_[x].parent) {
    items.push_back(nodes_[x].item);
  }
  return Itemset(std::move(items));
}

StatusOr<MappedTcTree> MapTcTree(const std::string& path,
                                 const TcfiMapOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open for read: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat: " + path);
  }
  const auto actual_size = static_cast<uint64_t>(st.st_size);
  if (actual_size < sizeof(TcfiHeader)) {
    ::close(fd);
    return Status::Corruption("tcfi file shorter than its header");
  }
  void* base = ::mmap(nullptr, actual_size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base == MAP_FAILED) {
    return Status::IOError("mmap failed: " + path);
  }

  MappedTcTree t;
  t.base_ = base;
  t.size_ = actual_size;
  t.path_ = path;

  TcfiHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (Status st_h = ValidateHeader(header, actual_size); !st_h.ok()) {
    return st_h;  // t's destructor unmaps
  }

  if (options.verify_checksums) {
    for (uint32_t s = 0; s < kTcfiNumSections; ++s) {
      const TcfiSection& sec = header.sections[s];
      const uint32_t crc =
          Crc32(static_cast<const char*>(base) + sec.offset, sec.size);
      if (crc != sec.crc32) {
        return Status::Corruption(
            StrFormat("tcfi section %u checksum mismatch", sec.kind));
      }
    }
  }

  const char* bytes = static_cast<const char*>(base);
  const TcfiSection* secs = header.sections;
  t.nodes_ = reinterpret_cast<const TcfiNodeRec*>(
      bytes + secs[kTcfiNodes - 1].offset);
  t.children_ = reinterpret_cast<const MappedTcTree::NodeId*>(
      bytes + secs[kTcfiChildren - 1].offset);
  t.levels_ = reinterpret_cast<const TcfiLevelRec*>(
      bytes + secs[kTcfiLevels - 1].offset);
  t.edges_ =
      reinterpret_cast<const Edge*>(bytes + secs[kTcfiEdges - 1].offset);
  t.vertices_ = reinterpret_cast<const VertexId*>(
      bytes + secs[kTcfiVertices - 1].offset);
  t.frequencies_ = reinterpret_cast<const double*>(
      bytes + secs[kTcfiFrequencies - 1].offset);
  t.roots_ = reinterpret_cast<const TcfiRootIndexRec*>(
      bytes + secs[kTcfiRootIndex - 1].offset);
  t.num_nodes_total_ = header.num_nodes;
  t.num_roots_ = secs[kTcfiRootIndex - 1].size / sizeof(TcfiRootIndexRec);
  t.total_edges_ = header.total_edges;
  t.max_alpha_ = header.max_alpha;
  t.max_depth_ = header.max_depth;
  t.shard_id_ = header.shard_id;
  t.num_shards_ = header.num_shards;

  if (options.validate_structure) {
    const uint64_t n_children =
        secs[kTcfiChildren - 1].size / sizeof(uint32_t);
    const uint64_t n_levels =
        secs[kTcfiLevels - 1].size / sizeof(TcfiLevelRec);
    const uint64_t n_edges = secs[kTcfiEdges - 1].size / sizeof(Edge);
    const uint64_t n_verts =
        secs[kTcfiVertices - 1].size / sizeof(VertexId);
    const uint64_t total = header.num_nodes;
    for (uint64_t id = 0; id < total; ++id) {
      const TcfiNodeRec& n = t.nodes_[id];
      if (id == 0) {
        if (n.parent != TcTree::kNoParent || n.depth != 0) {
          return Status::Corruption("tcfi node 0 is not a root");
        }
      } else {
        // BFS commit order: every parent precedes its children, which
        // also rules out parent cycles in one pass.
        if (n.parent >= id) {
          return Status::Corruption("tcfi parent does not precede child");
        }
        if (n.depth != t.nodes_[n.parent].depth + 1) {
          return Status::Corruption("tcfi node depth inconsistent");
        }
      }
      if (n.children_begin > n_children ||
          n.children_count > n_children - n.children_begin) {
        return Status::Corruption("tcfi child slice out of bounds");
      }
      for (uint32_t c = 0; c < n.children_count; ++c) {
        const MappedTcTree::NodeId child = t.children_[n.children_begin + c];
        if (child <= id || child >= total) {
          return Status::Corruption("tcfi child id out of range");
        }
      }
      if (n.levels_begin > n_levels ||
          n.levels_count > n_levels - n.levels_begin) {
        return Status::Corruption("tcfi level slice out of bounds");
      }
      for (uint32_t k = 0; k < n.levels_count; ++k) {
        const TcfiLevelRec& level = t.levels_[n.levels_begin + k];
        if (level.edges_count == 0) {
          return Status::Corruption("tcfi empty decomposition level");
        }
        if (level.edges_begin > n_edges ||
            level.edges_count > n_edges - level.edges_begin) {
          return Status::Corruption("tcfi edge slice out of bounds");
        }
        if (k > 0 && level.alpha <= t.levels_[n.levels_begin + k - 1].alpha) {
          return Status::Corruption("tcfi levels not strictly ascending");
        }
      }
      const CohesionValue want_max =
          n.levels_count == 0
              ? 0
              : t.levels_[n.levels_begin + n.levels_count - 1].alpha;
      if (n.max_alpha != want_max) {
        return Status::Corruption("tcfi node max_alpha inconsistent");
      }
      if (n.verts_begin > n_verts ||
          n.verts_count > n_verts - n.verts_begin) {
        return Status::Corruption("tcfi vertex slice out of bounds");
      }
    }
    // The vertical index must mirror the root's child list exactly.
    const TcfiNodeRec& root = t.nodes_[0];
    if (t.num_roots_ != root.children_count) {
      return Status::Corruption("tcfi root index size mismatch");
    }
    for (uint64_t r = 0; r < t.num_roots_; ++r) {
      const TcfiRootIndexRec& rec = t.roots_[r];
      const MappedTcTree::NodeId child = t.children_[root.children_begin + r];
      if (rec.node != child || rec.item != t.nodes_[child].item) {
        return Status::Corruption("tcfi root index entry mismatch");
      }
      if (r > 0 && rec.item <= t.roots_[r - 1].item) {
        return Status::Corruption("tcfi root index not ascending");
      }
    }
  }
  return t;
}

Status ProbeTcfiFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) return Status::IOError("cannot open for read: " + path);
  f.seekg(0, std::ios::end);
  const auto actual_size = static_cast<uint64_t>(f.tellg());
  if (actual_size < sizeof(TcfiHeader)) {
    return Status::Corruption("tcfi file shorter than its header");
  }
  f.seekg(0);
  TcfiHeader header;
  f.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!f.good()) return Status::IOError("cannot read header: " + path);
  return ValidateHeader(header, actual_size);
}

bool LooksLikeTcfiFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  if (!f.is_open() || !f.read(magic, 4)) return false;
  return std::memcmp(magic, "TCFI", 4) == 0;
}

TcTree MaterializeTcTree(const MappedTcTree& mapped) {
  const size_t total = mapped.num_nodes() + 1;
  std::deque<TcTree::Node> nodes;
  for (size_t id = 0; id < total; ++id) {
    TcTree::Node n;
    n.item = mapped.item(static_cast<MappedTcTree::NodeId>(id));
    n.parent = mapped.parent(static_cast<MappedTcTree::NodeId>(id));
    const auto nid = static_cast<MappedTcTree::NodeId>(id);
    n.children.assign(mapped.children(nid),
                      mapped.children(nid) + mapped.num_children(nid));
    if (id != 0) {
      std::vector<DecompositionLevel> levels(mapped.num_levels(nid));
      for (size_t k = 0; k < levels.size(); ++k) {
        const TcfiLevelRec& rec = mapped.levels(nid)[k];
        levels[k].alpha = rec.alpha;
        const Edge* e = mapped.level_edges(rec);
        levels[k].removed.assign(e, e + rec.edges_count);
      }
      n.decomposition = TrussDecomposition::FromParts(
          mapped.PatternOf(nid),
          std::vector<VertexId>(mapped.vertices(nid),
                                mapped.vertices(nid) +
                                    mapped.num_vertices(nid)),
          std::vector<double>(mapped.frequencies(nid),
                              mapped.frequencies(nid) +
                                  mapped.num_vertices(nid)),
          std::move(levels));
    }
    nodes.push_back(std::move(n));
  }
  return TcTree::FromNodes(std::move(nodes));
}

std::string TcfiSlicePath(const std::string& base, size_t shard,
                          size_t num_shards) {
  return StrFormat("%s.shard%zu-of-%zu", base.c_str(), shard, num_shards);
}

Status SaveTcfiShardSlices(TcTree tree, const std::string& base,
                           size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  const HashShardPartitioner partitioner;
  std::vector<TcTree> parts =
      PartitionTcTree(std::move(tree), partitioner, num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    TcfiWriteOptions options;
    options.shard_id = static_cast<uint32_t>(s);
    options.num_shards = static_cast<uint32_t>(num_shards);
    const Status st = SaveTcTreeBinary(
        parts[s], TcfiSlicePath(base, s, num_shards), options);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace tcf
