#ifndef TCF_CORE_TC_TREE_QUERY_H_
#define TCF_CORE_TC_TREE_QUERY_H_

#include <cstdint>
#include <vector>

#include "core/communities.h"
#include "core/tc_tree.h"

namespace tcf {

/// Query-time knobs.
struct TcTreeQueryOptions {
  /// When false, results carry edges only (vertices/frequencies skipped),
  /// which is what the Fig.-5 latency harness measures: Eq.-1 edge
  /// retrieval itself.
  bool materialize_vertices = true;
  /// Drop trusses with fewer edges than this from the *result list*
  /// (they are still traversed — emptiness, not size, governs Prop.-5.2
  /// subtree pruning). 0 = keep all.
  size_t min_truss_edges = 0;
  /// Stop collecting after this many trusses (0 = unlimited). Traversal
  /// ends early; `retrieved_nodes` reports the truncated count.
  size_t max_results = 0;
};

/// Result of one `(q, α_q)` query (§6.3).
struct TcTreeQueryResult {
  /// `C_q(α_q) = {C*_p(α_q) ≠ ∅ : p ⊆ q}`, in tree BFS order.
  std::vector<PatternTruss> trusses;
  /// Nodes whose truss was non-empty — Fig. 5's "Retrieved Nodes (RN)".
  uint64_t retrieved_nodes = 0;
  /// Nodes whose decomposition was consulted at all.
  uint64_t visited_nodes = 0;
};

/// \brief Algorithm 5: pruned breadth-first collection over the TC-Tree.
///
/// A child is descended only if its item is in `q` (otherwise no
/// descendant pattern can be ⊆ q) and its reconstructed truss at α_q is
/// non-empty (otherwise Prop. 5.2 empties the whole subtree).
TcTreeQueryResult QueryTcTree(const TcTree& tree, const Itemset& q,
                              double alpha_q,
                              const TcTreeQueryOptions& options = {});

/// Convenience: query, then split every retrieved truss into its theme
/// communities (Def. 3.5).
std::vector<ThemeCommunity> QueryThemeCommunities(
    const TcTree& tree, const Itemset& q, double alpha_q);

}  // namespace tcf

#endif  // TCF_CORE_TC_TREE_QUERY_H_
