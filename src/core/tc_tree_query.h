#ifndef TCF_CORE_TC_TREE_QUERY_H_
#define TCF_CORE_TC_TREE_QUERY_H_

#include <cstdint>
#include <vector>

#include "core/communities.h"
#include "core/tc_tree.h"
#include "util/deadline.h"

namespace tcf {

class MappedTcTree;  // core/tcfi_format.h

/// Query-time knobs.
struct TcTreeQueryOptions {
  /// When false, results carry edges only (vertices/frequencies skipped),
  /// which is what the Fig.-5 latency harness measures: Eq.-1 edge
  /// retrieval itself.
  bool materialize_vertices = true;
  /// Drop trusses with fewer edges than this from the *result list*
  /// (they are still traversed — emptiness, not size, governs Prop.-5.2
  /// subtree pruning). 0 = keep all.
  size_t min_truss_edges = 0;
  /// Stop collecting after this many trusses (0 = unlimited). Traversal
  /// ends early; `retrieved_nodes` reports the truncated count.
  size_t max_results = 0;
  /// Cooperative cancellation point: checked every
  /// `kDeadlineCheckStride` visited nodes. An expired deadline unwinds
  /// the walk with `TcTreeQueryResult::deadline_exceeded` set and
  /// whatever partial counters it had — never a crash or a hang.
  /// Default-constructed = unbounded (no clock reads at all).
  Deadline deadline;
};

/// Result of one `(q, α_q)` query (§6.3).
struct TcTreeQueryResult {
  /// `C_q(α_q) = {C*_p(α_q) ≠ ∅ : p ⊆ q}`, in tree BFS order.
  std::vector<PatternTruss> trusses;
  /// Nodes whose truss was non-empty — Fig. 5's "Retrieved Nodes (RN)".
  uint64_t retrieved_nodes = 0;
  /// Nodes whose decomposition was consulted at all.
  uint64_t visited_nodes = 0;
  /// Visited nodes whose truss was empty at α_q, cutting their whole
  /// subtree (Prop. 5.2). Composition counts a cover's absence proof the
  /// same way, so composed and cold walks agree on this field too.
  uint64_t pruned_subtrees = 0;
  /// True when `TcTreeQueryOptions::deadline` expired mid-walk: the
  /// trusses and counters above are partial work, not an answer. The
  /// serving layer turns this into ERR DeadlineExceeded; it must never
  /// be cached or served as a result.
  bool deadline_exceeded = false;
};

/// \brief Algorithm 5: pruned breadth-first collection over the TC-Tree.
///
/// A child is descended only if its item is in `q` (otherwise no
/// descendant pattern can be ⊆ q) and its reconstructed truss at α_q is
/// non-empty (otherwise Prop. 5.2 empties the whole subtree).
TcTreeQueryResult QueryTcTree(const TcTree& tree, const Itemset& q,
                              double alpha_q,
                              const TcTreeQueryOptions& options = {});

/// The same pruned BFS straight over a zero-copy mapped snapshot
/// (core/tcfi_format.h). Both overloads instantiate one templated walk,
/// so results are byte-identical for the same index bytes.
TcTreeQueryResult QueryTcTree(const MappedTcTree& tree, const Itemset& q,
                              double alpha_q,
                              const TcTreeQueryOptions& options = {});

/// A reusable building block for answering `(q, α_q)` by composition:
/// the complete answer of an earlier query `(itemset, α_q)` with
/// `itemset ⊆ q`, produced over the *same* tree snapshot with the same
/// options. Because the answer for q is the superset-union over all
/// patterns p ⊆ q (§6.3), the cover's trusses are exactly the members
/// of the answer whose pattern is ⊆ `itemset` — and a pattern p ⊆
/// `itemset` *missing* from the cover proves `C*_p(α_q) = ∅`, which by
/// Prop. 5.2 empties p's whole subtree.
struct SubPatternCover {
  const Itemset* itemset = nullptr;
  const TcTreeQueryResult* result = nullptr;
};

/// How ComposeTcTreeQuery assembled its answer (for cache accounting).
struct TcTreeComposeStats {
  uint64_t reused_trusses = 0;    // copied from a cover
  uint64_t computed_trusses = 0;  // rebuilt from decompositions
  uint64_t covered_prunes = 0;    // subtrees cut by a cover's absence
};

/// \brief Answers `(q, α_q)` as the deduplicated union of the covers'
/// trusses plus a residual tree probe for the uncovered sub-patterns.
///
/// Walks the same pruned BFS as QueryTcTree, threading a bitmask of
/// which covers still contain the node's pattern. A covered node takes
/// its truss from the cover (or prunes its subtree when the cover lacks
/// it) without touching the node's decomposition — that reconstruction
/// is the cost a cover saves; only uncovered nodes fall back to the
/// QueryTcTree arithmetic. Trusses arrive in the identical BFS order, so
/// the result equals QueryTcTree(tree, q, α_q) field for field.
///
/// Preconditions: every cover was computed over `tree` at the same
/// quantized α_q with the same `options`, and the result-shaping knobs
/// are off (`min_truss_edges == 0`, `max_results == 0` — a cover that
/// dropped or truncated trusses would turn "absent" into a false empty
/// proof). Violations (or > 64 covers) fall back to a plain QueryTcTree.
TcTreeQueryResult ComposeTcTreeQuery(const TcTree& tree, const Itemset& q,
                                     double alpha_q,
                                     const std::vector<SubPatternCover>& covers,
                                     const TcTreeQueryOptions& options = {},
                                     TcTreeComposeStats* compose_stats =
                                         nullptr);

/// Composition over a mapped snapshot — same walk, same guarantees.
TcTreeQueryResult ComposeTcTreeQuery(const MappedTcTree& tree,
                                     const Itemset& q, double alpha_q,
                                     const std::vector<SubPatternCover>& covers,
                                     const TcTreeQueryOptions& options = {},
                                     TcTreeComposeStats* compose_stats =
                                         nullptr);

/// \brief Projects the answer for `q` down to the answer for `s ⊆ q`
/// without touching the tree: keeps exactly the trusses whose pattern is
/// ⊆ s, in order.
///
/// Sound because the answer for s is `{C*_p(α) ≠ ∅ : p ⊆ s}` — a stable
/// filter of the answer for q — and the BFS visit order over s's
/// subforest is a subsequence of the visit order over q's. Requires
/// `full` to be a complete answer (`min_truss_edges == 0`,
/// `max_results == 0`). `visited_nodes` is set to the kept-truss count —
/// the walk that never happened can't be counted, and the conservative
/// value keeps cost-aware cache admission honest.
TcTreeQueryResult DeriveSubResult(const TcTreeQueryResult& full,
                                  const Itemset& s);

/// Convenience: query, then split every retrieved truss into its theme
/// communities (Def. 3.5).
std::vector<ThemeCommunity> QueryThemeCommunities(
    const TcTree& tree, const Itemset& q, double alpha_q);

}  // namespace tcf

#endif  // TCF_CORE_TC_TREE_QUERY_H_
