#include "core/tc_tree.h"

#include <algorithm>
#include <optional>

#include "core/mptd.h"
#include "net/theme_network.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tcf {

namespace {

/// One BFS frontier entry. Depth and the node's position in its parent's
/// child list are carried along instead of being recomputed per expansion
/// (walking parent links and std::find-ing the sibling slot made the old
/// loop quadratic in tree size).
struct FrontierEntry {
  TcTree::NodeId id;
  uint32_t depth;        // pattern length of `id`
  uint32_t sibling_pos;  // index of `id` in its parent's children
};

/// One produced child of an expansion, ready to be committed.
struct ChildResult {
  ItemId item;
  TrussDecomposition decomposition;
};

/// Everything an expansion task produces for one frontier node. Stats are
/// carried here — not accumulated globally — so the commit loop can fold
/// exactly the expansions that happen *before* the node budget trips,
/// keeping every counter identical to the sequential build's.
struct Expansion {
  std::vector<ChildResult> children;  // sibling order = item-ascending
  uint64_t candidates = 0;
  uint64_t pruned = 0;
  uint64_t mptd_calls = 0;
};

/// Per-worker reusable buffers: the MPTD peeling workspace, the Prop.-5.3
/// overlap buffer, and the induced theme network — the whole per-candidate
/// hot path runs allocation-free once these reach their high-water sizes.
struct BuildWorkspace {
  ThemePeeler peeler;
  std::vector<Edge> overlap;
  ThemeNetwork tn;
  ThemeInductionScratch induction;
};

BuildWorkspace& WorkspaceForThisWorker(std::vector<BuildWorkspace>& all) {
  const size_t idx = ThreadPool::CurrentWorkerIndex();
  TCF_CHECK(idx < all.size());
  return all[idx];
}

}  // namespace

TcTree TcTree::Build(const DatabaseNetwork& net, const TcTreeOptions& options) {
  WallTimer timer;
  TcTree tree;
  tree.nodes_.emplace_back();  // root: pattern ∅, empty decomposition

  ThreadPool pool(options.num_threads);
  std::vector<BuildWorkspace> workspaces(pool.num_threads());

  // --- Layer 1 (Alg. 4 lines 2-5), parallel over items. ---------------
  const std::vector<ItemId> items = net.ActiveItems();
  std::vector<std::optional<TrussDecomposition>> layer1(items.size());
  WallTimer wave_timer;  // layer 1 is wave 0 of the build trace
  ParallelForDynamic(pool, items.size(), [&](size_t i) {
    BuildWorkspace& ws = WorkspaceForThisWorker(workspaces);
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(items[i]));
    if (tn.empty()) return;
    TrussDecomposition d =
        TrussDecomposition::FromThemeNetwork(tn, &ws.peeler);
    if (!d.empty()) layer1[i] = std::move(d);
  });
  tree.stats_.candidates_considered += items.size();
  tree.stats_.mptd_calls += items.size();

  std::vector<FrontierEntry> frontier;  // BFS queue (arena indices)
  for (size_t i = 0; i < items.size(); ++i) {
    if (!layer1[i].has_value()) continue;
    Node n;
    n.item = items[i];
    n.parent = kRoot;
    n.decomposition = std::move(*layer1[i]);
    tree.nodes_.push_back(std::move(n));
    const NodeId id = static_cast<NodeId>(tree.nodes_.size() - 1);
    const uint32_t pos =
        static_cast<uint32_t>(tree.nodes_[kRoot].children.size());
    tree.nodes_[kRoot].children.push_back(id);
    frontier.push_back({id, 1, pos});
  }
  tree.stats_.waves.push_back({/*depth=*/0,
                               static_cast<uint32_t>(items.size()),
                               static_cast<uint64_t>(frontier.size()),
                               wave_timer.Millis()});

  // --- Deeper layers (Alg. 4 lines 6-12), parallel frontier waves. ----
  //
  // Each wave expands a window of the BFS queue in parallel: an
  // expansion only reads nodes committed before its window began (its
  // own node, its parent's child list, and its right-siblings'
  // decompositions — all created when the parent was expanded), so the
  // arena is immutable while tasks run. The commit loop then replays
  // the expansions sequentially in frontier order — which is exactly the
  // order the sequential BFS created nodes in — so arena order, node
  // ids, child lists, stats, and the budget-trip point are all
  // deterministic regardless of thread count *and* of how the queue is
  // partitioned into waves. Waves are capped at a multiple of the pool
  // width: wide enough to self-schedule evenly, narrow enough that a
  // `max_nodes` trip mid-wave discards at most one window of
  // speculative expansions, not an entire layer.
  const size_t max_wave = pool.num_threads() * 32;
  size_t head = 0;
  std::vector<Expansion> wave;
  auto trip_budget = [&] {
    tree.stats_.truncated = true;
    TCF_LOG(Warn) << "TC-Tree node budget (" << options.max_nodes
                  << ") exhausted; deeper themes are not indexed";
  };
  bool budget_exhausted = false;
  while (head < frontier.size() && !budget_exhausted) {
    if (options.max_nodes != 0 && tree.num_nodes() >= options.max_nodes) {
      trip_budget();  // the budget filled exactly at a wave boundary
      break;
    }
    const size_t wave_begin = head;
    const size_t wave_end = std::min(frontier.size(), head + max_wave);
    wave.clear();
    wave.resize(wave_end - wave_begin);
    wave_timer.Reset();
    const size_t nodes_before_wave = tree.nodes_.size();

    ParallelForDynamic(pool, wave_end - wave_begin, [&](size_t w) {
      const FrontierEntry entry = frontier[wave_begin + w];
      if (options.max_depth != 0 && entry.depth >= options.max_depth) {
        return;  // depth-capped: no expansion, no stats (as sequential)
      }
      BuildWorkspace& ws = WorkspaceForThisWorker(workspaces);
      Expansion& ex = wave[w];
      const NodeId f = entry.id;
      const Node& node_f = tree.nodes_[f];
      const std::vector<NodeId>& siblings =
          tree.nodes_[node_f.parent].children;
      const Itemset pattern_f = tree.PatternOf(f);

      // Siblings b of f with s_f ≺ s_b (children lists are
      // item-ascending, so they follow f in the parent's child list).
      for (size_t s = entry.sibling_pos + 1; s < siblings.size(); ++s) {
        const NodeId b = siblings[s];
        ++ex.candidates;

        // Prop. 5.3: C*_{p_c}(0) ⊆ C*_{p_f}(0) ∩ C*_{p_b}(0).
        IntersectEdgeSetsInto(node_f.decomposition.sorted_edges(),
                              tree.nodes_[b].decomposition.sorted_edges(),
                              &ws.overlap);
        if (ws.overlap.empty()) {
          ++ex.pruned;
          continue;
        }
        const Itemset pc = pattern_f.Union(tree.nodes_[b].item);
        InduceThemeNetworkFromEdgesInto(net, pc, ws.overlap, &ws.tn,
                                        &ws.induction);
        if (ws.tn.empty()) {
          ++ex.pruned;
          continue;
        }
        ++ex.mptd_calls;
        TrussDecomposition d =
            TrussDecomposition::FromThemeNetwork(ws.tn, &ws.peeler);
        if (d.empty()) continue;  // Prop. 5.2 prunes the whole subtree
        ex.children.push_back({tree.nodes_[b].item, std::move(d)});
      }
    });

    // Ordered commit: per frontier entry, per parent, item-ascending.
    for (size_t w = 0; w < wave.size(); ++w) {
      if (options.max_nodes != 0 && tree.num_nodes() >= options.max_nodes) {
        trip_budget();
        budget_exhausted = true;
        break;
      }
      const FrontierEntry entry = frontier[wave_begin + w];
      if (options.max_depth != 0 && entry.depth >= options.max_depth) {
        continue;
      }
      Expansion& ex = wave[w];
      tree.stats_.candidates_considered += ex.candidates;
      tree.stats_.pruned_by_intersection += ex.pruned;
      tree.stats_.mptd_calls += ex.mptd_calls;
      for (ChildResult& child : ex.children) {
        Node n;
        n.item = child.item;
        n.parent = entry.id;
        n.decomposition = std::move(child.decomposition);
        tree.nodes_.push_back(std::move(n));
        const NodeId id = static_cast<NodeId>(tree.nodes_.size() - 1);
        const uint32_t pos =
            static_cast<uint32_t>(tree.nodes_[entry.id].children.size());
        tree.nodes_[entry.id].children.push_back(id);
        frontier.push_back({id, entry.depth + 1, pos});
      }
    }
    tree.stats_.waves.push_back(
        {frontier[wave_begin].depth,
         static_cast<uint32_t>(wave_end - wave_begin),
         static_cast<uint64_t>(tree.nodes_.size() - nodes_before_wave),
         wave_timer.Millis()});
    head = wave_end;
  }

  tree.stats_.build_seconds = timer.Seconds();
  if (options.metrics != nullptr) {
    MetricsRegistry& m = *options.metrics;
    Histogram& wave_ms = m.GetHistogram(
        "tcf_build_wave_ms",
        "Wall milliseconds per parallel TC-Tree expansion wave");
    Histogram& wave_width = m.GetHistogram(
        "tcf_build_wave_frontier",
        "Frontier nodes expanded per TC-Tree build wave");
    for (const TcTreeWaveStats& w : tree.stats_.waves) {
      wave_ms.Record(w.wall_ms);
      wave_width.Record(w.frontier_width);
    }
    m.GetCounter("tcf_build_nodes_total",
                 "TC-Tree nodes committed by builds")
        .Increment(tree.num_nodes());
    m.GetCounter("tcf_build_mptd_calls_total",
                 "Truss decompositions computed by builds")
        .Increment(tree.stats_.mptd_calls);
    m.GetCounter("tcf_build_pruned_intersections_total",
                 "Build candidates cut by the Prop-5.3 overlap prune")
        .Increment(tree.stats_.pruned_by_intersection);
    m.GetGauge("tcf_build_seconds",
               "Wall seconds of the most recent TC-Tree build")
        .Set(tree.stats_.build_seconds);
  }
  return tree;
}

TcTree TcTree::FromNodes(std::deque<Node> nodes) {
  TCF_CHECK_MSG(!nodes.empty(), "node arena must contain at least the root");
  TCF_CHECK_MSG(nodes[kRoot].parent == kNoParent, "node 0 must be the root");
  TcTree tree;
  tree.nodes_ = std::move(nodes);
  for (size_t i = 1; i < tree.nodes_.size(); ++i) {
    const Node& n = tree.nodes_[i];
    TCF_CHECK_MSG(n.parent < tree.nodes_.size() && n.parent != i,
                  "bad parent link");
    const auto& siblings = tree.nodes_[n.parent].children;
    TCF_CHECK_MSG(std::find(siblings.begin(), siblings.end(),
                            static_cast<NodeId>(i)) != siblings.end(),
                  "node missing from parent's child list");
  }
  return tree;
}

Itemset TcTree::PatternOf(NodeId id) const {
  std::vector<ItemId> items;
  for (NodeId x = id; x != kRoot; x = nodes_[x].parent) {
    items.push_back(nodes_[x].item);
  }
  // The trail ascends root->leaf, so walking up gives descending items;
  // Itemset's constructor re-sorts.
  return Itemset(std::move(items));
}

CohesionValue TcTree::MaxAlphaOverNodes() const {
  CohesionValue best = 0;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    best = std::max(best, nodes_[i].decomposition.max_alpha());
  }
  return best;
}

size_t TcTree::MaxDepth() const {
  size_t best = 0;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    size_t d = 0;
    for (NodeId x = static_cast<NodeId>(i); x != kRoot; x = nodes_[x].parent) {
      ++d;
    }
    best = std::max(best, d);
  }
  return best;
}

uint64_t TcTree::TotalIndexedEdges() const {
  uint64_t total = 0;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    total += nodes_[i].decomposition.num_edges();
  }
  return total;
}

size_t TcTree::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Node& n : nodes_) {
    bytes += sizeof(Node);
    bytes += n.children.capacity() * sizeof(NodeId);
    bytes += n.decomposition.MemoryBytes();
  }
  return bytes;
}

}  // namespace tcf
