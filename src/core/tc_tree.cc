#include "core/tc_tree.h"

#include <algorithm>
#include <optional>

#include "core/mptd.h"
#include "net/theme_network.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tcf {

TcTree TcTree::Build(const DatabaseNetwork& net, const TcTreeOptions& options) {
  WallTimer timer;
  TcTree tree;
  tree.nodes_.emplace_back();  // root: pattern ∅, empty decomposition

  // --- Layer 1 (Alg. 4 lines 2-5), parallel over items. ---------------
  const std::vector<ItemId> items = net.ActiveItems();
  std::vector<std::optional<TrussDecomposition>> layer1(items.size());
  {
    ThreadPool pool(options.num_threads);
    ParallelFor(pool, items.size(), [&](size_t i) {
      ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(items[i]));
      if (tn.empty()) return;
      TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
      if (!d.empty()) layer1[i] = std::move(d);
    });
  }
  tree.stats_.candidates_considered += items.size();
  tree.stats_.mptd_calls += items.size();

  std::vector<NodeId> frontier;  // BFS queue (indices into the arena)
  for (size_t i = 0; i < items.size(); ++i) {
    if (!layer1[i].has_value()) continue;
    Node n;
    n.item = items[i];
    n.parent = kRoot;
    n.decomposition = std::move(*layer1[i]);
    tree.nodes_.push_back(std::move(n));
    const NodeId id = static_cast<NodeId>(tree.nodes_.size() - 1);
    tree.nodes_[kRoot].children.push_back(id);
    frontier.push_back(id);
  }

  // --- Deeper layers, breadth-first (Alg. 4 lines 6-12). --------------
  size_t head = 0;
  while (head < frontier.size()) {
    if (options.max_nodes != 0 && tree.num_nodes() >= options.max_nodes) {
      tree.stats_.truncated = true;
      TCF_LOG(Warn) << "TC-Tree node budget (" << options.max_nodes
                    << ") exhausted; deeper themes are not indexed";
      break;
    }
    const NodeId f = frontier[head++];
    const NodeId parent = tree.nodes_[f].parent;
    const size_t depth_f = [&] {
      size_t d = 0;
      for (NodeId x = f; x != kRoot; x = tree.nodes_[x].parent) ++d;
      return d;
    }();
    if (options.max_depth != 0 && depth_f >= options.max_depth) continue;

    // Siblings b of f with s_f ≺ s_b (children lists are item-ascending,
    // so they follow f in the parent's child list).
    const std::vector<NodeId>& siblings = tree.nodes_[parent].children;
    auto it = std::find(siblings.begin(), siblings.end(), f);
    TCF_CHECK(it != siblings.end());
    for (auto bit = it + 1; bit != siblings.end(); ++bit) {
      const NodeId b = *bit;
      ++tree.stats_.candidates_considered;

      // Prop. 5.3: C*_{p_c}(0) ⊆ C*_{p_f}(0) ∩ C*_{p_b}(0).
      std::vector<Edge> overlap =
          IntersectEdgeSets(tree.nodes_[f].decomposition.sorted_edges(),
                            tree.nodes_[b].decomposition.sorted_edges());
      if (overlap.empty()) {
        ++tree.stats_.pruned_by_intersection;
        continue;
      }
      const Itemset pc = tree.PatternOf(f).Union(tree.nodes_[b].item);
      ThemeNetwork tn = InduceThemeNetworkFromEdges(net, pc, overlap);
      if (tn.empty()) {
        ++tree.stats_.pruned_by_intersection;
        continue;
      }
      ++tree.stats_.mptd_calls;
      TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
      if (d.empty()) continue;  // Prop. 5.2 prunes the whole subtree

      Node n;
      n.item = tree.nodes_[b].item;
      n.parent = f;
      n.decomposition = std::move(d);
      tree.nodes_.push_back(std::move(n));
      const NodeId id = static_cast<NodeId>(tree.nodes_.size() - 1);
      tree.nodes_[f].children.push_back(id);
      frontier.push_back(id);
    }
  }

  tree.stats_.build_seconds = timer.Seconds();
  return tree;
}

TcTree TcTree::FromNodes(std::deque<Node> nodes) {
  TCF_CHECK_MSG(!nodes.empty(), "node arena must contain at least the root");
  TCF_CHECK_MSG(nodes[kRoot].parent == kNoParent, "node 0 must be the root");
  TcTree tree;
  tree.nodes_ = std::move(nodes);
  for (size_t i = 1; i < tree.nodes_.size(); ++i) {
    const Node& n = tree.nodes_[i];
    TCF_CHECK_MSG(n.parent < tree.nodes_.size() && n.parent != i,
                  "bad parent link");
    const auto& siblings = tree.nodes_[n.parent].children;
    TCF_CHECK_MSG(std::find(siblings.begin(), siblings.end(),
                            static_cast<NodeId>(i)) != siblings.end(),
                  "node missing from parent's child list");
  }
  return tree;
}

Itemset TcTree::PatternOf(NodeId id) const {
  std::vector<ItemId> items;
  for (NodeId x = id; x != kRoot; x = nodes_[x].parent) {
    items.push_back(nodes_[x].item);
  }
  // The trail ascends root->leaf, so walking up gives descending items;
  // Itemset's constructor re-sorts.
  return Itemset(std::move(items));
}

CohesionValue TcTree::MaxAlphaOverNodes() const {
  CohesionValue best = 0;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    best = std::max(best, nodes_[i].decomposition.max_alpha());
  }
  return best;
}

size_t TcTree::MaxDepth() const {
  size_t best = 0;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    size_t d = 0;
    for (NodeId x = static_cast<NodeId>(i); x != kRoot; x = nodes_[x].parent) {
      ++d;
    }
    best = std::max(best, d);
  }
  return best;
}

uint64_t TcTree::TotalIndexedEdges() const {
  uint64_t total = 0;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    total += nodes_[i].decomposition.num_edges();
  }
  return total;
}

size_t TcTree::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Node& n : nodes_) {
    bytes += sizeof(Node);
    bytes += n.children.capacity() * sizeof(NodeId);
    bytes += n.decomposition.MemoryBytes();
  }
  return bytes;
}

}  // namespace tcf
