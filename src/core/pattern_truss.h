#ifndef TCF_CORE_PATTERN_TRUSS_H_
#define TCF_CORE_PATTERN_TRUSS_H_

#include <string>
#include <vector>

#include "core/cohesion.h"
#include "graph/graph.h"
#include "tx/itemset.h"

namespace tcf {

/// \brief A maximal pattern truss `C*_p(α)` (Def. 3.4): the union of all
/// pattern trusses of theme network `G_p` at threshold α.
///
/// Edge-induced: `vertices` are exactly the endpoints of `edges` (sorted
/// ascending), `frequencies` is parallel to `vertices`, and
/// `edge_cohesions` (parallel to `edges`) holds each edge's final cohesion
/// *within the truss* — every value is strictly greater than the α the
/// truss was mined at.
struct PatternTruss {
  Itemset pattern;
  std::vector<Edge> edges;                    // canonical order, sorted
  std::vector<VertexId> vertices;             // sorted
  std::vector<double> frequencies;            // parallel to vertices
  std::vector<CohesionValue> edge_cohesions;  // parallel to edges

  bool empty() const { return edges.empty(); }
  size_t num_edges() const { return edges.size(); }
  size_t num_vertices() const { return vertices.size(); }

  /// Frequency of `v`, or 0 if `v` is not in the truss.
  double FrequencyOf(VertexId v) const;

  /// Membership test on the sorted edge list. O(log m).
  bool ContainsEdge(const Edge& e) const;

  /// True if this truss's edge set is a subset of `other`'s.
  bool IsSubgraphOf(const PatternTruss& other) const;

  /// Minimum edge cohesion β (Thm. 6.1); 0 for an empty truss.
  CohesionValue MinEdgeCohesion() const;

  /// Debug rendering "pattern={..} |V|=.. |E|=..".
  std::string ToString() const;
};

/// Sorted-merge intersection of two canonical edge lists (both sorted).
/// The backbone of TCFI's and TC-Tree's Prop.-5.3 pruning.
std::vector<Edge> IntersectEdgeSets(const std::vector<Edge>& a,
                                    const std::vector<Edge>& b);

/// Same, writing into `*out` (cleared first) so a hot caller reuses one
/// high-water-sized buffer instead of allocating per intersection.
void IntersectEdgeSetsInto(const std::vector<Edge>& a,
                           const std::vector<Edge>& b,
                           std::vector<Edge>* out);

/// Rebuilds the sorted vertex/frequency arrays of a truss from its edges,
/// looking frequencies up in (vertex, frequency) pairs of a superset
/// (e.g. the theme network it was peeled from).
void FillVerticesFromEdges(const std::vector<VertexId>& superset_vertices,
                           const std::vector<double>& superset_frequencies,
                           PatternTruss* truss);

/// Pointer/count flavor of the same, for callers whose superset arrays
/// live in a mapped arena (core/tcfi_format.h) rather than vectors.
void FillVerticesFromEdges(const VertexId* superset_vertices,
                           const double* superset_frequencies,
                           size_t superset_size, PatternTruss* truss);

}  // namespace tcf

#endif  // TCF_CORE_PATTERN_TRUSS_H_
