#ifndef TCF_CORE_MPTD_H_
#define TCF_CORE_MPTD_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/cohesion.h"
#include "core/pattern_truss.h"
#include "net/theme_network.h"

namespace tcf {

/// \brief The peeling engine behind MPTD (Alg. 1) and the maximal-
/// pattern-truss decomposition (§6.1).
///
/// On construction (or `Reset`) the theme network is remapped to dense
/// local ids, adjacency is built sorted in one CSR array, and every
/// edge's initial cohesion `eco_ij(G_p) = Σ_△ min(f_i, f_j, f_k)` is
/// computed by sorted-merge triangle enumeration (Alg. 1 lines 2-8), in
/// O(Σ d²(v)).
///
/// `PeelToThreshold(α)` then removes unqualified edges (eco ≤ α) with the
/// cascading queue of Alg. 1 lines 9-18. Cohesions are maintained
/// incrementally in fixed point (see cohesion.h), so repeated calls with
/// ascending thresholds — the decomposition loop — continue from the
/// current state instead of recomputing.
///
/// A peeler is reusable: `Reset` re-targets it at another theme network
/// while keeping every internal buffer's capacity (high-water sized), so
/// a loop that decomposes millions of candidate networks — the TC-Tree
/// build — performs no per-candidate allocations once the buffers have
/// grown to the workload's largest network. The global→local vertex
/// mapping is a stamped dense array (one pass over vertices + one pass
/// over edges) instead of a per-endpoint binary search.
class ThemePeeler {
 public:
  /// An empty peeler; call Reset before anything else.
  ThemePeeler() = default;

  explicit ThemePeeler(const ThemeNetwork& tn) { Reset(tn); }

  /// Re-targets the peeler at `tn` (which must outlive it), reusing all
  /// internal buffers. Equivalent to constructing a fresh peeler.
  void Reset(const ThemeNetwork& tn);

  size_t num_edges() const { return local_edges_.size(); }
  size_t num_alive() const { return num_alive_; }

  /// Removes every edge with cohesion ≤ `alpha_q`, cascading. Local ids
  /// of removed edges are appended to `*removed` when non-null. Calls
  /// must use non-decreasing thresholds.
  void PeelToThreshold(CohesionValue alpha_q,
                       std::vector<EdgeId>* removed = nullptr);

  /// Minimum cohesion among alive edges (β of Thm. 6.1), or
  /// `kNoAliveEdges` when none are left. First call builds a lazy
  /// min-heap; subsequent cohesion updates keep it maintained.
  CohesionValue MinAliveCohesion();

  static constexpr CohesionValue kNoAliveEdges =
      std::numeric_limits<CohesionValue>::max();

  /// Materializes the surviving subgraph as a `PatternTruss` in global
  /// ids, including per-edge final cohesions.
  PatternTruss ExtractTruss() const;

  /// Global endpoints of local edge `e`.
  Edge GlobalEdge(EdgeId e) const;

  bool alive(EdgeId e) const { return alive_[e] != 0; }
  CohesionValue cohesion(EdgeId e) const { return cohesion_[e]; }

  /// Number of triangle visits performed since the last Reset
  /// (instrumentation for the §7 pruning-effectiveness counters).
  uint64_t triangle_visits() const { return triangle_visits_; }

 private:
  struct LocalNeighbor {
    uint32_t vertex;
    uint32_t edge;
  };
  struct LocalEdge {
    uint32_t u;
    uint32_t v;
  };

  void ComputeInitialCohesions();

  // Enumerates alive triangles of alive edge `e`:
  // fn(w, wing_uw, wing_vw) for every common neighbour w.
  template <typename Fn>
  void ForEachAliveTriangle(EdgeId e, Fn&& fn) const;

  void HeapPush(CohesionValue c, EdgeId e);

  const ThemeNetwork* tn_ = nullptr;
  std::vector<CohesionValue> qfreq_;    // per local vertex
  std::vector<LocalEdge> local_edges_;  // canonical local pairs

  // Stamped dense global→local map: local_of_[v] is valid iff
  // stamp_[v] == stamp_. Sized to the high-water max global id + 1, so
  // Reset never clears it — bumping the stamp invalidates everything.
  std::vector<uint32_t> local_of_;
  std::vector<uint32_t> stamp_;
  uint32_t stamp_value_ = 0;

  // CSR adjacency, sorted by neighbour vertex within each range.
  std::vector<uint32_t> adj_offsets_;      // n + 1
  std::vector<LocalNeighbor> adj_;         // 2m entries
  std::vector<uint32_t> adj_cursor_;       // build scratch

  std::vector<CohesionValue> cohesion_;    // per local edge
  std::vector<uint8_t> alive_;
  size_t num_alive_ = 0;
  uint64_t triangle_visits_ = 0;

  // PeelToThreshold scratch, reused across calls and Resets.
  std::vector<EdgeId> peel_queue_;
  std::vector<uint8_t> in_queue_;

  // Lazy min-heap of (cohesion, edge); entries go stale on update.
  // A plain vector + std::push/pop_heap so Reset can clear it without
  // releasing capacity.
  using HeapEntry = std::pair<CohesionValue, EdgeId>;
  std::vector<HeapEntry> min_heap_;
  bool min_tracking_ = false;
};

/// Maximal Pattern Truss Detector (Alg. 1): `C*_p(α)` of the given theme
/// network. An empty truss is returned as an empty `PatternTruss` whose
/// pattern is still set.
PatternTruss Mptd(const ThemeNetwork& tn, double alpha);

/// Same, with the threshold already quantized.
PatternTruss MptdQ(const ThemeNetwork& tn, CohesionValue alpha_q);

}  // namespace tcf

#endif  // TCF_CORE_MPTD_H_
