#ifndef TCF_CORE_MPTD_H_
#define TCF_CORE_MPTD_H_

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "core/cohesion.h"
#include "core/pattern_truss.h"
#include "net/theme_network.h"

namespace tcf {

/// \brief The peeling engine behind MPTD (Alg. 1) and the maximal-
/// pattern-truss decomposition (§6.1).
///
/// On construction the theme network is remapped to dense local ids,
/// adjacency is built sorted, and every edge's initial cohesion
/// `eco_ij(G_p) = Σ_△ min(f_i, f_j, f_k)` is computed by sorted-merge
/// triangle enumeration (Alg. 1 lines 2-8), in O(Σ d²(v)).
///
/// `PeelToThreshold(α)` then removes unqualified edges (eco ≤ α) with the
/// cascading queue of Alg. 1 lines 9-18. Cohesions are maintained
/// incrementally in fixed point (see cohesion.h), so repeated calls with
/// ascending thresholds — the decomposition loop — continue from the
/// current state instead of recomputing.
class ThemePeeler {
 public:
  explicit ThemePeeler(const ThemeNetwork& tn);

  size_t num_edges() const { return local_edges_.size(); }
  size_t num_alive() const { return num_alive_; }

  /// Removes every edge with cohesion ≤ `alpha_q`, cascading. Local ids
  /// of removed edges are appended to `*removed` when non-null. Calls
  /// must use non-decreasing thresholds.
  void PeelToThreshold(CohesionValue alpha_q,
                       std::vector<EdgeId>* removed = nullptr);

  /// Minimum cohesion among alive edges (β of Thm. 6.1), or
  /// `kNoAliveEdges` when none are left. First call builds a lazy
  /// min-heap; subsequent cohesion updates keep it maintained.
  CohesionValue MinAliveCohesion();

  static constexpr CohesionValue kNoAliveEdges =
      std::numeric_limits<CohesionValue>::max();

  /// Materializes the surviving subgraph as a `PatternTruss` in global
  /// ids, including per-edge final cohesions.
  PatternTruss ExtractTruss() const;

  /// Global endpoints of local edge `e`.
  Edge GlobalEdge(EdgeId e) const;

  bool alive(EdgeId e) const { return alive_[e] != 0; }
  CohesionValue cohesion(EdgeId e) const { return cohesion_[e]; }

  /// Number of triangle visits performed so far (instrumentation for the
  /// §7 pruning-effectiveness counters).
  uint64_t triangle_visits() const { return triangle_visits_; }

 private:
  struct LocalNeighbor {
    uint32_t vertex;
    uint32_t edge;
  };
  struct LocalEdge {
    uint32_t u;
    uint32_t v;
  };

  void ComputeInitialCohesions();

  // Enumerates alive triangles of alive edge `e`:
  // fn(w, wing_uw, wing_vw) for every common neighbour w.
  template <typename Fn>
  void ForEachAliveTriangle(EdgeId e, Fn&& fn) const;

  const ThemeNetwork* tn_;
  std::vector<CohesionValue> qfreq_;             // per local vertex
  std::vector<LocalEdge> local_edges_;           // canonical local pairs
  std::vector<std::vector<LocalNeighbor>> adj_;  // sorted by vertex
  std::vector<CohesionValue> cohesion_;          // per local edge
  std::vector<uint8_t> alive_;
  size_t num_alive_ = 0;
  uint64_t triangle_visits_ = 0;

  // Lazy min-heap of (cohesion, edge); entries go stale on update.
  using HeapEntry = std::pair<CohesionValue, EdgeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      min_heap_;
  bool min_tracking_ = false;
};

/// Maximal Pattern Truss Detector (Alg. 1): `C*_p(α)` of the given theme
/// network. An empty truss is returned as an empty `PatternTruss` whose
/// pattern is still set.
PatternTruss Mptd(const ThemeNetwork& tn, double alpha);

/// Same, with the threshold already quantized.
PatternTruss MptdQ(const ThemeNetwork& tn, CohesionValue alpha_q);

}  // namespace tcf

#endif  // TCF_CORE_MPTD_H_
