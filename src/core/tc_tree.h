#ifndef TCF_CORE_TC_TREE_H_
#define TCF_CORE_TC_TREE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/decomposition.h"
#include "net/database_network.h"
#include "obs/metrics_registry.h"
#include "tx/itemset.h"

namespace tcf {

/// Build-time configuration for the TC-Tree.
struct TcTreeOptions {
  /// Worker threads for the build. The paper parallelizes only the first
  /// layer (Alg. 4 lines 2-5, 4 OpenMP threads); here *every* layer
  /// expands in parallel — frontier nodes fan out over a self-scheduling
  /// pool, and results commit through a deterministic ordered merge, so
  /// the built tree (arena order, node ids, serialized bytes) is
  /// identical for any thread count.
  size_t num_threads = 1;
  /// Optional cap on tree depth = pattern length (0 = unlimited).
  size_t max_depth = 0;
  /// Optional node budget (0 = unlimited). Dense networks can hold
  /// combinatorially many themes (the paper indexes 152M nodes on
  /// AMINER); when the budget is hit, expansion stops breadth-first and
  /// `TcTreeBuildStats::truncated` is set — already-built nodes stay
  /// exact, only deeper/later patterns are missing.
  size_t max_nodes = 0;
  /// Optional registry for build-side observability: per-wave timing
  /// and frontier-width histograms plus lifetime counters (nodes,
  /// MPTD calls, prunes) are recorded under `tcf_build_*` names. Must
  /// outlive the Build call; null disables exporting (the per-wave
  /// numbers still land in TcTreeBuildStats::waves either way).
  MetricsRegistry* metrics = nullptr;
};

/// One parallel expansion wave of the build (a window of the BFS
/// frontier). `tcf index --verbose` prints these; wide-then-narrowing
/// frontiers with per-wave millisecond costs are the build's shape.
struct TcTreeWaveStats {
  uint32_t depth = 0;           // pattern length of the wave's first entry
  uint32_t frontier_width = 0;  // nodes expanded in this wave
  uint64_t nodes_added = 0;     // children committed from this wave
  double wall_ms = 0;           // expand + commit wall time
};

/// Counters recorded while building (for Table 3 and the ablations).
struct TcTreeBuildStats {
  uint64_t candidates_considered = 0;   // pattern unions attempted
  uint64_t pruned_by_intersection = 0;  // empty Prop.-5.3 overlap
  uint64_t mptd_calls = 0;              // decompositions computed
  double build_seconds = 0.0;
  bool truncated = false;               // node budget exhausted
  /// Per-wave expansion trace (layer 1 is wave 0). Bounded by the wave
  /// count — frontier/max_wave windows — not the node count.
  std::vector<TcTreeWaveStats> waves;
};

/// \brief The Theme-Community Tree (§6.2): a set-enumeration tree over
/// the item set `S` where the node for pattern `p` stores the
/// decomposition `L_p` of `C*_p(0)`, and nodes with empty trusses (and,
/// by Prop. 5.2, their entire subtrees) are omitted.
///
/// Nodes live in one arena (`std::deque`, stable addresses) with integer
/// links; a node stores only its own item — its full pattern is the item
/// trail from the root (Rymon's SE-tree encoding), materialized on demand
/// by `PatternOf`. Children are kept in ascending item (`≺`) order.
class TcTree {
 public:
  using NodeId = uint32_t;
  static constexpr NodeId kRoot = 0;
  static constexpr NodeId kNoParent = static_cast<NodeId>(-1);

  struct Node {
    ItemId item = 0;  // item appended by this node (meaningless at root)
    NodeId parent = kNoParent;
    std::vector<NodeId> children;  // ascending by item
    TrussDecomposition decomposition;  // empty at root
  };

  /// Builds the tree over `net` (Alg. 4): layer 1 decomposes every
  /// single-item theme network (in parallel); node `c = f ∪ {s_b}` is
  /// computed inside `C*_{p_f}(0) ∩ C*_{p_b}(0)` (Prop. 5.3) and pruned —
  /// subtree included — when empty (Prop. 5.2). Deeper layers expand in
  /// parallel too: each layer's frontier fans out over the worker pool
  /// (every frontier node expands against its right-siblings
  /// independently, with per-worker reusable MPTD workspaces), and the
  /// results are committed sequentially in frontier order — per parent,
  /// item-ascending — so node ids, build stats, and `max_nodes` /
  /// `max_depth` budget semantics are byte-for-byte identical to the
  /// single-threaded build for any `num_threads`.
  static TcTree Build(const DatabaseNetwork& net,
                      const TcTreeOptions& options = {});

  /// Reassembles a tree from an explicit node arena (index persistence;
  /// see tc_tree_io.h). `nodes[0]` must be the root; parent/children
  /// links are validated.
  static TcTree FromNodes(std::deque<Node> nodes);

  const Node& node(NodeId id) const { return nodes_[id]; }

  /// Surrenders the node arena (root included, BFS commit order —
  /// parents precede children). The tree is left empty; build stats are
  /// discarded. This is the raw material for core/partition.h, which
  /// re-links subsequences of the arena into per-shard trees.
  std::deque<Node> TakeNodes() && { return std::move(nodes_); }

  /// Number of pattern-bearing nodes (excludes the root), i.e. the count
  /// of non-empty maximal pattern trusses — Table 3's "#Nodes".
  size_t num_nodes() const { return nodes_.size() - 1; }

  /// The pattern of node `id` (item trail from the root).
  Itemset PatternOf(NodeId id) const;

  /// Largest decomposition threshold across all nodes: the global upper
  /// bound of nontrivial query α (QBA sweeps stop here).
  CohesionValue MaxAlphaOverNodes() const;

  /// Depth (pattern length) of the deepest node.
  size_t MaxDepth() const;

  /// Total edges stored across all decompositions.
  uint64_t TotalIndexedEdges() const;

  /// Approximate heap footprint of the index.
  size_t MemoryBytes() const;

  const TcTreeBuildStats& build_stats() const { return stats_; }

 private:
  friend class TcTreeBuilder;
  std::deque<Node> nodes_;
  TcTreeBuildStats stats_;
};

}  // namespace tcf

#endif  // TCF_CORE_TC_TREE_H_
