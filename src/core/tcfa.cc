#include "core/tcfa.h"

#include "core/apriori.h"
#include "core/mptd.h"

namespace tcf {

MiningResult RunTcfa(const DatabaseNetwork& net, const TcfaOptions& options) {
  MiningResult result;
  const CohesionValue alpha_q = QuantizeAlpha(options.alpha);

  // Level 1: every active single item (Alg. 3 line 1).
  std::vector<Itemset> qualified;
  for (ItemId item : net.ActiveItems()) {
    const Itemset p = Itemset::Single(item);
    ++result.counters.candidates_generated;
    // One MPTD evaluation per candidate, counted even when the theme
    // network is trivially empty (so TCFA/TCFI counters are comparable).
    ++result.counters.mptd_calls;
    ThemeNetwork tn = InduceThemeNetwork(net, p);
    if (tn.empty()) continue;
    ThemePeeler peeler(tn);
    peeler.PeelToThreshold(alpha_q);
    result.counters.triangle_visits += peeler.triangle_visits();
    if (peeler.num_alive() > 0) {
      result.trusses.push_back(peeler.ExtractTruss());
      qualified.push_back(p);
      ++result.counters.qualified_patterns;
    }
  }

  // Levels k >= 2 (Alg. 3 lines 2-12).
  size_t k = 2;
  while (!qualified.empty() &&
         (options.max_pattern_length == 0 ||
          k <= options.max_pattern_length)) {
    auto candidates = GenerateAprioriCandidates(qualified);
    result.counters.candidates_generated += candidates.size();
    std::vector<Itemset> next_qualified;
    for (const CandidatePattern& cand : candidates) {
      ++result.counters.mptd_calls;
      // TCFA induces G_pk from the full network G (Alg. 3 line 6).
      ThemeNetwork tn = InduceThemeNetwork(net, cand.pattern);
      if (tn.empty()) continue;
      ThemePeeler peeler(tn);
      peeler.PeelToThreshold(alpha_q);
      result.counters.triangle_visits += peeler.triangle_visits();
      if (peeler.num_alive() > 0) {
        result.trusses.push_back(peeler.ExtractTruss());
        next_qualified.push_back(cand.pattern);
        ++result.counters.qualified_patterns;
      }
    }
    qualified = std::move(next_qualified);
    ++k;
  }
  result.Canonicalize();
  return result;
}

}  // namespace tcf
