#ifndef TCF_CORE_UNION_BASELINE_H_
#define TCF_CORE_UNION_BASELINE_H_

#include "core/mining_result.h"
#include "net/database_network.h"

namespace tcf {

/// Options for the attribute-union strawman.
struct UnionBaselineOptions {
  /// k of the k-truss required on each pattern's induced subgraph
  /// (k = 3: every edge in a triangle). Plays the role α plays for
  /// pattern trusses, via the α = k−3, f ≡ 1 correspondence.
  uint32_t k = 3;
  /// Optional cap on pattern length (0 = unlimited).
  size_t max_pattern_length = 0;
};

/// \brief The baseline the paper argues *against* (§1/§2): collapse each
/// vertex database into one attribute set (the union of its
/// transactions), then mine communities on the resulting vertex
/// attributed network — a vertex "contains" pattern p iff p ⊆ attr(v),
/// and a community is a k-truss of the subgraph induced by containing
/// vertices.
///
/// Collapsing discards the two signals theme communities are built on:
///  * item co-occurrence — items from *different* transactions merge, so
///    patterns nobody ever bought together look present; and
///  * pattern frequency — a once-in-a-thousand-transactions pattern
///    counts as much as an everyday one.
/// The tests and `bench_ablation` quantify both failure modes against
/// TCFI; the returned trusses carry frequency 1 for every vertex (the
/// baseline has no notion of frequency).
MiningResult RunUnionBaseline(const DatabaseNetwork& net,
                              const UnionBaselineOptions& options);

}  // namespace tcf

#endif  // TCF_CORE_UNION_BASELINE_H_
