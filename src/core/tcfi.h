#ifndef TCF_CORE_TCFI_H_
#define TCF_CORE_TCFI_H_

#include "core/mining_result.h"
#include "net/database_network.h"

namespace tcf {

/// Options for Theme Community Finder Intersection.
struct TcfiOptions {
  /// Minimum cohesion threshold α ≥ 0.
  double alpha = 0.0;
  /// Optional cap on pattern length (0 = unlimited).
  size_t max_pattern_length = 0;
  /// Worker threads. Candidates within one level are independent (each
  /// touches only its two parents' trusses and the network), so levels
  /// fan out across a pool; results are collected in candidate order, so
  /// output is identical to the sequential run. 1 = sequential (the
  /// paper's setting; its parallelism note concerns TC-Tree layer 1).
  size_t num_threads = 1;
};

/// \brief TCFI (§5.3): TCFA plus the graph-intersection pruning of
/// Prop. 5.3 — the paper's headline miner.
///
/// For a candidate `p^k = p^{k−1} ∪ q^{k−1}`, `C*_{p^k}(α) ⊆
/// C*_{p^{k−1}}(α) ∩ C*_{q^{k−1}}(α)`, so (i) an empty intersection
/// prunes the candidate with no MPTD call, and (ii) a non-empty one lets
/// MPTD run on the tiny intersection subgraph instead of a network-wide
/// theme network. Results are identical to TCFA (both exact); only the
/// work differs.
MiningResult RunTcfi(const DatabaseNetwork& net, const TcfiOptions& options);

}  // namespace tcf

#endif  // TCF_CORE_TCFI_H_
