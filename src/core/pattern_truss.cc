#include "core/pattern_truss.h"

#include <algorithm>

#include "util/string_util.h"

namespace tcf {

double PatternTruss::FrequencyOf(VertexId v) const {
  auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  if (it == vertices.end() || *it != v) return 0.0;
  return frequencies[static_cast<size_t>(it - vertices.begin())];
}

bool PatternTruss::ContainsEdge(const Edge& e) const {
  return std::binary_search(edges.begin(), edges.end(), e);
}

bool PatternTruss::IsSubgraphOf(const PatternTruss& other) const {
  return std::includes(other.edges.begin(), other.edges.end(), edges.begin(),
                       edges.end());
}

CohesionValue PatternTruss::MinEdgeCohesion() const {
  if (edge_cohesions.empty()) return 0;
  return *std::min_element(edge_cohesions.begin(), edge_cohesions.end());
}

std::string PatternTruss::ToString() const {
  return StrFormat("truss{pattern=%s, |V|=%zu, |E|=%zu}",
                   pattern.ToString().c_str(), vertices.size(),
                   edges.size());
}

std::vector<Edge> IntersectEdgeSets(const std::vector<Edge>& a,
                                    const std::vector<Edge>& b) {
  std::vector<Edge> out;
  IntersectEdgeSetsInto(a, b, &out);
  return out;
}

void IntersectEdgeSetsInto(const std::vector<Edge>& a,
                           const std::vector<Edge>& b,
                           std::vector<Edge>* out) {
  out->clear();
  out->reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(*out));
}

void FillVerticesFromEdges(const std::vector<VertexId>& superset_vertices,
                           const std::vector<double>& superset_frequencies,
                           PatternTruss* truss) {
  FillVerticesFromEdges(superset_vertices.data(), superset_frequencies.data(),
                        superset_vertices.size(), truss);
}

void FillVerticesFromEdges(const VertexId* superset_vertices,
                           const double* superset_frequencies,
                           size_t superset_size, PatternTruss* truss) {
  truss->vertices.clear();
  truss->frequencies.clear();
  std::vector<VertexId> endpoints;
  endpoints.reserve(truss->edges.size() * 2);
  for (const Edge& e : truss->edges) {
    endpoints.push_back(e.u);
    endpoints.push_back(e.v);
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  truss->vertices = std::move(endpoints);
  truss->frequencies.reserve(truss->vertices.size());
  const VertexId* superset_end = superset_vertices + superset_size;
  for (VertexId v : truss->vertices) {
    auto it = std::lower_bound(superset_vertices, superset_end, v);
    double f = 0.0;
    if (it != superset_end && *it == v) {
      f = superset_frequencies[static_cast<size_t>(it - superset_vertices)];
    }
    truss->frequencies.push_back(f);
  }
}

}  // namespace tcf
