#include "core/communities.h"

#include <algorithm>

#include "graph/components.h"

namespace tcf {

std::vector<ThemeCommunity> ExtractThemeCommunities(
    const PatternTruss& truss) {
  std::vector<ThemeCommunity> out;
  if (truss.empty()) return out;
  auto vertex_groups = ConnectedComponentsOfEdges(truss.edges);
  auto edge_groups = GroupEdgesByComponent(truss.edges);
  out.reserve(vertex_groups.size());
  for (size_t c = 0; c < vertex_groups.size(); ++c) {
    ThemeCommunity tc;
    tc.theme = truss.pattern;
    tc.vertices = std::move(vertex_groups[c]);
    tc.edges = std::move(edge_groups[c]);
    std::sort(tc.edges.begin(), tc.edges.end());
    out.push_back(std::move(tc));
  }
  return out;
}

std::vector<ThemeCommunity> ExtractThemeCommunities(
    const std::vector<PatternTruss>& trusses) {
  std::vector<ThemeCommunity> out;
  for (const PatternTruss& t : trusses) {
    auto cs = ExtractThemeCommunities(t);
    out.insert(out.end(), std::make_move_iterator(cs.begin()),
               std::make_move_iterator(cs.end()));
  }
  return out;
}

}  // namespace tcf
