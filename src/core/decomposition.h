#ifndef TCF_CORE_DECOMPOSITION_H_
#define TCF_CORE_DECOMPOSITION_H_

#include <vector>

#include "core/cohesion.h"
#include "core/mptd.h"
#include "core/pattern_truss.h"
#include "net/theme_network.h"

namespace tcf {

/// One node of the linked list `L_p`: the set of edges `R_p(α_k)` removed
/// when the truss shrinks past threshold `α_k` (§6.1).
struct DecompositionLevel {
  CohesionValue alpha;            // α_k, quantized
  std::vector<Edge> removed;      // R_p(α_k), in removal order
};

/// \brief The decomposition `L_p` of a maximal pattern truss `C*_p(0)`
/// (Thm. 6.1): a chain of strictly ascending thresholds
/// `α_1 < α_2 < … < α_h` with disjoint removed-edge sets whose union is
/// `E*_p(0)`.
///
/// Reconstruction (Eq. 1): `E*_p(α) = ∪_{α_k > α} R_p(α_k)` — every edge
/// belongs to exactly one level, and it survives a query threshold α iff
/// its level's α_k exceeds α. `α*_p = α_h` bounds the nontrivial query
/// range: `C*_p(α) = ∅` for α ≥ α*_p.
///
/// Besides the levels, the decomposition keeps the vertex set and
/// frequencies of `C*_p(0)` (so any reconstructed truss can be fully
/// materialized without touching the database network) and a sorted copy
/// of `E*_p(0)` used by the Prop.-5.3 intersections during TC-Tree
/// construction.
class TrussDecomposition {
 public:
  TrussDecomposition() = default;

  /// Peels `G_p` at α=0 (discarding zero-cohesion edges, which belong to
  /// no pattern truss), then repeatedly finds the minimum alive cohesion
  /// β and peels at β, recording each removal wave as one level.
  ///
  /// `peeler`, when non-null, is used as the (Reset) peeling workspace so
  /// a caller decomposing many candidate networks — the TC-Tree build —
  /// reuses its high-water-sized buffers instead of allocating fresh
  /// ones per call. Results are identical either way.
  static TrussDecomposition FromThemeNetwork(const ThemeNetwork& tn,
                                             ThemePeeler* peeler = nullptr);

  /// Reassembles a decomposition from stored parts (index persistence).
  /// `levels` must be strictly ascending in alpha with non-empty,
  /// pairwise-disjoint edge sets; `vertices` (sorted) and `frequencies`
  /// describe `C*_p(0)`. The sorted edge cache is rebuilt.
  static TrussDecomposition FromParts(Itemset pattern,
                                      std::vector<VertexId> vertices,
                                      std::vector<double> frequencies,
                                      std::vector<DecompositionLevel> levels);

  const Itemset& pattern() const { return pattern_; }
  const std::vector<DecompositionLevel>& levels() const { return levels_; }

  /// True when `C*_p(0)` itself is empty (no levels).
  bool empty() const { return levels_.empty(); }

  /// Total number of edges across all levels = |E*_p(0)|.
  size_t num_edges() const { return sorted_edges_.size(); }

  /// α*_p: the largest level threshold; 0 when empty. All queries with
  /// α ≥ α*_p return the empty truss.
  CohesionValue max_alpha() const;

  /// Eq. 1 on quantized thresholds: edges of `C*_p(α)`, sorted.
  std::vector<Edge> EdgesAtAlphaQ(CohesionValue alpha_q) const;

  /// Full materialization of `C*_p(α)` (vertices + frequencies; edge
  /// cohesions are not stored per level and are left empty).
  PatternTruss TrussAtAlpha(double alpha) const;
  PatternTruss TrussAtAlphaQ(CohesionValue alpha_q) const;

  /// Sorted `E*_p(0)` (every edge of every level).
  const std::vector<Edge>& sorted_edges() const { return sorted_edges_; }

  /// Vertices/frequencies of `C*_p(0)`.
  const std::vector<VertexId>& vertices() const { return vertices_; }
  const std::vector<double>& frequencies() const { return frequencies_; }

  /// Approximate heap footprint, for the Table-3 memory column.
  size_t MemoryBytes() const;

 private:
  Itemset pattern_;
  std::vector<VertexId> vertices_;
  std::vector<double> frequencies_;
  std::vector<DecompositionLevel> levels_;  // ascending alpha
  std::vector<Edge> sorted_edges_;
};

}  // namespace tcf

#endif  // TCF_CORE_DECOMPOSITION_H_
