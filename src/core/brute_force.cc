#include "core/brute_force.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/cohesion.h"
#include "tx/fim.h"
#include "util/logging.h"

namespace tcf {

std::vector<Itemset> AllSupportedPatterns(const DatabaseNetwork& net,
                                          size_t max_length) {
  std::set<Itemset> all;
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    // ε = 0 keeps every pattern with positive frequency.
    auto mined = MineFrequentItemsets(net.vertical(v), 0.0, max_length);
    for (auto& fp : mined) all.insert(std::move(fp.pattern));
  }
  return std::vector<Itemset>(all.begin(), all.end());
}

PatternTruss BruteForceMaximalPatternTruss(const ThemeNetwork& tn,
                                           double alpha) {
  const CohesionValue alpha_q = QuantizeAlpha(alpha);

  // Current edge set as a sorted adjacency map; recomputed cohesions.
  std::vector<Edge> edges = tn.edges;
  std::map<VertexId, CohesionValue> qf;
  for (size_t i = 0; i < tn.vertices.size(); ++i) {
    qf[tn.vertices[i]] = QuantizeFrequency(tn.frequencies[i]);
  }

  std::vector<CohesionValue> final_cohesion;
  bool changed = true;
  while (changed) {
    changed = false;
    std::set<Edge> edge_set(edges.begin(), edges.end());
    std::map<VertexId, std::vector<VertexId>> adj;
    for (const Edge& e : edges) {
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
    }
    final_cohesion.assign(edges.size(), 0);
    std::vector<Edge> kept;
    for (size_t i = 0; i < edges.size(); ++i) {
      const Edge& e = edges[i];
      CohesionValue eco = 0;
      for (VertexId w : adj[e.u]) {
        if (w == e.v) continue;
        if (edge_set.count(MakeEdge(e.v, w))) {
          eco += std::min({qf[e.u], qf[e.v], qf[w]});
        }
      }
      final_cohesion[i] = eco;
      if (eco > alpha_q) kept.push_back(e);
      else changed = true;
    }
    if (changed) edges = std::move(kept);
  }

  PatternTruss truss;
  truss.pattern = tn.pattern;
  truss.edges = std::move(edges);
  std::sort(truss.edges.begin(), truss.edges.end());
  // Recompute final cohesions aligned with the sorted edge order.
  {
    std::set<Edge> edge_set(truss.edges.begin(), truss.edges.end());
    std::map<VertexId, std::vector<VertexId>> adj;
    for (const Edge& e : truss.edges) {
      adj[e.u].push_back(e.v);
      adj[e.v].push_back(e.u);
    }
    truss.edge_cohesions.clear();
    for (const Edge& e : truss.edges) {
      CohesionValue eco = 0;
      for (VertexId w : adj[e.u]) {
        if (w == e.v) continue;
        if (edge_set.count(MakeEdge(e.v, w))) {
          eco += std::min({qf[e.u], qf[e.v], qf[w]});
        }
      }
      truss.edge_cohesions.push_back(eco);
    }
  }
  FillVerticesFromEdges(tn.vertices, tn.frequencies, &truss);
  return truss;
}

MiningResult BruteForceMineAll(const DatabaseNetwork& net, double alpha,
                               size_t max_length) {
  MiningResult result;
  for (const Itemset& p : AllSupportedPatterns(net, max_length)) {
    ++result.counters.candidates_generated;
    ThemeNetwork tn = InduceThemeNetwork(net, p);
    if (tn.empty()) continue;
    ++result.counters.mptd_calls;
    PatternTruss truss = BruteForceMaximalPatternTruss(tn, alpha);
    if (!truss.empty()) {
      result.trusses.push_back(std::move(truss));
      ++result.counters.qualified_patterns;
    }
  }
  result.Canonicalize();
  return result;
}

}  // namespace tcf
