#include "core/tc_tree_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "net/binary_io.h"

namespace tcf {

using io_internal::ReadU32;
using io_internal::ReadU64;
using io_internal::WriteU32;
using io_internal::WriteU64;

namespace {

constexpr char kMagic[4] = {'T', 'C', 'F', 'T'};
constexpr uint32_t kVersion = 1;

void WriteI64(std::ostream& os, int64_t v) {
  WriteU64(os, static_cast<uint64_t>(v));
}

bool ReadI64(std::istream& is, int64_t* v) {
  uint64_t raw = 0;
  if (!ReadU64(is, &raw)) return false;
  *v = static_cast<int64_t>(raw);
  return true;
}

void WriteF64(std::ostream& os, double v) {
  uint64_t raw;
  std::memcpy(&raw, &v, sizeof(raw));
  WriteU64(os, raw);
}

bool ReadF64(std::istream& is, double* v) {
  uint64_t raw = 0;
  if (!ReadU64(is, &raw)) return false;
  std::memcpy(v, &raw, sizeof(*v));
  return true;
}

}  // namespace

Status SaveTcTree(const TcTree& tree, std::ostream& os) {
  os.write(kMagic, 4);
  WriteU32(os, kVersion);
  const uint64_t total = tree.num_nodes() + 1;  // including root
  WriteU64(os, total);
  for (TcTree::NodeId id = 0; id < total; ++id) {
    const TcTree::Node& n = tree.node(id);
    WriteU32(os, n.item);
    WriteU32(os, n.parent);
    WriteU32(os, static_cast<uint32_t>(n.children.size()));
    for (TcTree::NodeId c : n.children) WriteU32(os, c);

    const TrussDecomposition& d = n.decomposition;
    WriteU64(os, d.levels().size());
    for (const DecompositionLevel& level : d.levels()) {
      WriteI64(os, level.alpha);
      WriteU64(os, level.removed.size());
      for (const Edge& e : level.removed) {
        WriteU32(os, e.u);
        WriteU32(os, e.v);
      }
    }
    WriteU64(os, d.vertices().size());
    for (VertexId v : d.vertices()) WriteU32(os, v);
    for (double f : d.frequencies()) WriteF64(os, f);
  }
  if (!os.good()) return Status::IOError("tc-tree write failed");
  return Status::OK();
}

Status SaveTcTreeToFile(const TcTree& tree, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f.is_open()) return Status::IOError("cannot open for write: " + path);
  return SaveTcTree(tree, f);
}

StatusOr<TcTree> LoadTcTree(std::istream& is) {
  char magic[4];
  if (!is.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::Corruption("bad tc-tree magic");
  }
  uint32_t version = 0;
  if (!ReadU32(is, &version) || version != kVersion) {
    return Status::Corruption("unsupported tc-tree version");
  }
  uint64_t total = 0;
  if (!ReadU64(is, &total) || total == 0) {
    return Status::Corruption("bad node count");
  }

  std::deque<TcTree::Node> nodes;
  // First pass: raw node data; patterns are reconstructed afterwards from
  // the parent trail (the file stores each node's own item only).
  struct RawDecomposition {
    std::vector<DecompositionLevel> levels;
    std::vector<VertexId> vertices;
    std::vector<double> frequencies;
  };
  std::vector<RawDecomposition> raw(total);

  for (uint64_t id = 0; id < total; ++id) {
    TcTree::Node n;
    uint32_t num_children = 0;
    if (!ReadU32(is, &n.item) || !ReadU32(is, &n.parent) ||
        !ReadU32(is, &num_children)) {
      return Status::Corruption("truncated node header");
    }
    n.children.resize(num_children);
    for (uint32_t c = 0; c < num_children; ++c) {
      if (!ReadU32(is, &n.children[c])) {
        return Status::Corruption("truncated children");
      }
      if (n.children[c] >= total) {
        return Status::Corruption("child index out of range");
      }
    }
    if (id == 0) {
      if (n.parent != TcTree::kNoParent) {
        return Status::Corruption("node 0 is not a root");
      }
    } else if (n.parent >= total) {
      return Status::Corruption("parent index out of range");
    }

    uint64_t num_levels = 0;
    if (!ReadU64(is, &num_levels)) {
      return Status::Corruption("truncated level count");
    }
    RawDecomposition& rd = raw[id];
    rd.levels.resize(num_levels);
    for (auto& level : rd.levels) {
      uint64_t num_edges = 0;
      if (!ReadI64(is, &level.alpha) || !ReadU64(is, &num_edges)) {
        return Status::Corruption("truncated level header");
      }
      level.removed.resize(num_edges);
      for (auto& e : level.removed) {
        if (!ReadU32(is, &e.u) || !ReadU32(is, &e.v)) {
          return Status::Corruption("truncated level edges");
        }
      }
    }
    uint64_t num_vertices = 0;
    if (!ReadU64(is, &num_vertices)) {
      return Status::Corruption("truncated vertex count");
    }
    rd.vertices.resize(num_vertices);
    for (auto& v : rd.vertices) {
      if (!ReadU32(is, &v)) return Status::Corruption("truncated vertices");
    }
    rd.frequencies.resize(num_vertices);
    for (auto& f : rd.frequencies) {
      if (!ReadF64(is, &f)) return Status::Corruption("truncated freqs");
    }
    nodes.push_back(std::move(n));
  }

  // Validate structural invariants up front: the factories below assert
  // them, but a corrupt file must surface as a Status, not an abort.
  for (uint64_t id = 1; id < total; ++id) {
    const auto& siblings = nodes[nodes[id].parent].children;
    if (std::find(siblings.begin(), siblings.end(),
                  static_cast<TcTree::NodeId>(id)) == siblings.end()) {
      return Status::Corruption("node missing from parent's child list");
    }
    const RawDecomposition& rd = raw[id];
    for (size_t k = 0; k < rd.levels.size(); ++k) {
      if (rd.levels[k].removed.empty()) {
        return Status::Corruption("empty decomposition level");
      }
      if (k > 0 && rd.levels[k].alpha <= rd.levels[k - 1].alpha) {
        return Status::Corruption("levels not strictly ascending");
      }
    }
    if (!std::is_sorted(rd.vertices.begin(), rd.vertices.end()) ||
        std::adjacent_find(rd.vertices.begin(), rd.vertices.end()) !=
            rd.vertices.end()) {
      return Status::Corruption("vertices not sorted/unique");
    }
    std::vector<Edge> all;
    for (const auto& level : rd.levels) {
      all.insert(all.end(), level.removed.begin(), level.removed.end());
    }
    std::sort(all.begin(), all.end());
    if (std::adjacent_find(all.begin(), all.end()) != all.end()) {
      return Status::Corruption("edge repeated across levels");
    }
  }

  // Second pass: rebuild each node's pattern by walking the parent trail
  // and reassemble the decompositions.
  for (uint64_t id = 1; id < total; ++id) {
    std::vector<ItemId> items;
    for (uint64_t x = id; x != 0; x = nodes[x].parent) {
      items.push_back(nodes[x].item);
      if (items.size() > total) {
        return Status::Corruption("parent cycle detected");
      }
    }
    nodes[id].decomposition = TrussDecomposition::FromParts(
        Itemset(std::move(items)), std::move(raw[id].vertices),
        std::move(raw[id].frequencies), std::move(raw[id].levels));
  }
  return TcTree::FromNodes(std::move(nodes));
}

StatusOr<TcTree> LoadTcTreeFromFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.is_open()) return Status::IOError("cannot open for read: " + path);
  return LoadTcTree(f);
}

}  // namespace tcf
