#ifndef TCF_CORE_MINING_RESULT_H_
#define TCF_CORE_MINING_RESULT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/pattern_truss.h"

namespace tcf {

/// \brief Instrumentation counters shared by TCS/TCFA/TCFI, backing the
/// pruning-effectiveness numbers of §7.1 (e.g. "TCFA calls MPTD 622,852
/// times, TCFI 152,396 times").
struct MiningCounters {
  uint64_t candidates_generated = 0;   // patterns considered at all
  uint64_t pruned_by_apriori = 0;      // dropped by Alg. 2's subset check
  uint64_t pruned_by_intersection = 0; // dropped by empty Prop.-5.3 overlap
  uint64_t mptd_calls = 0;             // theme networks actually peeled
  uint64_t qualified_patterns = 0;     // non-empty trusses found
  uint64_t triangle_visits = 0;        // total peeling work
};

/// \brief Output of a theme-community mining run: the set of all
/// non-empty maximal pattern trusses `C(α)` plus counters.
///
/// The evaluation metrics of §7 derive directly from it:
/// NP = trusses.size(); NV = Σ |V| and NE = Σ |E| over trusses (a vertex
/// or edge in k trusses counts k times).
struct MiningResult {
  std::vector<PatternTruss> trusses;
  MiningCounters counters;

  uint64_t NumPatterns() const { return trusses.size(); }

  uint64_t NumVertices() const {
    uint64_t nv = 0;
    for (const auto& t : trusses) nv += t.num_vertices();
    return nv;
  }

  uint64_t NumEdges() const {
    uint64_t ne = 0;
    for (const auto& t : trusses) ne += t.num_edges();
    return ne;
  }

  /// Sorts trusses by pattern for canonical comparison.
  void Canonicalize() {
    std::sort(trusses.begin(), trusses.end(),
              [](const PatternTruss& a, const PatternTruss& b) {
                return a.pattern < b.pattern;
              });
  }
};

}  // namespace tcf

#endif  // TCF_CORE_MINING_RESULT_H_
