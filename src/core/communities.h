#ifndef TCF_CORE_COMMUNITIES_H_
#define TCF_CORE_COMMUNITIES_H_

#include <string>
#include <vector>

#include "core/pattern_truss.h"
#include "graph/graph.h"
#include "tx/itemset.h"

namespace tcf {

/// \brief A theme community (Def. 3.5): one maximal connected subgraph of
/// a maximal pattern truss, carrying the truss's theme.
struct ThemeCommunity {
  Itemset theme;
  std::vector<VertexId> vertices;  // sorted
  std::vector<Edge> edges;         // canonical order

  size_t size() const { return vertices.size(); }

  bool operator==(const ThemeCommunity& o) const {
    return theme == o.theme && vertices == o.vertices && edges == o.edges;
  }
};

/// Splits a maximal pattern truss into its theme communities (maximal
/// connected subgraphs). Communities are ordered by smallest vertex id;
/// a truss with no edges yields none.
std::vector<ThemeCommunity> ExtractThemeCommunities(const PatternTruss& truss);

/// Convenience over a set of trusses; output keeps the truss order.
std::vector<ThemeCommunity> ExtractThemeCommunities(
    const std::vector<PatternTruss>& trusses);

}  // namespace tcf

#endif  // TCF_CORE_COMMUNITIES_H_
