#ifndef TCF_CORE_TCFI_FORMAT_H_
#define TCF_CORE_TCFI_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cohesion.h"
#include "core/tc_tree.h"
#include "graph/graph.h"
#include "tx/itemset.h"
#include "util/status.h"

namespace tcf {

/// \brief TCFI: the zero-copy, mmap-able index snapshot format.
///
/// The streaming "TCFT" format (core/tc_tree_io.h) deserializes the
/// whole tree — per-field reads, per-node validation and reassembly —
/// so a RELOAD pays seconds of parse for an index the builder already
/// laid out perfectly once. TCFI instead persists the tree as
/// pointer-free arena/CSR sections that *are* the serving layout:
/// loading is `mmap` + an O(1) header check (plus optional per-section
/// CRCs and an O(nodes) bounds scan), queries walk the mapped arenas
/// directly, and N server processes on one box share a single physical
/// copy of the index through the page cache. TCFT stays beside it as
/// the debug/interchange format.
///
/// File layout (all integers little-endian on the writing CPU; the
/// `endian` header field rejects foreign-order files at load):
/// \code
///   TcfiHeader   fixed 232 bytes: magic "TCFI" | version | endian
///                marker | header CRC32 (field zeroed while hashing) |
///                file_size | num_nodes (incl. root) | total_edges |
///                global max_alpha | max_depth | shard_id/num_shards |
///                section table (offset, size, CRC32, kind) × 7
///   kNodes       TcfiNodeRec × num_nodes (node 0 = root): item,
///                parent, [begin,count) slices into the other arenas,
///                depth, per-node max alpha
///   kChildren    u32 node ids, concatenated per node (ascending item
///                within each node — the arena preserves build order)
///   kLevels      TcfiLevelRec × total levels: quantized alpha +
///                [begin,count) into kEdges, per node ascending alpha
///   kEdges       (u32 u, u32 v) pairs in level removal order
///   kVertices    u32 vertex ids, per node sorted ascending
///   kFrequencies f64, parallel to kVertices
///   kRootIndex   (u32 item, u32 node) pairs ascending by item: the
///                vertical index over layer-1 subtrees
/// \endcode
/// Sections start at 8-byte-aligned offsets (zero padding between), so
/// every record is naturally aligned once mapped. Patterns are not
/// stored: a node's pattern is its item trail to the root, rebuilt on
/// demand exactly as the in-memory tree does.
///
/// Versioning policy (docs/index-format.md): the magic never changes;
/// readers reject a higher `version` outright. Additive evolution
/// appends new section kinds (old readers must reject unknown section
/// counts, so additions bump the version); any change to an existing
/// record layout bumps the version and drops support for writing the
/// old one — `tcf index` rewrites cheaply from TCFT or a rebuild.
///
/// Writers stream to `path + ".tmp"` and rename into place, so a
/// watcher (serve/file_watcher.h) never maps a half-written file; even
/// a non-atomic copy is caught because `ProbeTcfiFile` checks the
/// header CRC and that `file_size` matches the bytes on disk.

/// Section slot order in the header table (also the `kind` tag).
enum TcfiSectionKind : uint32_t {
  kTcfiNodes = 1,
  kTcfiChildren = 2,
  kTcfiLevels = 3,
  kTcfiEdges = 4,
  kTcfiVertices = 5,
  kTcfiFrequencies = 6,
  kTcfiRootIndex = 7,
};

inline constexpr uint32_t kTcfiNumSections = 7;
inline constexpr uint32_t kTcfiVersion = 1;
/// Written as a native u32; reads back byte-swapped on a foreign-endian
/// machine, which the loader reports as a distinct corruption.
inline constexpr uint32_t kTcfiEndianMarker = 0x01020304u;

/// One section-table entry.
struct TcfiSection {
  uint64_t offset = 0;  // from file start; 8-byte aligned
  uint64_t size = 0;    // payload bytes (excluding alignment padding)
  uint32_t crc32 = 0;   // CRC-32 (IEEE) of the payload bytes
  uint32_t kind = 0;    // TcfiSectionKind
};
static_assert(sizeof(TcfiSection) == 24, "TcfiSection layout drifted");

/// The fixed file header. `header_crc` covers the whole header with the
/// field itself zeroed, so truncation or a torn header write can never
/// validate.
struct TcfiHeader {
  char magic[4] = {'T', 'C', 'F', 'I'};
  uint32_t version = kTcfiVersion;
  uint32_t endian = kTcfiEndianMarker;
  uint32_t header_crc = 0;
  uint64_t file_size = 0;
  uint64_t num_nodes = 0;  // including the root
  uint64_t total_edges = 0;
  int64_t max_alpha = 0;  // max over nodes (quantized grid)
  uint32_t max_depth = 0;
  uint32_t shard_id = 0;    // 0-based; 0 when unsharded
  uint32_t num_shards = 1;  // 1 when unsharded
  uint32_t num_sections = kTcfiNumSections;
  TcfiSection sections[kTcfiNumSections];
};
static_assert(sizeof(TcfiHeader) == 64 + 24 * kTcfiNumSections,
              "TcfiHeader layout drifted");

/// One node of the mapped arena. Slices index the shared arenas:
/// children in node ids, levels in TcfiLevelRec records, vertices (and
/// the parallel frequencies) in entries.
struct TcfiNodeRec {
  uint32_t item = 0;
  uint32_t parent = 0;  // TcTree::kNoParent at the root
  uint64_t children_begin = 0;
  uint64_t levels_begin = 0;
  uint64_t verts_begin = 0;
  uint32_t children_count = 0;
  uint32_t levels_count = 0;
  uint32_t verts_count = 0;
  uint32_t depth = 0;
  int64_t max_alpha = 0;  // == decomposition.max_alpha()
};
static_assert(sizeof(TcfiNodeRec) == 56, "TcfiNodeRec layout drifted");

/// One decomposition level: `removed` edges live at
/// [edges_begin, edges_begin + edges_count) of the edge arena.
struct TcfiLevelRec {
  int64_t alpha = 0;
  uint64_t edges_begin = 0;
  uint32_t edges_count = 0;
  uint32_t pad = 0;  // written as zero
};
static_assert(sizeof(TcfiLevelRec) == 24, "TcfiLevelRec layout drifted");

/// One vertical-index entry: the layer-1 node owning `item`'s subtree.
struct TcfiRootIndexRec {
  uint32_t item = 0;
  uint32_t node = 0;
};
static_assert(sizeof(TcfiRootIndexRec) == 8,
              "TcfiRootIndexRec layout drifted");

/// Shard metadata stamped into the header (slice files of a partitioned
/// index carry their position; a plain save uses the defaults).
struct TcfiWriteOptions {
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
};

/// How much of the file MapTcTree validates before serving from it.
struct TcfiMapOptions {
  /// CRC every section payload (one pass over the file). Off, only the
  /// header CRC and the structural bounds guard the data — right for a
  /// file this process just wrote, wrong for one from the network.
  bool verify_checksums = true;
  /// O(nodes + levels) scan: every arena slice in bounds, parents
  /// before children, level alphas strictly ascending per node. Cheap
  /// relative to the CRC pass; leave it on.
  bool validate_structure = true;
};

/// Serializes `tree` into the TCFI layout at `path` (write to
/// `path + ".tmp"`, fsync-free rename into place). The text/streaming
/// TCFT format (SaveTcTreeToFile) remains for debugging.
Status SaveTcTreeBinary(const TcTree& tree, const std::string& path,
                        const TcfiWriteOptions& options = {});

/// \brief A read-only TC-Tree served straight out of an mmap'ed TCFI
/// file — no per-node heap objects, no parse.
///
/// Accessors mirror the TcTree walk surface (tc_tree_query.cc is
/// templated over either). NodeId space is identical to the owned
/// tree's: 0 is the root, ids ascend in BFS commit order.
class MappedTcTree {
 public:
  using NodeId = TcTree::NodeId;

  MappedTcTree() = default;
  ~MappedTcTree();
  MappedTcTree(MappedTcTree&& other) noexcept;
  MappedTcTree& operator=(MappedTcTree&& other) noexcept;
  MappedTcTree(const MappedTcTree&) = delete;
  MappedTcTree& operator=(const MappedTcTree&) = delete;

  bool valid() const { return base_ != nullptr; }
  const std::string& path() const { return path_; }
  /// Bytes mapped (== header file_size).
  size_t FileBytes() const { return size_; }

  /// Pattern-bearing nodes, excluding the root (TcTree::num_nodes).
  size_t num_nodes() const { return num_nodes_total_ - 1; }
  uint32_t shard_id() const { return shard_id_; }
  uint32_t num_shards() const { return num_shards_; }
  CohesionValue MaxAlphaOverNodes() const { return max_alpha_; }
  size_t MaxDepth() const { return max_depth_; }
  uint64_t TotalIndexedEdges() const { return total_edges_; }

  ItemId item(NodeId id) const { return nodes_[id].item; }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  uint32_t depth(NodeId id) const { return nodes_[id].depth; }
  CohesionValue node_max_alpha(NodeId id) const {
    return nodes_[id].max_alpha;
  }

  const NodeId* children(NodeId id) const {
    return children_ + nodes_[id].children_begin;
  }
  size_t num_children(NodeId id) const { return nodes_[id].children_count; }

  const TcfiLevelRec* levels(NodeId id) const {
    return levels_ + nodes_[id].levels_begin;
  }
  size_t num_levels(NodeId id) const { return nodes_[id].levels_count; }
  /// Edges of one level, in removal order.
  const Edge* level_edges(const TcfiLevelRec& level) const {
    return edges_ + level.edges_begin;
  }

  const VertexId* vertices(NodeId id) const {
    return vertices_ + nodes_[id].verts_begin;
  }
  const double* frequencies(NodeId id) const {
    return frequencies_ + nodes_[id].verts_begin;
  }
  size_t num_vertices(NodeId id) const { return nodes_[id].verts_count; }

  /// Eq. 1 against the mapped levels — byte-identical results to
  /// TrussDecomposition::EdgesAtAlphaQ (same suffix concatenation, same
  /// final sort).
  std::vector<Edge> EdgesAtAlphaQ(NodeId id, CohesionValue alpha_q) const;

  /// The node's pattern: its item trail to the root, like
  /// TcTree::PatternOf.
  Itemset PatternOf(NodeId id) const;

  /// The vertical index: layer-1 entries ascending by item.
  const TcfiRootIndexRec* root_index() const { return roots_; }
  size_t root_index_size() const { return num_roots_; }

 private:
  friend StatusOr<MappedTcTree> MapTcTree(const std::string& path,
                                          const TcfiMapOptions& options);

  void Reset() noexcept;

  void* base_ = nullptr;  // mmap base; null when invalid
  size_t size_ = 0;
  std::string path_;

  const TcfiNodeRec* nodes_ = nullptr;
  const NodeId* children_ = nullptr;
  const TcfiLevelRec* levels_ = nullptr;
  const Edge* edges_ = nullptr;
  const VertexId* vertices_ = nullptr;
  const double* frequencies_ = nullptr;
  const TcfiRootIndexRec* roots_ = nullptr;
  size_t num_nodes_total_ = 0;  // including the root
  size_t num_roots_ = 0;
  uint64_t total_edges_ = 0;
  CohesionValue max_alpha_ = 0;
  uint32_t max_depth_ = 0;
  uint32_t shard_id_ = 0;
  uint32_t num_shards_ = 1;
};

/// Maps `path` read-only and validates per `options`. Every corruption
/// — bad magic, foreign endianness, unsupported version, header or
/// section CRC mismatch, truncation, out-of-bounds arena slice —
/// returns a clean Status (never crashes, property-tested in
/// tests/tcfi_corrupt_test.cc).
StatusOr<MappedTcTree> MapTcTree(const std::string& path,
                                 const TcfiMapOptions& options = {});

/// O(1) completeness probe: reads just the fixed header and checks
/// magic, version, endianness, header CRC, and that `file_size` matches
/// the bytes actually on disk. This is how the file watcher skips a
/// half-written `.tcfi` without attempting (and miscounting) a load.
Status ProbeTcfiFile(const std::string& path);

/// True if the file at `path` starts with the TCFI magic (cheap format
/// sniff; does not validate anything else).
bool LooksLikeTcfiFile(const std::string& path);

/// Rebuilds a heap-owned TcTree from the mapped arenas (FromParts +
/// FromNodes). Answers and re-serialized bytes are identical to the
/// tree the file was saved from; used where mutation is needed (the
/// streaming updater's baseline, partitioning a mapped full index).
TcTree MaterializeTcTree(const MappedTcTree& mapped);

/// Canonical per-shard slice filename: `base` + ".shard<i>-of-<n>".
std::string TcfiSlicePath(const std::string& base, size_t shard,
                          size_t num_shards);

/// Partitions a tree (core/partition.h semantics — pattern owned by the
/// shard of its minimum item, HashShardPartitioner as in
/// ShardedQueryService's default) and writes one TCFI slice per shard
/// next to `base` (TcfiSlicePath names), each stamped with its
/// shard_id/num_shards.
Status SaveTcfiShardSlices(TcTree tree, const std::string& base,
                           size_t num_shards);

namespace tcfi_internal {
/// CRC-32 (IEEE 802.3, reflected, slicing-by-8). Exposed for the
/// corrupt-file tests, which forge checksums.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);
}  // namespace tcfi_internal

}  // namespace tcf

#endif  // TCF_CORE_TCFI_FORMAT_H_
