#include "core/union_baseline.h"

#include <algorithm>

#include "core/apriori.h"
#include "core/mptd.h"

namespace tcf {

namespace {

// Theme network under binary "attribute containment" semantics: the
// vertices whose attribute union contains every item of `p`, all with
// frequency 1.
ThemeNetwork InduceBinaryThemeNetwork(
    const DatabaseNetwork& net, const std::vector<Itemset>& attributes,
    const Itemset& p) {
  ThemeNetwork tn;
  tn.pattern = p;
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    if (p.IsSubsetOf(attributes[v])) {
      tn.vertices.push_back(v);
      tn.frequencies.push_back(1.0);
    }
  }
  auto member = [&](VertexId v) {
    return std::binary_search(tn.vertices.begin(), tn.vertices.end(), v);
  };
  for (VertexId u : tn.vertices) {
    for (const Neighbor& nb : net.graph().neighbors(u)) {
      if (nb.vertex > u && member(nb.vertex)) {
        tn.edges.push_back({u, nb.vertex});
      }
    }
  }
  std::sort(tn.edges.begin(), tn.edges.end());
  return tn;
}

}  // namespace

MiningResult RunUnionBaseline(const DatabaseNetwork& net,
                              const UnionBaselineOptions& options) {
  MiningResult result;
  // With f ≡ 1, a pattern truss at α = k−3 is exactly a k-truss
  // (Def. 3.3), so the shared peeler serves the baseline too.
  const double alpha = static_cast<double>(options.k) - 3.0;

  std::vector<Itemset> attributes;
  attributes.reserve(net.num_vertices());
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    attributes.push_back(net.db(v).DistinctItems());
  }

  std::vector<Itemset> qualified;
  for (ItemId item : net.ActiveItems()) {
    const Itemset p = Itemset::Single(item);
    ++result.counters.candidates_generated;
    ++result.counters.mptd_calls;
    ThemeNetwork tn = InduceBinaryThemeNetwork(net, attributes, p);
    if (tn.empty()) continue;
    PatternTruss truss = Mptd(tn, alpha);
    if (!truss.empty()) {
      qualified.push_back(p);
      result.trusses.push_back(std::move(truss));
      ++result.counters.qualified_patterns;
    }
  }

  size_t k = 2;
  while (!qualified.empty() &&
         (options.max_pattern_length == 0 ||
          k <= options.max_pattern_length)) {
    auto candidates = GenerateAprioriCandidates(qualified);
    result.counters.candidates_generated += candidates.size();
    std::vector<Itemset> next_qualified;
    for (const CandidatePattern& cand : candidates) {
      ++result.counters.mptd_calls;
      ThemeNetwork tn =
          InduceBinaryThemeNetwork(net, attributes, cand.pattern);
      if (tn.empty()) continue;
      PatternTruss truss = Mptd(tn, alpha);
      if (!truss.empty()) {
        next_qualified.push_back(cand.pattern);
        result.trusses.push_back(std::move(truss));
        ++result.counters.qualified_patterns;
      }
    }
    qualified = std::move(next_qualified);
    ++k;
  }
  result.Canonicalize();
  return result;
}

}  // namespace tcf
