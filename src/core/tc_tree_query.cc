#include "core/tc_tree_query.h"

#include <deque>

namespace tcf {

TcTreeQueryResult QueryTcTree(const TcTree& tree, const Itemset& q,
                              double alpha_q,
                              const TcTreeQueryOptions& options) {
  TcTreeQueryResult result;
  const CohesionValue aq = QuantizeAlpha(alpha_q);

  std::deque<TcTree::NodeId> queue;
  queue.push_back(TcTree::kRoot);
  while (!queue.empty()) {
    if (options.max_results != 0 &&
        result.retrieved_nodes >= options.max_results) {
      break;
    }
    const TcTree::NodeId f = queue.front();
    queue.pop_front();
    for (TcTree::NodeId c : tree.node(f).children) {
      const TcTree::Node& child = tree.node(c);
      if (!q.Contains(child.item)) continue;  // subtree can't be ⊆ q
      ++result.visited_nodes;
      if (child.decomposition.max_alpha() <= aq) continue;  // empty at α_q
      PatternTruss truss;
      truss.pattern = tree.PatternOf(c);
      truss.edges = child.decomposition.EdgesAtAlphaQ(aq);
      if (truss.edges.empty()) continue;
      // Non-empty: keep descending (Prop. 5.2) even when the size filter
      // drops this truss from the result list.
      queue.push_back(c);
      if (truss.edges.size() < options.min_truss_edges) continue;
      if (options.max_results != 0 &&
          result.retrieved_nodes >= options.max_results) {
        continue;
      }
      if (options.materialize_vertices) {
        FillVerticesFromEdges(child.decomposition.vertices(),
                              child.decomposition.frequencies(), &truss);
      }
      result.trusses.push_back(std::move(truss));
      ++result.retrieved_nodes;
    }
  }
  return result;
}

std::vector<ThemeCommunity> QueryThemeCommunities(const TcTree& tree,
                                                  const Itemset& q,
                                                  double alpha_q) {
  TcTreeQueryResult r = QueryTcTree(tree, q, alpha_q);
  return ExtractThemeCommunities(r.trusses);
}

}  // namespace tcf
