#include "core/tc_tree_query.h"

#include <deque>
#include <unordered_map>
#include <utility>

#include "core/tcfi_format.h"

namespace tcf {

namespace {

// The walks below are templated over a *tree view* so the owned
// (TcTree) and mapped (MappedTcTree, core/tcfi_format.h) snapshots run
// the exact same traversal — same visit order, same counters, same
// truss assembly — and therefore produce byte-identical answers for the
// same index bytes. The views adapt only the arena access: vector
// members on one side, mapped CSR slices on the other.

struct OwnedTreeView {
  const TcTree& t;
  using NodeId = TcTree::NodeId;

  size_t num_children(NodeId id) const { return t.node(id).children.size(); }
  NodeId child(NodeId id, size_t k) const { return t.node(id).children[k]; }
  ItemId item(NodeId id) const { return t.node(id).item; }
  CohesionValue max_alpha(NodeId id) const {
    return t.node(id).decomposition.max_alpha();
  }
  std::vector<Edge> EdgesAtAlphaQ(NodeId id, CohesionValue aq) const {
    return t.node(id).decomposition.EdgesAtAlphaQ(aq);
  }
  Itemset PatternOf(NodeId id) const { return t.PatternOf(id); }
  void FillVertices(NodeId id, PatternTruss* truss) const {
    const TrussDecomposition& d = t.node(id).decomposition;
    FillVerticesFromEdges(d.vertices(), d.frequencies(), truss);
  }
};

struct MappedTreeView {
  const MappedTcTree& t;
  using NodeId = MappedTcTree::NodeId;

  size_t num_children(NodeId id) const { return t.num_children(id); }
  NodeId child(NodeId id, size_t k) const { return t.children(id)[k]; }
  ItemId item(NodeId id) const { return t.item(id); }
  CohesionValue max_alpha(NodeId id) const { return t.node_max_alpha(id); }
  std::vector<Edge> EdgesAtAlphaQ(NodeId id, CohesionValue aq) const {
    return t.EdgesAtAlphaQ(id, aq);
  }
  Itemset PatternOf(NodeId id) const { return t.PatternOf(id); }
  void FillVertices(NodeId id, PatternTruss* truss) const {
    FillVerticesFromEdges(t.vertices(id), t.frequencies(id),
                          t.num_vertices(id), truss);
  }
};

template <typename View>
TcTreeQueryResult QueryWalk(const View& tree, const Itemset& q,
                            double alpha_q,
                            const TcTreeQueryOptions& options) {
  TcTreeQueryResult result;
  const CohesionValue aq = QuantizeAlpha(alpha_q);

  // Cooperative cancellation: a bounded deadline is re-checked every
  // kDeadlineCheckStride visited nodes (and once up front, so an
  // already-expired budget never starts the walk).
  const bool bounded = options.deadline.bounded();
  if (bounded && options.deadline.IsExpired()) {
    result.deadline_exceeded = true;
    return result;
  }

  std::deque<TcTree::NodeId> queue;
  queue.push_back(TcTree::kRoot);
  while (!queue.empty()) {
    if (options.max_results != 0 &&
        result.retrieved_nodes >= options.max_results) {
      break;
    }
    const TcTree::NodeId f = queue.front();
    queue.pop_front();
    const size_t fanout = tree.num_children(f);
    for (size_t k = 0; k < fanout; ++k) {
      const TcTree::NodeId c = tree.child(f, k);
      if (!q.Contains(tree.item(c))) continue;  // subtree can't be ⊆ q
      ++result.visited_nodes;
      if (bounded && result.visited_nodes % kDeadlineCheckStride == 0 &&
          options.deadline.IsExpired()) {
        result.deadline_exceeded = true;
        return result;
      }
      if (tree.max_alpha(c) <= aq) {  // empty at α_q
        ++result.pruned_subtrees;
        continue;
      }
      PatternTruss truss;
      truss.pattern = tree.PatternOf(c);
      truss.edges = tree.EdgesAtAlphaQ(c, aq);
      if (truss.edges.empty()) {
        ++result.pruned_subtrees;
        continue;
      }
      // Non-empty: keep descending (Prop. 5.2) even when the size filter
      // drops this truss from the result list.
      queue.push_back(c);
      if (truss.edges.size() < options.min_truss_edges) continue;
      if (options.max_results != 0 &&
          result.retrieved_nodes >= options.max_results) {
        continue;
      }
      if (options.materialize_vertices) {
        tree.FillVertices(c, &truss);
      }
      result.trusses.push_back(std::move(truss));
      ++result.retrieved_nodes;
    }
  }
  return result;
}

template <typename View>
TcTreeQueryResult ComposeWalk(const View& tree, const Itemset& q,
                              double alpha_q,
                              const std::vector<SubPatternCover>& covers,
                              const TcTreeQueryOptions& options,
                              TcTreeComposeStats* compose_stats) {
  if (covers.empty() || covers.size() > 64 || options.min_truss_edges != 0 ||
      options.max_results != 0) {
    return QueryWalk(tree, q, alpha_q, options);
  }
  const CohesionValue aq = QuantizeAlpha(alpha_q);

  // item → bitmask of covers containing it; the pattern of a node is ⊆
  // cover j iff every item on its root trail keeps bit j alive.
  std::unordered_map<ItemId, uint64_t> item_masks;
  // pattern → its truss inside some cover. Two covers both containing p
  // hold identical trusses (same tree, same α_q), so first-in wins.
  std::unordered_map<Itemset, const PatternTruss*, ItemsetHash> reusable;
  for (size_t j = 0; j < covers.size(); ++j) {
    for (ItemId item : *covers[j].itemset) {
      item_masks[item] |= uint64_t{1} << j;
    }
    for (const PatternTruss& t : covers[j].result->trusses) {
      reusable.emplace(t.pattern, &t);
    }
  }
  const uint64_t all_covers =
      covers.size() == 64 ? ~uint64_t{0} : (uint64_t{1} << covers.size()) - 1;

  TcTreeQueryResult result;
  // Same cancellation contract as QueryWalk: the composed and cold
  // paths expire identically, so a deadline never changes which path a
  // clean answer took.
  const bool bounded = options.deadline.bounded();
  if (bounded && options.deadline.IsExpired()) {
    result.deadline_exceeded = true;
    return result;
  }
  // (node, bitmask of covers its pattern is still ⊆ of). The empty root
  // pattern is a subset of every cover.
  std::deque<std::pair<TcTree::NodeId, uint64_t>> queue;
  queue.emplace_back(TcTree::kRoot, all_covers);
  while (!queue.empty()) {
    const auto [f, mask] = queue.front();
    queue.pop_front();
    const size_t fanout = tree.num_children(f);
    for (size_t k = 0; k < fanout; ++k) {
      const TcTree::NodeId c = tree.child(f, k);
      const ItemId child_item = tree.item(c);
      if (!q.Contains(child_item)) continue;  // subtree can't be ⊆ q
      ++result.visited_nodes;
      if (bounded && result.visited_nodes % kDeadlineCheckStride == 0 &&
          options.deadline.IsExpired()) {
        result.deadline_exceeded = true;
        return result;
      }
      uint64_t child_mask = 0;
      if (mask != 0) {
        const auto it = item_masks.find(child_item);
        if (it != item_masks.end()) child_mask = mask & it->second;
      }
      if (child_mask != 0) {
        // Covered: the cover's answer already settled this pattern.
        const auto hit = reusable.find(tree.PatternOf(c));
        if (hit == reusable.end()) {
          // ⊆ a cover yet absent from its answer: C*_p(α_q) = ∅, and by
          // Prop. 5.2 so is every descendant's truss. The cold walk
          // visits this node and finds it empty, so the prune counter
          // advances identically on both paths.
          ++result.pruned_subtrees;
          if (compose_stats != nullptr) ++compose_stats->covered_prunes;
          continue;
        }
        result.trusses.push_back(*hit->second);
        ++result.retrieved_nodes;
        if (compose_stats != nullptr) ++compose_stats->reused_trusses;
        queue.emplace_back(c, child_mask);
        continue;
      }
      // Residual probe: no cover speaks for this pattern (nor, since
      // supersets of an uncovered pattern stay uncovered, for anything
      // below it — hence mask 0 on descent). Same arithmetic as
      // QueryTcTree.
      if (tree.max_alpha(c) <= aq) {
        ++result.pruned_subtrees;
        continue;
      }
      PatternTruss truss;
      truss.pattern = tree.PatternOf(c);
      truss.edges = tree.EdgesAtAlphaQ(c, aq);
      if (truss.edges.empty()) {
        ++result.pruned_subtrees;
        continue;
      }
      queue.emplace_back(c, uint64_t{0});
      if (options.materialize_vertices) {
        tree.FillVertices(c, &truss);
      }
      result.trusses.push_back(std::move(truss));
      ++result.retrieved_nodes;
      if (compose_stats != nullptr) ++compose_stats->computed_trusses;
    }
  }
  return result;
}

}  // namespace

TcTreeQueryResult QueryTcTree(const TcTree& tree, const Itemset& q,
                              double alpha_q,
                              const TcTreeQueryOptions& options) {
  return QueryWalk(OwnedTreeView{tree}, q, alpha_q, options);
}

TcTreeQueryResult QueryTcTree(const MappedTcTree& tree, const Itemset& q,
                              double alpha_q,
                              const TcTreeQueryOptions& options) {
  return QueryWalk(MappedTreeView{tree}, q, alpha_q, options);
}

TcTreeQueryResult ComposeTcTreeQuery(const TcTree& tree, const Itemset& q,
                                     double alpha_q,
                                     const std::vector<SubPatternCover>& covers,
                                     const TcTreeQueryOptions& options,
                                     TcTreeComposeStats* compose_stats) {
  return ComposeWalk(OwnedTreeView{tree}, q, alpha_q, covers, options,
                     compose_stats);
}

TcTreeQueryResult ComposeTcTreeQuery(const MappedTcTree& tree,
                                     const Itemset& q, double alpha_q,
                                     const std::vector<SubPatternCover>& covers,
                                     const TcTreeQueryOptions& options,
                                     TcTreeComposeStats* compose_stats) {
  return ComposeWalk(MappedTreeView{tree}, q, alpha_q, covers, options,
                     compose_stats);
}

TcTreeQueryResult DeriveSubResult(const TcTreeQueryResult& full,
                                  const Itemset& s) {
  TcTreeQueryResult out;
  for (const PatternTruss& t : full.trusses) {
    if (t.pattern.IsSubsetOf(s)) out.trusses.push_back(t);
  }
  out.retrieved_nodes = out.trusses.size();
  out.visited_nodes = out.trusses.size();
  return out;
}

std::vector<ThemeCommunity> QueryThemeCommunities(const TcTree& tree,
                                                  const Itemset& q,
                                                  double alpha_q) {
  TcTreeQueryResult r = QueryTcTree(tree, q, alpha_q);
  return ExtractThemeCommunities(r.trusses);
}

}  // namespace tcf
