#ifndef TCF_CORE_TCS_H_
#define TCF_CORE_TCS_H_

#include "core/mining_result.h"
#include "net/database_network.h"

namespace tcf {

/// Options for the Theme Community Scanner baseline.
struct TcsOptions {
  /// Minimum cohesion threshold α ≥ 0.
  double alpha = 0.0;
  /// Pattern-frequency pre-filter ε (§4.2): only patterns with
  /// `f_i(p) > ε` on at least one vertex become candidates. ε = 0 makes
  /// TCS exact but exponential — test-sized networks only.
  double epsilon = 0.1;
  /// Optional cap on candidate pattern length (0 = unlimited).
  size_t max_pattern_length = 0;
};

/// \brief TCS, the baseline of §4.2.
///
/// Enumerates the candidate set `P = {p : ∃v_i, f_i(p) > ε}` by frequent-
/// itemset mining on every vertex database, then runs MPTD on the theme
/// network of every candidate. Trades accuracy for speed: a pattern that
/// is infrequent everywhere can still form a dense truss, so TCS may miss
/// trusses that TCFA/TCFI find (Fig. 3).
MiningResult RunTcs(const DatabaseNetwork& net, const TcsOptions& options);

}  // namespace tcf

#endif  // TCF_CORE_TCS_H_
