#ifndef TCF_CORE_PARTITION_H_
#define TCF_CORE_PARTITION_H_

#include <cstddef>
#include <vector>

#include "core/tc_tree.h"
#include "net/database_network.h"

namespace tcf {

/// \brief Item-space partitioning for sharded serving.
///
/// Every TC-Tree pattern `p` lives in the layer-1 subtree of its minimum
/// item (Rymon SE-tree: the root child on `min(p)` starts `p`'s item
/// trail), so a function from layer-1 items to shards assigns every
/// pattern exactly one owner and the per-shard answer sets of any query
/// are disjoint. Merging them back on (pattern length, lexicographic
/// items) reconstructs the single-tree BFS retrieval order exactly —
/// see PartitionTcTree and serve/shard_router.h.
class ShardPartitioner {
 public:
  virtual ~ShardPartitioner() = default;

  /// Shard owning the layer-1 subtree of `item`. Must be < `num_shards`
  /// and deterministic (the router and the build-side partitioner must
  /// agree forever).
  virtual size_t ShardOf(ItemId item, size_t num_shards) const = 0;
};

/// Default partitioner: a splitmix64 finalizer over the item id, modulo
/// the shard count. Uniform for any id distribution (dictionary ids are
/// dense and sorted; plain modulo would correlate with item frequency
/// rank in generated datasets).
class HashShardPartitioner : public ShardPartitioner {
 public:
  size_t ShardOf(ItemId item, size_t num_shards) const override;
};

/// Splits one built tree into `num_shards` disjoint trees: node `n`
/// goes to the shard of its layer-1 ancestor's item. Each shard keeps
/// its nodes in the original arena (BFS commit) order with remapped
/// ids, so per-parent child lists stay contiguous and item-ascending
/// and every shard is a valid TcTree on its own (decompositions are
/// moved, not copied). The union of the shards' nodes is exactly the
/// input tree's; a shard that owns nothing is a bare root.
///
/// Because the split happens *after* one ordinary build, every build
/// knob — including the global `max_nodes` budget, whose deterministic
/// commit-order semantics no independent per-shard build can replicate
/// — applies exactly as in the unsharded system. This is the
/// construction path ShardedQueryService uses.
std::vector<TcTree> PartitionTcTree(TcTree tree,
                                    const ShardPartitioner& partitioner,
                                    size_t num_shards);

/// Splits a database network by item ownership: shard `s` keeps the
/// full graph (vertex ids and edges unchanged — theme networks are
/// induced subgraphs, so every shard needs the whole topology) and, for
/// each vertex, its transaction database iff that database mentions at
/// least one item owned by `s` (otherwise an empty TransactionDb holds
/// the vertex id slot). A pattern `p` owned by `s` has `min(p)` owned
/// by `s`, and every vertex of `p`'s theme network carries `min(p)`,
/// so shard `s`'s network induces exactly the same theme networks —
/// hence the same trusses — for every pattern it owns.
std::vector<DatabaseNetwork> PartitionTransactions(
    const DatabaseNetwork& net, const ShardPartitioner& partitioner,
    size_t num_shards);

/// Builds shard `shard`'s tree directly from its partitioned network
/// (`PartitionTransactions(net, ...)[shard]`), without ever
/// materializing the other shards' subtrees in the result.
///
/// The build runs over the shard network unrestricted — owned layer-1
/// nodes need their non-owned right-siblings as Prop.-5.3 intersection
/// partners, so layer 1 cannot simply be filtered — and the non-owned
/// subtrees (approximations computed against thinned foreign
/// databases) are stripped afterwards. With no `max_nodes` budget the
/// result equals `PartitionTcTree(full_build)[shard]` node-for-node
/// (property-tested byte-identical in tests/shard_router_test.cc); a
/// budget spends differently here than in one global build, so capped
/// sharded serving should split a capped full build instead.
TcTree BuildShardTree(const DatabaseNetwork& shard_net,
                      const ShardPartitioner& partitioner, size_t num_shards,
                      size_t shard, const TcTreeOptions& options = {});

}  // namespace tcf

#endif  // TCF_CORE_PARTITION_H_
