#include "core/mptd.h"

#include <algorithm>

#include "util/logging.h"

namespace tcf {

ThemePeeler::ThemePeeler(const ThemeNetwork& tn) : tn_(&tn) {
  const size_t n = tn.vertices.size();
  qfreq_.reserve(n);
  for (double f : tn.frequencies) qfreq_.push_back(QuantizeFrequency(f));

  // Global -> local vertex ids. tn.vertices is sorted, so local order
  // preserves global order and canonical edges stay canonical locally.
  auto local_of = [&](VertexId global) -> uint32_t {
    auto it = std::lower_bound(tn.vertices.begin(), tn.vertices.end(), global);
    TCF_CHECK(it != tn.vertices.end() && *it == global);
    return static_cast<uint32_t>(it - tn.vertices.begin());
  };

  local_edges_.reserve(tn.edges.size());
  adj_.assign(n, {});
  for (EdgeId e = 0; e < tn.edges.size(); ++e) {
    const Edge& ge = tn.edges[e];
    const uint32_t lu = local_of(ge.u);
    const uint32_t lv = local_of(ge.v);
    local_edges_.push_back({lu, lv});
    adj_[lu].push_back({lv, e});
    adj_[lv].push_back({lu, e});
  }
  for (auto& a : adj_) {
    std::sort(a.begin(), a.end(),
              [](const LocalNeighbor& x, const LocalNeighbor& y) {
                return x.vertex < y.vertex;
              });
  }
  alive_.assign(local_edges_.size(), 1);
  num_alive_ = local_edges_.size();
  ComputeInitialCohesions();
}

template <typename Fn>
void ThemePeeler::ForEachAliveTriangle(EdgeId e, Fn&& fn) const {
  const LocalEdge& le = local_edges_[e];
  const auto& a = adj_[le.u];
  const auto& b = adj_[le.v];
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].vertex < b[j].vertex) {
      ++i;
    } else if (a[i].vertex > b[j].vertex) {
      ++j;
    } else {
      if (alive_[a[i].edge] && alive_[b[j].edge]) {
        fn(a[i].vertex, a[i].edge, b[j].edge);
      }
      ++i;
      ++j;
    }
  }
}

void ThemePeeler::ComputeInitialCohesions() {
  cohesion_.assign(local_edges_.size(), 0);
  for (EdgeId e = 0; e < local_edges_.size(); ++e) {
    const LocalEdge& le = local_edges_[e];
    const CohesionValue fuv = std::min(qfreq_[le.u], qfreq_[le.v]);
    CohesionValue total = 0;
    ForEachAliveTriangle(e, [&](uint32_t w, EdgeId, EdgeId) {
      ++triangle_visits_;
      total += std::min(fuv, qfreq_[w]);
    });
    cohesion_[e] = total;
  }
}

void ThemePeeler::PeelToThreshold(CohesionValue alpha_q,
                                  std::vector<EdgeId>* removed) {
  std::vector<EdgeId> queue;
  std::vector<uint8_t> in_queue(local_edges_.size(), 0);
  for (EdgeId e = 0; e < local_edges_.size(); ++e) {
    if (alive_[e] && cohesion_[e] <= alpha_q) {
      queue.push_back(e);
      in_queue[e] = 1;
    }
  }
  size_t head = 0;
  while (head < queue.size()) {
    const EdgeId e = queue[head++];
    if (!alive_[e]) continue;
    // Mark dead *before* enumerating, so the broken triangles are exactly
    // the alive ones that contained e (Alg. 1 lines 11-16).
    alive_[e] = 0;
    --num_alive_;
    const LocalEdge& le = local_edges_[e];
    const CohesionValue fuv = std::min(qfreq_[le.u], qfreq_[le.v]);
    ForEachAliveTriangle(e, [&](uint32_t w, EdgeId e1, EdgeId e2) {
      ++triangle_visits_;
      const CohesionValue m = std::min(fuv, qfreq_[w]);
      for (EdgeId wing : {e1, e2}) {
        cohesion_[wing] -= m;
        if (min_tracking_) min_heap_.emplace(cohesion_[wing], wing);
        if (!in_queue[wing] && cohesion_[wing] <= alpha_q) {
          queue.push_back(wing);
          in_queue[wing] = 1;
        }
      }
    });
    if (removed != nullptr) removed->push_back(e);
  }
}

CohesionValue ThemePeeler::MinAliveCohesion() {
  if (!min_tracking_) {
    min_tracking_ = true;
    for (EdgeId e = 0; e < local_edges_.size(); ++e) {
      if (alive_[e]) min_heap_.emplace(cohesion_[e], e);
    }
  }
  while (!min_heap_.empty()) {
    const auto& [c, e] = min_heap_.top();
    if (alive_[e] && cohesion_[e] == c) return c;
    min_heap_.pop();
  }
  return kNoAliveEdges;
}

PatternTruss ThemePeeler::ExtractTruss() const {
  PatternTruss truss;
  truss.pattern = tn_->pattern;
  truss.edges.reserve(num_alive_);
  truss.edge_cohesions.reserve(num_alive_);
  // tn_->edges is sorted canonically and we preserve its order, so the
  // surviving subsequence is sorted too.
  for (EdgeId e = 0; e < local_edges_.size(); ++e) {
    if (alive_[e]) {
      truss.edges.push_back(tn_->edges[e]);
      truss.edge_cohesions.push_back(cohesion_[e]);
    }
  }
  FillVerticesFromEdges(tn_->vertices, tn_->frequencies, &truss);
  return truss;
}

Edge ThemePeeler::GlobalEdge(EdgeId e) const { return tn_->edges[e]; }

PatternTruss MptdQ(const ThemeNetwork& tn, CohesionValue alpha_q) {
  ThemePeeler peeler(tn);
  peeler.PeelToThreshold(alpha_q);
  return peeler.ExtractTruss();
}

PatternTruss Mptd(const ThemeNetwork& tn, double alpha) {
  return MptdQ(tn, QuantizeAlpha(alpha));
}

}  // namespace tcf
