#include "core/mptd.h"

#include <algorithm>

#include "util/logging.h"

namespace tcf {

void ThemePeeler::Reset(const ThemeNetwork& tn) {
  tn_ = &tn;
  const size_t n = tn.vertices.size();
  const size_t m = tn.edges.size();
  // The two-pass CSR fill below relies on canonical (u,v)-sorted edges
  // (which both induction paths produce); unsorted input would silently
  // break the sorted-merge triangle enumeration, so check it here.
  TCF_CHECK_MSG(std::is_sorted(tn.edges.begin(), tn.edges.end()),
                "theme-network edges must be canonically sorted");

  qfreq_.clear();
  qfreq_.reserve(n);
  for (double f : tn.frequencies) qfreq_.push_back(QuantizeFrequency(f));

  // Global -> local vertex ids via the stamped dense map: one pass over
  // the (sorted) vertex list publishes every mapping, one pass over the
  // edges consumes them — no per-endpoint binary search. Bumping the
  // stamp invalidates the previous network's entries without clearing.
  if (++stamp_value_ == 0) {  // uint32 wrap: flush and restart at 1
    std::fill(stamp_.begin(), stamp_.end(), 0);
    stamp_value_ = 1;
  }
  const size_t id_space = n == 0 ? 0 : static_cast<size_t>(tn.vertices.back()) + 1;
  if (local_of_.size() < id_space) {
    local_of_.resize(id_space);
    stamp_.resize(id_space, 0);
  }
  for (size_t i = 0; i < n; ++i) {
    local_of_[tn.vertices[i]] = static_cast<uint32_t>(i);
    stamp_[tn.vertices[i]] = stamp_value_;
  }

  local_edges_.clear();
  local_edges_.reserve(m);
  for (const Edge& ge : tn.edges) {
    TCF_CHECK(ge.u < id_space && stamp_[ge.u] == stamp_value_);
    TCF_CHECK(ge.v < id_space && stamp_[ge.v] == stamp_value_);
    // tn.vertices is sorted, so local order preserves global order and
    // canonical edges stay canonical locally.
    local_edges_.push_back({local_of_[ge.u], local_of_[ge.v]});
  }

  // CSR adjacency, sorted by neighbour without a per-range sort: for a
  // vertex x, neighbours below x come from edges (u, x) — which the
  // canonical (u, v)-sorted edge list visits in ascending u — and
  // neighbours above x from edges (x, w) in ascending w. Filling all
  // low-side entries first, then all high-side entries, leaves every
  // range sorted.
  adj_offsets_.assign(n + 1, 0);
  for (const LocalEdge& le : local_edges_) {
    ++adj_offsets_[le.u + 1];
    ++adj_offsets_[le.v + 1];
  }
  for (size_t i = 1; i <= n; ++i) adj_offsets_[i] += adj_offsets_[i - 1];
  adj_.resize(2 * m);
  adj_cursor_.assign(adj_offsets_.begin(), adj_offsets_.begin() + n);
  for (EdgeId e = 0; e < m; ++e) {
    const LocalEdge& le = local_edges_[e];
    adj_[adj_cursor_[le.v]++] = {le.u, static_cast<uint32_t>(e)};
  }
  for (EdgeId e = 0; e < m; ++e) {
    const LocalEdge& le = local_edges_[e];
    adj_[adj_cursor_[le.u]++] = {le.v, static_cast<uint32_t>(e)};
  }

  alive_.assign(m, 1);
  num_alive_ = m;
  triangle_visits_ = 0;
  min_heap_.clear();
  min_tracking_ = false;
  ComputeInitialCohesions();
}

template <typename Fn>
void ThemePeeler::ForEachAliveTriangle(EdgeId e, Fn&& fn) const {
  const LocalEdge& le = local_edges_[e];
  const LocalNeighbor* a = adj_.data() + adj_offsets_[le.u];
  const LocalNeighbor* a_end = adj_.data() + adj_offsets_[le.u + 1];
  const LocalNeighbor* b = adj_.data() + adj_offsets_[le.v];
  const LocalNeighbor* b_end = adj_.data() + adj_offsets_[le.v + 1];
  while (a != a_end && b != b_end) {
    if (a->vertex < b->vertex) {
      ++a;
    } else if (a->vertex > b->vertex) {
      ++b;
    } else {
      if (alive_[a->edge] && alive_[b->edge]) {
        fn(a->vertex, a->edge, b->edge);
      }
      ++a;
      ++b;
    }
  }
}

void ThemePeeler::ComputeInitialCohesions() {
  cohesion_.assign(local_edges_.size(), 0);
  for (EdgeId e = 0; e < local_edges_.size(); ++e) {
    const LocalEdge& le = local_edges_[e];
    const CohesionValue fuv = std::min(qfreq_[le.u], qfreq_[le.v]);
    CohesionValue total = 0;
    ForEachAliveTriangle(e, [&](uint32_t w, EdgeId, EdgeId) {
      ++triangle_visits_;
      total += std::min(fuv, qfreq_[w]);
    });
    cohesion_[e] = total;
  }
}

void ThemePeeler::HeapPush(CohesionValue c, EdgeId e) {
  min_heap_.emplace_back(c, e);
  std::push_heap(min_heap_.begin(), min_heap_.end(),
                 std::greater<HeapEntry>());
}

void ThemePeeler::PeelToThreshold(CohesionValue alpha_q,
                                  std::vector<EdgeId>* removed) {
  peel_queue_.clear();
  in_queue_.assign(local_edges_.size(), 0);
  for (EdgeId e = 0; e < local_edges_.size(); ++e) {
    if (alive_[e] && cohesion_[e] <= alpha_q) {
      peel_queue_.push_back(e);
      in_queue_[e] = 1;
    }
  }
  size_t head = 0;
  while (head < peel_queue_.size()) {
    const EdgeId e = peel_queue_[head++];
    if (!alive_[e]) continue;
    // Mark dead *before* enumerating, so the broken triangles are exactly
    // the alive ones that contained e (Alg. 1 lines 11-16).
    alive_[e] = 0;
    --num_alive_;
    const LocalEdge& le = local_edges_[e];
    const CohesionValue fuv = std::min(qfreq_[le.u], qfreq_[le.v]);
    ForEachAliveTriangle(e, [&](uint32_t w, EdgeId e1, EdgeId e2) {
      ++triangle_visits_;
      const CohesionValue m = std::min(fuv, qfreq_[w]);
      for (EdgeId wing : {e1, e2}) {
        cohesion_[wing] -= m;
        if (min_tracking_) HeapPush(cohesion_[wing], wing);
        if (!in_queue_[wing] && cohesion_[wing] <= alpha_q) {
          peel_queue_.push_back(wing);
          in_queue_[wing] = 1;
        }
      }
    });
    if (removed != nullptr) removed->push_back(e);
  }
}

CohesionValue ThemePeeler::MinAliveCohesion() {
  if (!min_tracking_) {
    min_tracking_ = true;
    for (EdgeId e = 0; e < local_edges_.size(); ++e) {
      if (alive_[e]) min_heap_.emplace_back(cohesion_[e], e);
    }
    std::make_heap(min_heap_.begin(), min_heap_.end(),
                   std::greater<HeapEntry>());
  }
  while (!min_heap_.empty()) {
    const auto& [c, e] = min_heap_.front();
    if (alive_[e] && cohesion_[e] == c) return c;
    std::pop_heap(min_heap_.begin(), min_heap_.end(),
                  std::greater<HeapEntry>());
    min_heap_.pop_back();
  }
  return kNoAliveEdges;
}

PatternTruss ThemePeeler::ExtractTruss() const {
  PatternTruss truss;
  truss.pattern = tn_->pattern;
  truss.edges.reserve(num_alive_);
  truss.edge_cohesions.reserve(num_alive_);
  // tn_->edges is sorted canonically and we preserve its order, so the
  // surviving subsequence is sorted too.
  for (EdgeId e = 0; e < local_edges_.size(); ++e) {
    if (alive_[e]) {
      truss.edges.push_back(tn_->edges[e]);
      truss.edge_cohesions.push_back(cohesion_[e]);
    }
  }
  FillVerticesFromEdges(tn_->vertices, tn_->frequencies, &truss);
  return truss;
}

Edge ThemePeeler::GlobalEdge(EdgeId e) const { return tn_->edges[e]; }

PatternTruss MptdQ(const ThemeNetwork& tn, CohesionValue alpha_q) {
  ThemePeeler peeler(tn);
  peeler.PeelToThreshold(alpha_q);
  return peeler.ExtractTruss();
}

PatternTruss Mptd(const ThemeNetwork& tn, double alpha) {
  return MptdQ(tn, QuantizeAlpha(alpha));
}

}  // namespace tcf
