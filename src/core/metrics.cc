#include "core/metrics.h"

#include <algorithm>
#include <map>
#include <set>

namespace tcf {

CommunityMetrics ComputeCommunityMetrics(const DatabaseNetwork& net,
                                         const ThemeCommunity& community) {
  CommunityMetrics m;
  const size_t n = community.vertices.size();
  const size_t e = community.edges.size();
  if (n >= 2) {
    m.edge_density = static_cast<double>(e) /
                     (static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
  }
  if (n > 0) {
    double sum = 0.0, min_f = 1.0;
    for (VertexId v : community.vertices) {
      const double f = net.Frequency(v, community.theme);
      sum += f;
      min_f = std::min(min_f, f);
    }
    m.mean_frequency = sum / static_cast<double>(n);
    m.min_frequency = min_f;
  }
  if (e > 0) {
    // Count triangles inside the community's edge set.
    std::set<Edge> edges(community.edges.begin(), community.edges.end());
    std::map<VertexId, std::vector<VertexId>> adj;
    for (const Edge& edge : community.edges) {
      adj[edge.u].push_back(edge.v);
      adj[edge.v].push_back(edge.u);
    }
    uint64_t triangles = 0;
    for (const Edge& edge : community.edges) {
      for (VertexId w : adj[edge.u]) {
        if (w > edge.v && edges.count(MakeEdge(edge.v, w))) ++triangles;
      }
    }
    // Each triangle counted once via its (u,v) edge with w > v.
    m.triangles_per_edge = static_cast<double>(triangles) /
                           static_cast<double>(e);
  }
  return m;
}

double JaccardSimilarity(const std::vector<VertexId>& a,
                         const std::vector<VertexId>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else { ++inter; ++i; ++j; }
  }
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

RecoveryScore ScoreRecovery(
    const std::vector<std::vector<VertexId>>& ground_truth_groups,
    const std::vector<ThemeCommunity>& mined) {
  RecoveryScore score;
  if (ground_truth_groups.empty()) return score;
  size_t recovered = 0;
  double sum = 0.0;
  for (const auto& group : ground_truth_groups) {
    double best = 0.0;
    for (const ThemeCommunity& c : mined) {
      best = std::max(best, JaccardSimilarity(group, c.vertices));
    }
    sum += best;
    if (best > 0.5) ++recovered;
  }
  score.average_best_jaccard =
      sum / static_cast<double>(ground_truth_groups.size());
  score.recovered_fraction =
      static_cast<double>(recovered) /
      static_cast<double>(ground_truth_groups.size());
  return score;
}

}  // namespace tcf
