#ifndef TCF_CORE_APRIORI_H_
#define TCF_CORE_APRIORI_H_

#include <cstddef>
#include <vector>

#include "tx/itemset.h"

namespace tcf {

/// A length-k candidate produced by joining two qualified length-(k−1)
/// patterns that share their first k−2 items. The parent indices let
/// TCFI fetch the parents' trusses for the Prop.-5.3 intersection.
struct CandidatePattern {
  Itemset pattern;
  size_t parent_a;  // index into the qualified input list
  size_t parent_b;
};

/// \brief Apriori candidate generation (Alg. 2).
///
/// `qualified` must hold distinct, same-length patterns. The result
/// contains each length-k pattern whose every length-(k−1) sub-pattern is
/// qualified, exactly once, with the indexes of the two prefix-sharing
/// parents that joined into it. Output is sorted by pattern.
std::vector<CandidatePattern> GenerateAprioriCandidates(
    const std::vector<Itemset>& qualified);

}  // namespace tcf

#endif  // TCF_CORE_APRIORI_H_
