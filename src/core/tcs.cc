#include "core/tcs.h"

#include <unordered_set>

#include "core/mptd.h"
#include "tx/fim.h"

namespace tcf {

MiningResult RunTcs(const DatabaseNetwork& net, const TcsOptions& options) {
  MiningResult result;

  // Candidate patterns: union of per-vertex frequent itemsets.
  std::unordered_set<Itemset, ItemsetHash> candidates;
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    auto mined = MineFrequentItemsets(net.vertical(v), options.epsilon,
                                      options.max_pattern_length);
    for (auto& fp : mined) candidates.insert(std::move(fp.pattern));
  }
  result.counters.candidates_generated = candidates.size();

  for (const Itemset& p : candidates) {
    ++result.counters.mptd_calls;  // one evaluation per candidate
    ThemeNetwork tn = InduceThemeNetwork(net, p);
    if (tn.empty()) continue;
    ThemePeeler peeler(tn);
    peeler.PeelToThreshold(QuantizeAlpha(options.alpha));
    result.counters.triangle_visits += peeler.triangle_visits();
    if (peeler.num_alive() > 0) {
      result.trusses.push_back(peeler.ExtractTruss());
      ++result.counters.qualified_patterns;
    }
  }
  result.Canonicalize();
  return result;
}

}  // namespace tcf
