#ifndef TCF_OBS_METRICS_REGISTRY_H_
#define TCF_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tcf {

/// \file
/// \brief Process metrics for the serving layer (docs/observability.md).
///
/// A MetricsRegistry holds named counters, gauges, and log-bucketed
/// histograms and renders them in the Prometheus text exposition format
/// (served by the `METRICS` protocol verb). The design splits hot from
/// cold: *recording* never takes a mutex — counters and histograms are
/// striped relaxed atomics, sized so concurrent workers land on
/// different cache lines — while *registration* and *rendering* (a
/// handful of calls per process lifetime / scrape) take one registry
/// mutex. Instruments are arena-allocated and never move or die before
/// the registry does, so callers cache `Counter&` references at startup
/// and record through them for free.

/// Destructive-interference guard for the stripe arrays: one stripe per
/// cache line, so two workers bumping different stripes never ping-pong
/// a line between cores.
inline constexpr size_t kMetricCacheLine = 64;

/// \brief Monotonic counter. Value() folds the stripes; Increment() is
/// one relaxed fetch_add on the calling thread's stripe.
class Counter {
 public:
  static constexpr size_t kStripes = 16;

  void Increment(uint64_t n = 1);
  uint64_t Value() const;

 private:
  struct alignas(kMetricCacheLine) Stripe {
    std::atomic<uint64_t> value{0};
    char pad[kMetricCacheLine - sizeof(std::atomic<uint64_t>)];
  };
  std::array<Stripe, kStripes> stripes_{};
};

/// \brief Last-write-wins instantaneous value (e.g. a high-water mark
/// mirrored out of another subsystem).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// \brief Log2-bucketed histogram for positive samples (microseconds,
/// node counts, frontier widths). Bucket upper bounds are 1, 2, 4, ...,
/// 2^20, +Inf — 22 buckets spanning sub-microsecond to ~1 s with ≤ 2×
/// relative error, which is all a latency tail needs. Recording is two
/// relaxed atomic adds (bucket + count) and one CAS-add (sum) on the
/// calling thread's stripe; no mutex, no allocation.
class Histogram {
 public:
  static constexpr size_t kBuckets = 22;  // le=2^0 .. 2^20, then +Inf
  static constexpr size_t kStripes = 8;

  void Record(double value);

  /// Point-in-time fold of all stripes.
  struct Snapshot {
    std::array<uint64_t, kBuckets> buckets{};  // per-bucket counts
    uint64_t count = 0;
    double sum = 0;
  };
  Snapshot Fold() const;

  /// Upper bound of bucket `i` (+Inf for the last), for rendering.
  static double BucketBound(size_t i);

 private:
  struct alignas(kMetricCacheLine) Stripe {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0};
  };
  std::array<Stripe, kStripes> stripes_{};
};

/// Estimates quantile `q` (in [0,1]) from a folded histogram by linear
/// interpolation inside the bucket where the cumulative count crosses
/// q·count — the standard Prometheus `histogram_quantile` arithmetic,
/// so a scraped p99 gauge and a recording rule agree. Samples landing
/// in the +Inf bucket clamp to the last finite bound (the estimate is
/// a floor there, not a lie about magnitude). Returns 0 for an empty
/// histogram.
double HistogramQuantile(const Histogram::Snapshot& snap, double q);

/// \brief Named-instrument registry with Prometheus text rendering.
///
/// Get* registers on first use and returns a stable reference (the
/// arena outlives every caller holding one, registries being owned by
/// the long-lived QueryService). RegisterCallback adds a scrape-time
/// instrument for values another subsystem already maintains (cache
/// residency, active connections): the callback runs under the registry
/// mutex during Render, so it must be cheap and must not call back into
/// the registry. Metric names follow Prometheus conventions:
/// `tcf_<noun>_total` for counters, `_us` suffix for microsecond
/// histograms.
class MetricsRegistry {
 public:
  enum class CallbackKind { kCounter, kGauge };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help);
  Gauge& GetGauge(const std::string& name, const std::string& help);
  Histogram& GetHistogram(const std::string& name, const std::string& help);

  /// Scrape-time instrument: `fn()` is sampled on every Render.
  void RegisterCallback(const std::string& name, const std::string& help,
                        CallbackKind kind, std::function<double()> fn);

  /// Renders every registered instrument in the Prometheus text
  /// exposition format (# HELP / # TYPE preambles, `_bucket{le=...}` /
  /// `_sum` / `_count` series for histograms), names in lexicographic
  /// order. Values are a point-in-time fold; different instruments may
  /// be torn relative to each other (scrapes are not transactions).
  std::string Render() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };
  struct Entry {
    Kind kind;
    std::string help;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
    CallbackKind callback_kind = CallbackKind::kGauge;
    std::function<double()> callback;
  };

  Entry& Register(const std::string& name, const std::string& help,
                  Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // sorted render order
  // Instrument arenas: deque for stable addresses across growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace tcf

#endif  // TCF_OBS_METRICS_REGISTRY_H_
