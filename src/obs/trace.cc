#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace tcf {

std::string_view QueryStageName(QueryStage stage) {
  switch (stage) {
    case QueryStage::kParse:
      return "parse";
    case QueryStage::kCacheProbe:
      return "cache_probe";
    case QueryStage::kCompose:
      return "compose";
    case QueryStage::kWalk:
      return "walk";
    case QueryStage::kSerialize:
      return "serialize";
  }
  return "unknown";
}

double QueryTrace::StageSumUs() const {
  double sum = 0;
  for (double us : stage_wall_us) sum += us;
  return sum;
}

StageSpan::StageSpan(QueryTrace* trace, QueryStage stage)
    : trace_(trace), stage_(stage) {
  if (trace_ == nullptr) return;
  wall_start_ = std::chrono::steady_clock::now();
  if (trace_->sample_cpu) cpu_start_s_ = ThreadCpuTimer::NowSeconds();
}

void StageSpan::Stop() {
  if (trace_ == nullptr) return;
  const size_t i = static_cast<size_t>(stage_);
  trace_->stage_wall_us[i] +=
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - wall_start_)
          .count();
  if (trace_->sample_cpu) {
    trace_->stage_cpu_us[i] +=
        (ThreadCpuTimer::NowSeconds() - cpu_start_s_) * 1e6;
  }
  trace_ = nullptr;
}

SlowQueryLog::SlowQueryLog(double threshold_us, size_t capacity)
    : threshold_us_(threshold_us), capacity_(std::max<size_t>(1, capacity)) {}

void SlowQueryLog::Record(std::string query_line, const QueryTrace& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() == capacity_) ring_.pop_front();  // oldest goes first
  Entry entry;
  entry.seq = next_seq_++;
  entry.query_line = std::move(query_line);
  entry.trace = trace;
  ring_.push_back(std::move(entry));
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

}  // namespace tcf
