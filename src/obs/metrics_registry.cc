#include "obs/metrics_registry.h"

#include <cmath>
#include <functional>
#include <limits>
#include <thread>

#include "util/logging.h"
#include "util/string_util.h"

namespace tcf {
namespace {

/// Stripe choice: hash of the thread id, computed once per thread. Two
/// threads may share a stripe (kStripes is a bound, not a guarantee) —
/// correctness never depends on exclusivity, only the contention odds.
size_t ThisThreadStripe(size_t num_stripes) {
  static thread_local const size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h % num_stripes;
}

/// Relaxed CAS-add for atomic<double> (no fetch_add overload pre-C++20
/// on every libstdc++ we build against).
void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// Renders a sample value the way Prometheus expects: integral values
/// without a fractional part, everything else with enough digits.
std::string RenderValue(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.6g", v);
}

}  // namespace

void Counter::Increment(uint64_t n) {
  stripes_[ThisThreadStripe(kStripes)].value.fetch_add(
      n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Add(double v) { AtomicAdd(value_, v); }

double Histogram::BucketBound(size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
  return static_cast<double>(uint64_t{1} << i);
}

void Histogram::Record(double value) {
  // Bucket index = ceil(log2(value)) clamped to the range; <= 1 lands in
  // bucket 0, anything past 2^20 in the +Inf bucket. The loop is at most
  // 21 shifts — cheaper than a libm log2 call and exact at the bounds.
  size_t b = 0;
  while (b + 1 < kBuckets && value > BucketBound(b)) ++b;
  Stripe& s = stripes_[ThisThreadStripe(kStripes)];
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(s.sum, value);
}

Histogram::Snapshot Histogram::Fold() const {
  Snapshot snap;
  for (const Stripe& s : stripes_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramQuantile(const Histogram::Snapshot& snap, double q) {
  if (snap.count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double rank = q * static_cast<double>(snap.count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    const uint64_t in_bucket = snap.buckets[b];
    if (in_bucket == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    const double hi = Histogram::BucketBound(b);
    if (std::isinf(hi)) {
      // +Inf bucket: report the last finite bound rather than inventing
      // an upper edge to interpolate against.
      return Histogram::BucketBound(Histogram::kBuckets - 2);
    }
    const double lo = b == 0 ? 0 : Histogram::BucketBound(b - 1);
    const double frac = (rank - below) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * frac;
  }
  return Histogram::BucketBound(Histogram::kBuckets - 2);
}

MetricsRegistry::Entry& MetricsRegistry::Register(const std::string& name,
                                                  const std::string& help,
                                                  Kind kind) {
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& entry = it->second;
  if (!inserted) {
    // Same-name re-registration returns the existing instrument; a kind
    // clash is a programming error worth failing loudly on.
    TCF_CHECK_MSG(entry.kind == kind,
                  "metric '" << name << "' re-registered with another kind");
    return entry;
  }
  entry.kind = kind;
  entry.help = help;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = &counters_.emplace_back();
      break;
    case Kind::kGauge:
      entry.gauge = &gauges_.emplace_back();
      break;
    case Kind::kHistogram:
      entry.histogram = &histograms_.emplace_back();
      break;
    case Kind::kCallback:
      break;  // callback assigned by the caller
  }
  return entry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  return *Register(name, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  return *Register(name, help, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  return *Register(name, help, Kind::kHistogram).histogram;
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       const std::string& help,
                                       CallbackKind kind,
                                       std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = Register(name, help, Kind::kCallback);
  entry.callback_kind = kind;
  entry.callback = std::move(fn);
}

std::string MetricsRegistry::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    out += "# HELP " + name + " " + entry.help + "\n";
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " +
               StrFormat("%llu", static_cast<unsigned long long>(
                                     entry.counter->Value())) +
               "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + RenderValue(entry.gauge->Value()) + "\n";
        break;
      case Kind::kCallback:
        out += "# TYPE " + name + " " +
               (entry.callback_kind == CallbackKind::kCounter ? "counter"
                                                              : "gauge") +
               "\n";
        out += name + " " + RenderValue(entry.callback()) + "\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const Histogram::Snapshot snap = entry.histogram->Fold();
        uint64_t cumulative = 0;
        for (size_t b = 0; b < Histogram::kBuckets; ++b) {
          cumulative += snap.buckets[b];
          const double bound = Histogram::BucketBound(b);
          const std::string le =
              std::isinf(bound) ? "+Inf" : RenderValue(bound);
          out += name + "_bucket{le=\"" + le + "\"} " +
                 StrFormat("%llu",
                           static_cast<unsigned long long>(cumulative)) +
                 "\n";
        }
        out += name + "_sum " + RenderValue(snap.sum) + "\n";
        out += name + "_count " +
               StrFormat("%llu",
                         static_cast<unsigned long long>(snap.count)) +
               "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace tcf
