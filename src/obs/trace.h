#ifndef TCF_OBS_TRACE_H_
#define TCF_OBS_TRACE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.h"

namespace tcf {

/// \file
/// \brief Request-scoped trace spans for the query path
/// (docs/observability.md).
///
/// A QueryTrace rides along one query through QueryService::Execute and
/// records where its microseconds went — the same stage decomposition
/// the paper's evaluation uses (parse → cache probe → compose → walk →
/// serialize), plus the walk facts that explain the numbers (nodes
/// visited, Prop-5.2 prunes, covers reused, composed vs cold). Traces
/// feed three consumers: per-stage latency histograms in the
/// MetricsRegistry, the threshold-gated SlowQueryLog ring, and the
/// `EXPLAIN` protocol verb, which returns one query's trace verbatim.

/// The stages of one query's life, in execution order. kParse and
/// kSerialize happen in the transport (TcpServer); the middle three in
/// QueryService::Execute.
enum class QueryStage {
  kParse = 0,       // request line -> ServeQuery (dictionary resolution)
  kCacheProbe = 1,  // exact-match result-cache lookup
  kCompose = 2,     // cover planning + ComposeTcTreeQuery
  kWalk = 3,        // full QueryTcTree tree walk
  kSerialize = 4,   // trusses -> wire lines
};
inline constexpr size_t kNumQueryStages = 5;

/// Stable lower-case stage name ("parse", "cache_probe", ...), used for
/// metric names and EXPLAIN keys.
std::string_view QueryStageName(QueryStage stage);

/// \brief Everything observed about one query's execution.
///
/// Plain data, written single-threaded by the executing worker; cheap
/// enough to live on the stack of every traced request.
struct QueryTrace {
  /// Per-stage wall time, microseconds (0 for stages that never ran).
  std::array<double, kNumQueryStages> stage_wall_us{};
  /// Per-stage thread-CPU time, microseconds; recorded only when
  /// `sample_cpu` is set. Wall >> CPU on a stage means
  /// queueing/preemption, not work — the first thing an operator checks
  /// on an oversubscribed box.
  std::array<double, kNumQueryStages> stage_cpu_us{};
  /// Opt-in for the stage_cpu_us columns. The thread-CPU clock is a
  /// real syscall per span edge (unlike the vDSO wall clock), so
  /// ambient always-on tracing leaves this off; EXPLAIN — one
  /// deliberately instrumented request — turns it on.
  bool sample_cpu = false;
  /// End-to-end wall time as measured by the enclosing scope (Execute,
  /// or the transport handler for EXPLAIN — which then includes parse
  /// and serialize).
  double total_us = 0;

  // Walk facts (copied from the TcTreeQueryResult / compose stats).
  uint64_t visited_nodes = 0;    // decompositions consulted
  uint64_t retrieved_nodes = 0;  // non-empty trusses collected
  uint64_t pruned_subtrees = 0;  // Prop-5.2 subtree cuts
  uint64_t covers_used = 0;      // cached sub-pattern answers reused
  uint64_t trusses = 0;          // result size
  bool cache_hit = false;        // exact-match hit, no walk at all
  bool composed = false;         // answered by cover composition
  /// Shards this query fanned out to (serve/shard_router.h). 0 means
  /// the query ran on an unsharded backend; 1 is the sharded
  /// single-owner fast path; >1 is a scatter-gather merge.
  uint64_t shards_probed = 0;
  /// Streaming updates the backend had applied when this query ran
  /// (core/tc_tree_update.h) — pins an EXPLAIN to an index freshness
  /// generation, so an answer can be correlated with the update that
  /// last moved it.
  uint64_t updates_applied = 0;
  /// True when the request deadline expired mid-execution: the walk
  /// facts above are partial-work counters, and the transport answered
  /// ERR DeadlineExceeded instead of trusses (docs/robustness.md).
  bool deadline_exceeded = false;

  /// Sum of the recorded stage wall times (the EXPLAIN invariant: this
  /// must land within 10% of total_us on a loopback run).
  double StageSumUs() const;
};

/// \brief RAII stage span: records wall (and, when the trace asks,
/// thread-CPU) time into `trace->stage_*[stage]` on destruction (or
/// Stop(), whichever is first). Null trace = disabled: no clock is
/// read at all, the span costs two branches.
class StageSpan {
 public:
  StageSpan(QueryTrace* trace, QueryStage stage);
  ~StageSpan() { Stop(); }

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

  /// Ends the span early (idempotent).
  void Stop();

 private:
  QueryTrace* trace_;
  QueryStage stage_;
  std::chrono::steady_clock::time_point wall_start_{};
  double cpu_start_s_ = 0;
};

/// \brief Fixed-capacity ring of the slowest-path evidence: queries
/// whose total latency crossed the threshold, oldest evicted first.
///
/// The lock is taken only for queries that *are* slow (and for
/// Snapshot), so the common fast path costs one relaxed load. Entries
/// carry the rendered query line so the operator can replay the exact
/// request (`EXPLAIN <line>`).
class SlowQueryLog {
 public:
  struct Entry {
    uint64_t seq = 0;  // monotonically increasing admission number
    std::string query_line;
    QueryTrace trace;
  };

  /// `threshold_us <= 0` disables the log entirely. `capacity` is
  /// clamped to at least 1.
  SlowQueryLog(double threshold_us, size_t capacity);

  /// True when a total latency of `total_us` qualifies as slow — the
  /// caller checks this *before* paying to render the query line.
  bool Qualifies(double total_us) const {
    return threshold_us_ > 0 && total_us >= threshold_us_;
  }

  /// Admits one slow query (evicting the oldest entry at capacity).
  void Record(std::string query_line, const QueryTrace& trace);

  /// Oldest-to-newest copy of the ring.
  std::vector<Entry> Snapshot() const;

  double threshold_us() const { return threshold_us_; }
  /// Total queries ever admitted (≥ ring size; eviction never decrements).
  uint64_t total_recorded() const;

 private:
  const double threshold_us_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Entry> ring_;
  uint64_t next_seq_ = 0;
};

}  // namespace tcf

#endif  // TCF_OBS_TRACE_H_
