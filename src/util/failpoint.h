#ifndef TCF_UTIL_FAILPOINT_H_
#define TCF_UTIL_FAILPOINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tcf {

/// \file
/// \brief Named fault-injection points (docs/robustness.md).
///
/// A failpoint is a named site in the code that can be made to fail on
/// demand, so tests can drive error paths that real hardware rarely
/// takes (mmap failures mid-RELOAD, allocation pressure mid-walk,
/// EAGAIN storms on socket writes). The whole harness is **disarmed
/// unless the process environment carries `TCF_FAILPOINTS=1`**: a
/// disarmed check is one relaxed atomic load and a branch, so
/// production binaries pay nothing and no build flag is needed.
///
/// Armed, each failpoint fires according to its configured trigger:
///   `off`       — never fires (the default for unconfigured names)
///   `always`    — fires on every evaluation
///   `prob:P`    — fires with probability P in [0,1] per evaluation
///   `after:N`   — stays quiet for N evaluations, then fires forever
///   `times:N`   — fires on the first N evaluations, then goes quiet
/// Initial configuration comes from the `TCF_FAILPOINTS_SPEC`
/// environment variable (`name=trigger,name=trigger,...`, read once at
/// arm time); tests reconfigure at runtime with ConfigureFailpoint.
/// The failpoint catalog lives in docs/robustness.md.

/// True iff `TCF_FAILPOINTS=1` was in the environment at first call
/// (cached; later calls are one relaxed load).
bool FailpointsArmed();

/// Sets `name`'s trigger (see the grammar above). Works whether or not
/// the harness is armed — an unarmed harness just never evaluates.
Status ConfigureFailpoint(std::string_view name, std::string_view trigger);

/// Applies a `name=trigger,name=trigger,...` spec (the
/// TCF_FAILPOINTS_SPEC form). Empty spec is OK and a no-op.
Status ConfigureFailpointsFromSpec(std::string_view spec);

/// Clears every configured trigger and evaluation counter.
void ResetFailpoints();

/// Times `name` has been evaluated while armed (for tests asserting a
/// site is actually exercised).
uint64_t FailpointEvaluations(std::string_view name);

/// Evaluates `name`: false when the harness is disarmed or the trigger
/// says no; true when the site should fail now.
bool FailpointShouldFail(std::string_view name);

}  // namespace tcf

/// The check sites use: short-circuits to `false` on the armed flag
/// before any registry work.
#define TCF_FAILPOINT(name) \
  (::tcf::FailpointsArmed() && ::tcf::FailpointShouldFail(name))

#endif  // TCF_UTIL_FAILPOINT_H_
