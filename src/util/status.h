#ifndef TCF_UTIL_STATUS_H_
#define TCF_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace tcf {

/// \brief Result of a fallible operation, in the RocksDB/Arrow style.
///
/// A `Status` is either OK or carries an error code plus a human-readable
/// message. Library boundaries that can fail for reasons other than
/// programming errors (I/O, parsing, user-supplied parameters) return
/// `Status` or `StatusOr<T>`; internal invariants use assertions instead.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kOutOfRange,
    kCorruption,
    kIOError,
    kUnimplemented,
    kInternal,
    kDeadlineExceeded,
    kRateLimited,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status RateLimited(std::string msg) {
    return Status(Code::kRateLimited, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsUnimplemented() const { return code_ == Code::kUnimplemented; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }
  bool IsRateLimited() const { return code_ == Code::kRateLimited; }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Human-readable name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(Status::Code code);

/// \brief Either a value of type `T` or an error `Status`.
///
/// Mirrors `arrow::Result` / `absl::StatusOr`. Access to the value of a
/// non-OK `StatusOr` is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define TCF_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::tcf::Status _tcf_status = (expr);      \
    if (!_tcf_status.ok()) return _tcf_status; \
  } while (false)

}  // namespace tcf

#endif  // TCF_UTIL_STATUS_H_
