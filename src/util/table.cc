#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tcf {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (size_t c = 0; c < width.size(); ++c) {
      for (size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (size_t i = cells[c].size(); i < width[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

namespace {
std::string CsvEscape(const std::string& f) {
  if (f.find_first_of(",\"\n") == std::string::npos) return f;
  std::string out = "\"";
  for (char ch : f) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TextTable::PrintCsv(std::ostream& os) const {
  auto row_out = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << CsvEscape(cells[c]);
    }
    os << '\n';
  };
  row_out(header_);
  for (const auto& row : rows_) row_out(row);
}

std::string TextTable::Num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string TextTable::Num(uint64_t v) { return std::to_string(v); }
std::string TextTable::Num(int64_t v) { return std::to_string(v); }

std::string TextTable::Sci(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", prec, v);
  return buf;
}

}  // namespace tcf
