#ifndef TCF_UTIL_MEMORY_H_
#define TCF_UTIL_MEMORY_H_

#include <cstdint>

namespace tcf {

/// Peak resident set size of this process in bytes, read from
/// /proc/self/status (VmHWM). Returns 0 when unavailable (non-Linux).
///
/// Used by the Table 3 indexing harness to report the "Memory" column.
uint64_t PeakRssBytes();

/// Current resident set size in bytes (VmRSS). 0 when unavailable.
uint64_t CurrentRssBytes();

/// Formats a byte count as a human-readable string ("28.3 GB", "512 KB").
/// Uses base-1024 units, matching the paper's reporting.
const char* ByteUnits(uint64_t bytes, double* scaled);

/// Convenience: "28.3 GB"-style string.
struct HumanBytes {
  explicit HumanBytes(uint64_t b) : bytes(b) {}
  uint64_t bytes;
};

}  // namespace tcf

#include <ostream>
namespace tcf {
std::ostream& operator<<(std::ostream& os, const HumanBytes& hb);
}  // namespace tcf

#endif  // TCF_UTIL_MEMORY_H_
