#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace tcf {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mu;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo:  return "I";
    case LogLevel::kWarn:  return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::cerr << stream_.str() << std::endl;
}

}  // namespace internal
}  // namespace tcf
