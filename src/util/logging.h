#ifndef TCF_UTIL_LOGGING_H_
#define TCF_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tcf {

/// Log severities, ascending.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is filtered out.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace tcf

#define TCF_LOG(level)                                                  \
  (::tcf::LogLevel::k##level < ::tcf::GetLogLevel())                    \
      ? (void)0                                                         \
      : ::tcf::internal::LogVoidify() &                                 \
            ::tcf::internal::LogMessage(::tcf::LogLevel::k##level,      \
                                        __FILE__, __LINE__)             \
                .stream()

/// Fatal invariant check, active in all build types. Prefer for internal
/// invariants whose violation means a bug, not a user error.
#define TCF_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::cerr << "TCF_CHECK failed at " << __FILE__ << ":" << __LINE__  \
                << ": " #cond << std::endl;                               \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define TCF_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::cerr << "TCF_CHECK failed at " << __FILE__ << ":" << __LINE__  \
                << ": " #cond << " — " << msg << std::endl;               \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#endif  // TCF_UTIL_LOGGING_H_
