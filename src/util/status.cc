#include "util/status.h"

namespace tcf {

std::string_view StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kUnimplemented:
      return "Unimplemented";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kRateLimited:
      return "RateLimited";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace tcf
