#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace tcf {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the top of the range to kill modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  uint64_t r = (span == 0) ? Next() : NextUint64(span);
  return lo + static_cast<int64_t>(r);
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  assert(n > 0);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (uint64_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
      zipf_cdf_[r] = acc;
    }
    const double total = acc;
    for (auto& c : zipf_cdf_) c /= total;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

double Rng::NextGaussian() {
  if (has_gaussian_spare_) {
    has_gaussian_spare_ = false;
    return gaussian_spare_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  gaussian_spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_gaussian_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

std::vector<uint64_t> Rng::SampleDistinct(uint64_t n, uint64_t k) {
  assert(k <= n);
  // Floyd's algorithm: k iterations, each inserting one distinct value.
  std::set<uint64_t> chosen;
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = NextUint64(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return std::vector<uint64_t>(chosen.begin(), chosen.end());
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace tcf
