#include "util/thread_pool.h"

#include <algorithm>
#include <latch>

namespace tcf {

namespace {
/// Worker identity of the calling thread, set once when a pool worker
/// starts and never changed (a worker belongs to one pool for life).
thread_local size_t tls_worker_index = ThreadPool::kNotAWorker;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk to avoid per-iteration queue overhead on large n.
  const size_t chunks = std::min(n, pool.num_threads() * 4);
  const size_t step = (n + chunks - 1) / chunks;
  for (size_t begin = 0; begin < n; begin += step) {
    const size_t end = std::min(n, begin + step);
    pool.Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.Wait();
}

void ParallelForDynamic(ThreadPool& pool, size_t n,
                        const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_tasks = std::min(n, pool.num_threads());
  std::atomic<size_t> next{0};
  std::latch done(static_cast<ptrdiff_t>(num_tasks));
  for (size_t t = 0; t < num_tasks; ++t) {
    pool.Submit([&next, &done, &fn, n] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
      done.count_down();
    });
  }
  done.wait();
}

size_t HardwareThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

}  // namespace tcf
