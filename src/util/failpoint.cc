#include "util/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <random>
#include <unordered_map>

#include "util/string_util.h"

namespace tcf {
namespace {

enum class TriggerMode { kOff, kAlways, kProb, kAfter, kTimes };

struct FailpointState {
  TriggerMode mode = TriggerMode::kOff;
  double prob = 0;      // kProb
  uint64_t n = 0;       // kAfter / kTimes threshold
  uint64_t evals = 0;   // evaluations while armed
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, FailpointState> points;
  // Deterministic per-process stream is fine: chaos tests assert
  // "clean status under faults", never a specific fault schedule.
  std::mt19937_64 rng{0x7cf5a11ed5eedULL};
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Arms once from the environment; the spec variable is applied at the
/// same moment so `TCF_FAILPOINTS=1 TCF_FAILPOINTS_SPEC=... tcf serve`
/// needs no code-side setup.
bool ArmFromEnvironment() {
  const char* armed = std::getenv("TCF_FAILPOINTS");
  if (armed == nullptr || std::string_view(armed) != "1") return false;
  if (const char* spec = std::getenv("TCF_FAILPOINTS_SPEC")) {
    // A bad spec in the environment must not crash the process the
    // harness exists to protect; it just stays unconfigured.
    (void)ConfigureFailpointsFromSpec(spec);
  }
  return true;
}

}  // namespace

bool FailpointsArmed() {
  static const bool armed = ArmFromEnvironment();
  return armed;
}

Status ConfigureFailpoint(std::string_view name,
                          std::string_view trigger) {
  if (name.empty()) {
    return Status::InvalidArgument("failpoint name is empty");
  }
  FailpointState state;
  if (trigger == "off") {
    state.mode = TriggerMode::kOff;
  } else if (trigger == "always") {
    state.mode = TriggerMode::kAlways;
  } else if (StartsWith(trigger, "prob:")) {
    auto p = ParseDouble(trigger.substr(5));
    if (!p.ok() || *p < 0 || *p > 1) {
      return Status::InvalidArgument(
          StrFormat("failpoint '%.*s': prob wants a probability in "
                    "[0,1], got '%.*s'",
                    static_cast<int>(name.size()), name.data(),
                    static_cast<int>(trigger.size()), trigger.data()));
    }
    state.mode = TriggerMode::kProb;
    state.prob = *p;
  } else if (StartsWith(trigger, "after:")) {
    auto n = ParseUint64(trigger.substr(6));
    if (!n.ok()) {
      return Status::InvalidArgument(
          StrFormat("failpoint '%.*s': after wants a count, got '%.*s'",
                    static_cast<int>(name.size()), name.data(),
                    static_cast<int>(trigger.size()), trigger.data()));
    }
    state.mode = TriggerMode::kAfter;
    state.n = *n;
  } else if (StartsWith(trigger, "times:")) {
    auto n = ParseUint64(trigger.substr(6));
    if (!n.ok()) {
      return Status::InvalidArgument(
          StrFormat("failpoint '%.*s': times wants a count, got '%.*s'",
                    static_cast<int>(name.size()), name.data(),
                    static_cast<int>(trigger.size()), trigger.data()));
    }
    state.mode = TriggerMode::kTimes;
    state.n = *n;
  } else {
    return Status::InvalidArgument(
        StrFormat("failpoint '%.*s': trigger '%.*s' is not off|always|"
                  "prob:P|after:N|times:N",
                  static_cast<int>(name.size()), name.data(),
                  static_cast<int>(trigger.size()), trigger.data()));
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points[std::string(name)] = state;
  return Status::OK();
}

Status ConfigureFailpointsFromSpec(std::string_view spec) {
  for (const std::string& entry : Split(spec, ',')) {
    const std::string_view t = Trim(entry);
    if (t.empty()) continue;
    const size_t eq = t.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("failpoint spec entry '%.*s' is not 'name=trigger'",
                    static_cast<int>(t.size()), t.data()));
    }
    TCF_RETURN_IF_ERROR(
        ConfigureFailpoint(Trim(t.substr(0, eq)), Trim(t.substr(eq + 1))));
  }
  return Status::OK();
}

void ResetFailpoints() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
}

uint64_t FailpointEvaluations(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.points.find(std::string(name));
  return it == registry.points.end() ? 0 : it->second.evals;
}

bool FailpointShouldFail(std::string_view name) {
  if (!FailpointsArmed()) return false;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.points.find(std::string(name));
  if (it == registry.points.end()) return false;
  FailpointState& state = it->second;
  const uint64_t eval = state.evals++;
  switch (state.mode) {
    case TriggerMode::kOff:
      return false;
    case TriggerMode::kAlways:
      return true;
    case TriggerMode::kProb:
      return std::uniform_real_distribution<double>(0.0, 1.0)(
                 registry.rng) < state.prob;
    case TriggerMode::kAfter:
      return eval >= state.n;
    case TriggerMode::kTimes:
      return eval < state.n;
  }
  return false;
}

}  // namespace tcf
