#ifndef TCF_UTIL_TABLE_H_
#define TCF_UTIL_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace tcf {

/// \brief Column-aligned text table used by the benchmark harnesses to
/// print paper-style result tables, with optional CSV export.
///
/// Usage:
/// \code
///   TextTable t({"alpha", "time(s)", "NP"});
///   t.AddRow({"0.1", "12.3", "4567"});
///   t.Print(std::cout);       // aligned text
///   t.PrintCsv(std::cout);    // machine-readable
/// \endcode
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; its size must equal the header size.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return header_.size(); }

  /// Writes an aligned, boxed text rendering.
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (fields with commas/quotes get quoted).
  void PrintCsv(std::ostream& os) const;

  /// Formats a double with `prec` significant decimal digits.
  static std::string Num(double v, int prec = 4);
  /// Formats an integer with no grouping.
  static std::string Num(uint64_t v);
  static std::string Num(int64_t v);
  /// Formats a double in scientific notation, e.g. "1.23e+04".
  static std::string Sci(double v, int prec = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcf

#endif  // TCF_UTIL_TABLE_H_
