#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tcf {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

StatusOr<uint64_t> ParseUint64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  uint64_t v = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') {
      return Status::InvalidArgument("not an unsigned integer: " +
                                     std::string(s));
    }
    uint64_t d = static_cast<uint64_t>(ch - '0');
    if (v > (UINT64_MAX - d) / 10) {
      return Status::OutOfRange("integer overflow: " + std::string(s));
    }
    v = v * 10 + d;
  }
  return v;
}

StatusOr<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::InvalidArgument("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  if (errno == ERANGE) return Status::OutOfRange("double overflow: " + buf);
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace tcf
