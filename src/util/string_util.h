#ifndef TCF_UTIL_STRING_UTIL_H_
#define TCF_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tcf {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips leading/trailing whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a non-negative integer; rejects trailing garbage.
StatusOr<uint64_t> ParseUint64(std::string_view s);

/// Parses a double; rejects trailing garbage.
StatusOr<double> ParseDouble(std::string_view s);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace tcf

#endif  // TCF_UTIL_STRING_UTIL_H_
