#ifndef TCF_UTIL_TIMER_H_
#define TCF_UTIL_TIMER_H_

#include <chrono>

namespace tcf {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

  /// Microseconds elapsed.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tcf

#endif  // TCF_UTIL_TIMER_H_
