#ifndef TCF_UTIL_TIMER_H_
#define TCF_UTIL_TIMER_H_

#include <chrono>
#include <ctime>

namespace tcf {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

  /// Microseconds elapsed.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// Measures compute cost, not elapsed time: preemption and worker-pool
/// oversubscription do not inflate it, which is what a load-independent
/// cost model (e.g. the serving layer's work-aware composition gate)
/// needs — a wall clock under N threads on M < N cores reads N/M times
/// the true cost. Falls back to 0-duration readings if the clock is
/// unavailable (no known platform we build on).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Now(); }

  /// CPU seconds this thread spent since construction or Reset().
  double Seconds() const { return Now() - start_; }

  /// CPU microseconds elapsed.
  double Micros() const { return Seconds() * 1e6; }

  /// One raw reading of the thread-CPU clock, in seconds. For callers
  /// that need to sample lazily/conditionally (obs::StageSpan) instead
  /// of paying the constructor's read.
  static double NowSeconds() { return Now(); }

 private:
  static double Now() {
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  double start_;
};

}  // namespace tcf

#endif  // TCF_UTIL_TIMER_H_
