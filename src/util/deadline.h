#ifndef TCF_UTIL_DEADLINE_H_
#define TCF_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace tcf {

/// \brief A point in time after which a request should stop working.
///
/// Carried by value through the query path (ServeQuery ->
/// TcTreeQueryOptions -> the walk loops), so cancellation is
/// cooperative: long loops call Expired() at cheap intervals — every
/// `kDeadlineCheckStride` visited nodes, one steady_clock read per
/// check — and unwind with whatever partial-work counters they have.
/// A default-constructed Deadline is unbounded and costs two branches
/// per check, never a clock read.
class Deadline {
 public:
  /// Unbounded: Expired() is always false.
  Deadline() = default;

  /// Expires `ms` milliseconds from now (0 = unbounded).
  static Deadline AfterMillis(uint64_t ms) {
    Deadline d;
    if (ms > 0) {
      d.bounded_ = true;
      d.at_ = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(ms);
    }
    return d;
  }

  /// Already expired (used by the fault-injection harness to drive the
  /// real cancellation path without waiting).
  static Deadline Expired() {
    Deadline d;
    d.bounded_ = true;
    d.at_ = std::chrono::steady_clock::time_point::min();
    return d;
  }

  bool bounded() const { return bounded_; }

  /// True once the budget is spent. Reads the clock only when bounded.
  bool IsExpired() const {
    return bounded_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds left (clamped at 0); 0 when unbounded too — callers
  /// gate on bounded() first.
  double RemainingMillis() const {
    if (!bounded_) return 0;
    // Compare before subtracting: time_point::min() minus now would
    // overflow the duration representation and report a huge budget.
    const auto now = std::chrono::steady_clock::now();
    if (at_ <= now) return 0;
    return std::chrono::duration<double, std::milli>(at_ - now).count();
  }

 private:
  bool bounded_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// How many walk/merge iterations run between two Expired() checks: the
/// steady_clock read amortizes to noise, and the overshoot past an
/// expired deadline stays bounded by a few hundred node visits.
inline constexpr uint64_t kDeadlineCheckStride = 256;

}  // namespace tcf

#endif  // TCF_UTIL_DEADLINE_H_
