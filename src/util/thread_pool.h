#ifndef TCF_UTIL_THREAD_POOL_H_
#define TCF_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tcf {

/// \brief Fixed-size worker pool.
///
/// The paper parallelizes the first layer of the TC-Tree build with OpenMP
/// (Alg. 4, lines 2-5). We ship a small portable pool instead so the
/// library has no OpenMP dependency; `TcTree::Build` uses it through
/// `ParallelForDynamic`.
class ThreadPool {
 public:
  /// Returned by CurrentWorkerIndex() on threads that are not workers of
  /// any pool.
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

  /// Spawns `num_threads` workers (>=1; 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Index of the calling thread within its owning pool — 0 .. n-1 on a
  /// worker thread, kNotAWorker elsewhere. Lets callers keep per-worker
  /// scratch state (e.g. the TC-Tree build's reusable MPTD workspaces)
  /// in a plain vector indexed without locks. The index is only
  /// meaningful while exactly one pool's tasks run on the thread, which
  /// is the case for pool workers (a worker belongs to one pool for its
  /// whole life).
  static size_t CurrentWorkerIndex();

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers
  std::condition_variable done_cv_;   // signals Wait()
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs `fn(i)` for every i in [0, n), spread over `pool`. Blocks until all
/// iterations complete. Iterations must be independent; results should be
/// written to pre-sized slots so the output order is deterministic
/// regardless of scheduling.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Same contract as ParallelFor, but self-scheduling: one task per worker
/// pulls indices off a shared atomic cursor until none remain. Where
/// ParallelFor pre-chunks [0, n) into static ranges, this keeps every
/// worker busy until the very last index — the work-stealing shape the
/// TC-Tree expansion needs, where per-index cost varies by orders of
/// magnitude (the first sibling of a layer has the most candidates).
/// Safe to call while other tasks run on `pool`: completion is tracked by
/// an internal latch, not ThreadPool::Wait.
void ParallelForDynamic(ThreadPool& pool, size_t n,
                        const std::function<void(size_t)>& fn);

/// Number of hardware threads, at least 1.
size_t HardwareThreads();

}  // namespace tcf

#endif  // TCF_UTIL_THREAD_POOL_H_
