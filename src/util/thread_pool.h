#ifndef TCF_UTIL_THREAD_POOL_H_
#define TCF_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tcf {

/// \brief Fixed-size worker pool.
///
/// The paper parallelizes the first layer of the TC-Tree build with OpenMP
/// (Alg. 4, lines 2-5). We ship a small portable pool instead so the
/// library has no OpenMP dependency; `TcTreeBuilder` uses it through
/// `ParallelFor`.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1; 0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers
  std::condition_variable done_cv_;   // signals Wait()
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs `fn(i)` for every i in [0, n), spread over `pool`. Blocks until all
/// iterations complete. Iterations must be independent; results should be
/// written to pre-sized slots so the output order is deterministic
/// regardless of scheduling.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Number of hardware threads, at least 1.
size_t HardwareThreads();

}  // namespace tcf

#endif  // TCF_UTIL_THREAD_POOL_H_
