#ifndef TCF_UTIL_RNG_H_
#define TCF_UTIL_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tcf {

/// \brief Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** seeded through SplitMix64. All dataset
/// generators, samplers and randomized tests in this repository draw from
/// `Rng` exclusively, so a fixed seed reproduces a dataset bit-for-bit
/// across runs and platforms.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// rejection sampling (Lemire-style) to avoid modulo bias.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Zipf-distributed integer in [0, n) with skew `s > 0`.
  ///
  /// Popularity rank r has probability proportional to 1/(r+1)^s. Used by
  /// the check-in generators to model heavy-tailed location popularity.
  /// Sampling is done by inverse CDF over a cached prefix table, rebuilt
  /// only when (n, s) changes.
  uint64_t NextZipf(uint64_t n, double s);

  /// Standard-normal variate (Box-Muller).
  double NextGaussian();

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in ascending order.
  /// Requires k <= n. O(k) expected time via Floyd's algorithm.
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t k);

  /// Forks a new, statistically independent generator. The fork's stream
  /// is a pure function of this generator's current state, so forking is
  /// itself deterministic.
  Rng Fork();

 private:
  uint64_t state_[4];

  // Cached Zipf table.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;

  // Box-Muller carries one spare variate.
  bool has_gaussian_spare_ = false;
  double gaussian_spare_ = 0.0;
};

}  // namespace tcf

#endif  // TCF_UTIL_RNG_H_
