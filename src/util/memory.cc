#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace tcf {

namespace {

// Parses "<key>:   <value> kB" lines from /proc/self/status.
uint64_t ReadProcStatusKb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long v = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &v) == 1) kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

uint64_t PeakRssBytes() { return ReadProcStatusKb("VmHWM") * 1024; }

uint64_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS") * 1024; }

const char* ByteUnits(uint64_t bytes, double* scaled) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  *scaled = v;
  return kUnits[u];
}

std::ostream& operator<<(std::ostream& os, const HumanBytes& hb) {
  double v = 0;
  const char* unit = ByteUnits(hb.bytes, &v);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, unit);
  return os << buf;
}

}  // namespace tcf
