// Tests for the edge-network TC-Tree (indexing + query answering for the
// §8 extension).
#include "ext/edge_tc_tree.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ext/edge_miner.h"
#include "graph/graph_builder.h"
#include "test_util.h"
#include "util/rng.h"

namespace tcf {
namespace {

EdgeDatabaseNetwork RandomEdgeNet(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(10);
  std::vector<Edge> chosen;
  for (VertexId x = 0; x < 10; ++x) {
    for (VertexId y = x + 1; y < 10; ++y) {
      if (rng.NextBool(0.45)) chosen.push_back({x, y});
    }
  }
  for (const Edge& e : chosen) EXPECT_TRUE(b.AddEdge(e.u, e.v).ok());
  Graph g = b.Build();
  std::vector<TransactionDb> dbs(g.num_edges());
  for (auto& db : dbs) {
    const size_t n_tx = 2 + rng.NextUint64(5);
    for (size_t t = 0; t < n_tx; ++t) {
      std::vector<ItemId> items;
      const size_t len = 1 + rng.NextUint64(3);
      for (size_t i = 0; i < len; ++i) {
        items.push_back(static_cast<ItemId>(rng.NextUint64(4)));
      }
      db.Add(Itemset(std::move(items)));
    }
  }
  ItemDictionary dict;
  for (int i = 0; i < 4; ++i) dict.GetOrAdd("e" + std::to_string(i));
  return EdgeDatabaseNetwork(std::move(g), std::move(dbs), std::move(dict));
}

class EdgeDecompositionTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EdgeDecompositionTest, ReconstructionMatchesDirectMptd) {
  EdgeDatabaseNetwork net = RandomEdgeNet(GetParam());
  for (ItemId item : net.ActiveItems()) {
    EdgeThemeNetwork tn = InduceEdgeThemeNetwork(net, Itemset::Single(item));
    TrussDecomposition d = DecomposeEdgeThemeNetwork(tn);

    std::vector<CohesionValue> probes = {0};
    for (const auto& level : d.levels()) {
      probes.push_back(level.alpha - 1);
      probes.push_back(level.alpha);
      probes.push_back(level.alpha + 1);
    }
    for (CohesionValue aq : probes) {
      if (aq < 0) continue;
      std::vector<Edge> reconstructed = d.EdgesAtAlphaQ(aq);
      PatternTruss direct =
          EdgeMptd(tn, CohesionToDouble(aq));
      // CohesionToDouble/QuantizeAlpha round-trip exactly on grid points.
      EXPECT_EQ(reconstructed, direct.edges)
          << "item=" << item << " aq=" << aq;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeDecompositionTest,
                         ::testing::Range<uint64_t>(1, 7));

TEST(EdgeDecompositionTest, LevelsAscendAndPartition) {
  EdgeDatabaseNetwork net = RandomEdgeNet(11);
  for (ItemId item : net.ActiveItems()) {
    EdgeThemeNetwork tn = InduceEdgeThemeNetwork(net, Itemset::Single(item));
    TrussDecomposition d = DecomposeEdgeThemeNetwork(tn);
    PatternTruss base = EdgeMptd(tn, 0.0);
    size_t total = 0;
    for (size_t k = 0; k < d.levels().size(); ++k) {
      if (k > 0) {
        EXPECT_GT(d.levels()[k].alpha, d.levels()[k - 1].alpha);
      }
      total += d.levels()[k].removed.size();
    }
    EXPECT_EQ(total, base.num_edges());
  }
}

TEST(EdgeTcTreeTest, NodesMatchMinerPatterns) {
  EdgeDatabaseNetwork net = RandomEdgeNet(21);
  EdgeTcTree tree = EdgeTcTree::Build(net);
  MiningResult exact = RunEdgeTcfi(net, {.alpha = 0.0});
  std::set<Itemset> expect;
  for (const auto& t : exact.trusses) expect.insert(t.pattern);
  std::set<Itemset> got;
  for (EdgeTcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    got.insert(tree.PatternOf(id));
  }
  EXPECT_EQ(got, expect);
}

TEST(EdgeTcTreeTest, QueryMatchesSubsetOracle) {
  EdgeDatabaseNetwork net = RandomEdgeNet(23);
  EdgeTcTree tree = EdgeTcTree::Build(net);
  for (double alpha : {0.0, 0.2, 0.5}) {
    for (const Itemset& q :
         {Itemset({0, 1, 2, 3}), Itemset({0, 2}), Itemset({1})}) {
      // Oracle: direct MPTD per subset.
      std::map<Itemset, std::vector<Edge>> oracle;
      const auto& items = q.items();
      for (uint64_t mask = 1; mask < (1ULL << items.size()); ++mask) {
        std::vector<ItemId> sub;
        for (size_t bit = 0; bit < items.size(); ++bit) {
          if (mask & (1ULL << bit)) sub.push_back(items[bit]);
        }
        Itemset p(std::move(sub));
        PatternTruss t = EdgeMptd(InduceEdgeThemeNetwork(net, p), alpha);
        if (!t.empty()) oracle.emplace(p, t.edges);
      }
      EdgeTcTreeQueryResult r = tree.Query(q, alpha);
      ASSERT_EQ(r.retrieved_nodes, oracle.size())
          << "alpha=" << alpha << " q=" << q.ToString();
      for (const auto& t : r.trusses) {
        auto it = oracle.find(t.pattern);
        ASSERT_NE(it, oracle.end());
        EXPECT_EQ(t.edges, it->second);
      }
    }
  }
}

TEST(EdgeTcTreeTest, MaxDepthAndBudget) {
  EdgeDatabaseNetwork net = RandomEdgeNet(25);
  EdgeTcTree capped = EdgeTcTree::Build(net, {.max_depth = 1});
  for (EdgeTcTree::NodeId id = 1; id <= capped.num_nodes(); ++id) {
    EXPECT_EQ(capped.PatternOf(id).size(), 1u);
  }
  EdgeTcTree full = EdgeTcTree::Build(net);
  if (full.num_nodes() >= 4) {
    EdgeTcTree budget =
        EdgeTcTree::Build(net, {.max_nodes = full.num_nodes() / 2});
    EXPECT_TRUE(budget.truncated());
    EXPECT_LT(budget.num_nodes(), full.num_nodes());
  }
}

TEST(EdgeTcTreeTest, EmptyNetwork) {
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  std::vector<TransactionDb> dbs(1);  // edge db left empty
  ItemDictionary dict;
  EdgeDatabaseNetwork net(b.Build(), std::move(dbs), std::move(dict));
  EdgeTcTree tree = EdgeTcTree::Build(net);
  EXPECT_EQ(tree.num_nodes(), 0u);
  EXPECT_EQ(tree.Query(Itemset({0}), 0.0).retrieved_nodes, 0u);
}

}  // namespace
}  // namespace tcf
