// The observability primitives (src/obs/): striped counters and
// histograms folding to exact totals under contention, the Prometheus
// text exposition, stage spans, and the slow-query ring.
#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "util/string_util.h"

namespace tcf {
namespace {

// ------------------------------------------------------------ instruments

TEST(CounterTest, ExactTotalsUnderContention) {
  // Striping trades contention for a fold at read time; what it must
  // never trade away is exactness. 8 threads x 100k increments (some
  // n-sized) have to fold to the arithmetic total, not an estimate.
  Counter counter;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        if (i % 10 == 0) counter.Increment(3);
        else counter.Increment();
      }
    });
  }
  for (auto& th : threads) th.join();
  // Per thread: 10k increments of 3 + 90k of 1.
  EXPECT_EQ(counter.Value(), kThreads * (10000 * 3 + 90000));
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(42.5);
  EXPECT_EQ(gauge.Value(), 42.5);
  gauge.Add(-2.5);
  EXPECT_EQ(gauge.Value(), 40.0);
}

TEST(HistogramTest, Log2BucketPlacement) {
  // Bounds are exact powers of two and a sample lands in the first
  // bucket whose bound it does not exceed: 1 -> le="1", 2 -> le="2",
  // 3 -> le="4", past 2^20 -> +Inf.
  Histogram h;
  h.Record(0.5);
  h.Record(1.0);
  h.Record(2.0);
  h.Record(3.0);
  h.Record(static_cast<double>(1 << 20));
  h.Record(static_cast<double>((1 << 20) + 1));
  const Histogram::Snapshot snap = h.Fold();
  EXPECT_EQ(snap.buckets[0], 2u);  // 0.5 and 1.0, le="1"
  EXPECT_EQ(snap.buckets[1], 1u);  // 2.0, le="2"
  EXPECT_EQ(snap.buckets[2], 1u);  // 3.0, le="4"
  EXPECT_EQ(snap.buckets[20], 1u);  // 2^20, the last finite bound
  EXPECT_EQ(snap.buckets[Histogram::kBuckets - 1], 1u);  // +Inf
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 2.0 + 3.0 + (1 << 20) +
                                 ((1 << 20) + 1));
}

TEST(HistogramTest, ExactCountUnderContention) {
  Histogram h;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>((t + i) % 100));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Fold().count, kThreads * kPerThread);
}

// --------------------------------------------------------------- registry

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("tcf_things_total", "Things");
  Counter& b = registry.GetCounter("tcf_things_total", "Things");
  EXPECT_EQ(&a, &b);
  a.Increment(5);
  EXPECT_EQ(b.Value(), 5u);
  // References must stay stable as the registry grows.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("tcf_filler_" + std::to_string(i) + "_total", "f");
  }
  EXPECT_EQ(a.Value(), 5u);
}

TEST(MetricsRegistryTest, ExpositionGolden) {
  // The exact text exposition for a small registry: sorted by name,
  // # HELP then # TYPE then samples, counters as integers, gauges
  // through the shortest-form renderer, callbacks typed by their
  // declared kind.
  MetricsRegistry registry;
  registry.GetCounter("tcf_b_total", "B counter").Increment(7);
  registry.GetGauge("tcf_a_gauge", "A gauge").Set(1.5);
  registry.RegisterCallback("tcf_c_cb", "C callback",
                            MetricsRegistry::CallbackKind::kGauge,
                            [] { return 3.0; });
  EXPECT_EQ(registry.Render(),
            "# HELP tcf_a_gauge A gauge\n"
            "# TYPE tcf_a_gauge gauge\n"
            "tcf_a_gauge 1.5\n"
            "# HELP tcf_b_total B counter\n"
            "# TYPE tcf_b_total counter\n"
            "tcf_b_total 7\n"
            "# HELP tcf_c_cb C callback\n"
            "# TYPE tcf_c_cb gauge\n"
            "tcf_c_cb 3\n");
}

TEST(MetricsRegistryTest, HistogramExpositionIsCumulative) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("tcf_h_us", "H");
  h.Record(1.0);
  h.Record(3.0);
  h.Record(100.0);
  const std::string text = registry.Render();
  // Cumulative bucket counts: le="1" holds 1, le="4" holds 2 (the 3.0
  // joined), le="128" holds all 3, and +Inf always equals _count.
  EXPECT_NE(text.find("tcf_h_us_bucket{le=\"1\"} 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("tcf_h_us_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("tcf_h_us_bucket{le=\"128\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("tcf_h_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tcf_h_us_sum 104\n"), std::string::npos);
  EXPECT_NE(text.find("tcf_h_us_count 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, ExpositionParsesAsPrometheusText) {
  // Every line of a mixed registry must be either a comment in the
  // `# HELP|TYPE <name> ...` form or a `<name>[{labels}] <value>`
  // sample whose value parses as a double — the contract a scraper
  // relies on.
  MetricsRegistry registry;
  registry.GetCounter("tcf_queries_total", "Queries").Increment(3);
  registry.GetGauge("tcf_cache_bytes", "Bytes").Set(12.25);
  registry.GetHistogram("tcf_lat_us", "Latency").Record(42.0);
  registry.RegisterCallback("tcf_up", "Up",
                            MetricsRegistry::CallbackKind::kCounter,
                            [] { return 1.0; });
  const std::string text = registry.Render();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  for (const std::string& line : Split(text, '\n')) {
    if (line.empty()) continue;  // the trailing newline's empty tail
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    auto value = ParseDouble(std::string_view(line).substr(space + 1));
    EXPECT_TRUE(value.ok()) << line;
    const std::string name = line.substr(0, space);
    for (char c : name.substr(0, name.find('{'))) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << line;
    }
  }
}

// ------------------------------------------------------------ stage spans

TEST(StageSpanTest, RecordsWallIntoItsStage) {
  QueryTrace trace;
  {
    StageSpan span(&trace, QueryStage::kWalk);
    // Spin a hair so the span is nonzero even on coarse clocks.
    volatile uint64_t x = 0;
    for (int i = 0; i < 10000; ++i) x = x + static_cast<uint64_t>(i);
  }
  EXPECT_GT(trace.stage_wall_us[static_cast<size_t>(QueryStage::kWalk)], 0);
  EXPECT_EQ(trace.stage_wall_us[static_cast<size_t>(QueryStage::kParse)], 0);
  EXPECT_DOUBLE_EQ(trace.StageSumUs(),
                   trace.stage_wall_us[static_cast<size_t>(
                       QueryStage::kWalk)]);
}

TEST(StageSpanTest, CpuSamplingIsOptIn) {
  // Ambient tracing keeps the syscall-priced CPU clock off; EXPLAIN
  // opts in. Both must record wall time either way.
  for (const bool sample_cpu : {false, true}) {
    QueryTrace trace;
    trace.sample_cpu = sample_cpu;
    {
      StageSpan span(&trace, QueryStage::kCompose);
      volatile uint64_t x = 0;
      for (int i = 0; i < 200000; ++i) x = x + static_cast<uint64_t>(i);
    }
    const size_t i = static_cast<size_t>(QueryStage::kCompose);
    EXPECT_GT(trace.stage_wall_us[i], 0) << sample_cpu;
    if (sample_cpu) {
      EXPECT_GT(trace.stage_cpu_us[i], 0);
    } else {
      EXPECT_EQ(trace.stage_cpu_us[i], 0);
    }
  }
}

TEST(StageSpanTest, NullTraceAndIdempotentStop) {
  StageSpan disabled(nullptr, QueryStage::kParse);  // must not crash
  disabled.Stop();

  QueryTrace trace;
  StageSpan span(&trace, QueryStage::kSerialize);
  span.Stop();
  const double first =
      trace.stage_wall_us[static_cast<size_t>(QueryStage::kSerialize)];
  span.Stop();  // second stop must not add a second sample
  EXPECT_EQ(
      trace.stage_wall_us[static_cast<size_t>(QueryStage::kSerialize)],
      first);
}

// ------------------------------------------------- histogram quantiles

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(HistogramQuantile(h.Fold(), 0.99), 0.0);
}

TEST(HistogramQuantileTest, InterpolatesInsideTheCrossingBucket) {
  Histogram h;
  // 100 samples in the first bucket (le=1, implicit lower edge 0): the
  // quantile is pure linear interpolation over [0, 1].
  for (int i = 0; i < 100; ++i) h.Record(0.5);
  const Histogram::Snapshot snap = h.Fold();
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.99), 0.99);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 1.0), 1.0);
}

TEST(HistogramQuantileTest, CrossesBucketsLikePrometheus) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(1.5);  // bucket (1, 2]
  for (int i = 0; i < 50; ++i) h.Record(3.0);  // bucket (2, 4]
  const Histogram::Snapshot snap = h.Fold();
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.25), 1.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.75), 3.0);
  // Out-of-range q clamps instead of reading junk.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, -1.0),
                   HistogramQuantile(snap, 0.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 2.0),
                   HistogramQuantile(snap, 1.0));
}

TEST(HistogramQuantileTest, InfBucketClampsToLastFiniteBound) {
  Histogram h;
  h.Record(3e6);  // beyond 2^20: lands in +Inf
  const Histogram::Snapshot snap = h.Fold();
  EXPECT_DOUBLE_EQ(HistogramQuantile(snap, 0.99),
                   Histogram::BucketBound(Histogram::kBuckets - 2));
}

// -------------------------------------------------------- slow-query ring

QueryTrace TraceWithTotal(double total_us) {
  QueryTrace t;
  t.total_us = total_us;
  return t;
}

TEST(SlowQueryLogTest, ThresholdGates) {
  SlowQueryLog log(1000.0, 8);
  EXPECT_FALSE(log.Qualifies(999.9));
  EXPECT_TRUE(log.Qualifies(1000.0));
  EXPECT_TRUE(log.Qualifies(5000.0));
  // threshold <= 0 disables the ring entirely.
  SlowQueryLog disabled(0.0, 8);
  EXPECT_FALSE(disabled.Qualifies(1e9));
}

TEST(SlowQueryLogTest, EvictsOldestFirst) {
  SlowQueryLog log(1.0, 3);
  for (int i = 0; i < 5; ++i) {
    log.Record("q" + std::to_string(i),
               TraceWithTotal(100.0 + static_cast<double>(i)));
  }
  const std::vector<SlowQueryLog::Entry> entries = log.Snapshot();
  // Capacity 3, 5 admissions: q0 and q1 evicted, snapshot is oldest to
  // newest with monotone seq.
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].query_line, "q2");
  EXPECT_EQ(entries[1].query_line, "q3");
  EXPECT_EQ(entries[2].query_line, "q4");
  EXPECT_EQ(entries[0].seq, 2u);
  EXPECT_EQ(entries[2].seq, 4u);
  EXPECT_DOUBLE_EQ(entries[2].trace.total_us, 104.0);
  EXPECT_EQ(log.total_recorded(), 5u);  // eviction never decrements
}

}  // namespace
}  // namespace tcf
