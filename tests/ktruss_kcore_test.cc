#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/graph_builder.h"
#include "graph/kcore.h"
#include "graph/ktruss.h"
#include "graph/random_graphs.h"
#include "util/rng.h"

namespace tcf {
namespace {

Graph Complete(size_t n) {
  GraphBuilder b(n);
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId v = a + 1; v < n; ++v) EXPECT_TRUE(b.AddEdge(a, v).ok());
  }
  return b.Build();
}

TEST(KTrussTest, K5IsA5Truss) {
  Graph g = Complete(5);
  // In K5 every edge lies in 3 triangles => 5-truss (k-2 = 3).
  EXPECT_EQ(KTrussEdges(g, 5).size(), 10u);
  EXPECT_TRUE(KTrussEdges(g, 6).empty());
}

TEST(KTrussTest, TriangleIs3Truss) {
  Graph g = Complete(3);
  EXPECT_EQ(KTrussEdges(g, 3).size(), 3u);
  EXPECT_TRUE(KTrussEdges(g, 4).empty());
}

TEST(KTrussTest, K2KeepsAllEdges) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  Graph g = b.Build();
  EXPECT_EQ(KTrussEdges(g, 2).size(), 2u);
}

TEST(KTrussTest, TailIsPeeledFromTriangle) {
  GraphBuilder b;
  for (auto [x, y] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {1, 2}, {0, 2}, {2, 3}}) {
    ASSERT_TRUE(b.AddEdge(x, y).ok());
  }
  auto edges = KTrussEdges(b.Build(), 3);
  ASSERT_EQ(edges.size(), 3u);
  for (const Edge& e : edges) EXPECT_NE(e.v, 3u);
}

TEST(KTrussTest, CascadingRemoval) {
  // Two triangles sharing one edge: 0-1-2, 0-1-3, plus pendant edges.
  // The 4-truss requires every edge in >=2 triangles: only edge {0,1}
  // touches two, but its wings each touch one, so the 4-truss is empty.
  GraphBuilder b;
  for (auto [x, y] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}}) {
    ASSERT_TRUE(b.AddEdge(x, y).ok());
  }
  EXPECT_TRUE(KTrussEdges(b.Build(), 4).empty());
}

class KTrussPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(KTrussPropertyTest, PeelingMatchesBruteForce) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  Graph g = ErdosRenyi(18, 70, rng);
  auto fast = KTrussEdges(g, k);
  auto slow = KTrussEdgesBruteForce(g, k);
  std::sort(fast.begin(), fast.end());
  std::sort(slow.begin(), slow.end());
  EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, KTrussPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(3u, 4u, 5u)));

TEST(TrussDecompositionTest, TrussnessConsistentWithKTruss) {
  Rng rng(123);
  Graph g = ErdosRenyi(16, 60, rng);
  auto trussness = TrussDecomposition(g);
  for (uint32_t k = 3; k <= 6; ++k) {
    std::set<Edge> expect;
    for (const Edge& e : KTrussEdges(g, k)) expect.insert(e);
    std::set<Edge> got;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (trussness[e] >= k) got.insert(g.edge(e));
    }
    EXPECT_EQ(got, expect) << "k=" << k;
  }
}

TEST(TrussDecompositionTest, K5AllEdgesTrussness5) {
  auto t = TrussDecomposition(Complete(5));
  for (uint32_t v : t) EXPECT_EQ(v, 5u);
}

// ------------------------------------------------------------- k-core --

TEST(KCoreTest, CompleteGraphCore) {
  auto core = CoreDecomposition(Complete(5));
  for (uint32_t c : core) EXPECT_EQ(c, 4u);
}

TEST(KCoreTest, PathGraphCore) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  auto core = CoreDecomposition(b.Build());
  for (uint32_t c : core) EXPECT_EQ(c, 1u);
}

TEST(KCoreTest, TriangleWithTail) {
  GraphBuilder b;
  for (auto [x, y] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {1, 2}, {0, 2}, {2, 3}}) {
    ASSERT_TRUE(b.AddEdge(x, y).ok());
  }
  auto core = CoreDecomposition(b.Build());
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
}

TEST(KCoreTest, KCoreVerticesFilter) {
  GraphBuilder b;
  for (auto [x, y] : std::vector<std::pair<VertexId, VertexId>>{
           {0, 1}, {1, 2}, {0, 2}, {2, 3}}) {
    ASSERT_TRUE(b.AddEdge(x, y).ok());
  }
  Graph g = b.Build();
  EXPECT_EQ(KCoreVertices(g, 2), (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(KCoreVertices(g, 3), (std::vector<VertexId>{}));
}

TEST(KCoreTest, CoreIsMonotoneUnderDegree) {
  Rng rng(55);
  Graph g = ErdosRenyi(30, 100, rng);
  auto core = CoreDecomposition(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(core[v], g.degree(v));
  }
}

// Brute-force core check: max over subgraphs is hard, but the defining
// fixpoint is easy — iteratively remove vertices with degree < k.
std::set<VertexId> BruteForceKCore(const Graph& g, uint32_t k) {
  std::set<VertexId> alive;
  for (VertexId v = 0; v < g.num_vertices(); ++v) alive.insert(v);
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = alive.begin(); it != alive.end();) {
      uint32_t deg = 0;
      for (const Neighbor& nb : g.neighbors(*it)) {
        if (alive.count(nb.vertex)) ++deg;
      }
      if (deg < k) {
        it = alive.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
  return alive;
}

class KCorePropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(KCorePropertyTest, DecompositionMatchesFixpoint) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  Graph g = ErdosRenyi(20, 70, rng);
  auto fast = KCoreVertices(g, k);
  auto slow = BruteForceKCore(g, k);
  EXPECT_EQ(std::set<VertexId>(fast.begin(), fast.end()), slow);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, KCorePropertyTest,
    ::testing::Combine(::testing::Values(10, 20, 30, 40),
                       ::testing::Values(2u, 3u, 4u)));

// Cohen's structural relation: a k-truss (k>=2) is a subgraph of the
// (k-1)-core of the graph (every vertex of a k-truss has degree >= k-1
// within the truss).
TEST(KTrussKCoreTest, KTrussInsideKMinus1Core) {
  Rng rng(321);
  Graph g = ErdosRenyi(24, 110, rng);
  for (uint32_t k = 3; k <= 5; ++k) {
    auto truss_edges = KTrussEdges(g, k);
    auto core = CoreDecomposition(g);
    for (const Edge& e : truss_edges) {
      EXPECT_GE(core[e.u], k - 1) << "k=" << k;
      EXPECT_GE(core[e.v], k - 1) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace tcf
