#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "gen/checkin_generator.h"
#include "gen/coauthor_generator.h"
#include "gen/syn_generator.h"
#include "net/stats.h"

namespace tcf {
namespace {

// ------------------------------------------------------------ Check-in --

CheckinParams SmallCheckin(uint64_t seed = 42) {
  CheckinParams p;
  p.num_users = 120;
  p.num_locations = 40;
  p.periods_per_user = 10;
  p.seed = seed;
  return p;
}

TEST(CheckinGeneratorTest, ShapeMatchesParams) {
  DatabaseNetwork net = GenerateCheckinNetwork(SmallCheckin());
  EXPECT_EQ(net.num_vertices(), 120u);
  EXPECT_EQ(net.num_items(), 40u);
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    EXPECT_EQ(net.db(v).num_transactions(), 10u);
  }
}

TEST(CheckinGeneratorTest, DeterministicGivenSeed) {
  DatabaseNetwork a = GenerateCheckinNetwork(SmallCheckin(7));
  DatabaseNetwork b = GenerateCheckinNetwork(SmallCheckin(7));
  EXPECT_EQ(a.graph().edges(), b.graph().edges());
  NetworkStats sa = ComputeStats(a), sb = ComputeStats(b);
  EXPECT_EQ(sa.num_items_total, sb.num_items_total);
}

TEST(CheckinGeneratorTest, DifferentSeedsDiffer) {
  NetworkStats a = ComputeStats(GenerateCheckinNetwork(SmallCheckin(1)));
  NetworkStats b = ComputeStats(GenerateCheckinNetwork(SmallCheckin(2)));
  EXPECT_NE(a.num_items_total, b.num_items_total);
}

TEST(CheckinGeneratorTest, LocationNamesInterned) {
  DatabaseNetwork net = GenerateCheckinNetwork(SmallCheckin());
  EXPECT_EQ(net.dictionary().Name(0), "loc0");
  EXPECT_EQ(net.dictionary().Name(39), "loc39");
}

TEST(CheckinGeneratorTest, FriendsShareLocations) {
  // Social mimicry must make adjacent vertices' item sets overlap more
  // than random pairs on average.
  CheckinParams p = SmallCheckin();
  p.social_mimicry = 0.9;
  DatabaseNetwork net = GenerateCheckinNetwork(p);
  auto overlap = [&](VertexId a, VertexId b) {
    Itemset ia = net.db(a).DistinctItems();
    Itemset ib = net.db(b).DistinctItems();
    return static_cast<double>(ia.Intersect(ib).size());
  };
  double adjacent = 0;
  size_t n_adj = 0;
  for (const Edge& e : net.graph().edges()) {
    adjacent += overlap(e.u, e.v);
    ++n_adj;
  }
  double distant = 0;
  size_t n_dist = 0;
  for (VertexId v = 0; v + 60 < net.num_vertices(); v += 7) {
    if (!net.graph().HasEdge(v, v + 60)) {
      distant += overlap(v, v + 60);
      ++n_dist;
    }
  }
  ASSERT_GT(n_adj, 0u);
  ASSERT_GT(n_dist, 0u);
  EXPECT_GT(adjacent / n_adj, distant / n_dist);
}

// ------------------------------------------------------------ Coauthor --

CoauthorParams SmallCoauthor(uint64_t seed = 7) {
  CoauthorParams p;
  p.num_groups = 5;
  p.group_size_min = 4;
  p.group_size_max = 7;
  p.seed = seed;
  return p;
}

TEST(CoauthorGeneratorTest, PlantsRequestedGroups) {
  CoauthorNetwork cn = GenerateCoauthorNetwork(SmallCoauthor());
  EXPECT_EQ(cn.groups.size(), 5u);
  for (const PlantedGroup& g : cn.groups) {
    EXPECT_GE(g.members.size(), 4u);
    EXPECT_LE(g.members.size(), 7u);
    EXPECT_EQ(g.theme.size(), 4u);
    for (VertexId m : g.members) EXPECT_LT(m, cn.network.num_vertices());
  }
}

TEST(CoauthorGeneratorTest, ThemesAreDistinctAcrossGroups) {
  CoauthorNetwork cn = GenerateCoauthorNetwork(SmallCoauthor());
  for (size_t i = 0; i < cn.groups.size(); ++i) {
    for (size_t j = i + 1; j < cn.groups.size(); ++j) {
      EXPECT_TRUE(
          cn.groups[i].theme.Intersect(cn.groups[j].theme).empty());
    }
  }
}

TEST(CoauthorGeneratorTest, MembersCarryTheirTheme) {
  CoauthorNetwork cn = GenerateCoauthorNetwork(SmallCoauthor());
  for (const PlantedGroup& g : cn.groups) {
    for (VertexId m : g.members) {
      // keyword_recall=0.9 over 12 papers: the full theme must appear
      // with overwhelmingly positive frequency.
      EXPECT_GT(cn.network.Frequency(m, g.theme), 0.0)
          << "member " << m << " theme " << g.theme.ToString();
    }
  }
}

TEST(CoauthorGeneratorTest, OverlapCreatesMultiGroupAuthors) {
  CoauthorParams p = SmallCoauthor();
  p.num_groups = 8;
  p.overlap_fraction = 0.5;
  CoauthorNetwork cn = GenerateCoauthorNetwork(p);
  std::map<VertexId, int> memberships;
  for (const PlantedGroup& g : cn.groups) {
    for (VertexId m : g.members) ++memberships[m];
  }
  int multi = 0;
  for (const auto& [v, c] : memberships) {
    if (c > 1) ++multi;
  }
  EXPECT_GT(multi, 0);
}

TEST(CoauthorGeneratorTest, Deterministic) {
  CoauthorNetwork a = GenerateCoauthorNetwork(SmallCoauthor(3));
  CoauthorNetwork b = GenerateCoauthorNetwork(SmallCoauthor(3));
  EXPECT_EQ(a.network.graph().edges(), b.network.graph().edges());
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].members, b.groups[i].members);
    EXPECT_EQ(a.groups[i].theme, b.groups[i].theme);
  }
}

// ----------------------------------------------------------------- SYN --

SynParams SmallSyn(uint64_t seed = 2026) {
  SynParams p;
  p.num_vertices = 150;
  p.num_edges = 500;
  p.num_items = 60;
  p.num_seeds = 10;
  p.seed = seed;
  return p;
}

TEST(SynGeneratorTest, EveryVertexPopulated) {
  DatabaseNetwork net = GenerateSynNetwork(SmallSyn());
  EXPECT_EQ(net.num_vertices(), 150u);
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    EXPECT_GT(net.db(v).num_transactions(), 0u) << v;
  }
}

TEST(SynGeneratorTest, TransactionCountFollowsDegreeFormula) {
  SynParams p = SmallSyn();
  DatabaseNetwork net = GenerateSynNetwork(p);
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    const size_t d = net.graph().degree(v);
    const size_t expected = std::min<size_t>(
        p.max_transactions_per_vertex,
        static_cast<size_t>(std::ceil(std::exp(0.1 * static_cast<double>(d)))));
    EXPECT_EQ(net.db(v).num_transactions(), expected) << "degree " << d;
  }
}

TEST(SynGeneratorTest, TransactionLengthFollowsDegreeFormula) {
  SynParams p = SmallSyn();
  DatabaseNetwork net = GenerateSynNetwork(p);
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    const size_t d = net.graph().degree(v);
    const size_t expected = std::min(
        {p.max_transaction_length, p.num_items,
         static_cast<size_t>(
             std::ceil(std::exp(0.13 * static_cast<double>(d))))});
    for (const Itemset& t : net.db(v).transactions()) {
      EXPECT_EQ(t.size(), expected) << "degree " << d;
    }
  }
}

TEST(SynGeneratorTest, NeighborsShareItemsThroughPropagation) {
  SynParams p = SmallSyn();
  p.mutation_rate = 0.05;
  DatabaseNetwork net = GenerateSynNetwork(p);
  // With low mutation, adjacent databases should share many items.
  double total_overlap = 0;
  size_t count = 0;
  for (const Edge& e : net.graph().edges()) {
    Itemset a = net.db(e.u).DistinctItems();
    Itemset b = net.db(e.v).DistinctItems();
    total_overlap += static_cast<double>(a.Intersect(b).size()) /
                     static_cast<double>(std::max<size_t>(1, a.size()));
    ++count;
    if (count > 200) break;
  }
  EXPECT_GT(total_overlap / static_cast<double>(count), 0.1);
}

TEST(SynGeneratorTest, Deterministic) {
  NetworkStats a = ComputeStats(GenerateSynNetwork(SmallSyn(5)));
  NetworkStats b = ComputeStats(GenerateSynNetwork(SmallSyn(5)));
  EXPECT_EQ(a.num_transactions, b.num_transactions);
  EXPECT_EQ(a.num_items_total, b.num_items_total);
}

TEST(SynGeneratorTest, BarabasiAlbertModelWorks) {
  SynParams p = SmallSyn();
  p.model = SynParams::Model::kBarabasiAlbert;
  DatabaseNetwork net = GenerateSynNetwork(p);
  EXPECT_EQ(net.num_vertices(), p.num_vertices);
  EXPECT_GT(net.num_edges(), 0u);
}

}  // namespace
}  // namespace tcf
