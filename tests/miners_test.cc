// End-to-end correctness of the three miners: TCS (baseline, §4.2),
// TCFA (Alg. 3) and TCFI (§5.3), against the exhaustive oracle.
#include <gtest/gtest.h>

#include <set>

#include "core/apriori.h"
#include "core/brute_force.h"
#include "core/tcfa.h"
#include "core/tcfi.h"
#include "core/tcs.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::ExpectSameResults;
using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;

// ------------------------------------------------- Apriori candidates --

TEST(AprioriTest, JoinsSingletons) {
  auto cands = GenerateAprioriCandidates(
      {Itemset({0}), Itemset({1}), Itemset({2})});
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(cands[0].pattern, Itemset({0, 1}));
  EXPECT_EQ(cands[1].pattern, Itemset({0, 2}));
  EXPECT_EQ(cands[2].pattern, Itemset({1, 2}));
}

TEST(AprioriTest, ParentIndicesIdentifyJoinedPatterns) {
  std::vector<Itemset> q = {Itemset({0}), Itemset({2}), Itemset({5})};
  auto cands = GenerateAprioriCandidates(q);
  for (const auto& c : cands) {
    EXPECT_EQ(c.pattern, q[c.parent_a].Union(q[c.parent_b]));
  }
}

TEST(AprioriTest, PruneStepRequiresAllSubsets) {
  // {0,1},{0,2} join to {0,1,2}, but {1,2} is missing => pruned.
  auto cands = GenerateAprioriCandidates({Itemset({0, 1}), Itemset({0, 2})});
  EXPECT_TRUE(cands.empty());
  // Adding {1,2} enables the candidate.
  cands = GenerateAprioriCandidates(
      {Itemset({0, 1}), Itemset({0, 2}), Itemset({1, 2})});
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].pattern, Itemset({0, 1, 2}));
}

TEST(AprioriTest, NoJoinAcrossDifferentPrefixes) {
  auto cands = GenerateAprioriCandidates({Itemset({0, 1}), Itemset({2, 3})});
  EXPECT_TRUE(cands.empty());
}

TEST(AprioriTest, EmptyInput) {
  EXPECT_TRUE(GenerateAprioriCandidates({}).empty());
}

TEST(AprioriTest, MatchesBruteForceEnumeration) {
  // All (k-1)-subsets of a qualified set of patterns: candidates must be
  // exactly the k-sets whose every (k-1)-subset is in the input.
  std::vector<Itemset> q = {Itemset({0, 1}), Itemset({0, 2}), Itemset({1, 2}),
                            Itemset({1, 3}), Itemset({2, 3})};
  std::set<Itemset> qset(q.begin(), q.end());
  auto cands = GenerateAprioriCandidates(q);
  std::set<Itemset> got;
  for (const auto& c : cands) got.insert(c.pattern);

  std::set<Itemset> expect;
  for (ItemId a = 0; a < 5; ++a) {
    for (ItemId b = a + 1; b < 5; ++b) {
      for (ItemId c = b + 1; c < 5; ++c) {
        Itemset p({a, b, c});
        bool ok = true;
        for (const Itemset& sub : p.AllSubsetsMinusOne()) {
          if (!qset.count(sub)) ok = false;
        }
        if (ok) expect.insert(p);
      }
    }
  }
  EXPECT_EQ(got, expect);
}

// ----------------------------------------------------------- Figure 1 --

TEST(MinersTest, FigureOneNetworkTrussCount) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  // Item 0: K4 + triangle survive at alpha=0.15. Item 1: present on all
  // vertices with f in {0.9, 0.7, 1.0} — the whole graph is its theme
  // network; its truss at 0.15 is non-empty too. Pattern {0,1}: no
  // transaction contains both items (they are alternatives) => empty.
  MiningResult r = RunTcfi(net, {.alpha = 0.15});
  std::set<Itemset> patterns;
  for (const auto& t : r.trusses) patterns.insert(t.pattern);
  EXPECT_TRUE(patterns.count(Itemset({0})));
  EXPECT_TRUE(patterns.count(Itemset({1})));
  EXPECT_FALSE(patterns.count(Itemset({0, 1})));
}

// ------------------------------------------- Exactness vs. the oracle --

class MinerOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(MinerOracleTest, TcfaMatchesOracle) {
  const auto [seed, alpha] = GetParam();
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 12,
                                           .edge_prob = 0.4,
                                           .num_items = 4,
                                           .tx_per_vertex = 5,
                                           .seed = seed});
  ExpectSameResults(RunTcfa(net, {.alpha = alpha}),
                    BruteForceMineAll(net, alpha),
                    "tcfa alpha=" + std::to_string(alpha));
}

TEST_P(MinerOracleTest, TcfiMatchesOracle) {
  const auto [seed, alpha] = GetParam();
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 12,
                                           .edge_prob = 0.4,
                                           .num_items = 4,
                                           .tx_per_vertex = 5,
                                           .seed = seed});
  ExpectSameResults(RunTcfi(net, {.alpha = alpha}),
                    BruteForceMineAll(net, alpha),
                    "tcfi alpha=" + std::to_string(alpha));
}

TEST_P(MinerOracleTest, TcsWithZeroEpsilonMatchesOracle) {
  const auto [seed, alpha] = GetParam();
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 10,
                                           .edge_prob = 0.45,
                                           .num_items = 4,
                                           .tx_per_vertex = 4,
                                           .seed = seed});
  ExpectSameResults(RunTcs(net, {.alpha = alpha, .epsilon = 0.0}),
                    BruteForceMineAll(net, alpha),
                    "tcs alpha=" + std::to_string(alpha));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAlphas, MinerOracleTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 0.1, 0.3)));

// TCFA and TCFI must agree exactly on every input (both exact).
class TcfaTcfiAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TcfaTcfiAgreementTest, IdenticalResults) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 16,
                                           .edge_prob = 0.35,
                                           .num_items = 6,
                                           .tx_per_vertex = 6,
                                           .seed = GetParam()});
  for (double alpha : {0.0, 0.1, 0.5}) {
    ExpectSameResults(RunTcfa(net, {.alpha = alpha}),
                      RunTcfi(net, {.alpha = alpha}),
                      "alpha=" + std::to_string(alpha));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcfaTcfiAgreementTest,
                         ::testing::Range<uint64_t>(10, 18));

// ---------------------------------------------- TCS accuracy tradeoff --

TEST(TcsTest, LargeEpsilonLosesTrusses) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  // Item 0 has max per-vertex frequency 0.3; ε = 0.3 (strict >) filters
  // it out of the candidate set entirely.
  MiningResult lossy = RunTcs(net, {.alpha = 0.0, .epsilon = 0.3});
  MiningResult exact = RunTcfi(net, {.alpha = 0.0});
  std::set<Itemset> lossy_patterns, exact_patterns;
  for (const auto& t : lossy.trusses) lossy_patterns.insert(t.pattern);
  for (const auto& t : exact.trusses) exact_patterns.insert(t.pattern);
  EXPECT_TRUE(exact_patterns.count(Itemset({0})));
  EXPECT_FALSE(lossy_patterns.count(Itemset({0})));
  // TCS never invents trusses: subset relation.
  for (const Itemset& p : lossy_patterns) {
    EXPECT_TRUE(exact_patterns.count(p)) << p.ToString();
  }
}

TEST(TcsTest, ResultIsSubsetOfExactForAnyEpsilon) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 12,
                                           .num_items = 4,
                                           .seed = 77});
  MiningResult exact = RunTcfi(net, {.alpha = 0.0});
  std::set<Itemset> exact_patterns;
  for (const auto& t : exact.trusses) exact_patterns.insert(t.pattern);
  for (double eps : {0.1, 0.2, 0.3, 0.5}) {
    MiningResult lossy = RunTcs(net, {.alpha = 0.0, .epsilon = eps});
    for (const auto& t : lossy.trusses) {
      ASSERT_TRUE(exact_patterns.count(t.pattern))
          << "eps=" << eps << " invented " << t.pattern.ToString();
    }
  }
}

// ------------------------------------------------------------ Counters --

TEST(MinersTest, TcfiPrunesAtLeastAsManyCandidatesAsTcfa) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 18,
                                           .edge_prob = 0.3,
                                           .num_items = 6,
                                           .tx_per_vertex = 6,
                                           .seed = 99});
  MiningResult fa = RunTcfa(net, {.alpha = 0.0});
  MiningResult fi = RunTcfi(net, {.alpha = 0.0});
  // Same exact results...
  EXPECT_EQ(fa.NumPatterns(), fi.NumPatterns());
  // ...but TCFI must not call MPTD more often than TCFA.
  EXPECT_LE(fi.counters.mptd_calls, fa.counters.mptd_calls);
  EXPECT_EQ(fi.counters.mptd_calls + fi.counters.pruned_by_intersection,
            fa.counters.mptd_calls);
}

TEST(MinersTest, CountersAreConsistent) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 101});
  MiningResult r = RunTcfi(net, {.alpha = 0.0});
  EXPECT_EQ(r.counters.qualified_patterns, r.trusses.size());
  EXPECT_LE(r.counters.qualified_patterns, r.counters.candidates_generated);
}

// ------------------------------------------------------- Option knobs --

TEST(MinersTest, MaxPatternLengthCapsResults) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 4, .seed = 55});
  MiningResult r = RunTcfi(net, {.alpha = 0.0, .max_pattern_length = 1});
  for (const auto& t : r.trusses) EXPECT_EQ(t.pattern.size(), 1u);
  MiningResult r2 = RunTcfa(net, {.alpha = 0.0, .max_pattern_length = 2});
  for (const auto& t : r2.trusses) EXPECT_LE(t.pattern.size(), 2u);
}

TEST(MinersTest, HugeAlphaYieldsNothing) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 66});
  EXPECT_TRUE(RunTcfi(net, {.alpha = 1e6}).trusses.empty());
  EXPECT_TRUE(RunTcfa(net, {.alpha = 1e6}).trusses.empty());
  EXPECT_TRUE(RunTcs(net, {.alpha = 1e6, .epsilon = 0.1}).trusses.empty());
}

TEST(MinersTest, NetworkWithoutEdges) {
  DatabaseNetwork net = testing::MakeNetwork(3, {}, {{{0}}, {{0}}, {{0}}});
  EXPECT_TRUE(RunTcfi(net, {.alpha = 0.0}).trusses.empty());
  EXPECT_TRUE(RunTcfa(net, {.alpha = 0.0}).trusses.empty());
}

TEST(MinersTest, EveryTrussVertexHasPositiveFrequency) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 31});
  MiningResult r = RunTcfi(net, {.alpha = 0.0});
  for (const auto& t : r.trusses) {
    for (size_t i = 0; i < t.vertices.size(); ++i) {
      EXPECT_GT(t.frequencies[i], 0.0) << t.pattern.ToString();
      EXPECT_DOUBLE_EQ(t.frequencies[i],
                       net.Frequency(t.vertices[i], t.pattern));
    }
  }
}

}  // namespace
}  // namespace tcf
