#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/line_protocol.h"
#include "serve/shard_router.h"
#include "test_util.h"
#include "util/string_util.h"

namespace tcf {
namespace {

using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;

/// Checks a wire answer against an in-process QueryTcTree answer:
/// identical trusses (pattern names, vertex list, edge list) in
/// identical order.
void ExpectWireMatches(const ItemDictionary& dictionary,
                       const TcTreeQueryResult& expected,
                       const std::vector<WireTruss>& actual,
                       const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(actual.size(), expected.trusses.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    const PatternTruss& e = expected.trusses[i];
    ASSERT_EQ(actual[i].pattern.size(), e.pattern.size());
    for (size_t j = 0; j < e.pattern.size(); ++j) {
      EXPECT_EQ(actual[i].pattern[j], dictionary.Name(e.pattern.items()[j]));
    }
    EXPECT_EQ(actual[i].vertices, e.vertices);
    EXPECT_EQ(actual[i].edges, e.edges);
  }
}

/// True if the wire answer is structurally identical to `expected`
/// (non-asserting form, for the either-snapshot check during RELOAD).
bool WireEquals(const ItemDictionary& dictionary,
                const TcTreeQueryResult& expected,
                const std::vector<WireTruss>& actual) {
  if (actual.size() != expected.trusses.size()) return false;
  for (size_t i = 0; i < actual.size(); ++i) {
    const PatternTruss& e = expected.trusses[i];
    if (actual[i].pattern.size() != e.pattern.size()) return false;
    for (size_t j = 0; j < e.pattern.size(); ++j) {
      if (actual[i].pattern[j] != dictionary.Name(e.pattern.items()[j])) {
        return false;
      }
    }
    if (actual[i].vertices != e.vertices) return false;
    if (actual[i].edges != e.edges) return false;
  }
  return true;
}

std::unique_ptr<Client> MustConnect(const TcpServer& server) {
  auto client = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status();
  return client.ok() ? std::move(*client) : nullptr;
}

// --- raw-socket helpers: drive the server below the Client abstraction
// (partial lines, mid-batch disconnects, hand-rolled pipelining).

int RawConnect(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool RawSend(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

/// Next '\n'-terminated line (newline stripped); empty string on EOF.
std::string RawReadLine(int fd) {
  std::string line;
  char c;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return line;
    if (c == '\n') return line;
    line += c;
  }
}

/// Polls the service report until `pred` holds or ~5s pass.
template <typename Pred>
bool WaitForReport(QueryService& service, Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred(service.Report())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

/// Buffered line reader over a raw fd, for tests that pull back large
/// pipelined response streams (RawReadLine's byte-at-a-time recv is
/// fine for a handful of lines, quadratic-feeling for megabytes).
class RawReader {
 public:
  explicit RawReader(int fd) : fd_(fd) {}

  /// Next line (newline stripped); empty string on EOF.
  std::string ReadLine() {
    while (true) {
      const size_t newline = buf_.find('\n', pos_);
      if (newline != std::string::npos) {
        std::string line = buf_.substr(pos_, newline - pos_);
        pos_ = newline + 1;
        return line;
      }
      buf_.erase(0, pos_);
      pos_ = 0;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return {};
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
  size_t pos_ = 0;
};

/// Ensures the process may hold at least `needed` file descriptors,
/// raising the soft limit toward the hard limit if necessary. False if
/// the hard limit is too low to comply.
bool EnsureFdLimit(rlim_t needed) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return false;
  if (rl.rlim_cur >= needed) return true;
  if (rl.rlim_max < needed && rl.rlim_max != RLIM_INFINITY) return false;
  rl.rlim_cur = needed;
  return ::setrlimit(RLIMIT_NOFILE, &rl) == 0;
}

TEST(TcpServerTest, PingQueryStatsQuit) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);  // kernel assigned an ephemeral port

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());

  auto trusses = client->Query("0.1;i0");
  ASSERT_TRUE(trusses.ok()) << trusses.status();
  ExpectWireMatches(net.dictionary(), QueryTcTree(tree, Itemset{0}, 0.1),
                    *trusses, "0.1;i0");

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  bool saw_queries = false, saw_connections = false;
  for (const auto& [key, value] : *stats) {
    if (key == "queries") {
      saw_queries = true;
      EXPECT_EQ(value, "1");
    }
    if (key == "connections_accepted") {
      saw_connections = true;
      EXPECT_EQ(value, "1");
    }
  }
  EXPECT_TRUE(saw_queries);
  EXPECT_TRUE(saw_connections);

  EXPECT_TRUE(client->Quit().ok());
  server.Shutdown();
  EXPECT_FALSE(server.running());
}

TEST(TcpServerTest, ServerSideErrorsKeepConnectionUsable) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);

  // Each protocol-level error comes back as a carried ERR status with
  // the hardened parser's code and column context...
  auto bad_alpha = client->Query("nan;i0");
  EXPECT_TRUE(bad_alpha.status().IsInvalidArgument()) << bad_alpha.status();
  auto bad_item = client->Query("0.1;nosuchitem");
  EXPECT_TRUE(bad_item.status().IsNotFound()) << bad_item.status();
  EXPECT_NE(bad_item.status().message().find("col 5"), std::string::npos)
      << bad_item.status();
  auto overflow = client->Query("1e999;i0");
  EXPECT_TRUE(overflow.status().IsOutOfRange()) << overflow.status();
  auto bad_reload = client->Reload("/definitely/not/an/index.idx");
  EXPECT_TRUE(bad_reload.status().IsIOError()) << bad_reload.status();

  // ...and none of them poisons the connection.
  EXPECT_TRUE(client->Ping().ok());
  auto good = client->Query("0.1;i0");
  EXPECT_TRUE(good.ok()) << good.status();
  EXPECT_TRUE(client->Quit().ok());
}

TEST(TcpServerTest, ReloadDisabledAnswersUnimplemented) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.allow_reload = false;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  auto reload = client->Reload("/tmp/whatever.idx");
  EXPECT_TRUE(reload.status().IsUnimplemented()) << reload.status();
  EXPECT_TRUE(client->Quit().ok());
}

TEST(TcpServerTest, ConcurrentClientsGetIdenticalAnswers) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 19});
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> queries = {
      "0;i0", "0.05;i0,i1", "0.1;i1,i2,i3", "0.02;*", "0.15;i4"};
  std::vector<TcTreeQueryResult> expected;
  for (const std::string& q : queries) {
    auto parsed = ParseServeQuery(net.dictionary(), q);
    ASSERT_TRUE(parsed.ok()) << q;
    expected.push_back(QueryTcTree(tree, parsed->items, parsed->alpha));
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        const size_t pick = static_cast<size_t>(t + round) % queries.size();
        auto trusses = (*client)->Query(queries[pick]);
        if (!trusses.ok() ||
            !WireEquals(net.dictionary(), expected[pick], *trusses)) {
          ++failures;
          return;
        }
      }
      if (!(*client)->Quit().ok()) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const ServeReport report = service.Report();
  EXPECT_EQ(report.queries, static_cast<uint64_t>(kClients) * kRounds);
  EXPECT_EQ(report.connections_accepted, static_cast<uint64_t>(kClients));
  // All clients QUIT; the loop may still be a beat away from recording
  // the last close (BYE reaches the client before CloseConn runs).
  EXPECT_TRUE(WaitForReport(service, [](const ServeReport& r) {
    return r.connections_active == 0;
  }));
  EXPECT_GT(report.bytes_in, 0u);
  EXPECT_GT(report.bytes_out, 0u);
}

// The acceptance-criteria test: ≥2 concurrent connections keep querying
// while a RELOAD swaps the snapshot underneath them. Every response must
// match one of the two snapshots exactly (no dropped or corrupted
// replies), and once the RELOAD is acknowledged, fresh queries answer
// from the new tree.
TEST(TcpServerTest, ReloadSwapsSnapshotUnderInFlightQueries) {
  // Same item universe (i0..i4) and dictionary, different topology and
  // transactions — so the same query line has a different answer on
  // each snapshot.
  DatabaseNetwork net_a = MakeRandomNetwork({.seed = 101});
  DatabaseNetwork net_b = MakeRandomNetwork({.seed = 202});
  TcTree tree_a = TcTree::Build(net_a);
  TcTree tree_b = TcTree::Build(net_b);

  const std::string query_line = "0.0;*";
  auto parsed = ParseServeQuery(net_a.dictionary(), query_line);
  ASSERT_TRUE(parsed.ok());
  const TcTreeQueryResult expect_a =
      QueryTcTree(tree_a, parsed->items, parsed->alpha);
  const TcTreeQueryResult expect_b =
      QueryTcTree(tree_b, parsed->items, parsed->alpha);
  // The check below distinguishes snapshots by their answers.
  ASSERT_FALSE(WireEquals(net_a.dictionary(), expect_a, [&] {
    std::vector<WireTruss> b;
    for (const PatternTruss& t : expect_b.trusses) {
      auto decoded = DecodeTruss(EncodeTruss(net_a.dictionary(), t));
      b.push_back(*decoded);
    }
    return b;
  }()));

  const std::string index_path =
      ::testing::TempDir() + "/tcp_server_reload.idx";
  ASSERT_TRUE(SaveTcTreeToFile(tree_b, index_path).ok());

  QueryService service(tree_a, net_a.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      while (!stop.load(std::memory_order_acquire)) {
        auto trusses = (*client)->Query(query_line);
        if (!trusses.ok()) {
          ++failures;
          return;
        }
        const bool is_a = WireEquals(net_a.dictionary(), expect_a, *trusses);
        const bool is_b = WireEquals(net_a.dictionary(), expect_b, *trusses);
        if (!is_a && !is_b) {  // corrupted or mixed-snapshot response
          ++failures;
          return;
        }
        ++answered;
      }
      if (!(*client)->Quit().ok()) ++failures;
    });
  }

  // Let traffic flow, then roll the rebuilt index in over a separate
  // admin connection while the three query connections stay busy.
  while (answered.load() < 50 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto admin = MustConnect(server);
  ASSERT_NE(admin, nullptr);
  auto reloaded = admin->Reload(index_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(*reloaded, tree_b.num_nodes());

  // Queries *after* the RELOAD ack must answer from the new snapshot.
  auto post = admin->Query(query_line);
  ASSERT_TRUE(post.ok()) << post.status();
  ExpectWireMatches(net_a.dictionary(), expect_b, *post, "post-reload");

  // Keep traffic flowing a little longer on the new snapshot.
  const uint64_t at_reload = answered.load();
  while (answered.load() < at_reload + 50 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(admin->Quit().ok());

  EXPECT_EQ(service.cache_stats().invalidations, 1u);
  std::remove(index_path.c_str());
}

TEST(TcpServerTest, ShardedRollingReloadUnderMultiClientTraffic) {
  // The sharded twin of the RELOAD test above, with a stronger
  // mid-roll contract: the router swaps shard snapshots one at a time,
  // so while the roll is in progress a scattered answer may combine
  // old-snapshot shards with new-snapshot ones — but every *per-shard
  // slice* of every answer must be exactly that shard's old answer or
  // exactly its new answer (per-shard epoch safety; ownership by
  // minimum item makes the slices disjoint). A slice matching neither
  // would mean a mixed-epoch composition inside one shard. Zero
  // queries may drop or error throughout.
  DatabaseNetwork net_a = MakeRandomNetwork({.seed = 101});
  DatabaseNetwork net_b = MakeRandomNetwork({.seed = 202});
  TcTree tree_a = TcTree::Build(net_a);
  TcTree tree_b = TcTree::Build(net_b);

  const std::string query_line = "0.0;*";
  auto parsed = ParseServeQuery(net_a.dictionary(), query_line);
  ASSERT_TRUE(parsed.ok());
  const TcTreeQueryResult expect_a =
      QueryTcTree(tree_a, parsed->items, parsed->alpha);
  const TcTreeQueryResult expect_b =
      QueryTcTree(tree_b, parsed->items, parsed->alpha);

  constexpr size_t kShards = 3;
  ShardedQueryService service(tree_a, net_a.dictionary(), kShards, {});
  const ItemDictionary& dict = service.dictionary();

  // Per-shard slices of the old and new full answers: a shard's answer
  // to any query is the ownership-filtered subsequence (same order).
  auto slice = [&](const TcTreeQueryResult& full, size_t s) {
    TcTreeQueryResult out;
    for (const PatternTruss& t : full.trusses) {
      if (service.ShardOfItem(t.pattern.items()[0]) == s) {
        out.trusses.push_back(t);
      }
    }
    return out;
  };
  std::vector<TcTreeQueryResult> slice_a, slice_b;
  for (size_t s = 0; s < kShards; ++s) {
    slice_a.push_back(slice(expect_a, s));
    slice_b.push_back(slice(expect_b, s));
  }

  // Splits a wire answer by owner shard (min pattern item) and accepts
  // it iff every shard slice is purely old or purely new.
  auto valid_hybrid = [&](const std::vector<WireTruss>& wire) {
    std::vector<std::vector<WireTruss>> parts(kShards);
    for (const WireTruss& t : wire) {
      if (t.pattern.empty()) return false;
      auto id = dict.Find(t.pattern.front());
      if (!id.ok()) return false;
      parts[service.ShardOfItem(*id)].push_back(t);
    }
    for (size_t s = 0; s < kShards; ++s) {
      if (!WireEquals(dict, slice_a[s], parts[s]) &&
          !WireEquals(dict, slice_b[s], parts[s])) {
        return false;
      }
    }
    return true;
  };

  const std::string index_path =
      ::testing::TempDir() + "/tcp_server_shard_reload.idx";
  ASSERT_TRUE(SaveTcTreeToFile(tree_b, index_path).ok());

  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      while (!stop.load(std::memory_order_acquire)) {
        auto trusses = (*client)->Query(query_line);
        if (!trusses.ok() || !valid_hybrid(*trusses)) {
          ++failures;
          return;
        }
        ++answered;
      }
      if (!(*client)->Quit().ok()) ++failures;
    });
  }

  while (answered.load() < 50 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto admin = MustConnect(server);
  ASSERT_NE(admin, nullptr);
  auto reloaded = admin->Reload(index_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(*reloaded, tree_b.num_nodes());

  // After the RELOAD ack the roll is complete: answers must be purely
  // from the new snapshot, no hybrid tolerance.
  auto post = admin->Query(query_line);
  ASSERT_TRUE(post.ok()) << post.status();
  ExpectWireMatches(dict, expect_b, *post, "post-reload sharded");

  const uint64_t at_reload = answered.load();
  while (answered.load() < at_reload + 50 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(admin->Quit().ok());

  // Every shard's cache was invalidated exactly once by the roll
  // (cache_stats sums the per-shard caches), and the per-shard reload
  // gauge saw the last swap.
  EXPECT_EQ(service.cache_stats().invalidations, kShards);
  EXPECT_GT(service.Report().shard_reload_ms, 0.0);
  EXPECT_EQ(service.Report().shards, kShards);
  std::remove(index_path.c_str());
}

TEST(TcpServerTest, ShutdownDisconnectsIdleClientsAndStopsAccepting) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  auto server = std::make_unique<TcpServer>(service, TcpServerOptions{});
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  auto idle = MustConnect(*server);
  ASSERT_NE(idle, nullptr);
  ASSERT_TRUE(idle->Ping().ok());

  server->Shutdown();
  EXPECT_FALSE(server->running());
  // The idle connection was kicked: the next exchange fails cleanly
  // instead of hanging.
  EXPECT_FALSE(idle->Ping().ok());
  // Nobody is listening on the port anymore.
  EXPECT_FALSE(Client::Connect("127.0.0.1", port).ok());
  // Shutdown is idempotent, including via the destructor.
  server->Shutdown();
  server.reset();
}

// A client may send many requests before reading any response; the
// server must answer all of them, in order, on one connection.
TEST(TcpServerTest, PipelinedRequestsAnswerInOrder) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(RawSend(fd, "PING\n0.1;i0\nPING\nnot_a_verb\nQUIT\n"));

  EXPECT_EQ(RawReadLine(fd).rfind("TCF1 OK PONG 0", 0), 0u);
  const std::string trusses = RawReadLine(fd);
  ASSERT_EQ(trusses.rfind("TCF1 OK TRUSSES ", 0), 0u) << trusses;
  const size_t count = std::stoul(trusses.substr(16));
  for (size_t i = 0; i < count; ++i) {
    EXPECT_FALSE(RawReadLine(fd).empty());
  }
  EXPECT_EQ(RawReadLine(fd).rfind("TCF1 OK PONG 0", 0), 0u);
  EXPECT_EQ(RawReadLine(fd).rfind("TCF1 ERR InvalidArgument", 0), 0u);
  EXPECT_EQ(RawReadLine(fd).rfind("TCF1 OK BYE 0", 0), 0u);
  EXPECT_TRUE(RawReadLine(fd).empty());  // server closed after QUIT
  ::close(fd);
  server.Shutdown();
}

// The epoll point: a connection trickling a request one byte at a time
// must not pin an execution worker. With a single worker thread, a
// thread-per-connection server would deadlock here; the event loop
// keeps serving others and answers the slow line once it completes.
TEST(TcpServerTest, SlowLorisPartialLineDoesNotPinTheWorker) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.num_threads = 1;  // the loris would starve a blocking design
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  const int loris = RawConnect(server.port());
  ASSERT_GE(loris, 0);
  ASSERT_TRUE(RawSend(loris, "0."));  // partial query line, no newline

  // While the loris dribbles, full service on other connections.
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(client->Ping().ok());
    auto trusses = client->Query("0.1;i0");
    EXPECT_TRUE(trusses.ok()) << trusses.status();
  }
  EXPECT_TRUE(client->Quit().ok());

  // More dribbling, then the newline: the request completes and is
  // answered like any other.
  ASSERT_TRUE(RawSend(loris, "1;i"));
  ASSERT_TRUE(RawSend(loris, "0\n"));
  EXPECT_EQ(RawReadLine(loris).rfind("TCF1 OK TRUSSES ", 0), 0u);
  ::close(loris);
  server.Shutdown();
}

// A peer that announces a BATCH and dies before sending the body must
// not wedge the server or leak its half-collected state.
TEST(TcpServerTest, ClientDyingMidBatchLeavesServerHealthy) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  const int dying = RawConnect(server.port());
  ASSERT_GE(dying, 0);
  // Header promises 5 lines; only 2 arrive, the second cut mid-byte.
  ASSERT_TRUE(RawSend(dying, "BATCH 5\n0.1;i0\n0.2;i"));
  ::close(dying);

  // The abandoned connection is reaped...
  EXPECT_TRUE(WaitForReport(service, [](const ServeReport& r) {
    return r.connections_active == 0;
  }));

  // ...and the server keeps serving, including fresh batches.
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
  auto items = client->Batch({"0.1;i0", "0.1;i1"});
  ASSERT_TRUE(items.ok()) << items.status();
  ASSERT_EQ(items->size(), 2u);
  EXPECT_TRUE((*items)[0].status.ok());
  EXPECT_TRUE((*items)[1].status.ok());
  EXPECT_TRUE(client->Quit().ok());
  server.Shutdown();
}

// Each BATCH slot is answered independently and in order: a bad line
// gets its ERR in its slot, and its neighbours are unaffected.
TEST(TcpServerTest, BatchSlotsAnswerIndependentlyInOrder) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);

  auto empty = client->Batch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  auto items = client->Batch(
      {"0.1;i0", "nan;i0", "0.1;nosuchitem", "PING", "0.1;i1"});
  ASSERT_TRUE(items.ok()) << items.status();
  ASSERT_EQ(items->size(), 5u);
  EXPECT_TRUE((*items)[0].status.ok()) << (*items)[0].status;
  ExpectWireMatches(net.dictionary(), QueryTcTree(tree, Itemset{0}, 0.1),
                    (*items)[0].trusses, "slot 0");
  EXPECT_TRUE((*items)[1].status.IsInvalidArgument()) << (*items)[1].status;
  EXPECT_TRUE((*items)[2].status.IsNotFound()) << (*items)[2].status;
  // Batch bodies are query lines only; a verb in a slot is an error for
  // that slot, not a command.
  EXPECT_TRUE((*items)[3].status.IsInvalidArgument()) << (*items)[3].status;
  EXPECT_TRUE((*items)[4].status.ok()) << (*items)[4].status;
  ExpectWireMatches(net.dictionary(), QueryTcTree(tree, Itemset{1}, 0.1),
                    (*items)[4].trusses, "slot 4");

  // The error slots poisoned nothing: the connection still works.
  EXPECT_TRUE(client->Ping().ok());

  const ServeReport report = service.Report();
  EXPECT_EQ(report.batches, 1u);
  EXPECT_EQ(report.batch_queries, 5u);
  EXPECT_EQ(report.batch_max_depth, 5u);
  EXPECT_TRUE(client->Quit().ok());
  server.Shutdown();
}

// The C10K shape: a thousand idle connections cost file descriptors,
// not threads — interactive traffic flows past them undisturbed.
TEST(TcpServerTest, ThousandIdleConnectionsSoak) {
  // Both ends of every loopback connection live in this process: 1000
  // idle pairs plus the server's own fds. Stock 1024-fd soft limits
  // can't hold that; raise it or skip rather than fail spuriously.
  if (!EnsureFdLimit(2200)) {
    GTEST_SKIP() << "RLIMIT_NOFILE hard limit too low for the 1000-"
                    "connection soak";
  }
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.num_threads = 2;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kIdle = 1000;
  std::vector<int> idle;
  idle.reserve(kIdle);
  for (size_t i = 0; i < kIdle; ++i) {
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0) << "connection " << i;
    idle.push_back(fd);
    // Half of them park with a partial line in the buffer, the nastier
    // kind of idle.
    if (i % 2 == 0) {
      ASSERT_TRUE(RawSend(fd, "0.0"));
    }
  }
  ASSERT_TRUE(WaitForReport(service, [](const ServeReport& r) {
    return r.connections_active >= kIdle;
  }));

  // Interleaved PING/STATS/queries while the herd sits parked.
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(client->Ping().ok());
    auto stats = client->Stats();
    ASSERT_TRUE(stats.ok()) << stats.status();
    auto trusses = client->Query("0.1;i0");
    ASSERT_TRUE(trusses.ok()) << trusses.status();
  }
  const ServeReport report = service.Report();
  EXPECT_GE(report.connections_peak, kIdle + 1);
  EXPECT_GE(report.connections_active, kIdle);

  for (int fd : idle) ::close(fd);
  EXPECT_TRUE(WaitForReport(service, [](const ServeReport& r) {
    return r.connections_active == 1;  // just the interactive client
  }));
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Quit().ok());
  server.Shutdown();
}

// A pipelining client that sends a flood of requests and only starts
// reading afterwards is backpressured (reads pause at the write-buffer
// high-water mark) instead of growing server memory without bound —
// and still receives every response, in order, once it drains.
TEST(TcpServerTest, NonReadingPipelinerIsBackpressuredNotDropped) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  // A deliberately tiny high-water mark so the pause/resume machinery
  // cycles many times within one test.
  options.max_write_buffer = 1024;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  constexpr size_t kQueries = 2000;
  std::string burst;
  for (size_t i = 0; i < kQueries; ++i) burst += "0.0;*\n";
  burst += "QUIT\n";
  ASSERT_TRUE(RawSend(fd, burst));  // send everything before reading

  RawReader reader(fd);
  for (size_t i = 0; i < kQueries; ++i) {
    const std::string header = reader.ReadLine();
    ASSERT_EQ(header.rfind("TCF1 OK TRUSSES ", 0), 0u)
        << "response " << i << ": " << header;
    const size_t payload = std::stoul(header.substr(16));
    for (size_t j = 0; j < payload; ++j) {
      ASSERT_FALSE(reader.ReadLine().empty());
    }
  }
  EXPECT_EQ(reader.ReadLine().rfind("TCF1 OK BYE 0", 0), 0u);
  EXPECT_TRUE(reader.ReadLine().empty());  // closed after QUIT
  ::close(fd);
  server.Shutdown();
}

// RELOAD under *pipelined* traffic: whole batches keep flowing while
// the snapshot swaps; every slot of every batch must match one of the
// two snapshots exactly and nothing may be dropped.
TEST(TcpServerTest, ReloadUnderPipelinedBatchTraffic) {
  DatabaseNetwork net_a = MakeRandomNetwork({.seed = 303});
  DatabaseNetwork net_b = MakeRandomNetwork({.seed = 404});
  TcTree tree_a = TcTree::Build(net_a);
  TcTree tree_b = TcTree::Build(net_b);

  const std::string query_line = "0.0;*";
  auto parsed = ParseServeQuery(net_a.dictionary(), query_line);
  ASSERT_TRUE(parsed.ok());
  const TcTreeQueryResult expect_a =
      QueryTcTree(tree_a, parsed->items, parsed->alpha);
  const TcTreeQueryResult expect_b =
      QueryTcTree(tree_b, parsed->items, parsed->alpha);

  const std::string index_path =
      ::testing::TempDir() + "/tcp_server_batch_reload.idx";
  ASSERT_TRUE(SaveTcTreeToFile(tree_b, index_path).ok());

  QueryService service(tree_a, net_a.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 2;
  constexpr size_t kDepth = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      const std::vector<std::string> batch(kDepth, query_line);
      while (!stop.load(std::memory_order_acquire)) {
        auto items = (*client)->Batch(batch);
        if (!items.ok() || items->size() != kDepth) {
          ++failures;
          return;
        }
        for (const Client::BatchItem& item : *items) {
          if (!item.status.ok() ||
              (!WireEquals(net_a.dictionary(), expect_a, item.trusses) &&
               !WireEquals(net_a.dictionary(), expect_b, item.trusses))) {
            ++failures;
            return;
          }
          ++answered;
        }
      }
      if (!(*client)->Quit().ok()) ++failures;
    });
  }

  while (answered.load() < 100 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto admin = MustConnect(server);
  ASSERT_NE(admin, nullptr);
  auto reloaded = admin->Reload(index_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();

  // Batches *after* the RELOAD ack answer only from the new snapshot.
  auto post = admin->Batch({query_line});
  ASSERT_TRUE(post.ok()) << post.status();
  ASSERT_EQ(post->size(), 1u);
  ASSERT_TRUE((*post)[0].status.ok());
  ExpectWireMatches(net_a.dictionary(), expect_b, (*post)[0].trusses,
                    "post-reload batch");

  const uint64_t at_reload = answered.load();
  while (answered.load() < at_reload + 100 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(admin->Quit().ok());
  server.Shutdown();
  std::remove(index_path.c_str());
}

TEST(TcpServerTest, MetricsScrapeOverTheWire) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Query("0.1;i0").ok());

  auto scrape = client->Metrics();
  ASSERT_TRUE(scrape.ok()) << scrape.status();
  // Valid Prometheus text exposition: typed families, a counter that
  // saw the query, the transport stage histograms, and the callback
  // instruments over ServeStats.
  EXPECT_NE(scrape->find("# TYPE tcf_queries_total counter"),
            std::string::npos);
  EXPECT_NE(scrape->find("tcf_queries_total 1\n"), std::string::npos)
      << *scrape;
  EXPECT_NE(scrape->find("tcf_query_stage_parse_us_count 1\n"),
            std::string::npos);
  EXPECT_NE(scrape->find("# TYPE tcf_connections_accepted_total counter"),
            std::string::npos);
  EXPECT_NE(scrape->find("tcf_query_total_us_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);

  // The counter must advance between scrapes — the run_checks smoke
  // asserts the same thing end to end.
  ASSERT_TRUE(client->Query("0.1;i0").ok());
  scrape = client->Metrics();
  ASSERT_TRUE(scrape.ok());
  EXPECT_NE(scrape->find("tcf_queries_total 2\n"), std::string::npos);
  EXPECT_NE(scrape->find("tcf_query_cache_hits_total 1\n"),
            std::string::npos)
      << *scrape;
  EXPECT_TRUE(client->Quit().ok());
}

TEST(TcpServerTest, ExplainOverTheWire) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);

  auto pairs = client->Explain("0.1;i0");
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  auto find = [&](const std::string& key) -> std::string {
    for (const auto& [k, v] : *pairs) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "EXPLAIN reply lacks key " << key;
    return "0";
  };
  // Every stage key present, every span non-negative, and the spans
  // nest inside the handler's total.
  double stage_sum = 0;
  for (size_t i = 0; i < kNumQueryStages; ++i) {
    const std::string name(QueryStageName(static_cast<QueryStage>(i)));
    auto wall = ParseDouble(find("stage_" + name + "_us"));
    ASSERT_TRUE(wall.ok());
    EXPECT_GE(*wall, 0) << name;
    stage_sum += *wall;
    auto cpu = ParseDouble(find("stage_" + name + "_cpu_us"));
    ASSERT_TRUE(cpu.ok());
    EXPECT_GE(*cpu, 0) << name;
  }
  auto total = ParseDouble(find("total_us"));
  ASSERT_TRUE(total.ok());
  EXPECT_GT(*total, 0);
  EXPECT_GT(stage_sum, 0);
  // Stage spans are sub-intervals of the handler's total timer; a tiny
  // epsilon covers clock-granularity jitter on the two reads.
  EXPECT_LE(stage_sum, *total * 1.05 + 1.0);
  EXPECT_EQ(find("cache_hit"), "0");  // fresh service: first touch

  // EXPLAIN answers for real: its trusses count matches the query's,
  // and the probe it ran warmed the cache for the next one.
  auto trusses = client->Query("0.1;i0");
  ASSERT_TRUE(trusses.ok());
  auto reported = ParseUint64(find("trusses"));
  ASSERT_TRUE(reported.ok());
  EXPECT_EQ(*reported, trusses->size());

  pairs = client->Explain("0.1;i0");
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(find("cache_hit"), "1");
  EXPECT_EQ(find("visited_nodes"), "0");  // a hit never walks

  // A malformed query line comes back as the carried parse error and
  // leaves the connection healthy.
  auto bad = client->Explain("nan;i0");
  EXPECT_TRUE(bad.status().IsInvalidArgument()) << bad.status();
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(client->Quit().ok());
}

TEST(TcpServerTest, TracingOffStillServesMetricsAndExplain) {
  // tracing=false strips histograms/slow-ring sampling from the hot
  // path, but EXPLAIN passes its own trace explicitly and counters are
  // unconditional — both verbs must keep answering.
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryServiceOptions options;
  options.tracing = false;
  QueryService service(tree, net.dictionary(), options);
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Query("0.1;i0").ok());

  auto pairs = client->Explain("0.1;i0");
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  bool saw_probe_stage = false;
  for (const auto& [k, v] : *pairs) {
    if (k == "stage_cache_probe_us") saw_probe_stage = true;
  }
  EXPECT_TRUE(saw_probe_stage);

  auto scrape = client->Metrics();
  ASSERT_TRUE(scrape.ok());
  // Counters advance untraced (1 query + 1 explain = 2 executes)...
  EXPECT_NE(scrape->find("tcf_queries_total 2\n"), std::string::npos)
      << *scrape;
  // ...but the per-query histograms stay empty for untraced requests:
  // only the explicit EXPLAIN trace recorded one sample.
  EXPECT_NE(scrape->find("tcf_query_total_us_count 1\n"),
            std::string::npos)
      << *scrape;
  EXPECT_TRUE(client->Quit().ok());
}

TEST(TcpServerTest, StartReportsBindFailures) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});

  TcpServerOptions bad_addr;
  bad_addr.bind_address = "not-an-address";
  EXPECT_TRUE(TcpServer(service, bad_addr).Start().IsInvalidArgument());

  TcpServer first(service, {});
  ASSERT_TRUE(first.Start().ok());
  TcpServerOptions in_use;
  in_use.port = first.port();
  EXPECT_TRUE(TcpServer(service, in_use).Start().IsIOError());
  EXPECT_TRUE(first.Start().IsInvalidArgument());  // double start
}

// An IPv6 loopback listener is dual-stack: ::1 connects natively, and
// (IPV6_V6ONLY off) the Client's "localhost" resolution reaches it too.
TEST(TcpServerTest, Ipv6ListenerServesBothFamilies) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.bind_address = "::1";
  TcpServer server(service, options);
  const Status start = server.Start();
  if (!start.ok()) GTEST_SKIP() << "no IPv6 loopback here: " << start;

  auto v6 = Client::Connect("::1", server.port());
  ASSERT_TRUE(v6.ok()) << v6.status();
  EXPECT_TRUE((*v6)->Ping().ok());
  auto trusses = (*v6)->Query("0.1;i0");
  ASSERT_TRUE(trusses.ok()) << trusses.status();
  ExpectWireMatches(net.dictionary(), QueryTcTree(tree, Itemset{0}, 0.1),
                    *trusses, "0.1;i0 over v6");
  EXPECT_TRUE((*v6)->Quit().ok());

  auto named = Client::Connect("localhost", server.port());
  ASSERT_TRUE(named.ok()) << named.status();
  EXPECT_TRUE((*named)->Ping().ok());
  EXPECT_TRUE((*named)->Quit().ok());
  server.Shutdown();
}

// A loris dribbling its request byte by byte cannot dodge the rate
// limiter: admission happens when the framed request executes, and the
// budget is keyed by peer address across all its connections.
TEST(TcpServerTest, SlowLorisStillPaysTheRateLimit) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.rate_limit_qps = 0.25;
  options.rate_limit_burst = 1;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  // A normal query spends the single burst token...
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Query("0.1;i0").ok());

  // ...so the loris' dribbled request, once complete, is over budget
  // even though it arrived on a different connection.
  const int loris = RawConnect(server.port());
  ASSERT_GE(loris, 0);
  for (const char c : std::string("0.1;i0")) {
    ASSERT_TRUE(RawSend(loris, std::string_view(&c, 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(RawSend(loris, "\n"));
  const std::string status_line = RawReadLine(loris);
  EXPECT_EQ(status_line.rfind("TCF1 ERR RateLimited ", 0), 0u)
      << status_line;
  EXPECT_GE(service.Report().rate_limited, 1u);

  // Exempt verbs still answer on the throttled connection.
  ASSERT_TRUE(RawSend(loris, "PING\n"));
  EXPECT_EQ(RawReadLine(loris), "TCF1 OK PONG 0");
  ::close(loris);
  EXPECT_TRUE(client->Quit().ok());
  server.Shutdown();
}

// A peer that pipelines deadline-bounded queries and vanishes before
// reading anything must leave no trace: connections reaped, pending-unit
// pressure back to zero (so later traffic is not spuriously shed).
TEST(TcpServerTest, AbruptCloseUnderDeadlinesDrainsPendingPressure) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.num_threads = 1;
  options.default_deadline_ms = 1;
  options.shed_watermark = 4;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  for (int round = 0; round < 3; ++round) {
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    std::string wire;
    for (int i = 0; i < 40; ++i) wire += "0.1;i0,i1,i2,i3,i4\n";
    ASSERT_TRUE(RawSend(fd, wire));
    ::close(fd);  // never reads a byte
  }
  EXPECT_TRUE(WaitForReport(service, [](const ServeReport& r) {
    return r.connections_active == 0;
  }));

  // With the pressure gone, a fresh client with a generous per-request
  // deadline gets a full answer — nothing is shed, nothing leaked.
  const int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(RawSend(fd, "DEADLINE 60000 0.1;i0\n"));
  EXPECT_EQ(RawReadLine(fd).rfind("TCF1 OK TRUSSES ", 0), 0u);
  ::close(fd);
  server.Shutdown();
}

// Sustained overload soak: a tiny deadline, a tight rate limit, and a
// low shed watermark, hammered by pipelining clients that do read.
// Every response frames cleanly, the overload counters advance, and the
// server ends the run healthy (bounded state: connections reaped,
// pending units drained).
TEST(TcpServerTest, SustainedOverloadSoakStaysCleanAndBounded) {
  DatabaseNetwork net = MakeRandomNetwork({});
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.num_threads = 2;
  options.default_deadline_ms = 1;
  options.rate_limit_qps = 50;
  options.rate_limit_burst = 20;
  options.shed_watermark = 8;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRounds = 10;
  constexpr int kPipeline = 30;
  std::atomic<size_t> framed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        const int fd = RawConnect(server.port());
        if (fd < 0) continue;
        std::string wire;
        for (int i = 0; i < kPipeline; ++i) {
          wire += StrFormat("0.02;i%d,i%d,i%d,i%d\n", c % 5, (c + 1) % 5,
                            (c + 2) % 5, (c + 3) % 5);
        }
        if (!RawSend(fd, wire)) {
          ::close(fd);
          continue;
        }
        RawReader reader(fd);
        for (int i = 0; i < kPipeline; ++i) {
          const std::string status_line = reader.ReadLine();
          if (status_line.empty()) break;  // server-side close
          auto header = ParseResponseHeader(status_line);
          EXPECT_TRUE(header.ok()) << status_line;
          if (!header.ok()) break;
          bool truncated = false;
          for (size_t j = 0; j < header->payload_lines; ++j) {
            if (reader.ReadLine().empty()) {
              truncated = true;
              break;
            }
          }
          EXPECT_FALSE(truncated) << status_line;
          if (truncated) break;
          framed.fetch_add(1, std::memory_order_relaxed);
        }
        ::close(fd);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_GT(framed.load(), 0u);

  EXPECT_TRUE(WaitForReport(service, [](const ServeReport& r) {
    return r.connections_active == 0;
  }));
  const ServeReport report = service.Report();
  // The protections actually engaged during the soak.
  EXPECT_GT(report.rate_limited, 0u);
  // Bounded accounting: every connection came from one loopback peer,
  // so the client LRU holds exactly one record however hard the soak
  // churned reconnects, and the pending-work gauge drains back to zero
  // once the last connection is gone (no phantom backlog).
  EXPECT_EQ(report.clients_tracked, 1u);
  EXPECT_EQ(
      service.metrics()
          .GetGauge("tcf_server_pending_units", "pending request units")
          .Value(),
      0.0);
  // The server is alive and fully functional afterwards.
  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(client->Quit().ok());
  server.Shutdown();
}

}  // namespace
}  // namespace tcf
