#include "serve/tcp_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "serve/client.h"
#include "serve/line_protocol.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;

/// Checks a wire answer against an in-process QueryTcTree answer:
/// identical trusses (pattern names, vertex list, edge list) in
/// identical order.
void ExpectWireMatches(const ItemDictionary& dictionary,
                       const TcTreeQueryResult& expected,
                       const std::vector<WireTruss>& actual,
                       const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(actual.size(), expected.trusses.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    const PatternTruss& e = expected.trusses[i];
    ASSERT_EQ(actual[i].pattern.size(), e.pattern.size());
    for (size_t j = 0; j < e.pattern.size(); ++j) {
      EXPECT_EQ(actual[i].pattern[j], dictionary.Name(e.pattern.items()[j]));
    }
    EXPECT_EQ(actual[i].vertices, e.vertices);
    EXPECT_EQ(actual[i].edges, e.edges);
  }
}

/// True if the wire answer is structurally identical to `expected`
/// (non-asserting form, for the either-snapshot check during RELOAD).
bool WireEquals(const ItemDictionary& dictionary,
                const TcTreeQueryResult& expected,
                const std::vector<WireTruss>& actual) {
  if (actual.size() != expected.trusses.size()) return false;
  for (size_t i = 0; i < actual.size(); ++i) {
    const PatternTruss& e = expected.trusses[i];
    if (actual[i].pattern.size() != e.pattern.size()) return false;
    for (size_t j = 0; j < e.pattern.size(); ++j) {
      if (actual[i].pattern[j] != dictionary.Name(e.pattern.items()[j])) {
        return false;
      }
    }
    if (actual[i].vertices != e.vertices) return false;
    if (actual[i].edges != e.edges) return false;
  }
  return true;
}

std::unique_ptr<Client> MustConnect(const TcpServer& server) {
  auto client = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status();
  return client.ok() ? std::move(*client) : nullptr;
}

TEST(TcpServerTest, PingQueryStatsQuit) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);  // kernel assigned an ephemeral port

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());

  auto trusses = client->Query("0.1;i0");
  ASSERT_TRUE(trusses.ok()) << trusses.status();
  ExpectWireMatches(net.dictionary(), QueryTcTree(tree, Itemset{0}, 0.1),
                    *trusses, "0.1;i0");

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  bool saw_queries = false, saw_connections = false;
  for (const auto& [key, value] : *stats) {
    if (key == "queries") {
      saw_queries = true;
      EXPECT_EQ(value, "1");
    }
    if (key == "connections_accepted") {
      saw_connections = true;
      EXPECT_EQ(value, "1");
    }
  }
  EXPECT_TRUE(saw_queries);
  EXPECT_TRUE(saw_connections);

  EXPECT_TRUE(client->Quit().ok());
  server.Shutdown();
  EXPECT_FALSE(server.running());
}

TEST(TcpServerTest, ServerSideErrorsKeepConnectionUsable) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);

  // Each protocol-level error comes back as a carried ERR status with
  // the hardened parser's code and column context...
  auto bad_alpha = client->Query("nan;i0");
  EXPECT_TRUE(bad_alpha.status().IsInvalidArgument()) << bad_alpha.status();
  auto bad_item = client->Query("0.1;nosuchitem");
  EXPECT_TRUE(bad_item.status().IsNotFound()) << bad_item.status();
  EXPECT_NE(bad_item.status().message().find("col 5"), std::string::npos)
      << bad_item.status();
  auto overflow = client->Query("1e999;i0");
  EXPECT_TRUE(overflow.status().IsOutOfRange()) << overflow.status();
  auto bad_reload = client->Reload("/definitely/not/an/index.idx");
  EXPECT_TRUE(bad_reload.status().IsIOError()) << bad_reload.status();

  // ...and none of them poisons the connection.
  EXPECT_TRUE(client->Ping().ok());
  auto good = client->Query("0.1;i0");
  EXPECT_TRUE(good.ok()) << good.status();
  EXPECT_TRUE(client->Quit().ok());
}

TEST(TcpServerTest, ReloadDisabledAnswersUnimplemented) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServerOptions options;
  options.allow_reload = false;
  TcpServer server(service, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = MustConnect(server);
  ASSERT_NE(client, nullptr);
  auto reload = client->Reload("/tmp/whatever.idx");
  EXPECT_TRUE(reload.status().IsUnimplemented()) << reload.status();
  EXPECT_TRUE(client->Quit().ok());
}

TEST(TcpServerTest, ConcurrentClientsGetIdenticalAnswers) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 19});
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> queries = {
      "0;i0", "0.05;i0,i1", "0.1;i1,i2,i3", "0.02;*", "0.15;i4"};
  std::vector<TcTreeQueryResult> expected;
  for (const std::string& q : queries) {
    auto parsed = ParseServeQuery(net.dictionary(), q);
    ASSERT_TRUE(parsed.ok()) << q;
    expected.push_back(QueryTcTree(tree, parsed->items, parsed->alpha));
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        const size_t pick = static_cast<size_t>(t + round) % queries.size();
        auto trusses = (*client)->Query(queries[pick]);
        if (!trusses.ok() ||
            !WireEquals(net.dictionary(), expected[pick], *trusses)) {
          ++failures;
          return;
        }
      }
      if (!(*client)->Quit().ok()) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const ServeReport report = service.Report();
  EXPECT_EQ(report.queries, static_cast<uint64_t>(kClients) * kRounds);
  EXPECT_EQ(report.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(report.connections_active, 0u);  // all QUIT before join
  EXPECT_GT(report.bytes_in, 0u);
  EXPECT_GT(report.bytes_out, 0u);
}

// The acceptance-criteria test: ≥2 concurrent connections keep querying
// while a RELOAD swaps the snapshot underneath them. Every response must
// match one of the two snapshots exactly (no dropped or corrupted
// replies), and once the RELOAD is acknowledged, fresh queries answer
// from the new tree.
TEST(TcpServerTest, ReloadSwapsSnapshotUnderInFlightQueries) {
  // Same item universe (i0..i4) and dictionary, different topology and
  // transactions — so the same query line has a different answer on
  // each snapshot.
  DatabaseNetwork net_a = MakeRandomNetwork({.seed = 101});
  DatabaseNetwork net_b = MakeRandomNetwork({.seed = 202});
  TcTree tree_a = TcTree::Build(net_a);
  TcTree tree_b = TcTree::Build(net_b);

  const std::string query_line = "0.0;*";
  auto parsed = ParseServeQuery(net_a.dictionary(), query_line);
  ASSERT_TRUE(parsed.ok());
  const TcTreeQueryResult expect_a =
      QueryTcTree(tree_a, parsed->items, parsed->alpha);
  const TcTreeQueryResult expect_b =
      QueryTcTree(tree_b, parsed->items, parsed->alpha);
  // The check below distinguishes snapshots by their answers.
  ASSERT_FALSE(WireEquals(net_a.dictionary(), expect_a, [&] {
    std::vector<WireTruss> b;
    for (const PatternTruss& t : expect_b.trusses) {
      auto decoded = DecodeTruss(EncodeTruss(net_a.dictionary(), t));
      b.push_back(*decoded);
    }
    return b;
  }()));

  const std::string index_path =
      ::testing::TempDir() + "/tcp_server_reload.idx";
  ASSERT_TRUE(SaveTcTreeToFile(tree_b, index_path).ok());

  QueryService service(tree_a, net_a.dictionary(), {});
  TcpServer server(service, {});
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      while (!stop.load(std::memory_order_acquire)) {
        auto trusses = (*client)->Query(query_line);
        if (!trusses.ok()) {
          ++failures;
          return;
        }
        const bool is_a = WireEquals(net_a.dictionary(), expect_a, *trusses);
        const bool is_b = WireEquals(net_a.dictionary(), expect_b, *trusses);
        if (!is_a && !is_b) {  // corrupted or mixed-snapshot response
          ++failures;
          return;
        }
        ++answered;
      }
      if (!(*client)->Quit().ok()) ++failures;
    });
  }

  // Let traffic flow, then roll the rebuilt index in over a separate
  // admin connection while the three query connections stay busy.
  while (answered.load() < 50 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto admin = MustConnect(server);
  ASSERT_NE(admin, nullptr);
  auto reloaded = admin->Reload(index_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(*reloaded, tree_b.num_nodes());

  // Queries *after* the RELOAD ack must answer from the new snapshot.
  auto post = admin->Query(query_line);
  ASSERT_TRUE(post.ok()) << post.status();
  ExpectWireMatches(net_a.dictionary(), expect_b, *post, "post-reload");

  // Keep traffic flowing a little longer on the new snapshot.
  const uint64_t at_reload = answered.load();
  while (answered.load() < at_reload + 50 && failures.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(admin->Quit().ok());

  EXPECT_EQ(service.cache_stats().invalidations, 1u);
  std::remove(index_path.c_str());
}

TEST(TcpServerTest, ShutdownDisconnectsIdleClientsAndStopsAccepting) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});
  auto server = std::make_unique<TcpServer>(service, TcpServerOptions{});
  ASSERT_TRUE(server->Start().ok());
  const uint16_t port = server->port();

  auto idle = MustConnect(*server);
  ASSERT_NE(idle, nullptr);
  ASSERT_TRUE(idle->Ping().ok());

  server->Shutdown();
  EXPECT_FALSE(server->running());
  // The idle connection was kicked: the next exchange fails cleanly
  // instead of hanging.
  EXPECT_FALSE(idle->Ping().ok());
  // Nobody is listening on the port anymore.
  EXPECT_FALSE(Client::Connect("127.0.0.1", port).ok());
  // Shutdown is idempotent, including via the destructor.
  server->Shutdown();
  server.reset();
}

TEST(TcpServerTest, StartReportsBindFailures) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});

  TcpServerOptions bad_addr;
  bad_addr.bind_address = "not-an-address";
  EXPECT_TRUE(TcpServer(service, bad_addr).Start().IsInvalidArgument());

  TcpServer first(service, {});
  ASSERT_TRUE(first.Start().ok());
  TcpServerOptions in_use;
  in_use.port = first.port();
  EXPECT_TRUE(TcpServer(service, in_use).Start().IsIOError());
  EXPECT_TRUE(first.Start().IsInvalidArgument());  // double start
}

}  // namespace
}  // namespace tcf
