#include "core/communities.h"

#include <gtest/gtest.h>

#include "core/mptd.h"
#include "core/tcfi.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::EdgeList;
using testing::MakeFigureOneNetwork;

TEST(CommunitiesTest, SplitsDisconnectedTruss) {
  PatternTruss truss;
  truss.pattern = Itemset({0});
  truss.edges = EdgeList({{0, 1}, {0, 2}, {1, 2}, {7, 8}, {7, 9}, {8, 9}});
  truss.vertices = {0, 1, 2, 7, 8, 9};
  truss.frequencies = {0.1, 0.1, 0.1, 0.3, 0.3, 0.3};
  auto communities = ExtractThemeCommunities(truss);
  ASSERT_EQ(communities.size(), 2u);
  EXPECT_EQ(communities[0].vertices, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(communities[0].edges, EdgeList({{0, 1}, {0, 2}, {1, 2}}));
  EXPECT_EQ(communities[1].vertices, (std::vector<VertexId>{7, 8, 9}));
  EXPECT_EQ(communities[0].theme, Itemset({0}));
  EXPECT_EQ(communities[0].size(), 3u);
}

TEST(CommunitiesTest, ConnectedTrussIsOneCommunity) {
  PatternTruss truss;
  truss.pattern = Itemset({1});
  truss.edges = EdgeList({{0, 1}, {1, 2}, {0, 2}});
  auto communities = ExtractThemeCommunities(truss);
  ASSERT_EQ(communities.size(), 1u);
  EXPECT_EQ(communities[0].vertices, (std::vector<VertexId>{0, 1, 2}));
}

TEST(CommunitiesTest, EmptyTrussYieldsNone) {
  PatternTruss truss;
  truss.pattern = Itemset({0});
  EXPECT_TRUE(ExtractThemeCommunities(truss).empty());
}

TEST(CommunitiesTest, BatchExtractionKeepsTrussOrder) {
  PatternTruss a;
  a.pattern = Itemset({0});
  a.edges = EdgeList({{0, 1}, {1, 2}, {0, 2}});
  PatternTruss b;
  b.pattern = Itemset({1});
  b.edges = EdgeList({{5, 6}, {6, 7}, {5, 7}});
  auto communities = ExtractThemeCommunities(std::vector<PatternTruss>{a, b});
  ASSERT_EQ(communities.size(), 2u);
  EXPECT_EQ(communities[0].theme, Itemset({0}));
  EXPECT_EQ(communities[1].theme, Itemset({1}));
}

TEST(CommunitiesTest, FigureOneEndToEnd) {
  // The paper's Example 3.6 analogue: two theme communities of item 0
  // at low alpha, overlapping with the (single) community of item 1.
  DatabaseNetwork net = MakeFigureOneNetwork();
  MiningResult r = RunTcfi(net, {.alpha = 0.15});
  auto communities = ExtractThemeCommunities(r.trusses);

  std::vector<ThemeCommunity> of_item0;
  std::vector<ThemeCommunity> of_item1;
  for (const auto& c : communities) {
    if (c.theme == Itemset({0})) of_item0.push_back(c);
    if (c.theme == Itemset({1})) of_item1.push_back(c);
  }
  ASSERT_EQ(of_item0.size(), 2u);
  EXPECT_EQ(of_item0[0].vertices, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(of_item0[1].vertices, (std::vector<VertexId>{6, 7, 8}));
  // Overlap across different themes is allowed (Def. 3.5 / Example 3.6):
  // item 1's community shares vertices with item 0's.
  ASSERT_FALSE(of_item1.empty());
  bool overlaps = false;
  for (VertexId v : of_item1[0].vertices) {
    if (v <= 3) overlaps = true;
  }
  EXPECT_TRUE(overlaps);
}

TEST(CommunitiesTest, CommunityEdgesAreWithinCommunityVertices) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  MiningResult r = RunTcfi(net, {.alpha = 0.0});
  for (const auto& c : ExtractThemeCommunities(r.trusses)) {
    for (const Edge& e : c.edges) {
      EXPECT_TRUE(std::binary_search(c.vertices.begin(), c.vertices.end(),
                                     e.u));
      EXPECT_TRUE(std::binary_search(c.vertices.begin(), c.vertices.end(),
                                     e.v));
    }
  }
}

}  // namespace
}  // namespace tcf
