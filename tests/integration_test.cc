// Cross-module integration: generators → sampler/serialization → miners →
// index → queries, checked end-to-end on realistic (small) data.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/communities.h"
#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "core/tcfa.h"
#include "core/tcfi.h"
#include "core/tcs.h"
#include "gen/checkin_generator.h"
#include "gen/coauthor_generator.h"
#include "gen/syn_generator.h"
#include "net/network_io.h"
#include "net/sampler.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::ExpectSameResults;

CheckinParams TinyCheckin() {
  CheckinParams p;
  p.num_users = 80;
  p.num_locations = 25;
  p.periods_per_user = 12;
  p.favorites_per_user = 5;
  p.seed = 9;
  return p;
}

TEST(IntegrationTest, CheckinMiningAgreesAcrossMiners) {
  DatabaseNetwork net = GenerateCheckinNetwork(TinyCheckin());
  for (double alpha : {0.0, 0.1}) {
    MiningResult fa = RunTcfa(net, {.alpha = alpha, .max_pattern_length = 3});
    MiningResult fi = RunTcfi(net, {.alpha = alpha, .max_pattern_length = 3});
    ExpectSameResults(std::move(fa), std::move(fi),
                      "alpha=" + std::to_string(alpha));
  }
}

TEST(IntegrationTest, CheckinTreeAnswersMatchDirectMining) {
  DatabaseNetwork net = GenerateCheckinNetwork(TinyCheckin());
  TcTree tree = TcTree::Build(net, {.num_threads = 2, .max_depth = 3});
  MiningResult direct = RunTcfi(net, {.alpha = 0.0, .max_pattern_length = 3});

  std::vector<ItemId> all_items = net.ActiveItems();
  Itemset everything(all_items);
  TcTreeQueryResult qba = QueryTcTree(tree, everything, 0.0);
  EXPECT_EQ(qba.retrieved_nodes, direct.NumPatterns());

  std::set<Itemset> direct_patterns;
  for (const auto& t : direct.trusses) direct_patterns.insert(t.pattern);
  for (const auto& t : qba.trusses) {
    EXPECT_TRUE(direct_patterns.count(t.pattern)) << t.pattern.ToString();
  }
}

TEST(IntegrationTest, SerializationPreservesMiningResults) {
  DatabaseNetwork net = GenerateCheckinNetwork(TinyCheckin());
  std::stringstream ss;
  ASSERT_TRUE(SaveNetwork(net, ss).ok());
  auto loaded = LoadNetwork(ss);
  ASSERT_TRUE(loaded.ok());
  ExpectSameResults(RunTcfi(net, {.alpha = 0.1, .max_pattern_length = 2}),
                    RunTcfi(*loaded, {.alpha = 0.1, .max_pattern_length = 2}),
                    "serialization round-trip");
}

TEST(IntegrationTest, SampledNetworkMinesConsistently) {
  DatabaseNetwork net = GenerateCheckinNetwork(TinyCheckin());
  Rng rng(5);
  auto sub = SampleByBfs(net, net.num_edges() / 2, rng);
  ASSERT_TRUE(sub.ok());
  // Exactness invariants must hold on the sample too.
  ExpectSameResults(RunTcfa(*sub, {.alpha = 0.0, .max_pattern_length = 2}),
                    RunTcfi(*sub, {.alpha = 0.0, .max_pattern_length = 2}),
                    "sampled network");
}

TEST(IntegrationTest, CoauthorPlantedGroupsAreRecovered) {
  CoauthorParams p;
  p.num_groups = 4;
  p.group_size_min = 5;
  p.group_size_max = 8;
  p.overlap_fraction = 0.0;  // disjoint for crisp recovery
  p.intra_group_edge_prob = 0.9;
  p.seed = 13;
  CoauthorNetwork cn = GenerateCoauthorNetwork(p);
  TcTree tree = TcTree::Build(cn.network, {.max_depth = 4});

  for (const PlantedGroup& g : cn.groups) {
    // Query the planted theme; the deepest retrieved truss for the full
    // theme must cover most of the planted members.
    TcTreeQueryResult r = QueryTcTree(tree, g.theme, 0.0);
    const PatternTruss* full = nullptr;
    for (const auto& t : r.trusses) {
      if (t.pattern == g.theme) full = &t;
    }
    ASSERT_NE(full, nullptr) << "theme " << g.theme.ToString();
    // Recovered vertices ⊇ most members (edges require triangles, so a
    // couple of peripheral members may drop).
    std::set<VertexId> members(g.members.begin(), g.members.end());
    size_t hits = 0;
    for (VertexId v : full->vertices) {
      if (members.count(v)) ++hits;
    }
    EXPECT_GE(hits * 2, g.members.size()) << "theme " << g.theme.ToString();
    // Precision: recovered vertices should be members (no noise vertex
    // carries the full theme).
    for (VertexId v : full->vertices) {
      EXPECT_TRUE(members.count(v)) << "vertex " << v;
    }
  }
}

TEST(IntegrationTest, SynNetworkEndToEnd) {
  SynParams p;
  p.num_vertices = 120;
  p.num_edges = 420;
  p.num_items = 40;
  p.num_seeds = 8;
  p.seed = 17;
  DatabaseNetwork net = GenerateSynNetwork(p);
  TcTree tree = TcTree::Build(net, {.max_depth = 2});
  MiningResult direct = RunTcfi(net, {.alpha = 0.0, .max_pattern_length = 2});
  EXPECT_EQ(tree.num_nodes(), direct.NumPatterns());
}

TEST(IntegrationTest, TcsUnderestimatesButNeverInvents) {
  DatabaseNetwork net = GenerateCheckinNetwork(TinyCheckin());
  MiningResult exact = RunTcfi(net, {.alpha = 0.0, .max_pattern_length = 2});
  std::set<Itemset> exact_patterns;
  for (const auto& t : exact.trusses) exact_patterns.insert(t.pattern);
  for (double eps : {0.1, 0.3}) {
    MiningResult lossy = RunTcs(
        net, {.alpha = 0.0, .epsilon = eps, .max_pattern_length = 2});
    EXPECT_LE(lossy.NumPatterns(), exact.NumPatterns());
    for (const auto& t : lossy.trusses) {
      EXPECT_TRUE(exact_patterns.count(t.pattern));
    }
  }
}

TEST(IntegrationTest, CommunitiesHaveCoherentThemes) {
  DatabaseNetwork net = GenerateCheckinNetwork(TinyCheckin());
  MiningResult r = RunTcfi(net, {.alpha = 0.2, .max_pattern_length = 2});
  auto communities = ExtractThemeCommunities(r.trusses);
  for (const auto& c : communities) {
    ASSERT_GE(c.vertices.size(), 3u);  // a truss edge needs a triangle
    for (VertexId v : c.vertices) {
      EXPECT_GT(net.Frequency(v, c.theme), 0.0);
    }
  }
}

}  // namespace
}  // namespace tcf
