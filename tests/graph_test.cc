#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace tcf {
namespace {

TEST(EdgeTest, MakeEdgeCanonicalizes) {
  EXPECT_EQ(MakeEdge(5, 2), (Edge{2, 5}));
  EXPECT_EQ(MakeEdge(2, 5), (Edge{2, 5}));
}

TEST(EdgeTest, Ordering) {
  EXPECT_LT((Edge{0, 1}), (Edge{0, 2}));
  EXPECT_LT((Edge{0, 9}), (Edge{1, 2}));
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilderTest, IsolatedVerticesViaReserve) {
  GraphBuilder b(5);
  Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder b;
  EXPECT_TRUE(b.AddEdge(1, 1).IsInvalidArgument());
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
}

TEST(GraphBuilderTest, CoalescesDuplicateEdges) {
  GraphBuilder b;
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 0).ok());  // same edge reversed
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphBuilderTest, GrowsVertexCountFromEndpoints) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(2, 7).ok());
  Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 8u);
}

Graph MakeTriangleWithTail() {
  GraphBuilder b;
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(0, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());
  return b.Build();
}

TEST(GraphTest, EdgesAreCanonicalAndSorted) {
  Graph g = MakeTriangleWithTail();
  ASSERT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{0, 2}));
  EXPECT_EQ(g.edge(2), (Edge{1, 2}));
  EXPECT_EQ(g.edge(3), (Edge{2, 3}));
}

TEST(GraphTest, AdjacencySortedByNeighbor) {
  Graph g = MakeTriangleWithTail();
  auto adj = g.neighbors(2);
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_EQ(adj[0].vertex, 0u);
  EXPECT_EQ(adj[1].vertex, 1u);
  EXPECT_EQ(adj[2].vertex, 3u);
}

TEST(GraphTest, NeighborsCarryEdgeIds) {
  Graph g = MakeTriangleWithTail();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Neighbor& nb : g.neighbors(v)) {
      const Edge& e = g.edge(nb.edge);
      EXPECT_TRUE((e.u == v && e.v == nb.vertex) ||
                  (e.v == v && e.u == nb.vertex));
    }
  }
}

TEST(GraphTest, FindEdge) {
  Graph g = MakeTriangleWithTail();
  EXPECT_EQ(g.FindEdge(0, 1), 0u);
  EXPECT_EQ(g.FindEdge(1, 0), 0u);
  EXPECT_EQ(g.FindEdge(2, 3), 3u);
  EXPECT_EQ(g.FindEdge(0, 3), kInvalidEdge);
  EXPECT_EQ(g.FindEdge(0, 99), kInvalidEdge);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(1, 3));
}

TEST(GraphTest, Degrees) {
  Graph g = MakeTriangleWithTail();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(GraphTest, SumDegreeSquared) {
  Graph g = MakeTriangleWithTail();
  EXPECT_EQ(g.SumDegreeSquared(), 4u + 4u + 9u + 1u);
}

TEST(GraphBuilderTest, BuilderIsReusableAfterBuild) {
  GraphBuilder b;
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g1 = b.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  // After Build the builder is reset.
  Graph g2 = b.Build();
  EXPECT_EQ(g2.num_edges(), 0u);
  EXPECT_EQ(g2.num_vertices(), 0u);
}

}  // namespace
}  // namespace tcf
