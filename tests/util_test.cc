#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "util/memory.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tcf {
namespace {

// ---------------------------------------------------------- TextTable --

TEST(TextTableTest, AlignedOutputContainsAllCells) {
  TextTable t({"alpha", "time"});
  t.AddRow({"0.1", "12.5"});
  t.AddRow({"0.25", "3"});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  for (const char* cell : {"alpha", "time", "0.1", "12.5", "0.25"}) {
    EXPECT_NE(s.find(cell), std::string::npos) << cell;
  }
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(TextTableTest, CsvEscapesCommasAndQuotes) {
  TextTable t({"name", "value"});
  t.AddRow({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTableTest, NumberFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(uint64_t{12345}), "12345");
  EXPECT_EQ(TextTable::Num(int64_t{-7}), "-7");
  EXPECT_EQ(TextTable::Sci(12345.0, 2), "1.23e+04");
}

// ------------------------------------------------------------- Memory --

TEST(MemoryTest, RssReadersReturnPlausibleValues) {
  const uint64_t rss = CurrentRssBytes();
  const uint64_t peak = PeakRssBytes();
  EXPECT_GT(rss, 1024u * 1024u);  // a test binary is >1MB resident
  EXPECT_GE(peak, rss / 2);       // peak can't be far below current
}

TEST(MemoryTest, ByteUnitsScales) {
  double v = 0;
  EXPECT_STREQ(ByteUnits(512, &v), "B");
  EXPECT_DOUBLE_EQ(v, 512.0);
  EXPECT_STREQ(ByteUnits(2048, &v), "KB");
  EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_STREQ(ByteUnits(3ull << 30, &v), "GB");
  EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(MemoryTest, HumanBytesStream) {
  std::ostringstream os;
  os << HumanBytes(1536);
  EXPECT_EQ(os.str(), "1.5 KB");
}

// -------------------------------------------------------------- Timer --

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.Millis(), 15.0);
  EXPECT_LT(t.Seconds(), 5.0);
  t.Reset();
  EXPECT_LT(t.Millis(), 15.0);
}

// -------------------------------------------------------- String utils --

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("theme community", "theme"));
  EXPECT_FALSE(StartsWith("theme", "theme community"));
}

TEST(StringUtilTest, ParseUint64Valid) {
  auto v = ParseUint64("12345");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 12345u);
  EXPECT_EQ(*ParseUint64("  7 "), 7u);
  EXPECT_EQ(*ParseUint64("0"), 0u);
}

TEST(StringUtilTest, ParseUint64Invalid) {
  EXPECT_TRUE(ParseUint64("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUint64("-3").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUint64("12x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseUint64("99999999999999999999999")
                  .status()
                  .IsOutOfRange());
}

TEST(StringUtilTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 2 "), 2.0);
}

TEST(StringUtilTest, ParseDoubleInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// --------------------------------------------------------- ThreadPool --

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, ZeroIterations) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [&](size_t) { FAIL() << "must not run"; });
  SUCCEED();
}

TEST(ParallelForTest, DeterministicOutputSlots) {
  ThreadPool pool(4);
  std::vector<int> out(500, -1);
  ParallelFor(pool, out.size(),
              [&](size_t i) { out[i] = static_cast<int>(i * i); });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(HardwareThreadsTest, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1u); }

}  // namespace
}  // namespace tcf
