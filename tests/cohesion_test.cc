#include "core/cohesion.h"

#include <gtest/gtest.h>

namespace tcf {
namespace {

TEST(CohesionTest, QuantizeFrequencyBasics) {
  EXPECT_EQ(QuantizeFrequency(0.0), 0);
  EXPECT_EQ(QuantizeFrequency(-0.5), 0);  // clamped
  EXPECT_EQ(QuantizeFrequency(1.0), kCohesionScale);
  EXPECT_EQ(QuantizeFrequency(0.5), kCohesionScale / 2);
}

TEST(CohesionTest, QuantizationIsMonotone) {
  double prev_f = 0.0;
  CohesionValue prev_q = 0;
  for (int i = 1; i <= 1000; ++i) {
    double f = static_cast<double>(i) / 1000.0;
    CohesionValue q = QuantizeFrequency(f);
    EXPECT_GE(q, prev_q) << f << " vs " << prev_f;
    prev_q = q;
    prev_f = f;
  }
}

TEST(CohesionTest, QuantizationErrorBound) {
  for (int n = 1; n <= 50; ++n) {
    for (int h = 0; h <= n; ++h) {
      const double f = static_cast<double>(h) / n;
      const double back = CohesionToDouble(QuantizeFrequency(f));
      EXPECT_NEAR(back, f, 1.0 / static_cast<double>(kCohesionScale));
    }
  }
}

TEST(CohesionTest, EqualRationalsQuantizeEqual) {
  // 1/3 == 2/6 == 10/30 must agree after quantization.
  EXPECT_EQ(QuantizeFrequency(1.0 / 3.0), QuantizeFrequency(2.0 / 6.0));
  EXPECT_EQ(QuantizeFrequency(1.0 / 3.0), QuantizeFrequency(10.0 / 30.0));
}

TEST(CohesionTest, QuantizeAlphaImplementsStrictPredicate) {
  // eco = 0.2 (quantized), alpha = 0.2: "eco > alpha" must be false.
  const CohesionValue eco = QuantizeFrequency(0.2);
  EXPECT_FALSE(eco > QuantizeAlpha(0.2));
  // alpha slightly below: true.
  EXPECT_TRUE(eco > QuantizeAlpha(0.19999999));
  // alpha slightly above: false.
  EXPECT_FALSE(eco > QuantizeAlpha(0.2000001));
}

TEST(CohesionTest, QuantizeAlphaNegativeClampsToZero) {
  EXPECT_EQ(QuantizeAlpha(-1.0), 0);
  EXPECT_EQ(QuantizeAlpha(0.0), 0);
}

TEST(CohesionTest, ZeroCohesionNeverQualifiesAtAlphaZero) {
  // The alpha=0 predicate eco > 0 must reject exactly eco = 0.
  EXPECT_FALSE(CohesionValue{0} > QuantizeAlpha(0.0));
  EXPECT_TRUE(CohesionValue{1} > QuantizeAlpha(0.0));
}

TEST(CohesionTest, AdditionIsExact) {
  // The whole point of fixed point: sums and differences round-trip.
  const CohesionValue a = QuantizeFrequency(0.1);
  CohesionValue acc = 0;
  for (int i = 0; i < 1000; ++i) acc += a;
  for (int i = 0; i < 1000; ++i) acc -= a;
  EXPECT_EQ(acc, 0);
}

TEST(CohesionTest, RoundTripToDouble) {
  EXPECT_DOUBLE_EQ(CohesionToDouble(QuantizeFrequency(0.25)), 0.25);
  EXPECT_DOUBLE_EQ(CohesionToDouble(0), 0.0);
}

}  // namespace
}  // namespace tcf
