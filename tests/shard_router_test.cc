// Property tests for the sharded serving path (core/partition.h +
// serve/shard_router.h): for random BK-like / SYN networks, random
// queries, and N ∈ {1, 2, 3, 8}, the scatter-gather answer must equal
// the single-shard answer *field for field in identical BFS retrieval
// order* — the same oracle style as tc_tree_parallel_test.cc — under
// build caps (`max_nodes`, `max_depth`), result-shaping query knobs,
// and warm caches. Plus the structural guarantees the router leans on:
// PartitionTcTree is an exact partition of the arena by layer-1 item
// ownership, and BuildShardTree over a PartitionTransactions network
// reproduces the partitioned full build byte-identically.
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/partition.h"
#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "gen/checkin_generator.h"
#include "gen/syn_generator.h"
#include "serve/query_service.h"
#include "serve/shard_router.h"
#include "util/rng.h"

namespace tcf {
namespace {

constexpr size_t kShardCounts[] = {1, 2, 3, 8};

std::string Serialize(const TcTree& tree) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(SaveTcTree(tree, os).ok());
  return os.str();
}

DatabaseNetwork SmallBkLike(uint64_t seed) {
  CheckinParams p;
  p.num_users = 120;
  p.num_locations = 24;
  p.periods_per_user = 20;
  p.seed = seed;
  return GenerateCheckinNetwork(p);
}

DatabaseNetwork SmallSyn(uint64_t seed) {
  SynParams p;
  p.num_vertices = 300;
  p.num_edges = 1800;
  p.num_items = 60;
  p.num_seeds = 12;
  p.seed = seed;
  return GenerateSynNetwork(p);
}

/// Field-for-field equality, traversal order included. `exact_counters`
/// is dropped only under `max_results`, where each shard legitimately
/// walks until its own budget's worth of answers (visited/pruned may
/// exceed the single-tree walk; trusses and retrieved_nodes stay exact).
void ExpectIdentical(const TcTreeQueryResult& expected,
                     const TcTreeQueryResult& actual,
                     const std::string& context, bool exact_counters = true) {
  SCOPED_TRACE(context);
  EXPECT_EQ(expected.retrieved_nodes, actual.retrieved_nodes);
  if (exact_counters) {
    EXPECT_EQ(expected.visited_nodes, actual.visited_nodes);
    EXPECT_EQ(expected.pruned_subtrees, actual.pruned_subtrees);
  }
  ASSERT_EQ(expected.trusses.size(), actual.trusses.size());
  for (size_t i = 0; i < expected.trusses.size(); ++i) {
    const PatternTruss& e = expected.trusses[i];
    const PatternTruss& a = actual.trusses[i];
    EXPECT_EQ(e.pattern, a.pattern) << "truss " << i;
    EXPECT_EQ(e.edges, a.edges) << "truss " << i;
    EXPECT_EQ(e.vertices, a.vertices) << "truss " << i;
    EXPECT_EQ(e.frequencies, a.frequencies) << "truss " << i;  // bitwise
    EXPECT_EQ(e.edge_cohesions, a.edge_cohesions) << "truss " << i;
  }
}

/// A random query over the network's live items: 1-5 items (dups fold
/// away in the Itemset), alpha from a grid that straddles typical
/// generator cohesions so some queries retrieve plenty and some prune
/// everything.
ServeQuery RandomQuery(const std::vector<ItemId>& items, Rng& rng) {
  static constexpr double kAlphas[] = {0.0, 0.02, 0.05, 0.1, 0.25, 0.6};
  const size_t len = 1 + rng.NextUint64(5);
  std::vector<ItemId> picked;
  for (size_t i = 0; i < len; ++i) {
    picked.push_back(items[rng.NextUint64(items.size())]);
  }
  return ServeQuery{Itemset(std::move(picked)),
                    kAlphas[rng.NextUint64(std::size(kAlphas))]};
}

/// Caching off, single worker, no tracing: answers come straight off the
/// tree walk so every counter is comparable.
QueryServiceOptions BareOptions() {
  QueryServiceOptions o;
  o.num_threads = 1;
  o.cache_bytes = 0;
  o.tracing = false;
  return o;
}

/// Runs `trials` random queries through a plain QueryService and a
/// ShardedQueryService built from *the same deterministic build* and
/// asserts field-for-field parity for every shard count.
void ExpectShardParity(const DatabaseNetwork& net, const TcTreeOptions& build,
                       const QueryServiceOptions& service_options, int trials,
                       uint64_t seed, bool exact_counters = true) {
  QueryService oracle(TcTree::Build(net, build), net.dictionary(),
                      service_options);
  const std::vector<ItemId> items = net.ActiveItems();
  ASSERT_FALSE(items.empty());
  for (size_t num_shards : kShardCounts) {
    SCOPED_TRACE("num_shards " + std::to_string(num_shards));
    ShardedQueryService sharded(TcTree::Build(net, build), net.dictionary(),
                                num_shards, service_options);
    ASSERT_EQ(sharded.num_shards(), num_shards);
    Rng rng(seed);  // same query stream against every shard count
    for (int t = 0; t < trials; ++t) {
      const ServeQuery q = RandomQuery(items, rng);
      QueryTrace trace;
      const auto expected = oracle.Execute(q);
      const auto actual = sharded.Execute(q, &trace);
      ASSERT_NE(actual, nullptr);
      ExpectIdentical(*expected, *actual,
                      "trial " + std::to_string(t) + " query " +
                          q.items.ToString() + " alpha " +
                          std::to_string(q.alpha),
                      exact_counters);
      // The scatter probed only shards that can own part of the answer.
      EXPECT_GE(trace.shards_probed, 1u);
      EXPECT_LE(trace.shards_probed, std::min(num_shards, q.items.size()));
    }
  }
}

TEST(ShardRouterTest, BkLikeShardedEqualsSingleShard) {
  for (uint64_t seed : {7u, 21u}) {
    SCOPED_TRACE("network seed " + std::to_string(seed));
    ExpectShardParity(SmallBkLike(seed), {}, BareOptions(), 40,
                      1000 + seed);
  }
}

TEST(ShardRouterTest, SynShardedEqualsSingleShard) {
  ExpectShardParity(SmallSyn(5), {}, BareOptions(), 40, 500);
}

TEST(ShardRouterTest, ParityUnderDepthCaps) {
  DatabaseNetwork net = SmallBkLike(21);
  for (size_t depth : {size_t{1}, size_t{2}, size_t{3}}) {
    SCOPED_TRACE("max_depth " + std::to_string(depth));
    ExpectShardParity(net, {.max_depth = depth}, BareOptions(), 25, depth);
  }
}

TEST(ShardRouterTest, ParityUnderNodeBudgets) {
  // The global commit-order budget is the knob no independent per-shard
  // build could replicate; ShardedQueryService splits the one capped
  // build, so parity must hold at any truncation point.
  DatabaseNetwork net = SmallBkLike(7);
  const size_t full_nodes = TcTree::Build(net).num_nodes();
  ASSERT_GT(full_nodes, 4u);
  for (size_t budget : {size_t{2}, full_nodes / 3, full_nodes - 1}) {
    SCOPED_TRACE("max_nodes " + std::to_string(budget));
    ExpectShardParity(net, {.max_nodes = budget}, BareOptions(), 25, budget);
  }
}

TEST(ShardRouterTest, ParityUnderMinTrussEdges) {
  // Size filtering drops trusses from the result list without touching
  // traversal, so every field — counters included — stays exact.
  QueryServiceOptions options = BareOptions();
  options.query_options.min_truss_edges = 2;
  ExpectShardParity(SmallBkLike(7), {}, options, 25, 42);
}

TEST(ShardRouterTest, ParityUnderMaxResults) {
  // Truncation composes across shards in merge order: the merged truss
  // list and retrieved_nodes equal the single-tree walk's exactly, while
  // visited/pruned may exceed it (each shard walks to its own budget).
  for (size_t max_results : {size_t{1}, size_t{3}}) {
    SCOPED_TRACE("max_results " + std::to_string(max_results));
    QueryServiceOptions options = BareOptions();
    options.query_options.max_results = max_results;
    ExpectShardParity(SmallBkLike(7), {}, options, 25, max_results,
                      /*exact_counters=*/false);
  }
}

TEST(ShardRouterTest, ParityWithWarmCachesAndComposition) {
  // Caching on with the compose gate forced open, every query asked
  // twice: the second round answers from per-shard caches (exact hits
  // and composed covers) and must still match the cold oracle walk.
  DatabaseNetwork net = SmallSyn(5);
  QueryServiceOptions options;
  options.num_threads = 1;
  options.tracing = false;
  options.cache_compose_min_walk_us = 0;
  QueryService oracle(TcTree::Build(net), net.dictionary(), BareOptions());
  const std::vector<ItemId> items = net.ActiveItems();
  for (size_t num_shards : kShardCounts) {
    SCOPED_TRACE("num_shards " + std::to_string(num_shards));
    ShardedQueryService sharded(TcTree::Build(net), net.dictionary(),
                                num_shards, options);
    Rng rng(99);
    std::vector<ServeQuery> queries;
    for (int t = 0; t < 30; ++t) queries.push_back(RandomQuery(items, rng));
    for (int round = 0; round < 2; ++round) {
      for (size_t t = 0; t < queries.size(); ++t) {
        const auto expected = oracle.Execute(queries[t]);
        const auto actual = sharded.Execute(queries[t]);
        ExpectIdentical(*expected, *actual,
                        "round " + std::to_string(round) + " trial " +
                            std::to_string(t),
                        /*exact_counters=*/false);
      }
    }
    if (num_shards > 1) {
      const ResultCacheStats cache = sharded.cache_stats();
      EXPECT_GT(cache.hits, 0u) << "second round never hit the shard caches";
    }
  }
}

TEST(ShardRouterTest, BatchParityAcrossShardCounts) {
  DatabaseNetwork net = SmallBkLike(7);
  QueryServiceOptions options = BareOptions();
  options.num_threads = 4;  // real fan-out over the router pool
  QueryService oracle(TcTree::Build(net), net.dictionary(), BareOptions());
  const std::vector<ItemId> items = net.ActiveItems();
  Rng rng(3);
  std::vector<ServeQuery> batch;
  for (int t = 0; t < 64; ++t) batch.push_back(RandomQuery(items, rng));
  for (size_t num_shards : kShardCounts) {
    SCOPED_TRACE("num_shards " + std::to_string(num_shards));
    ShardedQueryService sharded(TcTree::Build(net), net.dictionary(),
                                num_shards, options);
    const auto results = sharded.ExecuteBatch(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_NE(results[i], nullptr);
      ExpectIdentical(*oracle.Execute(batch[i]), *results[i],
                      "batch slot " + std::to_string(i));
    }
  }
}

TEST(ShardRouterTest, PartitionTcTreeIsAnExactPartition) {
  // Structural half of the parity argument: every non-root node lands on
  // exactly one shard (the shard of its layer-1 ancestor's item), arena
  // order preserved, nothing duplicated or dropped.
  DatabaseNetwork net = SmallBkLike(7);
  HashShardPartitioner partitioner;
  for (size_t num_shards : {size_t{2}, size_t{3}, size_t{8}}) {
    SCOPED_TRACE("num_shards " + std::to_string(num_shards));
    TcTree full = TcTree::Build(net);
    const size_t full_nodes = full.num_nodes();  // excludes the root
    std::multiset<std::string> full_patterns;
    for (TcTree::NodeId id = 1; id <= full_nodes; ++id) {
      full_patterns.insert(full.PatternOf(id).ToString());
    }
    std::vector<TcTree> shards =
        PartitionTcTree(std::move(full), partitioner, num_shards);
    ASSERT_EQ(shards.size(), num_shards);
    size_t total = 0;
    std::multiset<std::string> shard_patterns;
    for (size_t s = 0; s < num_shards; ++s) {
      total += shards[s].num_nodes();
      for (TcTree::NodeId id = 1; id <= shards[s].num_nodes(); ++id) {
        const Itemset pattern = shards[s].PatternOf(id);
        shard_patterns.insert(pattern.ToString());
        // Ownership: min(pattern) is the layer-1 ancestor's item.
        EXPECT_EQ(partitioner.ShardOf(pattern[0], num_shards), s)
            << "shard " << s << " holds foreign pattern "
            << pattern.ToString();
      }
    }
    EXPECT_EQ(total, full_nodes);
    EXPECT_EQ(shard_patterns, full_patterns);
  }
}

TEST(ShardRouterTest, BuildShardTreeMatchesPartitionedFullBuild) {
  // The build-side soundness claim: building over the partitioned
  // network (thinned foreign transaction databases, full topology) and
  // stripping foreign subtrees reproduces PartitionTcTree of the full
  // build *byte-identically* — Prop.-5.3 right-sibling partners and all.
  HashShardPartitioner partitioner;
  for (int which = 0; which < 2; ++which) {
    DatabaseNetwork net = which == 0 ? SmallBkLike(7) : SmallSyn(5);
    SCOPED_TRACE(which == 0 ? "bk-like" : "syn");
    for (size_t num_shards : {size_t{2}, size_t{3}}) {
      SCOPED_TRACE("num_shards " + std::to_string(num_shards));
      std::vector<TcTree> expected =
          PartitionTcTree(TcTree::Build(net), partitioner, num_shards);
      std::vector<DatabaseNetwork> shard_nets =
          PartitionTransactions(net, partitioner, num_shards);
      ASSERT_EQ(shard_nets.size(), num_shards);
      for (size_t s = 0; s < num_shards; ++s) {
        TcTree direct =
            BuildShardTree(shard_nets[s], partitioner, num_shards, s);
        const std::string a = Serialize(direct);
        const std::string b = Serialize(expected[s]);
        if (a != b) {
          size_t i = 0;
          while (i < std::min(a.size(), b.size()) && a[i] == b[i]) ++i;
          ADD_FAILURE() << "shard " << s << " differs: sizes " << a.size()
                        << " vs " << b.size() << ", first diff at byte " << i
                        << "; nodes " << direct.num_nodes() << " vs "
                        << expected[s].num_nodes();
          for (TcTree::NodeId id = 1;
               id <= std::min(direct.num_nodes(), expected[s].num_nodes());
               ++id) {
            const auto& d = direct.node(id);
            const auto& e = expected[s].node(id);
            if (d.item != e.item || d.parent != e.parent ||
                d.children != e.children ||
                d.decomposition.sorted_edges() !=
                    e.decomposition.sorted_edges() ||
                d.decomposition.vertices() != e.decomposition.vertices() ||
                d.decomposition.frequencies() !=
                    e.decomposition.frequencies()) {
              ADD_FAILURE()
                  << "first node diff at id " << id << " pattern "
                  << direct.PatternOf(id).ToString() << " vs "
                  << expected[s].PatternOf(id).ToString() << " item "
                  << d.item << "/" << e.item << " edges "
                  << d.decomposition.num_edges() << "/"
                  << e.decomposition.num_edges() << " levels "
                  << d.decomposition.levels().size() << "/"
                  << e.decomposition.levels().size();
              break;
            }
          }
        }
      }
    }
  }
}

TEST(ShardRouterTest, RollingSwapKeepsParityMidRoll) {
  // A rolling reload with the *same* index (the RELOAD smoke case) must
  // be invisible: swap shards one at a time and re-check parity after
  // every single-shard swap — answers never mix snapshots because the
  // per-shard answer sets are disjoint.
  DatabaseNetwork net = SmallBkLike(7);
  const size_t num_shards = 3;
  QueryService oracle(TcTree::Build(net), net.dictionary(), BareOptions());
  ShardedQueryService sharded(TcTree::Build(net), net.dictionary(), num_shards,
                              BareOptions());
  const std::vector<ItemId> items = net.ActiveItems();
  HashShardPartitioner partitioner;
  for (size_t s = 0; s < num_shards; ++s) {
    std::vector<TcTree> parts =
        PartitionTcTree(TcTree::Build(net), partitioner, num_shards);
    sharded.SwapShardSnapshot(s, std::move(parts[s]));
    Rng rng(7 * (s + 1));
    for (int t = 0; t < 15; ++t) {
      const ServeQuery q = RandomQuery(items, rng);
      ExpectIdentical(*oracle.Execute(q), *sharded.Execute(q),
                      "after swapping shard " + std::to_string(s) +
                          " trial " + std::to_string(t));
    }
  }
  EXPECT_GT(sharded.Report().shard_reload_ms, 0.0);
}

}  // namespace
}  // namespace tcf
