// Property tests for the parallel TC-Tree build: whatever the thread
// count, the ordered-commit merge must produce the *same arena* — same
// node ids, same child lists, same decompositions — and therefore a
// byte-identical serialized index (tc_tree_io), including under
// `max_nodes` truncation and `max_depth` caps, with every build-stats
// counter invariant too. The networks come from the real generators
// (BK-like check-in, SYN) rather than the tiny hand-built fixtures, so
// the trees are deep enough that waves 2+ actually fan out.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "gen/checkin_generator.h"
#include "gen/syn_generator.h"

namespace tcf {
namespace {

std::string Serialize(const TcTree& tree) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(SaveTcTree(tree, os).ok());
  return os.str();
}

DatabaseNetwork SmallBkLike(uint64_t seed) {
  CheckinParams p;
  p.num_users = 120;
  p.num_locations = 24;
  p.periods_per_user = 20;
  p.seed = seed;
  return GenerateCheckinNetwork(p);
}

DatabaseNetwork SmallSyn(uint64_t seed) {
  SynParams p;
  p.num_vertices = 300;
  p.num_edges = 1800;
  p.num_items = 60;
  p.num_seeds = 12;
  p.seed = seed;
  return GenerateSynNetwork(p);
}

void ExpectStatsEqual(const TcTreeBuildStats& a, const TcTreeBuildStats& b) {
  EXPECT_EQ(a.candidates_considered, b.candidates_considered);
  EXPECT_EQ(a.pruned_by_intersection, b.pruned_by_intersection);
  EXPECT_EQ(a.mptd_calls, b.mptd_calls);
  EXPECT_EQ(a.truncated, b.truncated);
}

/// Builds with 1, 2 and 8 threads under `options` (num_threads is
/// overridden) and asserts byte-identical serializations + invariant
/// stats. Returns the 1-thread tree for further checks.
TcTree ExpectThreadCountInvariant(const DatabaseNetwork& net,
                                  TcTreeOptions options) {
  options.num_threads = 1;
  TcTree reference = TcTree::Build(net, options);
  const std::string reference_bytes = Serialize(reference);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    options.num_threads = threads;
    TcTree tree = TcTree::Build(net, options);
    EXPECT_EQ(Serialize(tree), reference_bytes)
        << "serialized tree differs at num_threads=" << threads;
    ExpectStatsEqual(tree.build_stats(), reference.build_stats());
  }
  return reference;
}

TEST(TcTreeParallelTest, BkLikeByteIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {7u, 21u}) {
    DatabaseNetwork net = SmallBkLike(seed);
    TcTree tree = ExpectThreadCountInvariant(net, {});
    EXPECT_GT(tree.num_nodes(), 0u) << "degenerate fixture, seed " << seed;
    EXPECT_GT(tree.MaxDepth(), 1u)
        << "tree too shallow to exercise waves past layer 1, seed " << seed;
  }
}

TEST(TcTreeParallelTest, SynByteIdenticalAcrossThreadCounts) {
  DatabaseNetwork net = SmallSyn(5);
  TcTree tree = ExpectThreadCountInvariant(net, {});
  EXPECT_GT(tree.num_nodes(), 0u) << "degenerate fixture";
}

TEST(TcTreeParallelTest, ByteIdenticalUnderNodeBudgetTruncation) {
  DatabaseNetwork net = SmallBkLike(7);
  TcTree full = TcTree::Build(net, {.num_threads = 1});
  ASSERT_GT(full.num_nodes(), 4u) << "tree too small to truncate";
  // Sweep several budgets so the trip lands at different commit points
  // (mid-wave, wave boundary, mid-layer-1 overshoot).
  for (size_t budget :
       {size_t{1}, size_t{2}, full.num_nodes() / 2, full.num_nodes() - 1}) {
    SCOPED_TRACE("budget " + std::to_string(budget));
    TcTree tree =
        ExpectThreadCountInvariant(net, {.max_nodes = budget});
    EXPECT_TRUE(tree.build_stats().truncated);
  }
}

TEST(TcTreeParallelTest, ByteIdenticalUnderDepthCap) {
  DatabaseNetwork net = SmallBkLike(21);
  for (size_t depth : {size_t{1}, size_t{2}, size_t{3}}) {
    TcTree tree = ExpectThreadCountInvariant(net, {.max_depth = depth});
    EXPECT_LE(tree.MaxDepth(), depth);
  }
}

TEST(TcTreeParallelTest, ByteIdenticalUnderBudgetAndDepthTogether) {
  DatabaseNetwork net = SmallSyn(5);
  TcTree full = TcTree::Build(net, {.num_threads = 1});
  if (full.num_nodes() < 4) GTEST_SKIP() << "tree too small";
  ExpectThreadCountInvariant(
      net, {.max_depth = 2, .max_nodes = full.num_nodes() / 2});
}

TEST(TcTreeParallelTest, ParallelBuildRoundTripsThroughDisk) {
  // The serialized-equal property must survive an actual save/load cycle:
  // a tree built with 8 threads, loaded back, re-serializes to the same
  // bytes (guards the io path against depending on build-only state).
  DatabaseNetwork net = SmallBkLike(7);
  TcTree tree = TcTree::Build(net, {.num_threads = 8});
  const std::string bytes = Serialize(tree);
  std::istringstream is(bytes);
  auto loaded = LoadTcTree(is);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Serialize(*loaded), bytes);
}

}  // namespace
}  // namespace tcf
