// Format-compat gate for TCFI v1: tests/golden/ carries a small
// checked-in artifact (BK-like shape, fixed seed) plus the text
// rendering of a query grid answered over it. Every CI run maps the
// checked-in *bytes* with today's reader and re-renders the grid — so
// a change that breaks reading existing v1 files, or silently changes
// what mapped queries answer, fails here even when the writer+reader
// of the same commit agree with each other.
//
// Regeneration is deliberate, never automatic:
//
//   TCF_REGEN_GOLDEN=1 ./build/tcfi_golden_test
//
// rewrites both files; commit them together with the format change and
// a version-policy note in docs/index-format.md.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "core/tcfi_format.h"
#include "test_util.h"
#include "util/string_util.h"

namespace tcf {
namespace {

using testing::MakeRandomNetwork;

std::string GoldenPath(const std::string& name) {
  return std::string(TCF_SOURCE_DIR) + "/tests/golden/" + name;
}

/// The fixed recipe behind the artifact. The recipe is part of the
/// contract: the checked-in bytes were produced by building this exact
/// network, so a fresh build must still agree with them query-for-query
/// (and regeneration reproduces the same logical index).
DatabaseNetwork GoldenNet() {
  return MakeRandomNetwork(
      {.num_vertices = 24, .num_items = 6, .tx_per_vertex = 5,
       .seed = 20190801});
}

std::vector<std::pair<Itemset, double>> GoldenQueries() {
  std::vector<std::pair<Itemset, double>> queries;
  const std::vector<Itemset> itemsets = {
      Itemset({0}),       Itemset({1}),          Itemset({3}),
      Itemset({0, 1}),    Itemset({2, 3}),       Itemset({1, 4}),
      Itemset({0, 1, 2}), Itemset({2, 3, 5}),
      Itemset({0, 1, 2, 3, 4, 5})};
  for (double alpha : {0.0, 0.05, 0.12, 0.25}) {
    for (const Itemset& q : itemsets) queries.emplace_back(q, alpha);
  }
  return queries;
}

std::string RenderItemset(const Itemset& q) {
  std::string out;
  for (size_t i = 0; i < q.size(); ++i) {
    if (i > 0) out += ',';
    out += StrFormat("%u", static_cast<unsigned>(q[i]));
  }
  return out;
}

/// Full-fidelity deterministic rendering of the query grid: every
/// truss's pattern, edges, and vertices with their frequencies (query
/// results carry no edge cohesions — only the mining path fills those).
/// Doubles print as %.17g (shortest round-trip), so equal bits render
/// equal text.
template <typename Tree>
std::string RenderAnswers(const Tree& tree) {
  std::string out = "tcfi golden answers v1\n";
  for (const auto& [q, alpha] : GoldenQueries()) {
    const TcTreeQueryResult r = QueryTcTree(tree, q, alpha);
    out += StrFormat("query a=%.17g q=%s trusses=%zu retrieved=%llu "
                     "visited=%llu pruned=%llu\n",
                     alpha, RenderItemset(q).c_str(), r.trusses.size(),
                     static_cast<unsigned long long>(r.retrieved_nodes),
                     static_cast<unsigned long long>(r.visited_nodes),
                     static_cast<unsigned long long>(r.pruned_subtrees));
    for (const PatternTruss& truss : r.trusses) {
      out += StrFormat("truss p=%s\n", RenderItemset(truss.pattern).c_str());
      for (const Edge& e : truss.edges) {
        out += StrFormat("e %u-%u\n", static_cast<unsigned>(e.u),
                         static_cast<unsigned>(e.v));
      }
      for (size_t i = 0; i < truss.vertices.size(); ++i) {
        out += StrFormat("v %u f=%.17g\n",
                         static_cast<unsigned>(truss.vertices[i]),
                         truss.frequencies[i]);
      }
    }
  }
  return out;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return "";
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  return f.good();
}

TEST(TcfiGoldenTest, CheckedInV1ArtifactStillLoadsAndAnswers) {
  const std::string tcfi = GoldenPath("v1_small.tcfi");
  const std::string answers = GoldenPath("v1_small_answers.txt");

  if (std::getenv("TCF_REGEN_GOLDEN") != nullptr) {
    TcTree tree = TcTree::Build(GoldenNet());
    ASSERT_TRUE(SaveTcTreeBinary(tree, tcfi).ok());
    auto mapped = MapTcTree(tcfi);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    ASSERT_TRUE(WriteFile(answers, RenderAnswers(*mapped)));
    GTEST_SKIP() << "regenerated " << tcfi << " and " << answers;
  }

  // The checked-in bytes pass the header probe and a fully-validated
  // map — today's reader still reads yesterday's v1 files.
  ASSERT_TRUE(ProbeTcfiFile(tcfi).ok());
  auto mapped = MapTcTree(tcfi);
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  // And answers over those bytes render exactly the checked-in text.
  const std::string expected = ReadFileOrEmpty(answers);
  ASSERT_FALSE(expected.empty()) << "missing golden answers: " << answers;
  EXPECT_EQ(expected, RenderAnswers(*mapped))
      << "mapped answers drifted from tests/golden/. If this is a "
         "deliberate format or walk change, regenerate with "
         "TCF_REGEN_GOLDEN=1 and commit both files.";
}

TEST(TcfiGoldenTest, FreshBuildOfRecipeMatchesCheckedInArtifact) {
  if (std::getenv("TCF_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regeneration run";
  }
  auto mapped = MapTcTree(GoldenPath("v1_small.tcfi"));
  ASSERT_TRUE(mapped.ok()) << mapped.status();

  // The build pipeline still produces the same logical index from the
  // fixed recipe (node count + the full query grid).
  TcTree tree = TcTree::Build(GoldenNet());
  EXPECT_EQ(tree.num_nodes(), mapped->num_nodes());
  EXPECT_EQ(RenderAnswers(tree), RenderAnswers(*mapped));
}

}  // namespace
}  // namespace tcf
