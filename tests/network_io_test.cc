#include "net/network_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/stats.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeRandomNetwork;

void ExpectSameNetwork(const DatabaseNetwork& a, const DatabaseNetwork& b) {
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.graph().edges(), b.graph().edges());
  ASSERT_EQ(a.dictionary().size(), b.dictionary().size());
  for (ItemId i = 0; i < a.dictionary().size(); ++i) {
    EXPECT_EQ(a.dictionary().Name(i), b.dictionary().Name(i));
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.db(v).num_transactions(), b.db(v).num_transactions());
    for (Tid t = 0; t < a.db(v).num_transactions(); ++t) {
      EXPECT_EQ(a.db(v).transaction(t), b.db(v).transaction(t));
    }
  }
}

TEST(NetworkIoTest, RoundTripRandomNetwork) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 21});
  std::stringstream ss;
  ASSERT_TRUE(SaveNetwork(net, ss).ok());
  auto loaded = LoadNetwork(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectSameNetwork(net, *loaded);
}

TEST(NetworkIoTest, RoundTripPreservesStats) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 20, .seed = 22});
  std::stringstream ss;
  ASSERT_TRUE(SaveNetwork(net, ss).ok());
  auto loaded = LoadNetwork(ss);
  ASSERT_TRUE(loaded.ok());
  NetworkStats sa = ComputeStats(net);
  NetworkStats sb = ComputeStats(*loaded);
  EXPECT_EQ(sa.num_vertices, sb.num_vertices);
  EXPECT_EQ(sa.num_edges, sb.num_edges);
  EXPECT_EQ(sa.num_transactions, sb.num_transactions);
  EXPECT_EQ(sa.num_items_total, sb.num_items_total);
  EXPECT_EQ(sa.num_items_unique, sb.num_items_unique);
}

TEST(NetworkIoTest, RoundTripEmptyNetwork) {
  GraphBuilder b(2);
  ItemDictionary dict;
  DatabaseNetwork net(b.Build(), std::vector<TransactionDb>(2),
                      std::move(dict));
  std::stringstream ss;
  ASSERT_TRUE(SaveNetwork(net, ss).ok());
  auto loaded = LoadNetwork(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), 2u);
  EXPECT_EQ(loaded->num_edges(), 0u);
}

TEST(NetworkIoTest, ItemNameEscaping) {
  EXPECT_EQ(EscapeItemName("a b"), "a\\sb");
  EXPECT_EQ(EscapeItemName("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeItemName("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(*UnescapeItemName("a\\sb"), "a b");
  EXPECT_EQ(*UnescapeItemName("a\\\\b"), "a\\b");
  EXPECT_EQ(*UnescapeItemName("a\\nb\\tc"), "a\nb\tc");
}

TEST(NetworkIoTest, UnescapeRejectsBadInput) {
  EXPECT_TRUE(UnescapeItemName("bad\\").status().IsCorruption());
  EXPECT_TRUE(UnescapeItemName("bad\\x").status().IsCorruption());
}

TEST(NetworkIoTest, RoundTripNamesWithSpaces) {
  GraphBuilder b(1);
  ItemDictionary dict;
  dict.GetOrAdd("data mining");
  dict.GetOrAdd("sequential pattern");
  std::vector<TransactionDb> dbs(1);
  dbs[0].Add(Itemset({0, 1}));
  DatabaseNetwork net(b.Build(), std::move(dbs), std::move(dict));
  std::stringstream ss;
  ASSERT_TRUE(SaveNetwork(net, ss).ok());
  auto loaded = LoadNetwork(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dictionary().Name(0), "data mining");
  EXPECT_EQ(loaded->dictionary().Name(1), "sequential pattern");
}

TEST(NetworkIoTest, LoadRejectsBadMagic) {
  std::stringstream ss("not-a-network 9\n");
  EXPECT_TRUE(LoadNetwork(ss).status().IsCorruption());
}

TEST(NetworkIoTest, LoadRejectsTruncatedFile) {
  std::stringstream ss("tcf-dbnet 1\nvertices 3\nitems 1\ni 0 x\n");
  EXPECT_TRUE(LoadNetwork(ss).status().IsCorruption());
}

TEST(NetworkIoTest, LoadRejectsOutOfRangeEdge) {
  std::stringstream ss(
      "tcf-dbnet 1\nvertices 2\nitems 0\ne 0 5\nend\n");
  EXPECT_TRUE(LoadNetwork(ss).status().IsCorruption());
}

TEST(NetworkIoTest, LoadRejectsOutOfRangeItemInTransaction) {
  std::stringstream ss(
      "tcf-dbnet 1\nvertices 1\nitems 1\ni 0 x\nd 0 1\nt 0 3\nend\n");
  EXPECT_TRUE(LoadNetwork(ss).status().IsCorruption());
}

TEST(NetworkIoTest, LoadRejectsSelfLoop) {
  std::stringstream ss("tcf-dbnet 1\nvertices 2\nitems 0\ne 1 1\nend\n");
  EXPECT_FALSE(LoadNetwork(ss).ok());
}

TEST(NetworkIoTest, LoadSkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# saved by test\n\ntcf-dbnet 1\nvertices 2\nitems 1\n"
      "i 0 x\n# an edge\ne 0 1\nd 0 1\nt 0\nend\n");
  auto loaded = LoadNetwork(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_edges(), 1u);
  EXPECT_DOUBLE_EQ(loaded->Frequency(0, Itemset({0})), 1.0);
}

TEST(NetworkIoTest, FileRoundTrip) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 23});
  const std::string path = ::testing::TempDir() + "/tcf_net_io_test.txt";
  ASSERT_TRUE(SaveNetworkToFile(net, path).ok());
  auto loaded = LoadNetworkFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ExpectSameNetwork(net, *loaded);
}

TEST(NetworkIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      LoadNetworkFromFile("/nonexistent/dir/x.txt").status().IsIOError());
}

}  // namespace
}  // namespace tcf
