#include "net/sampler.h"

#include <gtest/gtest.h>

#include <set>

#include "net/stats.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeRandomNetwork;

TEST(SamplerTest, ExactEdgeCount) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 30,
                                           .edge_prob = 0.3,
                                           .seed = 1});
  Rng rng(9);
  auto sub = SampleByBfs(net, 20, rng);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_edges(), 20u);
}

TEST(SamplerTest, RejectsZeroTarget) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 2});
  Rng rng(1);
  EXPECT_TRUE(SampleByBfs(net, 0, rng).status().IsInvalidArgument());
}

TEST(SamplerTest, RejectsOversizedTarget) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 3});
  Rng rng(1);
  EXPECT_TRUE(
      SampleByBfs(net, net.num_edges() + 1, rng).status().IsOutOfRange());
}

TEST(SamplerTest, FullSampleKeepsEveryEdge) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 15, .seed = 4});
  Rng rng(2);
  auto sub = SampleByBfs(net, net.num_edges(), rng);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_edges(), net.num_edges());
}

TEST(SamplerTest, DatabasesAreCopiedIntact) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 20, .seed = 5});
  Rng rng(3);
  auto sub = SampleByBfs(net, 10, rng);
  ASSERT_TRUE(sub.ok());
  // Every sampled vertex database must exist verbatim in the original:
  // check multiset of transaction counts and a frequency probe.
  for (VertexId v = 0; v < sub->num_vertices(); ++v) {
    bool found = false;
    for (VertexId o = 0; o < net.num_vertices() && !found; ++o) {
      if (net.db(o).num_transactions() != sub->db(v).num_transactions())
        continue;
      bool same = true;
      for (Tid t = 0; t < net.db(o).num_transactions(); ++t) {
        if (!(net.db(o).transaction(t) == sub->db(v).transaction(t))) {
          same = false;
          break;
        }
      }
      found = same;
    }
    EXPECT_TRUE(found) << "vertex " << v << " database not found in original";
  }
}

TEST(SamplerTest, DictionaryPreserved) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 6});
  Rng rng(4);
  auto sub = SampleByBfs(net, 5, rng);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->dictionary().size(), net.dictionary().size());
  for (ItemId i = 0; i < net.dictionary().size(); ++i) {
    EXPECT_EQ(sub->dictionary().Name(i), net.dictionary().Name(i));
  }
}

TEST(SamplerTest, SampledGraphIsSimple) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 25, .seed = 7});
  Rng rng(5);
  auto sub = SampleByBfs(net, 15, rng);
  ASSERT_TRUE(sub.ok());
  std::set<Edge> seen;
  for (const Edge& e : sub->graph().edges()) {
    EXPECT_LT(e.u, e.v);
    EXPECT_TRUE(seen.insert(e).second);
  }
}

TEST(SamplerTest, GrowingSamplesNestStatistically) {
  // Larger samples cover at least as many transactions (they contain
  // at least as many vertices).
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 40,
                                           .edge_prob = 0.2,
                                           .seed = 8});
  Rng rng1(42), rng2(42);
  auto small = SampleByBfs(net, 10, rng1);
  auto large = SampleByBfs(net, 30, rng2);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LE(small->num_vertices(), large->num_vertices());
}

TEST(SamplerTest, DeterministicGivenSeed) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 30, .seed = 9});
  Rng a(1), b(1);
  auto s1 = SampleByBfs(net, 12, a);
  auto s2 = SampleByBfs(net, 12, b);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->graph().edges(), s2->graph().edges());
  EXPECT_EQ(ComputeStats(*s1).num_transactions,
            ComputeStats(*s2).num_transactions);
}

}  // namespace
}  // namespace tcf
