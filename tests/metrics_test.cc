#include "core/metrics.h"

#include <gtest/gtest.h>

#include "core/tcfi.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::EdgeList;
using testing::MakeFigureOneNetwork;

ThemeCommunity TriangleCommunity() {
  ThemeCommunity c;
  c.theme = Itemset({0});
  c.vertices = {6, 7, 8};
  c.edges = EdgeList({{6, 7}, {6, 8}, {7, 8}});
  return c;
}

TEST(CommunityMetricsTest, CliqueDensityIsOne) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  CommunityMetrics m = ComputeCommunityMetrics(net, TriangleCommunity());
  EXPECT_DOUBLE_EQ(m.edge_density, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_frequency, 0.3);
  EXPECT_DOUBLE_EQ(m.min_frequency, 0.3);
  // One triangle over three edges.
  EXPECT_NEAR(m.triangles_per_edge, 1.0 / 3.0, 1e-12);
}

TEST(CommunityMetricsTest, PathHasZeroTriangles) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeCommunity c;
  c.theme = Itemset({0});
  c.vertices = {0, 1, 2};
  c.edges = EdgeList({{0, 1}, {1, 2}});
  CommunityMetrics m = ComputeCommunityMetrics(net, c);
  EXPECT_DOUBLE_EQ(m.triangles_per_edge, 0.0);
  EXPECT_NEAR(m.edge_density, 2.0 / 3.0, 1e-12);
}

TEST(CommunityMetricsTest, EmptyCommunity) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeCommunity c;
  c.theme = Itemset({0});
  CommunityMetrics m = ComputeCommunityMetrics(net, c);
  EXPECT_DOUBLE_EQ(m.edge_density, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_frequency, 0.0);
}

TEST(CommunityMetricsTest, MixedFrequencies) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeCommunity c;
  c.theme = Itemset({0});
  c.vertices = {0, 6};  // f = 0.1 and f = 0.3
  c.edges = {};
  CommunityMetrics m = ComputeCommunityMetrics(net, c);
  EXPECT_NEAR(m.mean_frequency, 0.2, 1e-12);
  EXPECT_NEAR(m.min_frequency, 0.1, 1e-12);
}

TEST(JaccardTest, BasicCases) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {}), 0.0);
}

TEST(RecoveryScoreTest, PerfectRecovery) {
  std::vector<std::vector<VertexId>> truth = {{0, 1, 2}, {5, 6, 7}};
  std::vector<ThemeCommunity> mined(2);
  mined[0].vertices = {0, 1, 2};
  mined[1].vertices = {5, 6, 7};
  RecoveryScore s = ScoreRecovery(truth, mined);
  EXPECT_DOUBLE_EQ(s.average_best_jaccard, 1.0);
  EXPECT_DOUBLE_EQ(s.recovered_fraction, 1.0);
}

TEST(RecoveryScoreTest, PartialRecovery) {
  std::vector<std::vector<VertexId>> truth = {{0, 1, 2, 3}, {10, 11, 12}};
  std::vector<ThemeCommunity> mined(1);
  mined[0].vertices = {0, 1, 2, 3};
  RecoveryScore s = ScoreRecovery(truth, mined);
  EXPECT_DOUBLE_EQ(s.average_best_jaccard, 0.5);
  EXPECT_DOUBLE_EQ(s.recovered_fraction, 0.5);
}

TEST(RecoveryScoreTest, EmptyInputs) {
  RecoveryScore s = ScoreRecovery({}, {});
  EXPECT_DOUBLE_EQ(s.average_best_jaccard, 0.0);
  std::vector<std::vector<VertexId>> truth = {{1, 2}};
  s = ScoreRecovery(truth, {});
  EXPECT_DOUBLE_EQ(s.average_best_jaccard, 0.0);
  EXPECT_DOUBLE_EQ(s.recovered_fraction, 0.0);
}

TEST(RecoveryScoreTest, BestMatchWins) {
  std::vector<std::vector<VertexId>> truth = {{0, 1, 2, 3}};
  std::vector<ThemeCommunity> mined(3);
  mined[0].vertices = {0};
  mined[1].vertices = {0, 1, 2, 3};  // the best match
  mined[2].vertices = {0, 1, 9};
  RecoveryScore s = ScoreRecovery(truth, mined);
  EXPECT_DOUBLE_EQ(s.average_best_jaccard, 1.0);
}

TEST(CommunityMetricsTest, MinedCommunitiesHaveSaneMetrics) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  MiningResult r = RunTcfi(net, {.alpha = 0.0});
  for (const auto& truss : r.trusses) {
    for (const auto& c : ExtractThemeCommunities(truss)) {
      CommunityMetrics m = ComputeCommunityMetrics(net, c);
      EXPECT_GT(m.edge_density, 0.0);
      EXPECT_LE(m.edge_density, 1.0);
      EXPECT_GT(m.min_frequency, 0.0);  // truss members carry the theme
      // Summation rounding can put the mean of identical values a last
      // ulp below the min.
      EXPECT_GE(m.mean_frequency, m.min_frequency - 1e-12);
      // Every truss edge is in a triangle.
      EXPECT_GT(m.triangles_per_edge, 0.0);
    }
  }
}

}  // namespace
}  // namespace tcf
