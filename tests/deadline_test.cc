#include "util/deadline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_query.h"
#include "net/database_network.h"
#include "serve/query_backend.h"
#include "serve/query_service.h"
#include "serve/shard_router.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeRandomNetwork;
using testing::RandomNetOptions;

TEST(DeadlineTest, DefaultIsUnbounded) {
  const Deadline d;
  EXPECT_FALSE(d.bounded());
  EXPECT_FALSE(d.IsExpired());
}

TEST(DeadlineTest, ZeroMillisMeansUnbounded) {
  const Deadline d = Deadline::AfterMillis(0);
  EXPECT_FALSE(d.bounded());
  EXPECT_FALSE(d.IsExpired());
}

TEST(DeadlineTest, ExpiredIsImmediatelyExpired) {
  const Deadline d = Deadline::Expired();
  EXPECT_TRUE(d.bounded());
  EXPECT_TRUE(d.IsExpired());
  EXPECT_EQ(d.RemainingMillis(), 0);
}

TEST(DeadlineTest, AfterMillisExpiresAfterTheBudget) {
  const Deadline d = Deadline::AfterMillis(10);
  EXPECT_TRUE(d.bounded());
  EXPECT_GT(d.RemainingMillis(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(d.IsExpired());
  EXPECT_EQ(d.RemainingMillis(), 0);
}

TEST(DeadlineTest, GenerousDeadlineLeavesWalkAnswerIntact) {
  DatabaseNetwork net = MakeRandomNetwork({});
  TcTree tree = TcTree::Build(net);
  const Itemset q({0, 1, 2, 3, 4});

  const TcTreeQueryResult plain = QueryTcTree(tree, q, 0.05);
  ASSERT_FALSE(plain.deadline_exceeded);

  TcTreeQueryOptions options;
  options.deadline = Deadline::AfterMillis(60000);
  const TcTreeQueryResult bounded = QueryTcTree(tree, q, 0.05, options);
  EXPECT_FALSE(bounded.deadline_exceeded);
  ASSERT_EQ(bounded.trusses.size(), plain.trusses.size());
  for (size_t i = 0; i < plain.trusses.size(); ++i) {
    EXPECT_EQ(bounded.trusses[i].pattern, plain.trusses[i].pattern);
    EXPECT_EQ(bounded.trusses[i].edges, plain.trusses[i].edges);
  }
  EXPECT_EQ(bounded.visited_nodes, plain.visited_nodes);
  EXPECT_EQ(bounded.retrieved_nodes, plain.retrieved_nodes);
  EXPECT_EQ(bounded.pruned_subtrees, plain.pruned_subtrees);
}

TEST(DeadlineTest, ExpiredDeadlineUnwindsWalkBeforeAnyVisit) {
  DatabaseNetwork net = MakeRandomNetwork({});
  TcTree tree = TcTree::Build(net);

  TcTreeQueryOptions options;
  options.deadline = Deadline::Expired();
  const TcTreeQueryResult r =
      QueryTcTree(tree, Itemset({0, 1, 2, 3, 4}), 0.05, options);
  EXPECT_TRUE(r.deadline_exceeded);
  // The pre-walk check fires before the first node: no partial trusses
  // leak out of an already-dead request.
  EXPECT_EQ(r.visited_nodes, 0u);
  EXPECT_TRUE(r.trusses.empty());
}

TEST(DeadlineTest, QueryServiceReportsAndCountsExpiry) {
  DatabaseNetwork net = MakeRandomNetwork({});
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});

  ServeQuery query;
  query.items = Itemset({0, 1, 2});
  query.alpha = 0.05;
  query.deadline = Deadline::Expired();
  const auto dead = service.Execute(query);
  EXPECT_TRUE(dead->deadline_exceeded);
  EXPECT_EQ(service.Report().deadline_exceeded, 1u);

  // A partial result is never admitted to the cache: the same query
  // without a deadline walks cold and answers in full.
  query.deadline = Deadline();
  const auto alive = service.Execute(query);
  EXPECT_FALSE(alive->deadline_exceeded);
  EXPECT_FALSE(alive->trusses.empty());
  EXPECT_EQ(service.Report().cache.hits, 0u);
}

TEST(DeadlineTest, ShardedServiceReportsAndCountsExpiry) {
  RandomNetOptions o;
  o.num_vertices = 16;
  o.seed = 7;
  DatabaseNetwork net = MakeRandomNetwork(o);
  TcTree tree = TcTree::Build(net);
  ShardedQueryService service(std::move(tree), net.dictionary(), 3, {});

  ServeQuery query;
  query.items = Itemset({0, 1, 2, 3});
  query.alpha = 0.05;
  query.deadline = Deadline::Expired();
  const auto dead = service.Execute(query);
  EXPECT_TRUE(dead->deadline_exceeded);
  EXPECT_EQ(service.Report().deadline_exceeded, 1u);

  query.deadline = Deadline::AfterMillis(60000);
  const auto alive = service.Execute(query);
  EXPECT_FALSE(alive->deadline_exceeded);
}

}  // namespace
}  // namespace tcf
