#include "util/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tcf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, NonOkIsNotOk) {
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad alpha").ToString(),
            "InvalidArgument: bad alpha");
  EXPECT_EQ(Status::IOError("disk").ToString(), "IOError: disk");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Corruption("bad magic");
  EXPECT_EQ(os.str(), "Corruption: bad magic");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(Status::Code::kOk), "OK");
  EXPECT_EQ(StatusCodeName(Status::Code::kUnimplemented), "Unimplemented");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, ValueOrFallsBack) {
  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_EQ(bad.value_or(-1), -1);
  StatusOr<int> good(7);
  EXPECT_EQ(good.value_or(-1), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> s(std::string("hello"));
  std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> s(std::string("hello"));
  EXPECT_EQ(s->size(), 5u);
}

Status FailingOperation() { return Status::IOError("boom"); }

Status UsesReturnIfError() {
  TCF_RETURN_IF_ERROR(FailingOperation());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError().IsIOError());
}

}  // namespace
}  // namespace tcf
