#include "core/tc_tree.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/brute_force.h"
#include "core/mptd.h"
#include "core/tcfi.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;

std::map<Itemset, TcTree::NodeId> PatternIndex(const TcTree& tree) {
  std::map<Itemset, TcTree::NodeId> out;
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    out[tree.PatternOf(id)] = id;
  }
  return out;
}

TEST(TcTreeTest, FigureOneTree) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  auto idx = PatternIndex(tree);
  // Items 0 and 1 both have non-empty C*(0); {0,1} does not (no shared
  // transaction).
  EXPECT_EQ(tree.num_nodes(), 2u);
  EXPECT_TRUE(idx.count(Itemset({0})));
  EXPECT_TRUE(idx.count(Itemset({1})));
  EXPECT_FALSE(idx.count(Itemset({0, 1})));
}

TEST(TcTreeTest, NodesAreExactlyQualifiedPatternsOfTcfiAtZero) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .edge_prob = 0.4,
                                           .num_items = 5,
                                           .seed = 17});
  TcTree tree = TcTree::Build(net);
  MiningResult exact = RunTcfi(net, {.alpha = 0.0});
  std::set<Itemset> expect;
  for (const auto& t : exact.trusses) expect.insert(t.pattern);
  std::set<Itemset> got;
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    got.insert(tree.PatternOf(id));
  }
  EXPECT_EQ(got, expect);
}

TEST(TcTreeTest, NodeDecompositionsMatchDirectMptd) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 12,
                                           .num_items = 4,
                                           .seed = 19});
  TcTree tree = TcTree::Build(net);
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    const Itemset p = tree.PatternOf(id);
    ThemeNetwork tn = InduceThemeNetwork(net, p);
    PatternTruss direct = Mptd(tn, 0.0);
    PatternTruss from_tree = tree.node(id).decomposition.TrussAtAlpha(0.0);
    EXPECT_EQ(from_tree.edges, direct.edges) << p.ToString();
    EXPECT_EQ(from_tree.vertices, direct.vertices) << p.ToString();
  }
}

TEST(TcTreeTest, ChildrenSortedByItemAndProperSETreeLinks) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .num_items = 6,
                                           .seed = 23});
  TcTree tree = TcTree::Build(net);
  for (TcTree::NodeId id = 0; id <= tree.num_nodes(); ++id) {
    const auto& children = tree.node(id).children;
    for (size_t i = 0; i < children.size(); ++i) {
      EXPECT_EQ(tree.node(children[i]).parent, id);
      if (i > 0) {
        EXPECT_LT(tree.node(children[i - 1]).item,
                  tree.node(children[i]).item);
      }
      if (id != TcTree::kRoot) {
        // SE-tree: child's item must exceed every item of the parent's
        // pattern (it extends the pattern at the tail).
        EXPECT_GT(tree.node(children[i]).item, tree.node(id).item);
      }
    }
  }
}

TEST(TcTreeTest, ParallelBuildMatchesSerial) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 16,
                                           .edge_prob = 0.35,
                                           .num_items = 6,
                                           .seed = 29});
  TcTree serial = TcTree::Build(net, {.num_threads = 1});
  TcTree parallel = TcTree::Build(net, {.num_threads = 4});
  ASSERT_EQ(serial.num_nodes(), parallel.num_nodes());
  for (TcTree::NodeId id = 1; id <= serial.num_nodes(); ++id) {
    EXPECT_EQ(serial.PatternOf(id), parallel.PatternOf(id));
    EXPECT_EQ(serial.node(id).decomposition.sorted_edges(),
              parallel.node(id).decomposition.sorted_edges());
  }
}

TEST(TcTreeTest, MaxDepthCapsPatternLength) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .num_items = 5,
                                           .seed = 31});
  TcTree capped = TcTree::Build(net, {.max_depth = 1});
  for (TcTree::NodeId id = 1; id <= capped.num_nodes(); ++id) {
    EXPECT_EQ(capped.PatternOf(id).size(), 1u);
  }
  EXPECT_LE(capped.MaxDepth(), 1u);
}

TEST(TcTreeTest, NodeBudgetTruncatesButStaysExact) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .num_items = 5,
                                           .seed = 31});
  TcTree full = TcTree::Build(net);
  if (full.num_nodes() < 4) GTEST_SKIP() << "tree too small to truncate";
  const size_t budget = full.num_nodes() / 2;
  TcTree capped = TcTree::Build(net, {.max_nodes = budget});
  EXPECT_TRUE(capped.build_stats().truncated);
  EXPECT_LT(capped.num_nodes(), full.num_nodes());
  // Every node that was built matches the full tree's decomposition for
  // the same pattern (truncation drops nodes, never corrupts them).
  std::map<Itemset, TcTree::NodeId> full_idx = PatternIndex(full);
  for (TcTree::NodeId id = 1; id <= capped.num_nodes(); ++id) {
    const Itemset p = capped.PatternOf(id);
    auto it = full_idx.find(p);
    ASSERT_NE(it, full_idx.end()) << p.ToString();
    EXPECT_EQ(capped.node(id).decomposition.sorted_edges(),
              full.node(it->second).decomposition.sorted_edges());
  }
}

TEST(TcTreeTest, GenerousBudgetDoesNotTruncate) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 4, .seed = 43});
  TcTree full = TcTree::Build(net);
  TcTree capped = TcTree::Build(net, {.max_nodes = full.num_nodes() + 100});
  EXPECT_FALSE(capped.build_stats().truncated);
  EXPECT_EQ(capped.num_nodes(), full.num_nodes());
}

TEST(TcTreeTest, EmptyNetworkGivesEmptyTree) {
  DatabaseNetwork net = testing::MakeNetwork(3, {}, {{{0}}, {{1}}, {{2}}});
  TcTree tree = TcTree::Build(net);
  EXPECT_EQ(tree.num_nodes(), 0u);
  EXPECT_EQ(tree.MaxAlphaOverNodes(), 0);
  EXPECT_EQ(tree.TotalIndexedEdges(), 0u);
}

TEST(TcTreeTest, MaxAlphaOverNodesIsAchieved) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  const CohesionValue max_alpha = tree.MaxAlphaOverNodes();
  EXPECT_GT(max_alpha, 0);
  bool achieved = false;
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    if (tree.node(id).decomposition.max_alpha() == max_alpha) {
      achieved = true;
    }
  }
  EXPECT_TRUE(achieved);
}

TEST(TcTreeTest, BuildStatsAreConsistent) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .num_items = 5,
                                           .seed = 37});
  TcTree tree = TcTree::Build(net);
  const auto& stats = tree.build_stats();
  EXPECT_GE(stats.candidates_considered, tree.num_nodes());
  EXPECT_LE(stats.mptd_calls, stats.candidates_considered);
  EXPECT_GE(stats.build_seconds, 0.0);
}

TEST(TcTreeTest, TotalIndexedEdgesMatchesNodeSum) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 41});
  TcTree tree = TcTree::Build(net);
  uint64_t sum = 0;
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    sum += tree.node(id).decomposition.num_edges();
  }
  EXPECT_EQ(tree.TotalIndexedEdges(), sum);
  EXPECT_GT(tree.MemoryBytes(), 0u);
}

TEST(TcTreeTest, DeepPatternsFormChains) {
  // A clique where all vertices share items {0,1,2} in every transaction
  // must index every subset of {0,1,2} as a node (7 nodes).
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId a = 0; a < 4; ++a) {
    for (VertexId b = a + 1; b < 4; ++b) edges.emplace_back(a, b);
  }
  std::vector<std::vector<std::vector<ItemId>>> tx(4);
  for (auto& db : tx) db.push_back({0, 1, 2});
  DatabaseNetwork net = testing::MakeNetwork(4, edges, tx);
  TcTree tree = TcTree::Build(net);
  EXPECT_EQ(tree.num_nodes(), 7u);
  EXPECT_EQ(tree.MaxDepth(), 3u);
  auto idx = PatternIndex(tree);
  EXPECT_TRUE(idx.count(Itemset({0, 1, 2})));
}

}  // namespace
}  // namespace tcf
