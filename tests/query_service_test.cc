#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "core/partition.h"
#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "serve/shard_router.h"
#include "test_util.h"
#include "util/rng.h"

namespace tcf {
namespace {

using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;
using testing::RandomNetOptions;

/// Exact (not canonicalized) equality: the service must return byte-for-
/// byte what a serial QueryTcTree produces, including traversal order.
void ExpectIdentical(const TcTreeQueryResult& expected,
                     const TcTreeQueryResult& actual,
                     const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(expected.retrieved_nodes, actual.retrieved_nodes);
  ASSERT_EQ(expected.trusses.size(), actual.trusses.size());
  for (size_t i = 0; i < expected.trusses.size(); ++i) {
    const PatternTruss& e = expected.trusses[i];
    const PatternTruss& a = actual.trusses[i];
    EXPECT_EQ(e.pattern, a.pattern);
    EXPECT_EQ(e.edges, a.edges);
    EXPECT_EQ(e.vertices, a.vertices);
    EXPECT_EQ(e.frequencies, a.frequencies);  // bitwise: same code path
    EXPECT_EQ(e.edge_cohesions, a.edge_cohesions);
  }
}

/// A deterministic mixed workload over the network's items.
std::vector<ServeQuery> MakeWorkload(const DatabaseNetwork& net, size_t n,
                                     uint64_t seed) {
  const std::vector<ItemId> items = net.ActiveItems();
  Rng rng(seed);
  std::vector<ServeQuery> workload;
  for (size_t i = 0; i < n; ++i) {
    const size_t len = 1 + rng.NextUint64(3);
    std::vector<ItemId> subset;
    for (size_t j = 0; j < len; ++j) {
      subset.push_back(items[rng.NextUint64(items.size())]);
    }
    const double alpha = 0.05 * static_cast<double>(rng.NextUint64(6));
    workload.push_back({Itemset(std::move(subset)), alpha});
  }
  return workload;
}

TEST(QueryServiceTest, BatchMatchesSerialQueryTcTree) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 11});
  TcTree tree = TcTree::Build(net);
  const std::vector<ServeQuery> workload = MakeWorkload(net, 200, 5);

  QueryService service(tree, net.dictionary(), {.num_threads = 4});
  const auto results = service.ExecuteBatch(workload);
  ASSERT_EQ(results.size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_NE(results[i], nullptr);
    const TcTreeQueryResult expected =
        QueryTcTree(tree, workload[i].items, workload[i].alpha);
    ExpectIdentical(expected, *results[i],
                    "query " + workload[i].items.ToString());
  }
}

TEST(QueryServiceTest, CacheHitReturnsIdenticalResult) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});

  const ServeQuery query{Itemset{0}, 0.1};
  const auto first = service.Execute(query);
  const auto second = service.Execute(query);
  EXPECT_EQ(first.get(), second.get());  // same shared object, no copy
  EXPECT_EQ(service.cache_stats().hits, 1u);

  // An alpha that quantizes to the same grid point hits the same entry.
  const auto third = service.Execute({Itemset{0}, 0.1 + 1e-12});
  EXPECT_EQ(first.get(), third.get());
  EXPECT_EQ(service.cache_stats().hits, 2u);

  ExpectIdentical(QueryTcTree(tree, query.items, query.alpha), *second,
                  "cached");
}

TEST(QueryServiceTest, DisabledCacheStillAnswersCorrectly) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {.cache_bytes = 0});

  const ServeQuery query{Itemset{0}, 0.0};
  const auto first = service.Execute(query);
  const auto second = service.Execute(query);
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(service.cache_stats().hits, 0u);
  ExpectIdentical(*first, *second, "recomputed");
}

TEST(QueryServiceTest, ConcurrentExecuteIsRaceFree) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 16, .seed = 23});
  TcTree tree = TcTree::Build(net);
  const std::vector<ServeQuery> workload = MakeWorkload(net, 64, 9);

  std::vector<TcTreeQueryResult> expected;
  for (const ServeQuery& q : workload) {
    expected.push_back(QueryTcTree(tree, q.items, q.alpha));
  }

  // 8 threads hammer Execute over the same small query set, so cache
  // hits, misses and racing inserts of the same key all occur.
  QueryService service(tree, net.dictionary(), {.num_threads = 4});
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 300; ++i) {
        const size_t pick = rng.NextUint64(workload.size());
        const auto result = service.Execute(workload[pick]);
        ASSERT_NE(result, nullptr);
        ExpectIdentical(expected[pick], *result,
                        "thread " + std::to_string(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  const ServeReport report = service.Report();
  EXPECT_EQ(report.queries, 8u * 300u);
  EXPECT_GT(report.cache.HitRate(), 0.5);  // 64 keys, 2400 lookups
}

TEST(QueryServiceTest, ConcurrentBatchesMatchSerial) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 31});
  TcTree tree = TcTree::Build(net);
  const std::vector<ServeQuery> workload = MakeWorkload(net, 100, 13);

  QueryService service(tree, net.dictionary(), {.num_threads = 4});
  std::vector<std::vector<QueryService::Result>> all(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&, t] { all[t] = service.ExecuteBatch(workload); });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) {
    ASSERT_EQ(all[t].size(), workload.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      ExpectIdentical(QueryTcTree(tree, workload[i].items, workload[i].alpha),
                      *all[t][i], "batch " + std::to_string(t));
    }
  }
}

TEST(QueryServiceTest, SwapSnapshotInvalidatesCache) {
  DatabaseNetwork net_a = MakeFigureOneNetwork();
  DatabaseNetwork net_b = MakeRandomNetwork({.seed = 47});
  TcTree tree_a = TcTree::Build(net_a);
  TcTree tree_b = TcTree::Build(net_b);

  QueryService service(tree_a, net_a.dictionary(), {});
  const ServeQuery query{Itemset{0}, 0.0};
  const auto before = service.Execute(query);
  ExpectIdentical(QueryTcTree(tree_a, query.items, query.alpha), *before,
                  "pre-swap");

  service.SwapSnapshot(tree_b);
  EXPECT_EQ(service.cache_stats().invalidations, 1u);
  EXPECT_EQ(service.cache_stats().entries, 0u);

  const auto after = service.Execute(query);
  ExpectIdentical(QueryTcTree(tree_b, query.items, query.alpha), *after,
                  "post-swap");
  // The new answer is cached again.
  EXPECT_EQ(service.Execute(query).get(), after.get());
}

TEST(QueryServiceTest, ShardReloadKeepsOtherShardsCacheEntries) {
  // The sharded counterpart of SwapSnapshotInvalidatesCache: with two
  // shards, reloading shard B invalidates only B's cache — a query
  // owned by shard A keeps hitting its cached entry — while a whole
  // rolling SwapSnapshot invalidates every shard.
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 8, .seed = 33});
  TcTree tree = TcTree::Build(net);
  QueryServiceOptions options;
  options.num_threads = 1;
  options.tracing = false;
  ShardedQueryService service(tree, net.dictionary(), 2, options);

  // One active item per shard (single-item queries take the router's
  // single-owner fast path, touching exactly one shard cache).
  ItemId item_a = 0, item_b = 0;
  bool have_a = false, have_b = false;
  for (ItemId item : net.ActiveItems()) {
    if (service.ShardOfItem(item) == 0 && !have_a) {
      item_a = item;
      have_a = true;
    } else if (service.ShardOfItem(item) == 1 && !have_b) {
      item_b = item;
      have_b = true;
    }
  }
  ASSERT_TRUE(have_a && have_b) << "fixture has items on one shard only";
  const ServeQuery query_a{Itemset::Single(item_a), 0.0};
  const ServeQuery query_b{Itemset::Single(item_b), 0.0};

  const auto first_a = service.Execute(query_a);
  const auto first_b = service.Execute(query_b);
  // Both entries are warm: repeats serve the shared cached object.
  EXPECT_EQ(service.Execute(query_a).get(), first_a.get());
  EXPECT_EQ(service.Execute(query_b).get(), first_b.get());

  // Reload only shard B (same index content, fresh snapshot).
  HashShardPartitioner partitioner;
  std::vector<TcTree> parts = PartitionTcTree(tree, partitioner, 2);
  service.SwapShardSnapshot(1, std::move(parts[1]));
  EXPECT_EQ(service.cache_stats().invalidations, 1u);

  // Shard A's entry survived the foreign reload and still hits; shard
  // B recomputes (identical answer on the identical index, but a fresh
  // object — the old entry is gone).
  EXPECT_EQ(service.Execute(query_a).get(), first_a.get());
  const auto after_b = service.Execute(query_b);
  EXPECT_NE(after_b.get(), first_b.get());
  ExpectIdentical(*first_b, *after_b, "shard B answer after its reload");

  // A full rolling swap rolls every shard: all caches invalidated.
  const auto before_roll = service.cache_stats();
  service.SwapSnapshot(tree);
  const auto after_roll = service.cache_stats();
  EXPECT_EQ(after_roll.invalidations, before_roll.invalidations + 2);
  EXPECT_EQ(after_roll.entries, 0u);
  EXPECT_NE(service.Execute(query_a).get(), first_a.get());
  ExpectIdentical(*first_a, *service.Execute(query_a), "post-roll shard A");
}

TEST(QueryServiceTest, ComposedAnswersMatchColdQueries) {
  // Property test for the subset-composable cache: a random overlapping
  // workload (shared hot items, rare exact repeats) must produce answers
  // identical to serial QueryTcTree even though most of them are
  // composed from cached sub-pattern results.
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 6, .seed = 71});
  TcTree tree = TcTree::Build(net);
  const std::vector<ItemId> items = net.ActiveItems();
  Rng rng(29);

  // Gate floor 0: this network's walks are microseconds, and the test
  // targets composition correctness, not the work-aware engagement.
  QueryService service(tree, net.dictionary(),
                       {.num_threads = 2, .cache_compose_min_walk_us = 0});
  for (int i = 0; i < 400; ++i) {
    std::vector<ItemId> subset;
    const size_t len = 2 + rng.NextUint64(items.size() - 1);
    for (size_t j = 0; j < len; ++j) {
      subset.push_back(items[rng.NextUint64(items.size())]);
    }
    const ServeQuery query{Itemset(std::move(subset)),
                           0.05 * static_cast<double>(rng.NextUint64(4))};
    const auto result = service.Execute(query);
    ASSERT_NE(result, nullptr);
    ExpectIdentical(QueryTcTree(tree, query.items, query.alpha), *result,
                    "composed " + query.items.ToString());
  }
  // The overlap guarantees the composition path actually ran.
  const ResultCacheStats stats = service.cache_stats();
  EXPECT_GT(stats.partial_hits, 0u);
  EXPECT_GT(stats.composed_queries, 0u);
  EXPECT_GE(stats.partial_hits, stats.composed_queries);
}

TEST(QueryServiceTest, DerivedSubsetsServeFollowUpQueriesExactly) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 13});
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(),
                       {.cache_compose_min_walk_us = 0});

  // Answering {0,1,2} derives and admits {0,1}, {0,2}, {1,2}: the
  // follow-up sub-queries are exact hits that never touch the tree,
  // and their payloads equal a cold walk's.
  const auto full = service.Execute({Itemset{0, 1, 2}, 0.0});
  ASSERT_NE(full, nullptr);
  const ResultCacheStats after_first = service.cache_stats();
  EXPECT_GE(after_first.inserts, 2u);  // the query + admitted deriveds

  const auto sub = service.Execute({Itemset{0, 1}, 0.0});
  ExpectIdentical(QueryTcTree(tree, Itemset{0, 1}, 0.0), *sub, "derived");
  EXPECT_EQ(service.cache_stats().hits, after_first.hits + 1);
}

TEST(QueryServiceTest, WorkAwareGateKeepsPartialReuseOffForCheapWalks) {
  // With an unreachably high engagement floor, the service behaves
  // exactly-only — no probes, no derived admissions — even though
  // composition is enabled and the workload overlaps.
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 13});
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(),
                       {.cache_compose_min_walk_us = 1e12});

  service.Execute({Itemset{0, 1}, 0.0});
  const auto result = service.Execute({Itemset{0, 1, 2}, 0.0});
  ExpectIdentical(QueryTcTree(tree, Itemset{0, 1, 2}, 0.0), *result,
                  "gated");
  const ResultCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.composed_queries, 0u);
  EXPECT_EQ(stats.partial_hits, 0u);
  EXPECT_EQ(stats.inserts, 2u);  // no derived admissions
}

TEST(QueryServiceTest, ExactOnlyModeDisablesPartialReuse) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 13});
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(),
                       {.cache_composition = false,
                        .cache_admit_derived = false});

  service.Execute({Itemset{0, 1}, 0.0});
  service.Execute({Itemset{0, 1, 2}, 0.0});
  const ResultCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.partial_hits, 0u);
  EXPECT_EQ(stats.composed_queries, 0u);
  EXPECT_EQ(stats.inserts, 2u);  // no derived admissions either
}

TEST(QueryServiceTest, ShapedQueriesNeverCompose) {
  // Result-shaping knobs make cached answers incomplete; the service
  // must fall back to exact-only caching rather than compose from them.
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 13});
  TcTree tree = TcTree::Build(net);
  QueryServiceOptions options;
  options.cache_compose_min_walk_us = 0;  // shaping, not the gate, blocks
  options.query_options.max_results = 2;
  QueryService service(tree, net.dictionary(), options);

  service.Execute({Itemset{0, 1}, 0.0});
  const auto result = service.Execute({Itemset{0, 1, 2}, 0.0});
  ExpectIdentical(
      QueryTcTree(tree, Itemset{0, 1, 2}, 0.0, options.query_options),
      *result, "shaped");
  const ResultCacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.composed_queries, 0u);
}

TEST(QueryServiceTest, SwapSnapshotDropsComposedAndDerivedEntries) {
  // RELOAD semantics: every entry — exact, composed, or derived — is
  // dropped on a snapshot swap, and post-swap answers (composed ones
  // included) come from the new tree only.
  DatabaseNetwork net_a = MakeRandomNetwork({.num_items = 5, .seed = 61});
  DatabaseNetwork net_b = MakeRandomNetwork(
      {.num_vertices = 16, .edge_prob = 0.5, .num_items = 5, .seed = 62});
  TcTree tree_a = TcTree::Build(net_a);
  TcTree tree_b = TcTree::Build(net_b);

  QueryService service(tree_a, net_a.dictionary(),
                       {.cache_compose_min_walk_us = 0});
  service.Execute({Itemset{0, 1}, 0.0});
  service.Execute({Itemset{0, 1, 2}, 0.0});  // composes + derives
  ASSERT_GT(service.cache_stats().entries, 2u);

  service.SwapSnapshot(tree_b);
  EXPECT_EQ(service.cache_stats().entries, 0u);

  // Re-running the same sequence against the new snapshot composes from
  // fresh entries and matches tree_b's cold answers exactly.
  service.Execute({Itemset{0, 1}, 0.0});
  const auto after = service.Execute({Itemset{0, 1, 2}, 0.0});
  ExpectIdentical(QueryTcTree(tree_b, Itemset{0, 1, 2}, 0.0), *after,
                  "post-swap composed");
}

TEST(QueryServiceTest, OpenLoadsPersistedIndex) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  const std::string path = ::testing::TempDir() + "/query_service_test.idx";
  ASSERT_TRUE(SaveTcTreeToFile(tree, path).ok());

  auto service = QueryService::Open(path, net.dictionary(), {});
  ASSERT_TRUE(service.ok());
  const ServeQuery query{Itemset{0}, 0.1};
  ExpectIdentical(QueryTcTree(tree, query.items, query.alpha),
                  *(*service)->Execute(query), "loaded index");
  std::remove(path.c_str());

  EXPECT_FALSE(QueryService::Open(path + ".missing", net.dictionary(), {})
                   .ok());
}

TEST(QueryServiceTest, ParseQueryLine) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 3});
  TcTree tree = TcTree::Build(net);
  QueryService service(tree, net.dictionary(), {});

  auto q = service.ParseQueryLine("0.25; i1, i3");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->alpha, 0.25);
  EXPECT_EQ(q->items, (Itemset{1, 3}));

  // `*` (or nothing after ';') selects every dictionary item.
  auto all = service.ParseQueryLine("0;*");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->items.size(), net.dictionary().size());
  auto empty = service.ParseQueryLine("0.5;");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->items.size(), net.dictionary().size());

  EXPECT_FALSE(service.ParseQueryLine("no-semicolon").ok());
  EXPECT_FALSE(service.ParseQueryLine("abc;i1").ok());
  EXPECT_FALSE(service.ParseQueryLine("0.1;nosuchitem").ok());
}

TEST(QueryServiceTest, ParseQueryLineHardening) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 3});
  const ItemDictionary& dict = net.dictionary();

  // Alphas that strtod happily accepts but no cohesion threshold can be.
  EXPECT_TRUE(ParseServeQuery(dict, "nan;i1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseServeQuery(dict, "-nan;i1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseServeQuery(dict, "-0.5;i1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseServeQuery(dict, "inf;i1").status().IsOutOfRange());
  EXPECT_TRUE(ParseServeQuery(dict, "1e999;i1").status().IsOutOfRange());
  EXPECT_TRUE(ParseServeQuery(dict, "5e9;i1").status().IsOutOfRange());
  // The fixed-point limit itself is still fine.
  EXPECT_TRUE(ParseServeQuery(dict, "4294967296;i1").ok());
  // -0 quantizes to the 0 grid point; allowed.
  EXPECT_TRUE(ParseServeQuery(dict, "-0.0;i1").ok());

  // Trailing garbage is rejected wherever it appears.
  EXPECT_TRUE(ParseServeQuery(dict, "0.1x;i1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseServeQuery(dict, "0.1 0.2;i1")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseServeQuery(dict, "0.1;i1,,i2")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseServeQuery(dict, "0.1;i1,").status().IsInvalidArgument());

  // Unknown items are NotFound (a different user mistake than syntax),
  // and the message points at the offending column.
  const Status unknown = ParseServeQuery(dict, "0.1;i1,bogus").status();
  EXPECT_TRUE(unknown.IsNotFound());
  EXPECT_NE(unknown.message().find("col 8"), std::string::npos) << unknown;
  EXPECT_NE(unknown.message().find("bogus"), std::string::npos) << unknown;

  // Every hardened rejection carries column context.
  for (const char* line :
       {"nan;i1", "-1;i1", "1e999;i1", "0.1x;i1", "0.1;i1,,i2", "nosemi"}) {
    const Status s = ParseServeQuery(dict, line).status();
    ASSERT_FALSE(s.ok()) << line;
    EXPECT_NE(s.message().find("col "), std::string::npos)
        << "'" << line << "' -> " << s;
  }
}

}  // namespace
}  // namespace tcf
