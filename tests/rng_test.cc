#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace tcf {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextUint64BoundOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextUint64(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  // Both endpoints should eventually appear.
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    double d = rng.NextDouble(2.5, 3.5);
    EXPECT_GE(d, 2.5);
    EXPECT_LT(d, 3.5);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
    EXPECT_FALSE(rng.NextBool(-1.0));
    EXPECT_TRUE(rng.NextBool(2.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, ZipfInRangeAndSkewed) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.NextZipf(10, 1.2);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  // Rank 0 must dominate rank 9 heavily under skew 1.2.
  EXPECT_GT(counts[0], counts[9] * 5);
  // Monotone-ish decay between extremes.
  EXPECT_GT(counts[0], counts[4]);
}

TEST(RngTest, ZipfHandlesParameterChange) {
  Rng rng(29);
  EXPECT_LT(rng.NextZipf(5, 1.0), 5u);
  EXPECT_LT(rng.NextZipf(50, 2.0), 50u);  // table rebuild
  EXPECT_LT(rng.NextZipf(5, 1.0), 5u);    // rebuild back
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, SampleDistinctProperties) {
  Rng rng(41);
  auto s = rng.SampleDistinct(100, 10);
  ASSERT_EQ(s.size(), 10u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_EQ(std::set<uint64_t>(s.begin(), s.end()).size(), 10u);
  for (uint64_t x : s) EXPECT_LT(x, 100u);
}

TEST(RngTest, SampleDistinctFullRange) {
  Rng rng(43);
  auto s = rng.SampleDistinct(5, 5);
  EXPECT_EQ(s, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleDistinctZero) {
  Rng rng(47);
  EXPECT_TRUE(rng.SampleDistinct(10, 0).empty());
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng a(53), b(53);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.Next(), fb.Next());
  // Fork stream differs from parent stream.
  Rng c(53);
  Rng fc = c.Fork();
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (fc.Next() != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace tcf
