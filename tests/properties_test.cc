// Tests for the structural properties of maximal pattern trusses that the
// miners and the index rely on: Theorem 5.1 (graph anti-monotonicity),
// Proposition 5.2 (pattern anti-monotonicity) and Proposition 5.3 (graph
// intersection), plus the nested-alpha monotonicity behind Theorem 6.1.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/mptd.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeRandomNetwork;

class TrussPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  DatabaseNetwork net_ = MakeRandomNetwork({.num_vertices = 13,
                                            .edge_prob = 0.45,
                                            .num_items = 4,
                                            .tx_per_vertex = 5,
                                            .seed = GetParam()});

  PatternTruss TrussOf(const Itemset& p, double alpha) {
    return Mptd(InduceThemeNetwork(net_, p), alpha);
  }
};

// Theorem 5.1: p1 ⊆ p2 ⟹ C*_{p2}(α) ⊆ C*_{p1}(α).
TEST_P(TrussPropertyTest, GraphAntiMonotonicity) {
  for (double alpha : {0.0, 0.1, 0.3}) {
    for (const Itemset& p2 :
         {Itemset({0, 1}), Itemset({0, 2}), Itemset({1, 2, 3})}) {
      PatternTruss big = TrussOf(p2, alpha);
      if (big.empty()) continue;
      for (const Itemset& p1 : p2.AllSubsetsMinusOne()) {
        if (p1.empty()) continue;
        PatternTruss small = TrussOf(p1, alpha);
        EXPECT_TRUE(big.IsSubgraphOf(small))
            << "alpha=" << alpha << " p1=" << p1.ToString()
            << " p2=" << p2.ToString();
      }
    }
  }
}

// Proposition 5.2(1): superset qualified ⟹ subset qualified.
TEST_P(TrussPropertyTest, PatternAntiMonotonicityQualified) {
  for (double alpha : {0.0, 0.2}) {
    for (const Itemset& p2 : {Itemset({0, 1}), Itemset({1, 3}),
                              Itemset({0, 1, 2})}) {
      if (TrussOf(p2, alpha).empty()) continue;
      for (const Itemset& p1 : p2.AllSubsetsMinusOne()) {
        if (p1.empty()) continue;
        EXPECT_FALSE(TrussOf(p1, alpha).empty())
            << "alpha=" << alpha << " p1=" << p1.ToString()
            << " p2=" << p2.ToString();
      }
    }
  }
}

// Proposition 5.2(2): subset unqualified ⟹ superset unqualified.
TEST_P(TrussPropertyTest, PatternAntiMonotonicityUnqualified) {
  for (double alpha : {0.0, 0.2}) {
    for (ItemId a = 0; a < 4; ++a) {
      Itemset p1 = Itemset::Single(a);
      if (!TrussOf(p1, alpha).empty()) continue;
      for (ItemId b = 0; b < 4; ++b) {
        if (a == b) continue;
        EXPECT_TRUE(TrussOf(p1.Union(b), alpha).empty())
            << "alpha=" << alpha << " a=" << a << " b=" << b;
      }
    }
  }
}

// Proposition 5.3: C*_{p3}(α) ⊆ C*_{p1}(α) ∩ C*_{p2}(α) for p1,p2 ⊆ p3.
TEST_P(TrussPropertyTest, GraphIntersectionProperty) {
  for (double alpha : {0.0, 0.15}) {
    const Itemset p1({0, 1});
    const Itemset p2({1, 2});
    const Itemset p3({0, 1, 2});
    PatternTruss t3 = TrussOf(p3, alpha);
    if (t3.empty()) continue;
    PatternTruss t1 = TrussOf(p1, alpha);
    PatternTruss t2 = TrussOf(p2, alpha);
    std::vector<Edge> overlap = IntersectEdgeSets(t1.edges, t2.edges);
    EXPECT_TRUE(std::includes(overlap.begin(), overlap.end(),
                              t3.edges.begin(), t3.edges.end()))
        << "alpha=" << alpha;
  }
}

// Monotonicity in alpha: α1 ≤ α2 ⟹ C*(α2) ⊆ C*(α1).
TEST_P(TrussPropertyTest, NestedAlphaMonotonicity) {
  for (ItemId item = 0; item < 4; ++item) {
    const Itemset p = Itemset::Single(item);
    PatternTruss prev = TrussOf(p, 0.0);
    for (double alpha : {0.05, 0.1, 0.2, 0.4, 0.8}) {
      PatternTruss cur = TrussOf(p, alpha);
      EXPECT_TRUE(cur.IsSubgraphOf(prev))
          << "item=" << item << " alpha=" << alpha;
      prev = std::move(cur);
    }
  }
}

// Theorem 6.1 shape: the truss strictly shrinks exactly when α crosses
// the current minimum edge cohesion.
TEST_P(TrussPropertyTest, ShrinksExactlyAtMinimumCohesion) {
  for (ItemId item = 0; item < 4; ++item) {
    const Itemset p = Itemset::Single(item);
    PatternTruss base = TrussOf(p, 0.0);
    if (base.empty()) continue;
    const CohesionValue beta = base.MinEdgeCohesion();
    ASSERT_GT(beta, 0);
    // Just below β: unchanged.
    const double below = CohesionToDouble(beta) * 0.999;
    PatternTruss same = TrussOf(p, below);
    EXPECT_EQ(same.edges, base.edges) << "item=" << item;
    // At β (strict predicate): proper subset.
    PatternTruss shrunk = TrussOf(p, CohesionToDouble(beta));
    EXPECT_LT(shrunk.num_edges(), base.num_edges()) << "item=" << item;
    EXPECT_TRUE(shrunk.IsSubgraphOf(base));
  }
}

// The union of all pattern trusses is itself a pattern truss: every edge
// of C*(α) keeps cohesion > α inside C*(α).
TEST_P(TrussPropertyTest, ResultIsAPatternTruss) {
  for (double alpha : {0.0, 0.1, 0.25}) {
    for (ItemId item = 0; item < 4; ++item) {
      PatternTruss t = TrussOf(Itemset::Single(item), alpha);
      const CohesionValue aq = QuantizeAlpha(alpha);
      for (CohesionValue c : t.edge_cohesions) {
        EXPECT_GT(c, aq) << "item=" << item << " alpha=" << alpha;
      }
    }
  }
}

// Maximality: re-running MPTD on the truss itself is a fixpoint.
TEST_P(TrussPropertyTest, FixpointUnderRepeel) {
  for (double alpha : {0.0, 0.2}) {
    for (ItemId item = 0; item < 4; ++item) {
      const Itemset p = Itemset::Single(item);
      PatternTruss t = TrussOf(p, alpha);
      if (t.empty()) continue;
      ThemeNetwork sub = InduceThemeNetworkFromEdges(net_, p, t.edges);
      PatternTruss again = Mptd(sub, alpha);
      EXPECT_EQ(again.edges, t.edges) << "item=" << item;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrussPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace tcf
