#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace tcf {
namespace {

/// Whether the harness is armed is decided by the environment at
/// process start (TCF_FAILPOINTS=1). These tests cover both halves: the
/// configuration layer always works, but evaluation is a no-op unless
/// armed — the chaos leg of CI runs this binary with the variable set.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { ResetFailpoints(); }
};

TEST_F(FailpointTest, TriggerGrammarAcceptsAllForms) {
  EXPECT_TRUE(ConfigureFailpoint("t", "off").ok());
  EXPECT_TRUE(ConfigureFailpoint("t", "always").ok());
  EXPECT_TRUE(ConfigureFailpoint("t", "prob:0.5").ok());
  EXPECT_TRUE(ConfigureFailpoint("t", "prob:0").ok());
  EXPECT_TRUE(ConfigureFailpoint("t", "prob:1").ok());
  EXPECT_TRUE(ConfigureFailpoint("t", "after:3").ok());
  EXPECT_TRUE(ConfigureFailpoint("t", "times:2").ok());
}

TEST_F(FailpointTest, TriggerGrammarRejectsMalformedForms) {
  EXPECT_FALSE(ConfigureFailpoint("t", "").ok());
  EXPECT_FALSE(ConfigureFailpoint("t", "sometimes").ok());
  EXPECT_FALSE(ConfigureFailpoint("t", "prob:").ok());
  EXPECT_FALSE(ConfigureFailpoint("t", "prob:1.5").ok());
  EXPECT_FALSE(ConfigureFailpoint("t", "prob:-0.1").ok());
  EXPECT_FALSE(ConfigureFailpoint("t", "after:").ok());
  EXPECT_FALSE(ConfigureFailpoint("t", "after:x").ok());
  EXPECT_FALSE(ConfigureFailpoint("t", "times:x").ok());
  EXPECT_FALSE(ConfigureFailpoint("", "always").ok());
}

TEST_F(FailpointTest, SpecAppliesManyAndRejectsBadPairs) {
  EXPECT_TRUE(ConfigureFailpointsFromSpec("").ok());
  EXPECT_TRUE(ConfigureFailpointsFromSpec("a=always,b=times:1").ok());
  EXPECT_FALSE(ConfigureFailpointsFromSpec("a=always,b").ok());
  EXPECT_FALSE(ConfigureFailpointsFromSpec("a=nope").ok());
}

TEST_F(FailpointTest, DisarmedHarnessNeverFires) {
  if (FailpointsArmed()) GTEST_SKIP() << "TCF_FAILPOINTS=1 in environment";
  ASSERT_TRUE(ConfigureFailpoint("unit.always", "always").ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(TCF_FAILPOINT("unit.always"));
  }
  // Disarmed evaluations are not even counted: the macro short-circuits
  // before the registry.
  EXPECT_EQ(FailpointEvaluations("unit.always"), 0u);
}

TEST_F(FailpointTest, ArmedTriggersFireAsSpecified) {
  if (!FailpointsArmed()) GTEST_SKIP() << "set TCF_FAILPOINTS=1 to run";

  ASSERT_TRUE(ConfigureFailpoint("unit.always", "always").ok());
  EXPECT_TRUE(TCF_FAILPOINT("unit.always"));
  EXPECT_TRUE(TCF_FAILPOINT("unit.always"));

  // Unconfigured names default to off and are never tracked.
  EXPECT_FALSE(TCF_FAILPOINT("unit.unconfigured"));
  EXPECT_EQ(FailpointEvaluations("unit.unconfigured"), 0u);

  ASSERT_TRUE(ConfigureFailpoint("unit.after", "after:2").ok());
  EXPECT_FALSE(TCF_FAILPOINT("unit.after"));
  EXPECT_FALSE(TCF_FAILPOINT("unit.after"));
  EXPECT_TRUE(TCF_FAILPOINT("unit.after"));
  EXPECT_TRUE(TCF_FAILPOINT("unit.after"));

  ASSERT_TRUE(ConfigureFailpoint("unit.times", "times:2").ok());
  EXPECT_TRUE(TCF_FAILPOINT("unit.times"));
  EXPECT_TRUE(TCF_FAILPOINT("unit.times"));
  EXPECT_FALSE(TCF_FAILPOINT("unit.times"));

  // prob:0 and prob:1 are the deterministic ends of the dial.
  ASSERT_TRUE(ConfigureFailpoint("unit.never", "prob:0").ok());
  ASSERT_TRUE(ConfigureFailpoint("unit.certain", "prob:1").ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(TCF_FAILPOINT("unit.never"));
    EXPECT_TRUE(TCF_FAILPOINT("unit.certain"));
  }

  EXPECT_EQ(FailpointEvaluations("unit.always"), 2u);
  EXPECT_EQ(FailpointEvaluations("unit.times"), 3u);

  // Reconfiguring resets the per-name counter state.
  ASSERT_TRUE(ConfigureFailpoint("unit.after", "after:1").ok());
  EXPECT_FALSE(TCF_FAILPOINT("unit.after"));
  EXPECT_TRUE(TCF_FAILPOINT("unit.after"));

  ResetFailpoints();
  EXPECT_FALSE(TCF_FAILPOINT("unit.always"));
  EXPECT_EQ(FailpointEvaluations("unit.times"), 0u);
}

}  // namespace
}  // namespace tcf
