// Concurrency stress for incremental maintenance under live traffic:
// 16 query threads hammer a warm composing cache while one updater
// thread applies randomized update batches through ApplyUpdatedSnapshot
// (targeted ResultCache invalidation + rolling shard swaps). The test
// is primarily a race detector workload — it is part of the TSan CI
// leg — but it also proves the end state: once the readers drain, every
// answer from the hammered backend equals a cache-less service over a
// from-scratch rebuild of the accumulated network.
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/tc_tree.h"
#include "core/tc_tree_update.h"
#include "gen/checkin_generator.h"
#include "net/database_network.h"
#include "serve/query_backend.h"
#include "serve/query_service.h"
#include "serve/shard_router.h"
#include "test_util.h"
#include "tx/itemset.h"
#include "util/rng.h"

namespace tcf {
namespace {

DatabaseNetwork StressNet(uint64_t seed) {
  CheckinParams p;
  p.num_users = 40;
  p.num_locations = 12;
  p.friends_k = 3;
  p.periods_per_user = 8;
  p.favorites_per_user = 4;
  p.seed = seed;
  return GenerateCheckinNetwork(p);
}

NetworkUpdate RandomBatch(Rng& rng, const DatabaseNetwork& net, size_t ops) {
  NetworkUpdate u;
  const size_t v = net.num_vertices();
  const size_t items = net.num_items();
  for (size_t i = 0; i < ops; ++i) {
    if (rng.NextBool(0.3) && v >= 2) {
      VertexId a = static_cast<VertexId>(rng.NextUint64(v));
      VertexId b = static_cast<VertexId>(rng.NextUint64(v));
      if (a == b) b = (b + 1) % v;
      u.edges.push_back(MakeEdge(a, b));
    } else {
      NetworkUpdate::TxInsert tx;
      tx.vertex = static_cast<VertexId>(rng.NextUint64(v));
      const size_t len = 1 + rng.NextUint64(3);
      std::vector<ItemId> ids;
      for (size_t k = 0; k < len; ++k) {
        ids.push_back(static_cast<ItemId>(rng.NextUint64(items)));
      }
      tx.items = Itemset(std::move(ids));
      u.transactions.push_back(std::move(tx));
    }
  }
  return u;
}

ServeQuery RandomQuery(const std::vector<ItemId>& items, Rng& rng) {
  static constexpr double kAlphas[] = {0.0, 0.02, 0.05, 0.1, 0.25};
  const size_t len = 1 + rng.NextUint64(4);
  std::vector<ItemId> picked;
  for (size_t i = 0; i < len; ++i) {
    picked.push_back(items[rng.NextUint64(items.size())]);
  }
  return ServeQuery{Itemset(std::move(picked)),
                    kAlphas[rng.NextUint64(std::size(kAlphas))]};
}

QueryServiceOptions WarmCacheOptions() {
  QueryServiceOptions o;
  o.num_threads = 2;
  o.cache_bytes = size_t{8} << 20;
  o.cache_composition = true;
  o.cache_admit_derived = true;
  o.cache_compose_min_walk_us = 0;
  o.tracing = false;
  return o;
}

QueryServiceOptions OracleOptions() {
  QueryServiceOptions o;
  o.num_threads = 1;
  o.cache_bytes = 0;
  o.tracing = false;
  return o;
}

/// 16 readers spin random queries against `backend` while the calling
/// thread applies `batches` randomized update batches back to back.
/// Afterwards the backend must agree, answer for answer, with a fresh
/// cache-less rebuild of the mutated network.
void RunStress(size_t num_shards, uint64_t seed, size_t batches) {
  DatabaseNetwork updater_net = StressNet(seed);
  DatabaseNetwork oracle_net = StressNet(seed);
  TcTree initial = TcTree::Build(updater_net);

  std::unique_ptr<QueryBackend> backend;
  if (num_shards == 1) {
    backend = std::make_unique<QueryService>(TcTree::Build(updater_net),
                                             updater_net.dictionary(),
                                             WarmCacheOptions());
  } else {
    backend = std::make_unique<ShardedQueryService>(
        TcTree::Build(updater_net), updater_net.dictionary(), num_shards,
        WarmCacheOptions());
  }

  IndexUpdater updater(
      std::move(updater_net), std::move(initial),
      [&](TcTree tree, const std::vector<ItemId>& changed_roots,
          const std::vector<ItemId>& dirty_items) {
        return backend->ApplyUpdatedSnapshot(std::move(tree), changed_roots,
                                             dirty_items);
      });

  // Updates only add items, so the pre-update active set stays valid
  // for query generation throughout.
  const std::vector<ItemId> items = updater.network().ActiveItems();
  ASSERT_FALSE(items.empty());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> readers;
  readers.reserve(16);
  for (int t = 0; t < 16; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(seed * 1009 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const ServeQuery q = RandomQuery(items, rng);
        QueryBackend::Result r = backend->Execute(q);
        if (r == nullptr) {
          ADD_FAILURE() << "Execute returned null under churn";
          return;
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng rng(seed * 7 + 3);
  for (size_t b = 0; b < batches; ++b) {
    NetworkUpdate batch = RandomBatch(rng, updater.network(), 3);
    for (const NetworkUpdate::TxInsert& tx : batch.transactions) {
      ASSERT_TRUE(oracle_net.AddTransaction(tx.vertex, tx.items).ok());
    }
    for (const Edge& e : batch.edges) {
      ASSERT_TRUE(oracle_net.AddEdge(e.u, e.v).ok());
    }
    auto outcome = updater.Apply(std::move(batch));
    ASSERT_TRUE(outcome.ok()) << outcome.status().message();
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(answered.load(std::memory_order_relaxed), 0u);

  // Final differential: hammered backend (warm survivor cache and all)
  // vs a cache-less oracle over a from-scratch rebuild.
  QueryService oracle(TcTree::Build(oracle_net), oracle_net.dictionary(),
                      OracleOptions());
  Rng qrng(seed + 99);
  for (int i = 0; i < 50; ++i) {
    const ServeQuery q = RandomQuery(items, qrng);
    const auto got = backend->Execute(q);
    const auto want = oracle.Execute(q);
    SCOPED_TRACE("post-stress query " + std::to_string(i));
    ASSERT_EQ(got->trusses.size(), want->trusses.size());
    for (size_t j = 0; j < want->trusses.size(); ++j) {
      testing::ExpectSameTruss(got->trusses[j], want->trusses[j],
                               "truss " + std::to_string(j));
    }
  }
}

TEST(UpdateStress, UnshardedSixteenReadersOneUpdater) {
  RunStress(/*num_shards=*/1, /*seed=*/21, /*batches=*/8);
}

TEST(UpdateStress, ShardedTwoSixteenReadersOneUpdater) {
  RunStress(/*num_shards=*/2, /*seed=*/22, /*batches=*/8);
}

TEST(UpdateStress, ShardedEightSixteenReadersOneUpdater) {
  RunStress(/*num_shards=*/8, /*seed=*/23, /*batches=*/6);
}

}  // namespace
}  // namespace tcf
