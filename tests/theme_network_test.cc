#include "net/theme_network.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tcf {
namespace {

using testing::EdgeList;
using testing::MakeNetwork;
using testing::MakeRandomNetwork;

DatabaseNetwork Net() {
  // Path 0-1-2-3 plus chord 1-3. Item 0 on {0,1,2}, item 1 on {1,2,3}.
  return MakeNetwork(4, {{0, 1}, {1, 2}, {2, 3}, {1, 3}},
                     {{{0}},        // v0
                      {{0, 1}},     // v1
                      {{0}, {1}},   // v2
                      {{1}}});      // v3
}

TEST(ThemeNetworkTest, InducesVerticesWithPositiveFrequency) {
  DatabaseNetwork net = Net();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  EXPECT_EQ(tn.vertices, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(tn.FrequencyOf(0), 1.0);
  EXPECT_DOUBLE_EQ(tn.FrequencyOf(2), 0.5);
  EXPECT_DOUBLE_EQ(tn.FrequencyOf(3), 0.0);  // not a member
  EXPECT_EQ(tn.edges, EdgeList({{0, 1}, {1, 2}}));
}

TEST(ThemeNetworkTest, InducesSecondItem) {
  DatabaseNetwork net = Net();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({1}));
  EXPECT_EQ(tn.vertices, (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(tn.edges, EdgeList({{1, 2}, {2, 3}, {1, 3}}));
}

TEST(ThemeNetworkTest, PairPatternShrinksNetwork) {
  DatabaseNetwork net = Net();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0, 1}));
  // Only v1 has a transaction containing both items.
  EXPECT_EQ(tn.vertices, (std::vector<VertexId>{1}));
  EXPECT_TRUE(tn.edges.empty());
}

TEST(ThemeNetworkTest, AbsentPatternGivesEmptyNetwork) {
  DatabaseNetwork net = Net();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({5}));
  EXPECT_TRUE(tn.vertices.empty());
  EXPECT_TRUE(tn.empty());
}

TEST(ThemeNetworkTest, EmptyPatternCoversNonEmptyDatabases) {
  DatabaseNetwork net = MakeNetwork(3, {{0, 1}, {1, 2}}, {{{0}}, {}, {{1}}});
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset());
  // v1 has an empty database -> excluded; f = 1 elsewhere.
  EXPECT_EQ(tn.vertices, (std::vector<VertexId>{0, 2}));
  EXPECT_DOUBLE_EQ(tn.FrequencyOf(0), 1.0);
  EXPECT_TRUE(tn.edges.empty());  // 0-2 not an edge
}

TEST(ThemeNetworkTest, ThemeSubgraphOfDatabaseNetwork) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 5});
  for (ItemId item : net.ActiveItems()) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    for (size_t i = 0; i < tn.vertices.size(); ++i) {
      EXPECT_GT(tn.frequencies[i], 0.0);
      EXPECT_DOUBLE_EQ(tn.frequencies[i],
                       net.Frequency(tn.vertices[i], Itemset::Single(item)));
    }
    for (const Edge& e : tn.edges) {
      EXPECT_TRUE(net.graph().HasEdge(e.u, e.v));
      EXPECT_GT(tn.FrequencyOf(e.u), 0.0);
      EXPECT_GT(tn.FrequencyOf(e.v), 0.0);
    }
  }
}

TEST(ThemeNetworkFromEdgesTest, RestrictsToCandidateEdges) {
  DatabaseNetwork net = Net();
  // Candidate edges: {1,2} and {2,3}; pattern {1} lives on {1,2,3}.
  ThemeNetwork tn = InduceThemeNetworkFromEdges(
      net, Itemset({1}), EdgeList({{1, 2}, {2, 3}}));
  EXPECT_EQ(tn.edges, EdgeList({{1, 2}, {2, 3}}));
  EXPECT_EQ(tn.vertices, (std::vector<VertexId>{1, 2, 3}));
}

TEST(ThemeNetworkFromEdgesTest, DropsEdgesWithZeroFrequencyEndpoint) {
  DatabaseNetwork net = Net();
  // Pattern {0} has f=0 on v3, so edge {2,3} must vanish.
  ThemeNetwork tn = InduceThemeNetworkFromEdges(
      net, Itemset({0}), EdgeList({{1, 2}, {2, 3}}));
  EXPECT_EQ(tn.edges, EdgeList({{1, 2}}));
}

TEST(ThemeNetworkFromEdgesTest, DeduplicatesAndSorts) {
  DatabaseNetwork net = Net();
  std::vector<Edge> cand = {{1, 2}, {0, 1}, {1, 2}};
  ThemeNetwork tn = InduceThemeNetworkFromEdges(net, Itemset({0}), cand);
  EXPECT_EQ(tn.edges, EdgeList({{0, 1}, {1, 2}}));
}

TEST(ThemeNetworkFromEdgesTest, AgreesWithFullInductionOnSubsets) {
  // Inducing from the *full* edge set of G must give the same theme
  // network as full induction (on edges; vertex sets may differ only by
  // isolated vertices, which carry no truss).
  DatabaseNetwork net = MakeRandomNetwork({.seed = 11});
  std::vector<Edge> all_edges = net.graph().edges();
  for (ItemId item : net.ActiveItems()) {
    Itemset p = Itemset::Single(item);
    ThemeNetwork full = InduceThemeNetwork(net, p);
    ThemeNetwork sub = InduceThemeNetworkFromEdges(net, p, all_edges);
    EXPECT_EQ(full.edges, sub.edges) << "item " << item;
  }
}

TEST(ThemeNetworkFromEdgesTest, EmptyCandidatesGiveEmptyNetwork) {
  DatabaseNetwork net = Net();
  ThemeNetwork tn = InduceThemeNetworkFromEdges(net, Itemset({0}), {});
  EXPECT_TRUE(tn.empty());
  EXPECT_TRUE(tn.vertices.empty());
}

}  // namespace
}  // namespace tcf
