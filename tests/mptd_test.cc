#include "core/mptd.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/brute_force.h"
#include "graph/ktruss.h"
#include "graph/random_graphs.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::EdgeList;
using testing::MakeFigureOneNetwork;
using testing::MakeNetwork;
using testing::MakeRandomNetwork;

// Builds a theme network directly from explicit vertices/frequencies and
// edges (no database needed) — exercises Alg. 1 in isolation.
ThemeNetwork MakeTheme(std::vector<std::pair<VertexId, double>> vf,
                       std::vector<Edge> edges) {
  ThemeNetwork tn;
  tn.pattern = Itemset({0});
  std::sort(vf.begin(), vf.end());
  for (const auto& [v, f] : vf) {
    tn.vertices.push_back(v);
    tn.frequencies.push_back(f);
  }
  std::sort(edges.begin(), edges.end());
  tn.edges = std::move(edges);
  return tn;
}

// --- Example 3.2: eco12 = min(f1,f2,f3) + min(f1,f2,f5) = 0.2. ----------
TEST(MptdTest, PaperExample32EdgeCohesion) {
  // v1,v2,v3,v5 all with f = 0.1; e12 in triangles {1,2,3} and {1,2,5}.
  ThemeNetwork tn = MakeTheme(
      {{1, 0.1}, {2, 0.1}, {3, 0.1}, {5, 0.1}},
      EdgeList({{1, 2}, {1, 3}, {2, 3}, {1, 5}, {2, 5}}));
  ThemePeeler peeler(tn);
  // Find local edge {1,2}: edges are sorted, {1,2} is first.
  ASSERT_EQ(peeler.GlobalEdge(0), (Edge{1, 2}));
  EXPECT_EQ(peeler.cohesion(0), 2 * QuantizeFrequency(0.1));
  // The cohesion sits on the 2^-30 quantization grid, within half a grid
  // step per term of the real value 0.2.
  EXPECT_NEAR(CohesionToDouble(peeler.cohesion(0)), 0.2, 1e-8);
}

// --- Figure 1(b)-style validity ranges. ---------------------------------
TEST(MptdTest, FigureOneCommunitiesAtLowAlpha) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  // α = 0.15 < 0.2: both the K4 (eco 0.2) and the triangle (eco 0.3)
  // survive; the bridge 3-6 (no triangle) does not.
  PatternTruss truss = Mptd(tn, 0.15);
  EXPECT_EQ(truss.edges,
            EdgeList({{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
                      {6, 7}, {6, 8}, {7, 8}}));
}

TEST(MptdTest, FigureOneOnlyTriangleAtMediumAlpha) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  // α = 0.25 ∈ [0.2, 0.3): the K4's eco = 0.2 fails, triangle survives.
  PatternTruss truss = Mptd(tn, 0.25);
  EXPECT_EQ(truss.edges, EdgeList({{6, 7}, {6, 8}, {7, 8}}));
  EXPECT_EQ(truss.vertices, (std::vector<VertexId>{6, 7, 8}));
}

TEST(MptdTest, FigureOneEmptyAtHighAlpha) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  EXPECT_TRUE(Mptd(tn, 0.3).empty());  // strict: eco 0.3 > 0.3 fails
  EXPECT_TRUE(Mptd(tn, 5.0).empty());
}

TEST(MptdTest, BoundaryAlphaIsStrict) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  // At α = 0.2 exactly, eco = 0.2 edges are unqualified (eco > α fails).
  PatternTruss truss = Mptd(tn, 0.2);
  EXPECT_EQ(truss.edges, EdgeList({{6, 7}, {6, 8}, {7, 8}}));
}

TEST(MptdTest, ZeroCohesionEdgesRemovedAtAlphaZero) {
  // A lone edge has no triangles => eco 0 => removed even at α = 0.
  ThemeNetwork tn = MakeTheme({{0, 1.0}, {1, 1.0}}, EdgeList({{0, 1}}));
  EXPECT_TRUE(Mptd(tn, 0.0).empty());
}

TEST(MptdTest, TriangleSurvivesAlphaZero) {
  ThemeNetwork tn = MakeTheme({{0, 0.5}, {1, 0.5}, {2, 0.5}},
                              EdgeList({{0, 1}, {0, 2}, {1, 2}}));
  PatternTruss truss = Mptd(tn, 0.0);
  EXPECT_EQ(truss.num_edges(), 3u);
  for (CohesionValue c : truss.edge_cohesions) {
    EXPECT_EQ(c, QuantizeFrequency(0.5));
  }
}

TEST(MptdTest, ZeroFrequencyVertexKillsTriangle) {
  // min(f_i, f_j, f_k) with f_k = 0 contributes nothing.
  ThemeNetwork tn = MakeTheme({{0, 0.5}, {1, 0.5}, {2, 0.0}},
                              EdgeList({{0, 1}, {0, 2}, {1, 2}}));
  EXPECT_TRUE(Mptd(tn, 0.0).empty());
}

TEST(MptdTest, CascadingPeel) {
  // Two triangles sharing edge {0,1} and a high threshold that removes
  // the weaker wing first, cascading into everything.
  ThemeNetwork tn = MakeTheme(
      {{0, 0.4}, {1, 0.4}, {2, 0.4}, {3, 0.1}},
      EdgeList({{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}}));
  // eco({0,1}) = min(.4,.4,.4) + min(.4,.4,.1) = 0.5; wings of triangle
  // {0,1,3} have eco 0.1; wings of {0,1,2} have eco 0.4.
  PatternTruss t1 = Mptd(tn, 0.2);
  EXPECT_EQ(t1.edges, EdgeList({{0, 1}, {0, 2}, {1, 2}}));
  // At 0.4: the {0,1,2} wings fail (0.4 > 0.4 false) => all gone.
  EXPECT_TRUE(Mptd(tn, 0.4).empty());
}

TEST(MptdTest, EmptyThemeNetwork) {
  ThemeNetwork tn;
  tn.pattern = Itemset({0});
  PatternTruss truss = Mptd(tn, 0.0);
  EXPECT_TRUE(truss.empty());
  EXPECT_EQ(truss.pattern, Itemset({0}));
}

TEST(MptdTest, DisconnectedTrussIsAllowed) {
  // Def. 3.4: a maximal pattern truss need not be connected.
  ThemeNetwork tn = MakeTheme(
      {{0, 0.5}, {1, 0.5}, {2, 0.5}, {10, 0.3}, {11, 0.3}, {12, 0.3}},
      EdgeList({{0, 1}, {0, 2}, {1, 2}, {10, 11}, {10, 12}, {11, 12}}));
  PatternTruss truss = Mptd(tn, 0.1);
  EXPECT_EQ(truss.num_edges(), 6u);
  EXPECT_EQ(truss.num_vertices(), 6u);
}

TEST(MptdTest, ExtractTrussPreservesFrequencies) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  PatternTruss truss = Mptd(tn, 0.0);
  EXPECT_DOUBLE_EQ(truss.FrequencyOf(0), 0.1);
  EXPECT_DOUBLE_EQ(truss.FrequencyOf(6), 0.3);
  EXPECT_DOUBLE_EQ(truss.FrequencyOf(42), 0.0);  // absent
}

TEST(MptdTest, KTrussSpecialCase) {
  // Def. 3.3: if every frequency is 1 and α = k-3, the pattern truss is
  // the k-truss. Check against the classic peeling on random graphs.
  Rng rng(31);
  Graph g = ErdosRenyi(20, 80, rng);
  ThemeNetwork tn;
  tn.pattern = Itemset({0});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tn.vertices.push_back(v);
    tn.frequencies.push_back(1.0);
  }
  tn.edges = g.edges();
  for (uint32_t k = 3; k <= 6; ++k) {
    PatternTruss truss = Mptd(tn, static_cast<double>(k) - 3.0);
    auto expect = KTrussEdges(g, k);
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(truss.edges, expect) << "k=" << k;
  }
}

// --- Property suite: MPTD == brute-force fixpoint. ----------------------
class MptdPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(MptdPropertyTest, MatchesBruteForceOnRandomNetworks) {
  const auto [seed, alpha] = GetParam();
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .edge_prob = 0.4,
                                           .num_items = 4,
                                           .seed = seed});
  for (ItemId item : net.ActiveItems()) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    PatternTruss fast = Mptd(tn, alpha);
    PatternTruss slow = BruteForceMaximalPatternTruss(tn, alpha);
    testing::ExpectSameTruss(fast, slow,
                             "item=" + std::to_string(item) +
                                 " alpha=" + std::to_string(alpha));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, MptdPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0.0, 0.1, 0.3, 0.7)));

TEST(MptdTest, PeelerTracksMinAliveCohesion) {
  ThemeNetwork tn = MakeTheme(
      {{0, 0.4}, {1, 0.4}, {2, 0.4}, {3, 0.1}},
      EdgeList({{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}}));
  ThemePeeler peeler(tn);
  peeler.PeelToThreshold(0);
  EXPECT_EQ(peeler.MinAliveCohesion(), QuantizeFrequency(0.1));
  peeler.PeelToThreshold(QuantizeFrequency(0.1));
  // {0,3} and {1,3} gone, {0,1} drops to 0.4, min now 0.4.
  EXPECT_EQ(peeler.MinAliveCohesion(), QuantizeFrequency(0.4));
  peeler.PeelToThreshold(QuantizeFrequency(0.4));
  EXPECT_EQ(peeler.num_alive(), 0u);
  EXPECT_EQ(peeler.MinAliveCohesion(), ThemePeeler::kNoAliveEdges);
}

TEST(MptdTest, TriangleVisitInstrumentationGrows) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  ThemeNetwork tn = InduceThemeNetwork(net, Itemset({0}));
  ThemePeeler peeler(tn);
  const uint64_t initial = peeler.triangle_visits();
  EXPECT_GT(initial, 0u);
  peeler.PeelToThreshold(QuantizeAlpha(0.25));
  EXPECT_GT(peeler.triangle_visits(), initial);
}

}  // namespace
}  // namespace tcf
