#include "core/community_search.h"

#include <gtest/gtest.h>

#include "core/tc_tree_query.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;

TEST(CommunitySearchTest, FindsBothSidesOfFigureOne) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  // Vertex 0 sits in the item-0 K4 and in item-1's community.
  auto communities = SearchCommunitiesOfVertex(tree, 0, 0.1);
  ASSERT_EQ(communities.size(), 2u);
  for (const auto& c : communities) {
    EXPECT_TRUE(std::binary_search(c.vertices.begin(), c.vertices.end(),
                                   VertexId{0}));
  }
}

TEST(CommunitySearchTest, ThresholdDropsWeakCommunities) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  // At alpha = 0.25 the item-0 K4 (eco 0.2) is gone; vertex 0 keeps only
  // its item-1 community.
  auto communities = SearchCommunitiesOfVertex(tree, 0, 0.25);
  ASSERT_EQ(communities.size(), 1u);
  EXPECT_EQ(communities[0].theme, Itemset({1}));
  // Vertex 6 keeps both (its triangle has eco 0.3 for item 0).
  auto v6 = SearchCommunitiesOfVertex(tree, 6, 0.25);
  EXPECT_EQ(v6.size(), 2u);
}

TEST(CommunitySearchTest, QueryPatternRestrictsThemes) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  auto only0 = SearchCommunitiesOfVertex(tree, 0, Itemset({0}), 0.1);
  ASSERT_EQ(only0.size(), 1u);
  EXPECT_EQ(only0[0].theme, Itemset({0}));
}

TEST(CommunitySearchTest, NonMemberVertexGetsNothing) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  // Vertices 4 and 5 are isolated (no edges at all).
  EXPECT_TRUE(SearchCommunitiesOfVertex(tree, 4, 0.0).empty());
  // Unknown vertex id: harmless, empty.
  EXPECT_TRUE(SearchCommunitiesOfVertex(tree, 999, 0.0).empty());
}

// Oracle: extract all communities from a full query and filter.
std::vector<ThemeCommunity> OracleSearch(const TcTree& tree, VertexId v,
                                         const Itemset& q, double alpha) {
  std::vector<ThemeCommunity> out;
  for (const auto& c : QueryThemeCommunities(tree, q, alpha)) {
    if (std::binary_search(c.vertices.begin(), c.vertices.end(), v)) {
      out.push_back(c);
    }
  }
  return out;
}

class CommunitySearchPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(CommunitySearchPropertyTest, MatchesFilteredFullQuery) {
  const auto [seed, alpha] = GetParam();
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .num_items = 5,
                                           .seed = seed});
  TcTree tree = TcTree::Build(net);
  const Itemset q({0, 1, 2, 3, 4});
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    auto fast = SearchCommunitiesOfVertex(tree, v, q, alpha);
    auto slow = OracleSearch(tree, v, q, alpha);
    ASSERT_EQ(fast.size(), slow.size()) << "v=" << v << " alpha=" << alpha;
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].theme, slow[i].theme);
      EXPECT_EQ(fast[i].vertices, slow[i].vertices);
      EXPECT_EQ(fast[i].edges, slow[i].edges);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CommunitySearchPropertyTest,
    ::testing::Combine(::testing::Values(3, 7, 11, 15),
                       ::testing::Values(0.0, 0.15)));

TEST(CommunitySearchTest, OverlapAcrossThemes) {
  // A hub vertex in two different-theme communities is reported twice
  // (Example 3.6's overlap semantics).
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  auto communities = SearchCommunitiesOfVertex(tree, 3, 0.1);
  std::set<Itemset> themes;
  for (const auto& c : communities) themes.insert(c.theme);
  EXPECT_EQ(themes.size(), communities.size()) << "one community per theme";
  EXPECT_GE(themes.size(), 2u);
}

}  // namespace
}  // namespace tcf
