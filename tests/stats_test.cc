#include "net/stats.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeNetwork;

TEST(StatsTest, CountsMatchHandComputation) {
  DatabaseNetwork net = MakeNetwork(
      3, {{0, 1}, {1, 2}},
      {{{0, 1}, {0}},     // 2 tx, 3 item occurrences
       {{1}},             // 1 tx, 1 occurrence
       {{2, 3}, {0, 3}}});  // 2 tx, 4 occurrences
  NetworkStats s = ComputeStats(net);
  EXPECT_EQ(s.num_vertices, 3u);
  EXPECT_EQ(s.num_edges, 2u);
  EXPECT_EQ(s.num_transactions, 5u);
  EXPECT_EQ(s.num_items_total, 8u);
  EXPECT_EQ(s.num_items_unique, 4u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.avg_transactions_per_vertex, 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.avg_transaction_length, 8.0 / 5.0);
  EXPECT_EQ(s.sum_degree_squared, 1u + 4u + 1u);
}

TEST(StatsTest, EmptyNetwork) {
  GraphBuilder b;
  ItemDictionary dict;
  DatabaseNetwork net(b.Build(), {}, std::move(dict));
  NetworkStats s = ComputeStats(net);
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_transactions, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_transaction_length, 0.0);
}

TEST(StatsTest, UniqueCountsDistinctAcrossVertices) {
  // The same item on two vertices counts once in num_items_unique.
  DatabaseNetwork net = MakeNetwork(2, {{0, 1}}, {{{0}}, {{0}}});
  NetworkStats s = ComputeStats(net);
  EXPECT_EQ(s.num_items_unique, 1u);
  EXPECT_EQ(s.num_items_total, 2u);
}

TEST(StatsTest, StreamOutput) {
  DatabaseNetwork net = MakeNetwork(2, {{0, 1}}, {{{0}}, {{1}}});
  std::ostringstream os;
  os << ComputeStats(net);
  EXPECT_NE(os.str().find("vertices=2"), std::string::npos);
  EXPECT_NE(os.str().find("edges=1"), std::string::npos);
}

}  // namespace
}  // namespace tcf
