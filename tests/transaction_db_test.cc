#include "tx/transaction_db.h"

#include <gtest/gtest.h>

#include "tx/vertical_index.h"
#include "util/rng.h"

namespace tcf {
namespace {

TransactionDb MakeDb() {
  TransactionDb db;
  db.Add(Itemset({0, 1}));
  db.Add(Itemset({0, 1, 2}));
  db.Add(Itemset({2}));
  db.Add(Itemset({0, 1}));  // duplicate transaction: multiset semantics
  return db;
}

TEST(TransactionDbTest, AddAssignsSequentialTids) {
  TransactionDb db;
  EXPECT_EQ(db.Add(Itemset({1})), 0u);
  EXPECT_EQ(db.Add(Itemset({2})), 1u);
  EXPECT_EQ(db.num_transactions(), 2u);
}

TEST(TransactionDbTest, SupportCountsMultisetOccurrences) {
  TransactionDb db = MakeDb();
  EXPECT_EQ(db.SupportCount(Itemset({0, 1})), 3u);  // duplicate counts twice
  EXPECT_EQ(db.SupportCount(Itemset({2})), 2u);
  EXPECT_EQ(db.SupportCount(Itemset({0, 2})), 1u);
  EXPECT_EQ(db.SupportCount(Itemset({3})), 0u);
}

TEST(TransactionDbTest, EmptyPatternInEveryTransaction) {
  TransactionDb db = MakeDb();
  EXPECT_EQ(db.SupportCount(Itemset()), 4u);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset()), 1.0);
}

TEST(TransactionDbTest, FrequencyIsProportion) {
  TransactionDb db = MakeDb();
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset({0, 1})), 0.75);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset({2})), 0.5);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset({9})), 0.0);
}

TEST(TransactionDbTest, EmptyDatabase) {
  TransactionDb db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.SupportCount(Itemset({0})), 0u);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset({0})), 0.0);
  EXPECT_EQ(db.TotalItemOccurrences(), 0u);
  EXPECT_TRUE(db.DistinctItems().empty());
}

TEST(TransactionDbTest, TotalItemOccurrences) {
  EXPECT_EQ(MakeDb().TotalItemOccurrences(), 2u + 3u + 1u + 2u);
}

TEST(TransactionDbTest, DistinctItems) {
  EXPECT_EQ(MakeDb().DistinctItems(), Itemset({0, 1, 2}));
}

TEST(TransactionDbTest, EmptyTransactionAllowed) {
  TransactionDb db;
  db.Add(Itemset());
  db.Add(Itemset({1}));
  EXPECT_EQ(db.num_transactions(), 2u);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset()), 1.0);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset({1})), 0.5);
}

// ------------------------------------------------------ VerticalIndex --

TEST(VerticalIndexTest, TidListsAreSortedAndComplete) {
  VerticalIndex idx(MakeDb());
  EXPECT_EQ(idx.TidList(0), (std::vector<Tid>{0, 1, 3}));
  EXPECT_EQ(idx.TidList(1), (std::vector<Tid>{0, 1, 3}));
  EXPECT_EQ(idx.TidList(2), (std::vector<Tid>{1, 2}));
  EXPECT_TRUE(idx.TidList(9).empty());
  EXPECT_EQ(idx.items(), (std::vector<ItemId>{0, 1, 2}));
}

TEST(VerticalIndexTest, SupportMatchesScan) {
  TransactionDb db = MakeDb();
  VerticalIndex idx(db);
  for (const Itemset& p :
       {Itemset({0}), Itemset({0, 1}), Itemset({0, 2}), Itemset({0, 1, 2}),
        Itemset({3}), Itemset()}) {
    EXPECT_EQ(idx.SupportCount(p), db.SupportCount(p)) << p.ToString();
    EXPECT_DOUBLE_EQ(idx.Frequency(p), db.Frequency(p)) << p.ToString();
  }
}

TEST(VerticalIndexTest, RandomizedAgreementWithScan) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    TransactionDb db;
    const size_t n_tx = 1 + rng.NextUint64(30);
    for (size_t t = 0; t < n_tx; ++t) {
      std::vector<ItemId> items;
      const size_t len = rng.NextUint64(5);
      for (size_t i = 0; i < len; ++i) {
        items.push_back(static_cast<ItemId>(rng.NextUint64(6)));
      }
      db.Add(Itemset(std::move(items)));
    }
    VerticalIndex idx(db);
    // Check all patterns over 6 items.
    for (uint32_t mask = 0; mask < 64; ++mask) {
      std::vector<ItemId> items;
      for (uint32_t b = 0; b < 6; ++b) {
        if (mask & (1u << b)) items.push_back(b);
      }
      Itemset p(std::move(items));
      EXPECT_EQ(idx.SupportCount(p), db.SupportCount(p))
          << "round " << round << " pattern " << p.ToString();
    }
  }
}

TEST(VerticalIndexTest, IntersectWith) {
  VerticalIndex idx(MakeDb());
  std::vector<Tid> base{0, 1, 2, 3};
  EXPECT_EQ(idx.IntersectWith(base, 2), (std::vector<Tid>{1, 2}));
  EXPECT_TRUE(idx.IntersectWith({}, 0).empty());
}

TEST(VerticalIndexTest, EmptyDatabase) {
  TransactionDb db;
  VerticalIndex idx(db);
  EXPECT_EQ(idx.num_transactions(), 0u);
  EXPECT_DOUBLE_EQ(idx.Frequency(Itemset({0})), 0.0);
  EXPECT_TRUE(idx.items().empty());
}

TEST(SortedIntersectTest, BasicsAndEdgeCases) {
  EXPECT_EQ(SortedIntersect({1, 3, 5}, {3, 4, 5}), (std::vector<Tid>{3, 5}));
  EXPECT_TRUE(SortedIntersect({1, 2}, {3, 4}).empty());
  EXPECT_TRUE(SortedIntersect({}, {1}).empty());
  EXPECT_EQ(SortedIntersectionSize({1, 3, 5}, {3, 4, 5}), 2u);
  EXPECT_EQ(SortedIntersectionSize({}, {}), 0u);
}

}  // namespace
}  // namespace tcf
