// Tests for the attribute-union strawman — and, through it, executable
// versions of the paper's §1 argument for why database networks need
// co-occurrence and frequency information.
#include "core/union_baseline.h"

#include <gtest/gtest.h>

#include <set>

#include "core/tcfi.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeNetwork;
using testing::MakeRandomNetwork;

// A triangle where every vertex has seen items 0 and 1 — but never in
// the same transaction.
DatabaseNetwork NoCooccurrenceNet() {
  std::vector<std::vector<std::vector<ItemId>>> tx(3);
  for (auto& db : tx) {
    db.push_back({0});
    db.push_back({1});
  }
  return MakeNetwork(3, {{0, 1}, {1, 2}, {0, 2}}, tx);
}

TEST(UnionBaselineTest, InventsCommunitiesFromMergedTransactions) {
  // The paper's first failure mode: collapsing transactions into one
  // attribute set fabricates the pattern {0,1} that no transaction
  // supports.
  DatabaseNetwork net = NoCooccurrenceNet();
  MiningResult baseline = RunUnionBaseline(net, {.k = 3});
  std::set<Itemset> baseline_patterns;
  for (const auto& t : baseline.trusses) baseline_patterns.insert(t.pattern);
  EXPECT_TRUE(baseline_patterns.count(Itemset({0, 1})))
      << "strawman should (wrongly) report the merged pattern";

  MiningResult exact = RunTcfi(net, {.alpha = 0.0});
  std::set<Itemset> exact_patterns;
  for (const auto& t : exact.trusses) exact_patterns.insert(t.pattern);
  EXPECT_FALSE(exact_patterns.count(Itemset({0, 1})))
      << "theme communities must not report a never-co-occurring pattern";
}

// Two triangles: one where item 0 dominates every database, one where it
// appears once in a thousand transactions.
DatabaseNetwork FrequencyBlindNet() {
  std::vector<std::vector<std::vector<ItemId>>> tx(6);
  for (int v = 0; v < 3; ++v) {  // habitual buyers: f = 1.0
    tx[v] = {{0}, {0}, {0}, {0}};
  }
  for (int v = 3; v < 6; ++v) {  // one-off buyers: f = 0.05
    for (int t = 0; t < 19; ++t) tx[v].push_back({1});
    tx[v].push_back({0});
  }
  return MakeNetwork(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}, tx);
}

TEST(UnionBaselineTest, CannotTellStrongFromWeakHabits) {
  // The paper's second failure mode: binary presence treats f = 1.0 and
  // f = 0.05 alike.
  DatabaseNetwork net = FrequencyBlindNet();
  MiningResult baseline = RunUnionBaseline(net, {.k = 3});
  size_t zero_communities = 0;
  for (const auto& t : baseline.trusses) {
    if (t.pattern == Itemset({0})) zero_communities += t.num_vertices();
  }
  EXPECT_EQ(zero_communities, 6u) << "strawman sees both triangles equally";

  // A mild cohesion threshold keeps only the habitual buyers.
  MiningResult exact = RunTcfi(net, {.alpha = 0.5});
  for (const auto& t : exact.trusses) {
    if (t.pattern == Itemset({0})) {
      EXPECT_EQ(t.vertices, (std::vector<VertexId>{0, 1, 2}));
    }
  }
}

TEST(UnionBaselineTest, AgreesWithTcfiOnBinaryData) {
  // When every database is one transaction (attributes == database) and
  // alpha = k-3 = 0, both methods see the same world: the baseline's
  // patterns must coincide with TCFI's.
  std::vector<std::vector<std::vector<ItemId>>> tx(4);
  tx[0] = {{0, 1}};
  tx[1] = {{0, 1}};
  tx[2] = {{0, 1, 2}};
  tx[3] = {{2}};
  DatabaseNetwork net = MakeNetwork(
      4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}, tx);
  MiningResult baseline = RunUnionBaseline(net, {.k = 3});
  MiningResult exact = RunTcfi(net, {.alpha = 0.0});
  std::set<Itemset> a, b;
  for (const auto& t : baseline.trusses) a.insert(t.pattern);
  for (const auto& t : exact.trusses) b.insert(t.pattern);
  EXPECT_EQ(a, b);
}

TEST(UnionBaselineTest, HigherKIsStricter) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 16,
                                           .edge_prob = 0.45,
                                           .seed = 3});
  MiningResult k3 = RunUnionBaseline(net, {.k = 3});
  MiningResult k4 = RunUnionBaseline(net, {.k = 4});
  EXPECT_LE(k4.NumPatterns(), k3.NumPatterns());
  EXPECT_LE(k4.NumEdges(), k3.NumEdges());
}

TEST(UnionBaselineTest, BaselineFindsSupersetOfExactPatternsAtAlphaZero) {
  // attr-containment is weaker than transaction-containment, so at the
  // matching thresholds (k=3 vs alpha=0) every exact pattern is also a
  // baseline pattern.
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .num_items = 4,
                                           .seed = 5});
  MiningResult baseline = RunUnionBaseline(net, {.k = 3});
  MiningResult exact = RunTcfi(net, {.alpha = 0.0});
  std::set<Itemset> baseline_patterns;
  for (const auto& t : baseline.trusses) baseline_patterns.insert(t.pattern);
  for (const auto& t : exact.trusses) {
    EXPECT_TRUE(baseline_patterns.count(t.pattern)) << t.pattern.ToString();
  }
}

TEST(UnionBaselineTest, MaxLengthCap) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 6});
  MiningResult r = RunUnionBaseline(net, {.k = 3, .max_pattern_length = 1});
  for (const auto& t : r.trusses) EXPECT_EQ(t.pattern.size(), 1u);
}

TEST(ParallelTcfiTest, ParallelMatchesSequential) {
  for (uint64_t seed : {1, 2, 3}) {
    DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 16,
                                             .edge_prob = 0.4,
                                             .num_items = 6,
                                             .seed = seed});
    for (double alpha : {0.0, 0.2}) {
      MiningResult seq = RunTcfi(net, {.alpha = alpha, .num_threads = 1});
      MiningResult par = RunTcfi(net, {.alpha = alpha, .num_threads = 4});
      testing::ExpectSameResults(std::move(seq), std::move(par),
                                 "seed=" + std::to_string(seed));
    }
  }
}

TEST(ParallelTcfiTest, CountersMatchAcrossThreadCounts) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 9});
  MiningResult seq = RunTcfi(net, {.alpha = 0.0, .num_threads = 1});
  MiningResult par = RunTcfi(net, {.alpha = 0.0, .num_threads = 3});
  EXPECT_EQ(seq.counters.mptd_calls, par.counters.mptd_calls);
  EXPECT_EQ(seq.counters.pruned_by_intersection,
            par.counters.pruned_by_intersection);
  EXPECT_EQ(seq.counters.candidates_generated,
            par.counters.candidates_generated);
}

}  // namespace
}  // namespace tcf
