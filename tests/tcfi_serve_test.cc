// Serve-layer coverage of TCFI snapshots: a service opened over a
// mapped .tcfi file must answer byte-for-byte like one built in
// process, RELOAD must sniff both formats, sharded slice files must
// reproduce unsharded answers, and the watcher must probe-and-skip
// torn TCFI writes instead of attempting a load.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "core/tcfi_format.h"
#include "serve/file_watcher.h"
#include "serve/query_service.h"
#include "serve/shard_router.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::ExpectSameTruss;
using testing::MakeRandomNetwork;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

DatabaseNetwork BuildNet(uint64_t seed) {
  return MakeRandomNetwork(
      {.num_vertices = 16, .num_items = 6, .tx_per_vertex = 7, .seed = seed});
}

std::vector<ServeQuery> GridQueries() {
  std::vector<ServeQuery> queries;
  for (double alpha : {0.0, 0.05, 0.12, 0.3}) {
    queries.push_back({Itemset({0}), alpha});
    queries.push_back({Itemset({1, 2}), alpha});
    queries.push_back({Itemset({0, 3, 5}), alpha});
    queries.push_back({Itemset({0, 1, 2, 3, 4, 5}), alpha});
  }
  return queries;
}

void ExpectSameAnswer(const TcTreeQueryResult& a, const TcTreeQueryResult& b,
                      const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(a.trusses.size(), b.trusses.size());
  for (size_t i = 0; i < a.trusses.size(); ++i) {
    ExpectSameTruss(a.trusses[i], b.trusses[i], "truss " + std::to_string(i));
  }
}

/// Polls `pred` for ~5 s (the watcher is asynchronous by design).
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(TcfiServeTest, OpenedMappedServiceMatchesOwnedService) {
  DatabaseNetwork net = BuildNet(61);
  TcTree tree = TcTree::Build(net);
  const std::string path = TempPath("tcfi_serve_open.tcfi");
  ASSERT_TRUE(SaveTcTreeBinary(tree, path).ok());

  QueryService owned(TcTree(tree), net.dictionary(), {});
  auto mapped = QueryService::Open(path, net.dictionary(), {});
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_TRUE((*mapped)->snapshot()->mapped());

  for (const ServeQuery& q : GridQueries()) {
    ExpectSameAnswer(*owned.Execute(q), *(*mapped)->Execute(q),
                     "alpha=" + std::to_string(q.alpha));
  }
}

TEST(TcfiServeTest, ReloadFromFileSniffsBothFormats) {
  DatabaseNetwork net = BuildNet(62);
  TcTree full = TcTree::Build(net);
  TcTree shallow = TcTree::Build(net, {.max_depth = 1});
  ASSERT_LT(shallow.num_nodes(), full.num_nodes());

  const std::string tcfi = TempPath("tcfi_serve_reload.tcfi");
  const std::string tcft = TempPath("tcfi_serve_reload.tcft");
  ASSERT_TRUE(SaveTcTreeBinary(shallow, tcfi).ok());
  ASSERT_TRUE(SaveTcTreeToFile(full, tcft).ok());

  QueryService service(TcTree(full), net.dictionary(), {});

  // TCFI reload: installs the mapped snapshot zero-copy.
  auto nodes = service.ReloadFromFile(tcfi);
  ASSERT_TRUE(nodes.ok()) << nodes.status();
  EXPECT_EQ(*nodes, shallow.num_nodes());
  ASSERT_TRUE(service.snapshot()->mapped());
  const ServeQuery probe{Itemset({0, 1}), 0.0};
  ExpectSameAnswer(*service.Execute(probe),
                   QueryTcTree(shallow, probe.items, probe.alpha),
                   "after tcfi reload");

  // TCFT reload through the same entry point: back to an owned tree.
  nodes = service.ReloadFromFile(tcft);
  ASSERT_TRUE(nodes.ok()) << nodes.status();
  EXPECT_EQ(*nodes, full.num_nodes());
  ASSERT_FALSE(service.snapshot()->mapped());

  // A bad file leaves the live snapshot untouched.
  const std::string bad = TempPath("tcfi_serve_reload_bad.tcfi");
  {
    std::ofstream out(bad, std::ios::binary);
    out << "TCFI but torn";
  }
  EXPECT_FALSE(service.ReloadFromFile(bad).ok());
  EXPECT_EQ(service.snapshot()->num_nodes(), full.num_nodes());
}

TEST(TcfiServeTest, OpenSlicesMatchesUnshardedService) {
  const size_t kShards = 3;
  DatabaseNetwork net = BuildNet(63);
  TcTree tree = TcTree::Build(net);
  const std::string base = TempPath("tcfi_serve_slices.tcfi");
  ASSERT_TRUE(SaveTcfiShardSlices(TcTree(tree), base, kShards).ok());

  QueryService unsharded(TcTree(tree), net.dictionary(), {});
  auto sharded =
      ShardedQueryService::OpenSlices(base, net.dictionary(), kShards, {});
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ((*sharded)->num_shards(), kShards);

  for (const ServeQuery& q : GridQueries()) {
    ExpectSameAnswer(*unsharded.Execute(q), *(*sharded)->Execute(q),
                     "alpha=" + std::to_string(q.alpha));
  }

  // A shard-count mismatch is rejected, not mis-routed.
  EXPECT_FALSE(
      ShardedQueryService::OpenSlices(base, net.dictionary(), 2, {}).ok());
}

TEST(TcfiServeTest, ShardedReloadPrefersSliceFiles) {
  const size_t kShards = 3;
  DatabaseNetwork net = BuildNet(64);
  TcTree full = TcTree::Build(net);
  TcTree shallow = TcTree::Build(net, {.max_depth = 1});

  ShardedQueryService service(TcTree(full), net.dictionary(), kShards, {});

  // All N slice files present: rolling zero-copy per-shard swap.
  const std::string base = TempPath("tcfi_serve_roll.tcfi");
  ASSERT_TRUE(SaveTcfiShardSlices(TcTree(shallow), base, kShards).ok());
  auto nodes = service.ReloadFromFile(base);
  ASSERT_TRUE(nodes.ok()) << nodes.status();
  EXPECT_EQ(*nodes, shallow.num_nodes());
  const ServeQuery probe{Itemset({0, 1, 2}), 0.0};
  ExpectSameAnswer(*service.Execute(probe),
                   QueryTcTree(shallow, probe.items, probe.alpha),
                   "after slice reload");

  // No slices at this path: fall back to the whole-file reload
  // (materialize + partition + rolling swap).
  const std::string whole = TempPath("tcfi_serve_whole.tcfi");
  ASSERT_TRUE(SaveTcTreeBinary(full, whole).ok());
  nodes = service.ReloadFromFile(whole);
  ASSERT_TRUE(nodes.ok()) << nodes.status();
  EXPECT_EQ(*nodes, full.num_nodes());
  ExpectSameAnswer(*service.Execute(probe),
                   QueryTcTree(full, probe.items, probe.alpha),
                   "after whole-file reload");
}

TEST(TcfiServeTest, WatcherSkipsTornTcfiViaHeaderProbe) {
  DatabaseNetwork net = BuildNet(65);
  TcTree tree = TcTree::Build(net);
  const std::string path = TempPath("tcfi_serve_watch.tcfi");
  ASSERT_TRUE(SaveTcTreeBinary(tree, path).ok());
  const std::string good = [&] {
    std::ifstream f(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  }();

  QueryService service(TcTree(tree), net.dictionary(), {});
  FileWatcherOptions options;
  options.path = path;
  options.poll_ms = 5;
  FileWatcher watcher(service, options);
  ASSERT_TRUE(watcher.Start().ok());

  // A torn TCFI write (magic present, body incomplete): the header
  // probe rejects it without a load attempt — counted as skipped, not
  // as a failure — and the old snapshot keeps serving.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(good.data(), static_cast<std::streamsize>(good.size() / 2));
  }
  ASSERT_TRUE(WaitFor([&] { return watcher.skipped() >= 1; }));
  EXPECT_EQ(watcher.reloads(), 0u);
  EXPECT_EQ(watcher.failures(), 0u);
  EXPECT_EQ(service.snapshot()->num_nodes(), tree.num_nodes());

  // The writer finishes (rename-into-place semantics simulated by the
  // full rewrite): the watcher swaps the mapped snapshot in.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(good.data(), static_cast<std::streamsize>(good.size()));
  }
  ASSERT_TRUE(WaitFor([&] { return watcher.reloads() >= 1; }));
  ASSERT_TRUE(WaitFor([&] { return service.snapshot()->mapped(); }));
  const ServeQuery probe{Itemset({0}), 0.05};
  ExpectSameAnswer(*service.Execute(probe),
                   QueryTcTree(tree, probe.items, probe.alpha),
                   "after finished write");
  watcher.Stop();
}

}  // namespace
}  // namespace tcf
