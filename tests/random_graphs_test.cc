#include "graph/random_graphs.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/components.h"

namespace tcf {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Rng rng(1);
  Graph g = ErdosRenyi(50, 200, rng);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 200u);
}

TEST(ErdosRenyiTest, ClampToMaxEdges) {
  Rng rng(2);
  Graph g = ErdosRenyi(5, 1000, rng);
  EXPECT_EQ(g.num_edges(), 10u);  // C(5,2)
}

TEST(ErdosRenyiTest, Deterministic) {
  Rng a(7), b(7);
  Graph ga = ErdosRenyi(30, 80, a);
  Graph gb = ErdosRenyi(30, 80, b);
  EXPECT_EQ(ga.edges(), gb.edges());
}

TEST(ErdosRenyiTest, TinyGraphs) {
  Rng rng(3);
  EXPECT_EQ(ErdosRenyi(0, 10, rng).num_edges(), 0u);
  EXPECT_EQ(ErdosRenyi(1, 10, rng).num_edges(), 0u);
  EXPECT_EQ(ErdosRenyi(2, 10, rng).num_edges(), 1u);
}

TEST(BarabasiAlbertTest, EdgeCountFormula) {
  Rng rng(11);
  const size_t n = 100, attach = 3;
  Graph g = BarabasiAlbert(n, attach, rng);
  // m0 = attach+1 = 4 clique (6 edges) + (n - m0) * attach.
  EXPECT_EQ(g.num_edges(), 6u + (n - 4) * attach);
  EXPECT_EQ(g.num_vertices(), n);
}

TEST(BarabasiAlbertTest, SmallNFallsBackToClique) {
  Rng rng(13);
  Graph g = BarabasiAlbert(3, 5, rng);
  EXPECT_EQ(g.num_edges(), 3u);  // K3
}

TEST(BarabasiAlbertTest, ProducesHubs) {
  Rng rng(17);
  Graph g = BarabasiAlbert(400, 2, rng);
  size_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  // Preferential attachment should grow hubs well above the mean (~4).
  EXPECT_GT(max_deg, 12u);
}

TEST(BarabasiAlbertTest, Connected) {
  Rng rng(19);
  Graph g = BarabasiAlbert(200, 2, rng);
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

TEST(WattsStrogatzTest, NoRewireIsRingLattice) {
  Rng rng(23);
  Graph g = WattsStrogatz(20, 2, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 40u);  // n*k
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(WattsStrogatzTest, LatticeHasHighClustering) {
  Rng rng(29);
  Graph g = WattsStrogatz(50, 3, 0.0, rng);
  // A k=3 ring lattice has many triangles.
  size_t triangles = 0;
  for (VertexId a = 0; a < g.num_vertices(); ++a) {
    for (const Neighbor& nb : g.neighbors(a)) {
      if (nb.vertex <= a) continue;
      for (const Neighbor& nc : g.neighbors(nb.vertex)) {
        if (nc.vertex > nb.vertex && g.HasEdge(a, nc.vertex)) ++triangles;
      }
    }
  }
  EXPECT_GT(triangles, 50u);
}

TEST(WattsStrogatzTest, RewiringKeepsGraphSimple) {
  Rng rng(31);
  Graph g = WattsStrogatz(60, 3, 0.5, rng);
  // Simple graph invariants: no self loops, no duplicate edges (Build
  // dedups, but edge count should stay close to n*k).
  for (const Edge& e : g.edges()) EXPECT_NE(e.u, e.v);
  EXPECT_LE(g.num_edges(), 180u);
  EXPECT_GT(g.num_edges(), 150u);
}

TEST(WattsStrogatzTest, TinyGraphs) {
  Rng rng(37);
  EXPECT_EQ(WattsStrogatz(1, 2, 0.1, rng).num_edges(), 0u);
  EXPECT_EQ(WattsStrogatz(2, 2, 0.1, rng).num_edges(), 1u);
}

TEST(RandomGraphsTest, AllSimpleNoSelfLoops) {
  Rng rng(41);
  for (Graph g : {ErdosRenyi(40, 100, rng), BarabasiAlbert(40, 3, rng),
                  WattsStrogatz(40, 3, 0.3, rng)}) {
    std::vector<Edge> edges = g.edges();
    std::vector<Edge> dedup = edges;
    std::sort(dedup.begin(), dedup.end());
    dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
    EXPECT_EQ(dedup.size(), edges.size());
    for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
  }
}

}  // namespace
}  // namespace tcf
