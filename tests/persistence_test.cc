// Binary persistence: database networks and the TC-Tree index.
#include <gtest/gtest.h>

#include <sstream>

#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "net/binary_io.h"
#include "net/stats.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeFigureOneNetwork;
using testing::MakeRandomNetwork;

// ------------------------------------------------ binary network I/O --

TEST(BinaryIoTest, RoundTripRandomNetwork) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 18, .seed = 7});
  std::stringstream ss;
  ASSERT_TRUE(SaveNetworkBinary(net, ss).ok());
  auto loaded = LoadNetworkBinary(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(net.graph().edges(), loaded->graph().edges());
  NetworkStats a = ComputeStats(net), b = ComputeStats(*loaded);
  EXPECT_EQ(a.num_transactions, b.num_transactions);
  EXPECT_EQ(a.num_items_total, b.num_items_total);
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    ASSERT_EQ(net.db(v).num_transactions(), loaded->db(v).num_transactions());
    for (Tid t = 0; t < net.db(v).num_transactions(); ++t) {
      EXPECT_EQ(net.db(v).transaction(t), loaded->db(v).transaction(t));
    }
  }
}

TEST(BinaryIoTest, PreservesItemNames) {
  GraphBuilder b(1);
  ItemDictionary dict;
  dict.GetOrAdd("data mining");
  dict.GetOrAdd("名前");  // non-ASCII survives (bytes, not text)
  std::vector<TransactionDb> dbs(1);
  dbs[0].Add(Itemset({0, 1}));
  DatabaseNetwork net(b.Build(), std::move(dbs), std::move(dict));
  std::stringstream ss;
  ASSERT_TRUE(SaveNetworkBinary(net, ss).ok());
  auto loaded = LoadNetworkBinary(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dictionary().Name(0), "data mining");
  EXPECT_EQ(loaded->dictionary().Name(1), "名前");
}

TEST(BinaryIoTest, RejectsBadMagic) {
  std::stringstream ss("NOTB____garbage");
  EXPECT_TRUE(LoadNetworkBinary(ss).status().IsCorruption());
}

TEST(BinaryIoTest, RejectsTruncation) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 8});
  std::stringstream ss;
  ASSERT_TRUE(SaveNetworkBinary(net, ss).ok());
  std::string full = ss.str();
  // Cut at several byte offsets; every prefix must fail cleanly.
  for (size_t cut : {5ul, 20ul, full.size() / 2, full.size() - 3}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(LoadNetworkBinary(truncated).ok()) << "cut=" << cut;
  }
}

TEST(BinaryIoTest, FileRoundTrip) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 9});
  const std::string path = ::testing::TempDir() + "/tcf_binary_io.bin";
  ASSERT_TRUE(SaveNetworkBinaryToFile(net, path).ok());
  auto loaded = LoadNetworkBinaryFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(net.graph().edges(), loaded->graph().edges());
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadNetworkBinaryFromFile("/no/such/file.bin")
                  .status()
                  .IsIOError());
}

// ------------------------------------------------- TC-Tree persistence --

TEST(TcTreeIoTest, RoundTripPreservesStructure) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .num_items = 5,
                                           .seed = 21});
  TcTree tree = TcTree::Build(net);
  std::stringstream ss;
  ASSERT_TRUE(SaveTcTree(tree, ss).ok());
  auto loaded = LoadTcTree(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_nodes(), tree.num_nodes());
  for (TcTree::NodeId id = 1; id <= tree.num_nodes(); ++id) {
    EXPECT_EQ(loaded->PatternOf(id), tree.PatternOf(id));
    EXPECT_EQ(loaded->node(id).decomposition.sorted_edges(),
              tree.node(id).decomposition.sorted_edges());
    EXPECT_EQ(loaded->node(id).decomposition.max_alpha(),
              tree.node(id).decomposition.max_alpha());
    EXPECT_EQ(loaded->node(id).decomposition.levels().size(),
              tree.node(id).decomposition.levels().size());
  }
}

TEST(TcTreeIoTest, LoadedTreeAnswersQueriesIdentically) {
  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  std::stringstream ss;
  ASSERT_TRUE(SaveTcTree(tree, ss).ok());
  auto loaded = LoadTcTree(ss);
  ASSERT_TRUE(loaded.ok());
  for (double alpha : {0.0, 0.15, 0.25, 0.35}) {
    auto a = QueryTcTree(tree, Itemset({0, 1}), alpha);
    auto b = QueryTcTree(*loaded, Itemset({0, 1}), alpha);
    ASSERT_EQ(a.retrieved_nodes, b.retrieved_nodes) << alpha;
    for (size_t i = 0; i < a.trusses.size(); ++i) {
      EXPECT_EQ(a.trusses[i].pattern, b.trusses[i].pattern);
      EXPECT_EQ(a.trusses[i].edges, b.trusses[i].edges);
      EXPECT_EQ(a.trusses[i].vertices, b.trusses[i].vertices);
      EXPECT_EQ(a.trusses[i].frequencies, b.trusses[i].frequencies);
    }
  }
}

TEST(TcTreeIoTest, EmptyTreeRoundTrips) {
  DatabaseNetwork net = testing::MakeNetwork(2, {}, {{{0}}, {{1}}});
  TcTree tree = TcTree::Build(net);
  ASSERT_EQ(tree.num_nodes(), 0u);
  std::stringstream ss;
  ASSERT_TRUE(SaveTcTree(tree, ss).ok());
  auto loaded = LoadTcTree(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), 0u);
}

TEST(TcTreeIoTest, RejectsBadMagicAndTruncation) {
  std::stringstream bad("XXXX");
  EXPECT_FALSE(LoadTcTree(bad).ok());

  DatabaseNetwork net = MakeFigureOneNetwork();
  TcTree tree = TcTree::Build(net);
  std::stringstream ss;
  ASSERT_TRUE(SaveTcTree(tree, ss).ok());
  std::string full = ss.str();
  for (size_t cut : {6ul, 16ul, full.size() / 2, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(LoadTcTree(truncated).ok()) << "cut=" << cut;
  }
}

TEST(TcTreeIoTest, FileRoundTrip) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 4, .seed = 33});
  TcTree tree = TcTree::Build(net);
  const std::string path = ::testing::TempDir() + "/tcf_tree.idx";
  ASSERT_TRUE(SaveTcTreeToFile(tree, path).ok());
  auto loaded = LoadTcTreeFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), tree.num_nodes());
  EXPECT_EQ(loaded->TotalIndexedEdges(), tree.TotalIndexedEdges());
}

TEST(TcTreeIoTest, MaxAlphaAndDepthSurvive) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 4, .seed = 35});
  TcTree tree = TcTree::Build(net);
  std::stringstream ss;
  ASSERT_TRUE(SaveTcTree(tree, ss).ok());
  auto loaded = LoadTcTree(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->MaxAlphaOverNodes(), tree.MaxAlphaOverNodes());
  EXPECT_EQ(loaded->MaxDepth(), tree.MaxDepth());
}

}  // namespace
}  // namespace tcf
