// Randomized end-to-end consistency: for many seeds, run the whole
// pipeline — generate → (text and binary) serialize → sample → mine with
// all three miners → index → persist index → query — and check that
// every stage agrees with every other. This is the "no seam leaks"
// suite: each individual stage has its own oracle tests; this one checks
// the composition. The second suite below adds the update-interleaving
// mode: random UPDATE batches over a live TCP server, byte-identical to
// a from-scratch rebuild oracle after every batch, sharded and not.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/communities.h"
#include "core/community_search.h"
#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "core/tc_tree_update.h"
#include "core/tcfa.h"
#include "core/tcfi.h"
#include "core/tcs.h"
#include "net/binary_io.h"
#include "net/network_io.h"
#include "net/sampler.h"
#include "serve/line_protocol.h"
#include "serve/query_service.h"
#include "serve/shard_router.h"
#include "serve/tcp_server.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::ExpectSameResults;
using testing::MakeRandomNetwork;

class E2EFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(E2EFuzzTest, PipelineStagesAgree) {
  const uint64_t seed = GetParam();
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 15,
                                           .edge_prob = 0.4,
                                           .num_items = 5,
                                           .tx_per_vertex = 6,
                                           .seed = seed});

  // --- Serialization round trips preserve mining results. ---------------
  std::stringstream text, binary;
  ASSERT_TRUE(SaveNetwork(net, text).ok());
  ASSERT_TRUE(SaveNetworkBinary(net, binary).ok());
  auto from_text = LoadNetwork(text);
  auto from_binary = LoadNetworkBinary(binary);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_binary.ok());

  const double alpha = 0.1 * static_cast<double>(seed % 4);
  MiningResult direct = RunTcfi(net, {.alpha = alpha});
  ExpectSameResults(direct, RunTcfi(*from_text, {.alpha = alpha}),
                    "text round trip");
  ExpectSameResults(direct, RunTcfi(*from_binary, {.alpha = alpha}),
                    "binary round trip");

  // --- All exact miners agree; the oracle confirms. ---------------------
  ExpectSameResults(direct, RunTcfa(net, {.alpha = alpha}), "tcfa");
  ExpectSameResults(direct, RunTcs(net, {.alpha = alpha, .epsilon = 0.0}),
                    "tcs eps=0");
  ExpectSameResults(direct, BruteForceMineAll(net, alpha), "oracle");

  // --- Index agrees with direct mining; persisted index agrees too. -----
  TcTree tree = TcTree::Build(net, {.num_threads = 1 + seed % 3});
  std::stringstream idx;
  ASSERT_TRUE(SaveTcTree(tree, idx).ok());
  auto loaded_tree = LoadTcTree(idx);
  ASSERT_TRUE(loaded_tree.ok());

  Itemset everything(net.ActiveItems());
  auto via_tree = QueryTcTree(tree, everything, alpha);
  auto via_loaded = QueryTcTree(*loaded_tree, everything, alpha);
  ASSERT_EQ(via_tree.retrieved_nodes, direct.trusses.size());
  ASSERT_EQ(via_loaded.retrieved_nodes, direct.trusses.size());

  MiningResult from_tree;
  from_tree.trusses = via_tree.trusses;
  // Reconstructed trusses have no per-edge cohesions; compare topology.
  for (auto& t : from_tree.trusses) t.edge_cohesions.clear();
  MiningResult direct_no_coh = direct;
  for (auto& t : direct_no_coh.trusses) t.edge_cohesions.clear();
  ExpectSameResults(std::move(direct_no_coh), std::move(from_tree),
                    "tree vs direct");

  // --- Sharded serving is byte-identical on the wire. --------------------
  // Render every query's answer exactly as the serve layer would (one
  // EncodeTruss line per truss) through an unsharded QueryService and a
  // ShardedQueryService over the same build, and require the serialized
  // response streams to match byte for byte.
  {
    QueryServiceOptions bare;
    bare.num_threads = 1;
    bare.cache_bytes = 0;
    bare.tracing = false;
    QueryService unsharded(tree, net.dictionary(), bare);
    const size_t num_shards = 2 + seed % 3;
    ShardedQueryService sharded(tree, net.dictionary(), num_shards, bare);
    std::vector<ServeQuery> queries;
    queries.push_back({everything, alpha});
    for (ItemId item : net.ActiveItems()) {
      queries.push_back({Itemset::Single(item), alpha});
      queries.push_back({everything.Minus(Itemset::Single(item)), alpha});
    }
    auto render = [&](QueryBackend& backend) {
      std::string out;
      for (const ServeQuery& q : queries) {
        const auto result = backend.Execute(q);
        for (const PatternTruss& t : result->trusses) {
          out += EncodeTruss(net.dictionary(), t);
          out += '\n';
        }
        out += StrFormat("end %zu\n", result->trusses.size());
      }
      return out;
    };
    EXPECT_EQ(render(unsharded), render(sharded))
        << "sharded wire responses diverge, seed=" << seed
        << " num_shards=" << num_shards;
  }

  // --- Community search composes with extraction. -----------------------
  auto communities = ExtractThemeCommunities(via_tree.trusses);
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    auto mine = SearchCommunitiesOfVertex(tree, v, everything, alpha);
    size_t expect = 0;
    for (const auto& c : communities) {
      if (std::binary_search(c.vertices.begin(), c.vertices.end(), v)) {
        ++expect;
      }
    }
    EXPECT_EQ(mine.size(), expect) << "v=" << v;
  }

  // --- Sampling keeps the exactness invariants. --------------------------
  if (net.num_edges() >= 6) {
    Rng rng(seed);
    auto sub = SampleByBfs(net, net.num_edges() / 2, rng);
    ASSERT_TRUE(sub.ok());
    ExpectSameResults(RunTcfa(*sub, {.alpha = alpha}),
                      RunTcfi(*sub, {.alpha = alpha}), "sampled");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, E2EFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Update-interleaving mode: the same generated networks, but now served
// over a real TCP socket with an IndexUpdater attached. Random UPDATE
// batches are pushed over the wire between query rounds, and after
// every batch each query's response stream must match — byte for byte,
// header included — what a cache-less service over a from-scratch
// rebuild of the accumulated network would emit. Runs unsharded and
// sharded, with warm composing caches kept live through the rolling
// delta swaps.
// ---------------------------------------------------------------------

int RawConnect(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool RawSend(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

/// Next '\n'-terminated line (newline stripped); empty string on EOF.
std::string RawReadLine(int fd) {
  std::string line;
  char c;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return line;
    if (c == '\n') return line;
    line += c;
  }
}

NetworkUpdate RandomUpdateBatch(Rng& rng, const DatabaseNetwork& net,
                                size_t ops) {
  NetworkUpdate u;
  const size_t v = net.num_vertices();
  const size_t items = net.num_items();
  for (size_t i = 0; i < ops; ++i) {
    if (rng.NextBool(0.3) && v >= 2) {
      VertexId a = static_cast<VertexId>(rng.NextUint64(v));
      VertexId b = static_cast<VertexId>(rng.NextUint64(v));
      if (a == b) b = (b + 1) % v;
      u.edges.push_back(MakeEdge(a, b));
    } else {
      NetworkUpdate::TxInsert tx;
      tx.vertex = static_cast<VertexId>(rng.NextUint64(v));
      const size_t len = 1 + rng.NextUint64(3);
      std::vector<ItemId> ids;
      for (size_t k = 0; k < len; ++k) {
        ids.push_back(static_cast<ItemId>(rng.NextUint64(items)));
      }
      tx.items = Itemset(std::move(ids));
      u.transactions.push_back(std::move(tx));
    }
  }
  return u;
}

class E2EUpdateFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(E2EUpdateFuzzTest, WireUpdateInterleavingMatchesRebuildOracle) {
  const uint64_t seed = GetParam();
  auto fresh_net = [seed] {
    return MakeRandomNetwork({.num_vertices = 15,
                              .edge_prob = 0.4,
                              .num_items = 5,
                              .tx_per_vertex = 6,
                              .seed = seed});
  };
  const double alpha = 0.1 * static_cast<double>(seed % 4);
  const size_t shard_configs[] = {1, 2 + seed % 3};

  for (const size_t num_shards : shard_configs) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    DatabaseNetwork serve_net = fresh_net();
    DatabaseNetwork oracle_net = fresh_net();
    TcTree initial = TcTree::Build(serve_net);

    QueryServiceOptions warm;
    warm.num_threads = 1;
    warm.cache_bytes = size_t{4} << 20;
    warm.cache_composition = true;
    warm.cache_admit_derived = true;
    warm.cache_compose_min_walk_us = 0;  // compose unconditionally
    warm.tracing = false;
    std::unique_ptr<QueryBackend> backend;
    if (num_shards == 1) {
      backend = std::make_unique<QueryService>(initial, serve_net.dictionary(),
                                               warm);
    } else {
      backend = std::make_unique<ShardedQueryService>(
          initial, serve_net.dictionary(), num_shards, warm);
    }
    IndexUpdater updater(
        std::move(serve_net), std::move(initial),
        [&](TcTree tree, const std::vector<ItemId>& changed_roots,
            const std::vector<ItemId>& dirty_items) {
          return backend->ApplyUpdatedSnapshot(std::move(tree), changed_roots,
                                               dirty_items);
        });

    TcpServerOptions server_options;
    server_options.updater = &updater;
    TcpServer server(*backend, server_options);
    ASSERT_TRUE(server.Start().ok());
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);

    const ItemDictionary& dict = updater.network().dictionary();
    const std::vector<ItemId> items = updater.network().ActiveItems();
    ASSERT_FALSE(items.empty());

    // A fixed query-line set: everything, every single item, adjacent
    // pairs. Asked after every batch, it exercises exact hits, retagged
    // survivors, and covers composed from them.
    std::vector<std::string> query_lines;
    query_lines.push_back(StrFormat("%g;*", alpha));
    for (const ItemId item : items) {
      query_lines.push_back(
          StrFormat("%g;%s", alpha, dict.Name(item).c_str()));
    }
    for (size_t i = 0; i + 1 < items.size(); ++i) {
      query_lines.push_back(StrFormat("%g;%s,%s", alpha,
                                      dict.Name(items[i]).c_str(),
                                      dict.Name(items[i + 1]).c_str()));
    }

    // Byte-identity against the rebuild oracle: every response off the
    // live socket — header line included — equals what a cache-less
    // service over TcTree::Build(oracle_net) renders.
    auto check_round = [&](const std::string& context) {
      SCOPED_TRACE(context);
      QueryServiceOptions bare;
      bare.num_threads = 1;
      bare.cache_bytes = 0;
      bare.tracing = false;
      QueryService oracle(TcTree::Build(oracle_net), oracle_net.dictionary(),
                          bare);
      for (const std::string& line : query_lines) {
        ASSERT_TRUE(RawSend(fd, line + "\n"));
        auto query = oracle.ParseQueryLine(line);
        ASSERT_TRUE(query.ok()) << query.status();
        const auto want = oracle.Execute(*query);
        EXPECT_EQ(RawReadLine(fd),
                  EncodeOkHeader("TRUSSES", want->trusses.size()))
            << line;
        for (const PatternTruss& t : want->trusses) {
          EXPECT_EQ(RawReadLine(fd), EncodeTruss(dict, t)) << line;
        }
      }
    };

    check_round("pre-update");
    Rng rng(seed * 131 + num_shards);
    for (int round = 0; round < 3; ++round) {
      NetworkUpdate batch = RandomUpdateBatch(rng, updater.network(), 3);
      const std::vector<std::string> lines = EncodeUpdate(dict, batch);
      for (const NetworkUpdate::TxInsert& tx : batch.transactions) {
        ASSERT_TRUE(oracle_net.AddTransaction(tx.vertex, tx.items).ok());
      }
      for (const Edge& e : batch.edges) {
        ASSERT_TRUE(oracle_net.AddEdge(e.u, e.v).ok());
      }

      std::string wire = StrFormat("UPDATE %zu\n", lines.size());
      for (const std::string& l : lines) {
        wire += l;
        wire += '\n';
      }
      ASSERT_TRUE(RawSend(fd, wire));
      const std::string header = RawReadLine(fd);
      ASSERT_EQ(header.rfind("TCF1 OK UPDATED ", 0), 0u) << header;
      const size_t payload =
          std::stoul(header.substr(header.find_last_of(' ') + 1));
      bool saw_txs = false;
      for (size_t i = 0; i < payload; ++i) {
        if (RawReadLine(fd).rfind("update_txs ", 0) == 0) saw_txs = true;
      }
      EXPECT_TRUE(saw_txs);

      check_round("after round " + std::to_string(round));
    }

    ASSERT_TRUE(RawSend(fd, "QUIT\n"));
    EXPECT_EQ(RawReadLine(fd).rfind("TCF1 OK BYE", 0), 0u);
    ::close(fd);
    server.Shutdown();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, E2EUpdateFuzzTest,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace tcf
