// Randomized end-to-end consistency: for many seeds, run the whole
// pipeline — generate → (text and binary) serialize → sample → mine with
// all three miners → index → persist index → query — and check that
// every stage agrees with every other. This is the "no seam leaks"
// suite: each individual stage has its own oracle tests; this one checks
// the composition.
#include <gtest/gtest.h>

#include <sstream>

#include "core/brute_force.h"
#include "core/communities.h"
#include "core/community_search.h"
#include "core/tc_tree.h"
#include "core/tc_tree_io.h"
#include "core/tc_tree_query.h"
#include "core/tcfa.h"
#include "core/tcfi.h"
#include "core/tcs.h"
#include "net/binary_io.h"
#include "net/network_io.h"
#include "net/sampler.h"
#include "serve/line_protocol.h"
#include "serve/query_service.h"
#include "serve/shard_router.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::ExpectSameResults;
using testing::MakeRandomNetwork;

class E2EFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(E2EFuzzTest, PipelineStagesAgree) {
  const uint64_t seed = GetParam();
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 15,
                                           .edge_prob = 0.4,
                                           .num_items = 5,
                                           .tx_per_vertex = 6,
                                           .seed = seed});

  // --- Serialization round trips preserve mining results. ---------------
  std::stringstream text, binary;
  ASSERT_TRUE(SaveNetwork(net, text).ok());
  ASSERT_TRUE(SaveNetworkBinary(net, binary).ok());
  auto from_text = LoadNetwork(text);
  auto from_binary = LoadNetworkBinary(binary);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_binary.ok());

  const double alpha = 0.1 * static_cast<double>(seed % 4);
  MiningResult direct = RunTcfi(net, {.alpha = alpha});
  ExpectSameResults(direct, RunTcfi(*from_text, {.alpha = alpha}),
                    "text round trip");
  ExpectSameResults(direct, RunTcfi(*from_binary, {.alpha = alpha}),
                    "binary round trip");

  // --- All exact miners agree; the oracle confirms. ---------------------
  ExpectSameResults(direct, RunTcfa(net, {.alpha = alpha}), "tcfa");
  ExpectSameResults(direct, RunTcs(net, {.alpha = alpha, .epsilon = 0.0}),
                    "tcs eps=0");
  ExpectSameResults(direct, BruteForceMineAll(net, alpha), "oracle");

  // --- Index agrees with direct mining; persisted index agrees too. -----
  TcTree tree = TcTree::Build(net, {.num_threads = 1 + seed % 3});
  std::stringstream idx;
  ASSERT_TRUE(SaveTcTree(tree, idx).ok());
  auto loaded_tree = LoadTcTree(idx);
  ASSERT_TRUE(loaded_tree.ok());

  Itemset everything(net.ActiveItems());
  auto via_tree = QueryTcTree(tree, everything, alpha);
  auto via_loaded = QueryTcTree(*loaded_tree, everything, alpha);
  ASSERT_EQ(via_tree.retrieved_nodes, direct.trusses.size());
  ASSERT_EQ(via_loaded.retrieved_nodes, direct.trusses.size());

  MiningResult from_tree;
  from_tree.trusses = via_tree.trusses;
  // Reconstructed trusses have no per-edge cohesions; compare topology.
  for (auto& t : from_tree.trusses) t.edge_cohesions.clear();
  MiningResult direct_no_coh = direct;
  for (auto& t : direct_no_coh.trusses) t.edge_cohesions.clear();
  ExpectSameResults(std::move(direct_no_coh), std::move(from_tree),
                    "tree vs direct");

  // --- Sharded serving is byte-identical on the wire. --------------------
  // Render every query's answer exactly as the serve layer would (one
  // EncodeTruss line per truss) through an unsharded QueryService and a
  // ShardedQueryService over the same build, and require the serialized
  // response streams to match byte for byte.
  {
    QueryServiceOptions bare;
    bare.num_threads = 1;
    bare.cache_bytes = 0;
    bare.tracing = false;
    QueryService unsharded(tree, net.dictionary(), bare);
    const size_t num_shards = 2 + seed % 3;
    ShardedQueryService sharded(tree, net.dictionary(), num_shards, bare);
    std::vector<ServeQuery> queries;
    queries.push_back({everything, alpha});
    for (ItemId item : net.ActiveItems()) {
      queries.push_back({Itemset::Single(item), alpha});
      queries.push_back({everything.Minus(Itemset::Single(item)), alpha});
    }
    auto render = [&](QueryBackend& backend) {
      std::string out;
      for (const ServeQuery& q : queries) {
        const auto result = backend.Execute(q);
        for (const PatternTruss& t : result->trusses) {
          out += EncodeTruss(net.dictionary(), t);
          out += '\n';
        }
        out += StrFormat("end %zu\n", result->trusses.size());
      }
      return out;
    };
    EXPECT_EQ(render(unsharded), render(sharded))
        << "sharded wire responses diverge, seed=" << seed
        << " num_shards=" << num_shards;
  }

  // --- Community search composes with extraction. -----------------------
  auto communities = ExtractThemeCommunities(via_tree.trusses);
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    auto mine = SearchCommunitiesOfVertex(tree, v, everything, alpha);
    size_t expect = 0;
    for (const auto& c : communities) {
      if (std::binary_search(c.vertices.begin(), c.vertices.end(), v)) {
        ++expect;
      }
    }
    EXPECT_EQ(mine.size(), expect) << "v=" << v;
  }

  // --- Sampling keeps the exactness invariants. --------------------------
  if (net.num_edges() >= 6) {
    Rng rng(seed);
    auto sub = SampleByBfs(net, net.num_edges() / 2, rng);
    ASSERT_TRUE(sub.ok());
    ExpectSameResults(RunTcfa(*sub, {.alpha = alpha}),
                      RunTcfi(*sub, {.alpha = alpha}), "sampled");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, E2EFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace tcf
