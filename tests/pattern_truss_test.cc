#include "core/pattern_truss.h"

#include <gtest/gtest.h>

#include "core/decomposition.h"
#include "core/mptd.h"
#include "core/tcs.h"
#include "test_util.h"

namespace tcf {
namespace {

using testing::EdgeList;
using testing::MakeRandomNetwork;

PatternTruss SampleTruss() {
  PatternTruss t;
  t.pattern = Itemset({1, 2});
  t.edges = EdgeList({{0, 1}, {0, 2}, {1, 2}});
  t.vertices = {0, 1, 2};
  t.frequencies = {0.5, 0.25, 1.0};
  t.edge_cohesions = {QuantizeFrequency(0.25), QuantizeFrequency(0.25),
                      QuantizeFrequency(0.25)};
  return t;
}

TEST(PatternTrussTest, FrequencyLookup) {
  PatternTruss t = SampleTruss();
  EXPECT_DOUBLE_EQ(t.FrequencyOf(0), 0.5);
  EXPECT_DOUBLE_EQ(t.FrequencyOf(2), 1.0);
  EXPECT_DOUBLE_EQ(t.FrequencyOf(7), 0.0);
}

TEST(PatternTrussTest, ContainsEdge) {
  PatternTruss t = SampleTruss();
  EXPECT_TRUE(t.ContainsEdge(MakeEdge(1, 0)));
  EXPECT_FALSE(t.ContainsEdge(MakeEdge(0, 3)));
}

TEST(PatternTrussTest, SubgraphRelation) {
  PatternTruss big = SampleTruss();
  PatternTruss small;
  small.edges = EdgeList({{0, 1}});
  EXPECT_TRUE(small.IsSubgraphOf(big));
  EXPECT_FALSE(big.IsSubgraphOf(small));
  PatternTruss empty;
  EXPECT_TRUE(empty.IsSubgraphOf(big));
  EXPECT_TRUE(empty.IsSubgraphOf(empty));
}

TEST(PatternTrussTest, MinEdgeCohesion) {
  PatternTruss t = SampleTruss();
  t.edge_cohesions = {5, 3, 9};
  EXPECT_EQ(t.MinEdgeCohesion(), 3);
  PatternTruss empty;
  EXPECT_EQ(empty.MinEdgeCohesion(), 0);
}

TEST(PatternTrussTest, ToStringMentionsSizes) {
  PatternTruss t = SampleTruss();
  const std::string s = t.ToString();
  EXPECT_NE(s.find("|V|=3"), std::string::npos);
  EXPECT_NE(s.find("|E|=3"), std::string::npos);
}

TEST(IntersectEdgeSetsTest, Basics) {
  auto a = EdgeList({{0, 1}, {1, 2}, {3, 4}});
  auto b = EdgeList({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(IntersectEdgeSets(a, b), EdgeList({{1, 2}, {3, 4}}));
  EXPECT_TRUE(IntersectEdgeSets(a, {}).empty());
  EXPECT_TRUE(IntersectEdgeSets({}, {}).empty());
  EXPECT_EQ(IntersectEdgeSets(a, a), a);
}

TEST(FillVerticesFromEdgesTest, DerivesEndpointsAndFrequencies) {
  PatternTruss t;
  t.edges = EdgeList({{2, 5}, {5, 9}});
  std::vector<VertexId> superset = {1, 2, 5, 9};
  std::vector<double> freqs = {0.1, 0.2, 0.5, 0.9};
  FillVerticesFromEdges(superset, freqs, &t);
  EXPECT_EQ(t.vertices, (std::vector<VertexId>{2, 5, 9}));
  ASSERT_EQ(t.frequencies.size(), 3u);
  EXPECT_DOUBLE_EQ(t.frequencies[0], 0.2);
  EXPECT_DOUBLE_EQ(t.frequencies[1], 0.5);
  EXPECT_DOUBLE_EQ(t.frequencies[2], 0.9);
}

TEST(FillVerticesFromEdgesTest, MissingVertexGetsZero) {
  PatternTruss t;
  t.edges = EdgeList({{0, 1}});
  FillVerticesFromEdges({1}, {0.4}, &t);
  EXPECT_EQ(t.vertices, (std::vector<VertexId>{0, 1}));
  EXPECT_DOUBLE_EQ(t.frequencies[0], 0.0);
  EXPECT_DOUBLE_EQ(t.frequencies[1], 0.4);
}

// ---------------- multi-item decompositions (gap: earlier tests only ---
// ---------------- decomposed singleton theme networks). ----------------

class PairDecompositionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairDecompositionTest, ReconstructionMatchesDirectMptdOnPairs) {
  DatabaseNetwork net = MakeRandomNetwork({.num_vertices = 14,
                                           .edge_prob = 0.45,
                                           .num_items = 4,
                                           .tx_per_vertex = 6,
                                           .seed = GetParam()});
  for (ItemId a = 0; a < 4; ++a) {
    for (ItemId b = a + 1; b < 4; ++b) {
      const Itemset p({a, b});
      ThemeNetwork tn = InduceThemeNetwork(net, p);
      if (tn.empty()) continue;
      TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
      std::vector<CohesionValue> probes = {0};
      for (const auto& level : d.levels()) {
        probes.push_back(level.alpha);
        probes.push_back(level.alpha + 1);
      }
      for (CohesionValue aq : probes) {
        PatternTruss rec = d.TrussAtAlphaQ(aq);
        PatternTruss direct = MptdQ(tn, aq);
        EXPECT_EQ(rec.edges, direct.edges)
            << p.ToString() << " aq=" << aq;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairDecompositionTest,
                         ::testing::Range<uint64_t>(1, 6));

TEST(DecompositionFromPartsTest, RoundTripsThroughParts) {
  DatabaseNetwork net = MakeRandomNetwork({.seed = 77});
  for (ItemId item : net.ActiveItems()) {
    ThemeNetwork tn = InduceThemeNetwork(net, Itemset::Single(item));
    TrussDecomposition d = TrussDecomposition::FromThemeNetwork(tn);
    TrussDecomposition rebuilt = TrussDecomposition::FromParts(
        d.pattern(), std::vector<VertexId>(d.vertices()),
        std::vector<double>(d.frequencies()),
        std::vector<DecompositionLevel>(d.levels()));
    EXPECT_EQ(rebuilt.sorted_edges(), d.sorted_edges());
    EXPECT_EQ(rebuilt.max_alpha(), d.max_alpha());
    EXPECT_EQ(rebuilt.TrussAtAlpha(0.0).edges, d.TrussAtAlpha(0.0).edges);
  }
}

// ------------------------------- TCS counter/option gap coverage. ------

TEST(TcsCountersTest, MptdCallsEqualCandidates) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 4, .seed = 21});
  MiningResult r = RunTcs(net, {.alpha = 0.0, .epsilon = 0.2});
  EXPECT_EQ(r.counters.mptd_calls, r.counters.candidates_generated);
  EXPECT_EQ(r.counters.qualified_patterns, r.trusses.size());
}

TEST(TcsCountersTest, CandidateCountShrinksWithEpsilon) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 23});
  MiningResult lo = RunTcs(net, {.alpha = 0.0, .epsilon = 0.05});
  MiningResult hi = RunTcs(net, {.alpha = 0.0, .epsilon = 0.4});
  EXPECT_GE(lo.counters.candidates_generated,
            hi.counters.candidates_generated);
}

TEST(TcsCountersTest, MaxLengthLimitsCandidates) {
  DatabaseNetwork net = MakeRandomNetwork({.num_items = 5, .seed = 25});
  MiningResult capped =
      RunTcs(net, {.alpha = 0.0, .epsilon = 0.0, .max_pattern_length = 1});
  for (const auto& t : capped.trusses) EXPECT_EQ(t.pattern.size(), 1u);
}

}  // namespace
}  // namespace tcf
