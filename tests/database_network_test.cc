#include "net/database_network.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace tcf {
namespace {

using testing::MakeNetwork;

DatabaseNetwork SmallNet() {
  // 3 vertices in a triangle; item 0 everywhere, item 1 on vertex 2 only.
  return MakeNetwork(3, {{0, 1}, {1, 2}, {0, 2}},
                     {{{0}, {0, 1}},    // v0: f({0})=1, f({1})=0.5
                      {{0}},            // v1: f({0})=1
                      {{1}, {1}, {0}}});  // v2: f({0})=1/3, f({1})=2/3
}

TEST(DatabaseNetworkTest, BasicAccessors) {
  DatabaseNetwork net = SmallNet();
  EXPECT_EQ(net.num_vertices(), 3u);
  EXPECT_EQ(net.num_edges(), 3u);
  EXPECT_EQ(net.num_items(), 2u);
  EXPECT_EQ(net.db(0).num_transactions(), 2u);
  EXPECT_EQ(net.db(2).num_transactions(), 3u);
}

TEST(DatabaseNetworkTest, FrequencyViaVerticalIndex) {
  DatabaseNetwork net = SmallNet();
  EXPECT_DOUBLE_EQ(net.Frequency(0, Itemset({0})), 1.0);
  EXPECT_DOUBLE_EQ(net.Frequency(0, Itemset({1})), 0.5);
  EXPECT_DOUBLE_EQ(net.Frequency(0, Itemset({0, 1})), 0.5);
  EXPECT_DOUBLE_EQ(net.Frequency(2, Itemset({0})), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(net.Frequency(2, Itemset({0, 1})), 0.0);
  EXPECT_DOUBLE_EQ(net.Frequency(1, Itemset({1})), 0.0);
}

TEST(DatabaseNetworkTest, FrequencyMatchesScan) {
  DatabaseNetwork net = SmallNet();
  for (VertexId v = 0; v < net.num_vertices(); ++v) {
    for (const Itemset& p :
         {Itemset({0}), Itemset({1}), Itemset({0, 1}), Itemset()}) {
      EXPECT_DOUBLE_EQ(net.Frequency(v, p), net.db(v).Frequency(p))
          << "v=" << v << " p=" << p.ToString();
    }
  }
}

TEST(DatabaseNetworkTest, ItemVerticesIndex) {
  DatabaseNetwork net = SmallNet();
  const auto& carriers0 = net.ItemVertices(0);
  ASSERT_EQ(carriers0.size(), 3u);
  EXPECT_EQ(carriers0[0].vertex, 0u);
  EXPECT_DOUBLE_EQ(carriers0[0].frequency, 1.0);
  EXPECT_EQ(carriers0[2].vertex, 2u);
  EXPECT_DOUBLE_EQ(carriers0[2].frequency, 1.0 / 3.0);

  const auto& carriers1 = net.ItemVertices(1);
  ASSERT_EQ(carriers1.size(), 2u);
  EXPECT_EQ(carriers1[0].vertex, 0u);
  EXPECT_EQ(carriers1[1].vertex, 2u);
}

TEST(DatabaseNetworkTest, ItemVerticesOutOfRangeIsEmpty) {
  DatabaseNetwork net = SmallNet();
  EXPECT_TRUE(net.ItemVertices(999).empty());
}

TEST(DatabaseNetworkTest, ActiveItems) {
  DatabaseNetwork net = SmallNet();
  EXPECT_EQ(net.ActiveItems(), (std::vector<ItemId>{0, 1}));
}

TEST(DatabaseNetworkTest, EmptyDatabasesAllowed) {
  DatabaseNetwork net = MakeNetwork(2, {{0, 1}}, {{}, {{0}}});
  EXPECT_DOUBLE_EQ(net.Frequency(0, Itemset({0})), 0.0);
  EXPECT_EQ(net.ItemVertices(0).size(), 1u);
  EXPECT_EQ(net.ItemVertices(0)[0].vertex, 1u);
}

TEST(DatabaseNetworkTest, MoveConstructible) {
  DatabaseNetwork a = SmallNet();
  DatabaseNetwork b = std::move(a);
  EXPECT_EQ(b.num_vertices(), 3u);
  EXPECT_DOUBLE_EQ(b.Frequency(0, Itemset({0})), 1.0);
}

}  // namespace
}  // namespace tcf
